# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
