file(REMOVE_RECURSE
  "CMakeFiles/csv_match_tool.dir/csv_match_tool.cpp.o"
  "CMakeFiles/csv_match_tool.dir/csv_match_tool.cpp.o.d"
  "csv_match_tool"
  "csv_match_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_match_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
