# Empty compiler generated dependencies file for csv_match_tool.
# This may be replaced when dependencies are built.
