
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/attribute_normalization.cpp" "examples/CMakeFiles/attribute_normalization.dir/attribute_normalization.cpp.o" "gcc" "examples/CMakeFiles/attribute_normalization.dir/attribute_normalization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/csm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/csm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/csm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/csm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/csm_match.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/csm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/csm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/csm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
