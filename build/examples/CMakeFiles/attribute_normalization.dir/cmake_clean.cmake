file(REMOVE_RECURSE
  "CMakeFiles/attribute_normalization.dir/attribute_normalization.cpp.o"
  "CMakeFiles/attribute_normalization.dir/attribute_normalization.cpp.o.d"
  "attribute_normalization"
  "attribute_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
