# Empty dependencies file for attribute_normalization.
# This may be replaced when dependencies are built.
