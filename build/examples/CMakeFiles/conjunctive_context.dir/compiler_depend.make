# Empty compiler generated dependencies file for conjunctive_context.
# This may be replaced when dependencies are built.
