file(REMOVE_RECURSE
  "CMakeFiles/conjunctive_context.dir/conjunctive_context.cpp.o"
  "CMakeFiles/conjunctive_context.dir/conjunctive_context.cpp.o.d"
  "conjunctive_context"
  "conjunctive_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjunctive_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
