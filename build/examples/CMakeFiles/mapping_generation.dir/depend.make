# Empty dependencies file for mapping_generation.
# This may be replaced when dependencies are built.
