file(REMOVE_RECURSE
  "CMakeFiles/mapping_generation.dir/mapping_generation.cpp.o"
  "CMakeFiles/mapping_generation.dir/mapping_generation.cpp.o.d"
  "mapping_generation"
  "mapping_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
