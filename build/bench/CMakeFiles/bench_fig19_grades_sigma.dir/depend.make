# Empty dependencies file for bench_fig19_grades_sigma.
# This may be replaced when dependencies are built.
