file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_grades_sigma.dir/bench_fig19_grades_sigma.cc.o"
  "CMakeFiles/bench_fig19_grades_sigma.dir/bench_fig19_grades_sigma.cc.o.d"
  "bench_fig19_grades_sigma"
  "bench_fig19_grades_sigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_grades_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
