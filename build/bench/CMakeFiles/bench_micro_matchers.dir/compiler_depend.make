# Empty compiler generated dependencies file for bench_micro_matchers.
# This may be replaced when dependencies are built.
