file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_matchers.dir/bench_micro_matchers.cc.o"
  "CMakeFiles/bench_micro_matchers.dir/bench_micro_matchers.cc.o.d"
  "bench_micro_matchers"
  "bench_micro_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
