# Empty dependencies file for bench_fig15_cardinality_runtime.
# This may be replaced when dependencies are built.
