file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_correlated_early.dir/bench_fig12_correlated_early.cc.o"
  "CMakeFiles/bench_fig12_correlated_early.dir/bench_fig12_correlated_early.cc.o.d"
  "bench_fig12_correlated_early"
  "bench_fig12_correlated_early.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_correlated_early.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
