# Empty compiler generated dependencies file for bench_fig12_correlated_early.
# This may be replaced when dependencies are built.
