# Empty dependencies file for bench_fig14_cardinality_fmeasure.
# This may be replaced when dependencies are built.
