file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cardinality_fmeasure.dir/bench_fig14_cardinality_fmeasure.cc.o"
  "CMakeFiles/bench_fig14_cardinality_fmeasure.dir/bench_fig14_cardinality_fmeasure.cc.o.d"
  "bench_fig14_cardinality_fmeasure"
  "bench_fig14_cardinality_fmeasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cardinality_fmeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
