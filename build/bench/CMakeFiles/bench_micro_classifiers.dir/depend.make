# Empty dependencies file for bench_micro_classifiers.
# This may be replaced when dependencies are built.
