file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_correlated_late.dir/bench_fig13_correlated_late.cc.o"
  "CMakeFiles/bench_fig13_correlated_late.dir/bench_fig13_correlated_late.cc.o.d"
  "bench_fig13_correlated_late"
  "bench_fig13_correlated_late.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_correlated_late.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
