# Empty compiler generated dependencies file for bench_fig13_correlated_late.
# This may be replaced when dependencies are built.
