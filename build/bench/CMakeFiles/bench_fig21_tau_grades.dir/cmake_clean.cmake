file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_tau_grades.dir/bench_fig21_tau_grades.cc.o"
  "CMakeFiles/bench_fig21_tau_grades.dir/bench_fig21_tau_grades.cc.o.d"
  "bench_fig21_tau_grades"
  "bench_fig21_tau_grades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_tau_grades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
