# Empty dependencies file for bench_fig21_tau_grades.
# This may be replaced when dependencies are built.
