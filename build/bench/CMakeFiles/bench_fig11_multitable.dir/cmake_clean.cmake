file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_multitable.dir/bench_fig11_multitable.cc.o"
  "CMakeFiles/bench_fig11_multitable.dir/bench_fig11_multitable.cc.o.d"
  "bench_fig11_multitable"
  "bench_fig11_multitable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_multitable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
