file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_tau_inventory.dir/bench_fig20_tau_inventory.cc.o"
  "CMakeFiles/bench_fig20_tau_inventory.dir/bench_fig20_tau_inventory.cc.o.d"
  "bench_fig20_tau_inventory"
  "bench_fig20_tau_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_tau_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
