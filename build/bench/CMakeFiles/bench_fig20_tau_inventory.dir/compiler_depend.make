# Empty compiler generated dependencies file for bench_fig20_tau_inventory.
# This may be replaced when dependencies are built.
