# Empty dependencies file for bench_fig16_schema_size_fmeasure.
# This may be replaced when dependencies are built.
