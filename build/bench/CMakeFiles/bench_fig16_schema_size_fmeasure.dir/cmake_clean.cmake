file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_schema_size_fmeasure.dir/bench_fig16_schema_size_fmeasure.cc.o"
  "CMakeFiles/bench_fig16_schema_size_fmeasure.dir/bench_fig16_schema_size_fmeasure.cc.o.d"
  "bench_fig16_schema_size_fmeasure"
  "bench_fig16_schema_size_fmeasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_schema_size_fmeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
