# Empty dependencies file for bench_fig08_10_omega.
# This may be replaced when dependencies are built.
