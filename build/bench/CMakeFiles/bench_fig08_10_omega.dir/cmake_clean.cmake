file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_10_omega.dir/bench_fig08_10_omega.cc.o"
  "CMakeFiles/bench_fig08_10_omega.dir/bench_fig08_10_omega.cc.o.d"
  "bench_fig08_10_omega"
  "bench_fig08_10_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_10_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
