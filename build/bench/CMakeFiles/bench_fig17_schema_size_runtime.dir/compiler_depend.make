# Empty compiler generated dependencies file for bench_fig17_schema_size_runtime.
# This may be replaced when dependencies are built.
