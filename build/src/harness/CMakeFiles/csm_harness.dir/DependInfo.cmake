
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/csm_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/csm_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/harness/CMakeFiles/csm_harness.dir/report.cc.o" "gcc" "src/harness/CMakeFiles/csm_harness.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
