file(REMOVE_RECURSE
  "CMakeFiles/csm_harness.dir/experiment.cc.o"
  "CMakeFiles/csm_harness.dir/experiment.cc.o.d"
  "CMakeFiles/csm_harness.dir/report.cc.o"
  "CMakeFiles/csm_harness.dir/report.cc.o.d"
  "libcsm_harness.a"
  "libcsm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
