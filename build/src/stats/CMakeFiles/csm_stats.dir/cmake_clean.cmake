file(REMOVE_RECURSE
  "CMakeFiles/csm_stats.dir/descriptive.cc.o"
  "CMakeFiles/csm_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/csm_stats.dir/distributions.cc.o"
  "CMakeFiles/csm_stats.dir/distributions.cc.o.d"
  "CMakeFiles/csm_stats.dir/significance.cc.o"
  "CMakeFiles/csm_stats.dir/significance.cc.o.d"
  "libcsm_stats.a"
  "libcsm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
