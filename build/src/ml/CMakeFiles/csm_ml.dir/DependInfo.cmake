
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/evaluation.cc" "src/ml/CMakeFiles/csm_ml.dir/evaluation.cc.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/evaluation.cc.o.d"
  "/root/repo/src/ml/gaussian_classifier.cc" "src/ml/CMakeFiles/csm_ml.dir/gaussian_classifier.cc.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/gaussian_classifier.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/csm_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/naive_bayes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/csm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/csm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
