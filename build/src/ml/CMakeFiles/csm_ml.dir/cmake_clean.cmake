file(REMOVE_RECURSE
  "CMakeFiles/csm_ml.dir/evaluation.cc.o"
  "CMakeFiles/csm_ml.dir/evaluation.cc.o.d"
  "CMakeFiles/csm_ml.dir/gaussian_classifier.cc.o"
  "CMakeFiles/csm_ml.dir/gaussian_classifier.cc.o.d"
  "CMakeFiles/csm_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/csm_ml.dir/naive_bayes.cc.o.d"
  "libcsm_ml.a"
  "libcsm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
