
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clustered_view_gen.cc" "src/core/CMakeFiles/csm_core.dir/clustered_view_gen.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/clustered_view_gen.cc.o.d"
  "/root/repo/src/core/context_match.cc" "src/core/CMakeFiles/csm_core.dir/context_match.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/context_match.cc.o.d"
  "/root/repo/src/core/naive_infer.cc" "src/core/CMakeFiles/csm_core.dir/naive_infer.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/naive_infer.cc.o.d"
  "/root/repo/src/core/select_matches.cc" "src/core/CMakeFiles/csm_core.dir/select_matches.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/select_matches.cc.o.d"
  "/root/repo/src/core/src_class_infer.cc" "src/core/CMakeFiles/csm_core.dir/src_class_infer.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/src_class_infer.cc.o.d"
  "/root/repo/src/core/target_context.cc" "src/core/CMakeFiles/csm_core.dir/target_context.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/target_context.cc.o.d"
  "/root/repo/src/core/tgt_class_infer.cc" "src/core/CMakeFiles/csm_core.dir/tgt_class_infer.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/tgt_class_infer.cc.o.d"
  "/root/repo/src/core/view_inference.cc" "src/core/CMakeFiles/csm_core.dir/view_inference.cc.o" "gcc" "src/core/CMakeFiles/csm_core.dir/view_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/csm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/csm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/csm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/csm_match.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
