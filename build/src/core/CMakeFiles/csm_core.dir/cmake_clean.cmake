file(REMOVE_RECURSE
  "CMakeFiles/csm_core.dir/clustered_view_gen.cc.o"
  "CMakeFiles/csm_core.dir/clustered_view_gen.cc.o.d"
  "CMakeFiles/csm_core.dir/context_match.cc.o"
  "CMakeFiles/csm_core.dir/context_match.cc.o.d"
  "CMakeFiles/csm_core.dir/naive_infer.cc.o"
  "CMakeFiles/csm_core.dir/naive_infer.cc.o.d"
  "CMakeFiles/csm_core.dir/select_matches.cc.o"
  "CMakeFiles/csm_core.dir/select_matches.cc.o.d"
  "CMakeFiles/csm_core.dir/src_class_infer.cc.o"
  "CMakeFiles/csm_core.dir/src_class_infer.cc.o.d"
  "CMakeFiles/csm_core.dir/target_context.cc.o"
  "CMakeFiles/csm_core.dir/target_context.cc.o.d"
  "CMakeFiles/csm_core.dir/tgt_class_infer.cc.o"
  "CMakeFiles/csm_core.dir/tgt_class_infer.cc.o.d"
  "CMakeFiles/csm_core.dir/view_inference.cc.o"
  "CMakeFiles/csm_core.dir/view_inference.cc.o.d"
  "libcsm_core.a"
  "libcsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
