
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/grades_gen.cc" "src/datagen/CMakeFiles/csm_datagen.dir/grades_gen.cc.o" "gcc" "src/datagen/CMakeFiles/csm_datagen.dir/grades_gen.cc.o.d"
  "/root/repo/src/datagen/ground_truth.cc" "src/datagen/CMakeFiles/csm_datagen.dir/ground_truth.cc.o" "gcc" "src/datagen/CMakeFiles/csm_datagen.dir/ground_truth.cc.o.d"
  "/root/repo/src/datagen/retail_gen.cc" "src/datagen/CMakeFiles/csm_datagen.dir/retail_gen.cc.o" "gcc" "src/datagen/CMakeFiles/csm_datagen.dir/retail_gen.cc.o.d"
  "/root/repo/src/datagen/wordlists.cc" "src/datagen/CMakeFiles/csm_datagen.dir/wordlists.cc.o" "gcc" "src/datagen/CMakeFiles/csm_datagen.dir/wordlists.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/csm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/csm_match.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/csm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
