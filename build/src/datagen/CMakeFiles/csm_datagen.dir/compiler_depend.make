# Empty compiler generated dependencies file for csm_datagen.
# This may be replaced when dependencies are built.
