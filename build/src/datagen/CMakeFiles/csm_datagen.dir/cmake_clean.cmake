file(REMOVE_RECURSE
  "CMakeFiles/csm_datagen.dir/grades_gen.cc.o"
  "CMakeFiles/csm_datagen.dir/grades_gen.cc.o.d"
  "CMakeFiles/csm_datagen.dir/ground_truth.cc.o"
  "CMakeFiles/csm_datagen.dir/ground_truth.cc.o.d"
  "CMakeFiles/csm_datagen.dir/retail_gen.cc.o"
  "CMakeFiles/csm_datagen.dir/retail_gen.cc.o.d"
  "CMakeFiles/csm_datagen.dir/wordlists.cc.o"
  "CMakeFiles/csm_datagen.dir/wordlists.cc.o.d"
  "libcsm_datagen.a"
  "libcsm_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
