file(REMOVE_RECURSE
  "libcsm_datagen.a"
)
