file(REMOVE_RECURSE
  "CMakeFiles/csm_match.dir/match_types.cc.o"
  "CMakeFiles/csm_match.dir/match_types.cc.o.d"
  "CMakeFiles/csm_match.dir/matcher.cc.o"
  "CMakeFiles/csm_match.dir/matcher.cc.o.d"
  "CMakeFiles/csm_match.dir/matchers.cc.o"
  "CMakeFiles/csm_match.dir/matchers.cc.o.d"
  "CMakeFiles/csm_match.dir/session.cc.o"
  "CMakeFiles/csm_match.dir/session.cc.o.d"
  "libcsm_match.a"
  "libcsm_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
