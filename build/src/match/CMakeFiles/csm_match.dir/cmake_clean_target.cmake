file(REMOVE_RECURSE
  "libcsm_match.a"
)
