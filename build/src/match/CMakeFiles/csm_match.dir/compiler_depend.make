# Empty compiler generated dependencies file for csm_match.
# This may be replaced when dependencies are built.
