
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/match_types.cc" "src/match/CMakeFiles/csm_match.dir/match_types.cc.o" "gcc" "src/match/CMakeFiles/csm_match.dir/match_types.cc.o.d"
  "/root/repo/src/match/matcher.cc" "src/match/CMakeFiles/csm_match.dir/matcher.cc.o" "gcc" "src/match/CMakeFiles/csm_match.dir/matcher.cc.o.d"
  "/root/repo/src/match/matchers.cc" "src/match/CMakeFiles/csm_match.dir/matchers.cc.o" "gcc" "src/match/CMakeFiles/csm_match.dir/matchers.cc.o.d"
  "/root/repo/src/match/session.cc" "src/match/CMakeFiles/csm_match.dir/session.cc.o" "gcc" "src/match/CMakeFiles/csm_match.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/csm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/csm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
