file(REMOVE_RECURSE
  "CMakeFiles/csm_relational.dir/categorical.cc.o"
  "CMakeFiles/csm_relational.dir/categorical.cc.o.d"
  "CMakeFiles/csm_relational.dir/condition.cc.o"
  "CMakeFiles/csm_relational.dir/condition.cc.o.d"
  "CMakeFiles/csm_relational.dir/csv.cc.o"
  "CMakeFiles/csm_relational.dir/csv.cc.o.d"
  "CMakeFiles/csm_relational.dir/sample.cc.o"
  "CMakeFiles/csm_relational.dir/sample.cc.o.d"
  "CMakeFiles/csm_relational.dir/schema.cc.o"
  "CMakeFiles/csm_relational.dir/schema.cc.o.d"
  "CMakeFiles/csm_relational.dir/table.cc.o"
  "CMakeFiles/csm_relational.dir/table.cc.o.d"
  "CMakeFiles/csm_relational.dir/value.cc.o"
  "CMakeFiles/csm_relational.dir/value.cc.o.d"
  "CMakeFiles/csm_relational.dir/view.cc.o"
  "CMakeFiles/csm_relational.dir/view.cc.o.d"
  "libcsm_relational.a"
  "libcsm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
