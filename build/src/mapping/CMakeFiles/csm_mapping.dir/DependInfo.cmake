
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/association.cc" "src/mapping/CMakeFiles/csm_mapping.dir/association.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/association.cc.o.d"
  "/root/repo/src/mapping/clio.cc" "src/mapping/CMakeFiles/csm_mapping.dir/clio.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/clio.cc.o.d"
  "/root/repo/src/mapping/constraint_mining.cc" "src/mapping/CMakeFiles/csm_mapping.dir/constraint_mining.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/constraint_mining.cc.o.d"
  "/root/repo/src/mapping/constraints.cc" "src/mapping/CMakeFiles/csm_mapping.dir/constraints.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/constraints.cc.o.d"
  "/root/repo/src/mapping/executor.cc" "src/mapping/CMakeFiles/csm_mapping.dir/executor.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/executor.cc.o.d"
  "/root/repo/src/mapping/propagation.cc" "src/mapping/CMakeFiles/csm_mapping.dir/propagation.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/propagation.cc.o.d"
  "/root/repo/src/mapping/query_gen.cc" "src/mapping/CMakeFiles/csm_mapping.dir/query_gen.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/query_gen.cc.o.d"
  "/root/repo/src/mapping/validation.cc" "src/mapping/CMakeFiles/csm_mapping.dir/validation.cc.o" "gcc" "src/mapping/CMakeFiles/csm_mapping.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/csm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/csm_match.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/csm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/csm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/csm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
