file(REMOVE_RECURSE
  "CMakeFiles/csm_mapping.dir/association.cc.o"
  "CMakeFiles/csm_mapping.dir/association.cc.o.d"
  "CMakeFiles/csm_mapping.dir/clio.cc.o"
  "CMakeFiles/csm_mapping.dir/clio.cc.o.d"
  "CMakeFiles/csm_mapping.dir/constraint_mining.cc.o"
  "CMakeFiles/csm_mapping.dir/constraint_mining.cc.o.d"
  "CMakeFiles/csm_mapping.dir/constraints.cc.o"
  "CMakeFiles/csm_mapping.dir/constraints.cc.o.d"
  "CMakeFiles/csm_mapping.dir/executor.cc.o"
  "CMakeFiles/csm_mapping.dir/executor.cc.o.d"
  "CMakeFiles/csm_mapping.dir/propagation.cc.o"
  "CMakeFiles/csm_mapping.dir/propagation.cc.o.d"
  "CMakeFiles/csm_mapping.dir/query_gen.cc.o"
  "CMakeFiles/csm_mapping.dir/query_gen.cc.o.d"
  "CMakeFiles/csm_mapping.dir/validation.cc.o"
  "CMakeFiles/csm_mapping.dir/validation.cc.o.d"
  "libcsm_mapping.a"
  "libcsm_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
