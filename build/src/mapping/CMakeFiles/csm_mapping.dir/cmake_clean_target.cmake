file(REMOVE_RECURSE
  "libcsm_mapping.a"
)
