# Empty compiler generated dependencies file for csm_mapping.
# This may be replaced when dependencies are built.
