file(REMOVE_RECURSE
  "libcsm_text.a"
)
