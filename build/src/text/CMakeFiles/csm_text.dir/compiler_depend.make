# Empty compiler generated dependencies file for csm_text.
# This may be replaced when dependencies are built.
