file(REMOVE_RECURSE
  "CMakeFiles/csm_text.dir/profile.cc.o"
  "CMakeFiles/csm_text.dir/profile.cc.o.d"
  "CMakeFiles/csm_text.dir/string_distance.cc.o"
  "CMakeFiles/csm_text.dir/string_distance.cc.o.d"
  "CMakeFiles/csm_text.dir/tfidf.cc.o"
  "CMakeFiles/csm_text.dir/tfidf.cc.o.d"
  "CMakeFiles/csm_text.dir/tokenizer.cc.o"
  "CMakeFiles/csm_text.dir/tokenizer.cc.o.d"
  "libcsm_text.a"
  "libcsm_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
