// Tests for src/common: Status/StatusOr, Rng, string utilities.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace csm {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

StatusOr<int> Doubled(int x) {
  CSM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(-4).ok());
}

Status CheckAll(int x) {
  CSM_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll(1).ok());
  EXPECT_FALSE(CheckAll(0).ok());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian(10.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.03);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(23);
  std::map<size_t, int> counts;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextDiscrete({1.0, 3.0, 0.0, 6.0})];
  }
  EXPECT_EQ(counts[2], 0);  // zero weight never drawn
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.03);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.03);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(31);
  Rng fork1 = a.Fork();
  Rng b(31);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork1.Next(), fork2.Next());
  }
}

// ----------------------------------------------------------- string_util

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC-12Z"), "abc-12z");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string original = "alpha,beta,,delta";
  EXPECT_EQ(Join(Split(original, ','), ","), original);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace csm
