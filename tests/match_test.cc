// Tests for src/match: matchers, score normalization, the match session,
// and restricted-bag rescoring.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/wordlists.h"
#include "match/matchers.h"
#include "match/session.h"
#include "relational/sample.h"
#include "tests/test_util.h"

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::N;
using testing::R;
using testing::S;

AttributeSample StringSample(const char* table, const char* attr,
                             std::vector<std::string> values) {
  std::vector<Value> bag;
  for (auto& v : values) bag.push_back(Value::String(std::move(v)));
  return AttributeSample(AttributeRef{table, attr}, ValueType::kString,
                         std::move(bag));
}

AttributeSample NumericSample(const char* table, const char* attr,
                              std::vector<double> values) {
  std::vector<Value> bag;
  for (double v : values) bag.push_back(Value::Real(v));
  return AttributeSample(AttributeRef{table, attr}, ValueType::kReal,
                         std::move(bag));
}

// ------------------------------------------------------- AttributeSample

TEST(AttributeSampleTest, NonNullCountAndProfiles) {
  AttributeSample s(AttributeRef{"t", "a"}, ValueType::kString,
                    {S("ab"), N(), S("cd")});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.NonNullCount(), 2u);
  EXPECT_FALSE(s.QGramProfile().empty());
  EXPECT_EQ(s.WordProfile().num_distinct(), 2u);
}

TEST(AttributeSampleTest, NumericStatsSkipStrings) {
  AttributeSample s(AttributeRef{"t", "a"}, ValueType::kString,
                    {S("x"), R(4.0), I(2)});
  EXPECT_EQ(s.NumericStats().count(), 2u);
  EXPECT_DOUBLE_EQ(s.NumericStats().Mean(), 3.0);
  EXPECT_FALSE(s.MostlyNumeric(0.9));
  EXPECT_TRUE(s.MostlyNumeric(0.5));
}

TEST(AttributeSampleTest, FromTable) {
  Table t = MakeTable("t", {"x"}, {{I(1)}, {I(2)}});
  AttributeSample s = AttributeSample::FromTable(t, "x");
  EXPECT_EQ(s.ref().ToString(), "t.x");
  EXPECT_EQ(s.declared_type(), ValueType::kInt);
  EXPECT_EQ(s.size(), 2u);
}

// ---------------------------------------------------------- NameMatcher

TEST(NameMatcherTest, TokensSplitCamelAndUnderscore) {
  EXPECT_EQ(NameMatcher::NameTokens("ItemType"),
            (std::vector<std::string>{"item", "type"}));
  EXPECT_EQ(NameMatcher::NameTokens("year_published"),
            (std::vector<std::string>{"year", "published"}));
  EXPECT_EQ(NameMatcher::NameTokens("bk_title2"),
            (std::vector<std::string>{"bk", "title", "2"}));
  EXPECT_TRUE(NameMatcher::NameTokens("").empty());
}

TEST(NameMatcherTest, IdenticalNamesScoreOne) {
  NameMatcher m;
  auto a = StringSample("s", "title", {"x"});
  auto b = StringSample("t", "title", {"y"});
  EXPECT_DOUBLE_EQ(m.Score(a, b), 1.0);
}

TEST(NameMatcherTest, SharedTokenScoresHigh) {
  NameMatcher m;
  auto a = StringSample("s", "Title", {"x"});
  auto b = StringSample("t", "BookTitle", {"y"});
  auto c = StringSample("t", "ZzQq", {"y"});
  EXPECT_GT(m.Score(a, b), m.Score(a, c));
  EXPECT_GE(m.Score(a, b), 2.0 / 3.0);  // dice of {title} vs {book,title}
}

// ---------------------------------------------------------- QGramMatcher

TEST(QGramMatcherTest, SimilarTextScoresHigherThanDissimilar) {
  QGramMatcher m;
  Rng rng(3);
  std::vector<std::string> titles_a, titles_b, codes;
  for (int i = 0; i < 40; ++i) {
    titles_a.push_back(MakeBookTitle(rng));
    titles_b.push_back(MakeBookTitle(rng));
    codes.push_back(MakeUpc(rng));
  }
  auto sa = StringSample("s", "a", titles_a);
  auto sb = StringSample("t", "b", titles_b);
  auto sc = StringSample("t", "c", codes);
  EXPECT_GT(m.Score(sa, sb), 0.8);
  EXPECT_GT(m.Score(sa, sb), m.Score(sa, sc));
}

TEST(QGramMatcherTest, InapplicableOnEmptyBags) {
  QGramMatcher m;
  auto sa = StringSample("s", "a", {"x"});
  AttributeSample empty(AttributeRef{"t", "b"}, ValueType::kString, {});
  EXPECT_FALSE(m.Applicable(sa, empty));
  EXPECT_TRUE(m.Applicable(sa, sa));
}

TEST(QGramMatcherTest, ScoreSymmetricAndBounded) {
  QGramMatcher m;
  auto sa = StringSample("s", "a", {"hello world", "foo"});
  auto sb = StringSample("t", "b", {"hello there", "bar"});
  double ab = m.Score(sa, sb);
  EXPECT_DOUBLE_EQ(ab, m.Score(sb, sa));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

// ---------------------------------------------------------- TfIdfMatcher

TEST(TfIdfMatcherTest, PrepareDiscountsUbiquitousTokens) {
  TfIdfTokenMatcher m;
  auto shared1 = StringSample("t", "x", {"the alpha", "the beta"});
  auto shared2 = StringSample("t", "y", {"the gamma", "the delta"});
  auto probe = StringSample("s", "p", {"the alpha"});
  m.Prepare({&shared1, &shared2});
  // "the" appears in every target doc, so overlap via "alpha" dominates.
  EXPECT_GT(m.Score(probe, shared1), m.Score(probe, shared2));
}

TEST(TfIdfMatcherTest, InapplicableWithoutWords) {
  TfIdfTokenMatcher m;
  AttributeSample empty(AttributeRef{"t", "b"}, ValueType::kString, {});
  auto sa = StringSample("s", "a", {"x"});
  EXPECT_FALSE(m.Applicable(sa, empty));
}

// -------------------------------------------------------- NumericMatcher

TEST(NumericMatcherTest, ApplicabilityRequiresNumericBothSides) {
  NumericMatcher m;
  auto nums = NumericSample("s", "a", {1, 2, 3});
  auto text = StringSample("t", "b", {"x", "y"});
  EXPECT_TRUE(m.Applicable(nums, nums));
  EXPECT_FALSE(m.Applicable(nums, text));
  EXPECT_FALSE(m.Applicable(text, nums));
}

TEST(NumericMatcherTest, IdenticalDistributionsScoreNearOne) {
  NumericMatcher m;
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.NextGaussian(50, 5));
    b.push_back(rng.NextGaussian(50, 5));
  }
  EXPECT_GT(m.Score(NumericSample("s", "a", a), NumericSample("t", "b", b)),
            0.9);
}

TEST(NumericMatcherTest, SeparatedMeansScoreLow) {
  NumericMatcher m;
  Rng rng(6);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.NextGaussian(10, 2));
    b.push_back(rng.NextGaussian(100, 2));
  }
  EXPECT_LT(m.Score(NumericSample("s", "a", a), NumericSample("t", "b", b)),
            0.1);
}

TEST(NumericMatcherTest, WideMixtureScoresBelowMatchedSpread) {
  NumericMatcher m;
  Rng rng(7);
  std::vector<double> narrow, narrow2, mixture;
  for (int i = 0; i < 300; ++i) {
    narrow.push_back(rng.NextGaussian(60, 5));
    narrow2.push_back(rng.NextGaussian(60, 5));
    // Mixture over 5 means, same overall center.
    mixture.push_back(rng.NextGaussian(40 + 10 * (i % 5), 5));
  }
  auto target = NumericSample("t", "g3", narrow);
  double matched =
      m.Score(NumericSample("s", "n", narrow2), target);
  double mixed = m.Score(NumericSample("s", "m", mixture), target);
  EXPECT_GT(matched, mixed);
}

TEST(NumericMatcherTest, ScoresMonotoneInMeanDistance) {
  NumericMatcher m;
  Rng rng(8);
  std::vector<double> base;
  for (int i = 0; i < 300; ++i) base.push_back(rng.NextGaussian(50, 5));
  auto target = NumericSample("t", "x", base);
  double prev = 2.0;
  for (double mean : {50.0, 60.0, 70.0, 80.0}) {
    std::vector<double> probe;
    for (int i = 0; i < 300; ++i) probe.push_back(rng.NextGaussian(mean, 5));
    double score = m.Score(NumericSample("s", "p", probe), target);
    EXPECT_LT(score, prev) << "mean=" << mean;
    prev = score;
  }
}

// --------------------------------------------------------------- Session

/// Small but realistic source/target fixture: a combined inventory vs a
/// books table and a music table.
struct SessionFixture {
  Database target;
  Table source;

  SessionFixture() {
    Rng rng(11);
    std::vector<Row> src_rows, book_rows, music_rows;
    for (int i = 0; i < 60; ++i) {
      bool is_book = (i % 2 == 0);
      src_rows.push_back(
          {S(is_book ? "B" : "C"),
           S(is_book ? MakeBookTitle(rng).c_str() : MakeAlbumTitle(rng).c_str()),
           R(is_book ? 20.0 + rng.NextDouble() * 20 : 10.0 + rng.NextDouble() * 5)});
      book_rows.push_back({S(MakeBookTitle(rng).c_str()),
                           R(20.0 + rng.NextDouble() * 20)});
      music_rows.push_back({S(MakeAlbumTitle(rng).c_str()),
                            R(10.0 + rng.NextDouble() * 5)});
    }
    source = MakeTable("inv", {"kind", "title", "price"}, src_rows);
    target = Database("tgt");
    target.AddTable(MakeTable("books", {"name", "cost"}, book_rows));
    target.AddTable(MakeTable("music", {"album", "price"}, music_rows));
  }
};

TEST(SessionTest, AcceptedMatchesAreSortedAndThresholded) {
  SessionFixture fx;
  TableMatchSession session(fx.source, fx.target, DefaultMatcherSuite());
  MatchList matches = session.AcceptedMatches(0.5);
  ASSERT_FALSE(matches.empty());
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].confidence, matches[i].confidence);
  }
  for (const Match& m : matches) {
    EXPECT_GE(m.confidence, 0.5);
    EXPECT_TRUE(m.is_standard());
  }
}

TEST(SessionTest, TitleMatchesBothNameColumns) {
  SessionFixture fx;
  TableMatchSession session(fx.source, fx.target, DefaultMatcherSuite());
  MatchScore to_books =
      session.PairScore("title", AttributeRef{"books", "name"});
  MatchScore to_music =
      session.PairScore("title", AttributeRef{"music", "album"});
  EXPECT_GT(to_books.confidence, 0.5);
  EXPECT_GT(to_music.confidence, 0.3);
  MatchScore to_cost =
      session.PairScore("title", AttributeRef{"books", "cost"});
  EXPECT_LT(to_cost.confidence, to_books.confidence);
}

TEST(SessionTest, RestrictedBagShiftsConfidence) {
  SessionFixture fx;
  TableMatchSession session(fx.source, fx.target, DefaultMatcherSuite());
  // Books-only restriction of `title`.
  std::vector<Value> books_only, music_only;
  for (size_t r = 0; r < fx.source.num_rows(); ++r) {
    if (fx.source.at(r, "kind") == S("B")) {
      books_only.push_back(fx.source.at(r, "title"));
    } else {
      music_only.push_back(fx.source.at(r, "title"));
    }
  }
  AttributeRef book_name{"books", "name"};
  double base = session.PairScore("title", book_name).confidence;
  double restricted_good =
      session.ScoreRestricted("title", books_only, book_name).confidence;
  double restricted_bad =
      session.ScoreRestricted("title", music_only, book_name).confidence;
  EXPECT_GT(restricted_good, base);
  EXPECT_LT(restricted_bad, base);
}

TEST(SessionTest, EmptyRestrictionScoresZero) {
  SessionFixture fx;
  TableMatchSession session(fx.source, fx.target, DefaultMatcherSuite());
  MatchScore ms =
      session.ScoreRestricted("title", {}, AttributeRef{"books", "name"});
  EXPECT_EQ(ms.matchers_used, 0u);
  EXPECT_DOUBLE_EQ(ms.confidence, 0.0);
}

TEST(SessionTest, BlendAblationChangesConfidences) {
  SessionFixture fx;
  MatchOptions blended;
  MatchOptions pure;
  pure.blend_raw_score = false;
  TableMatchSession with(fx.source, fx.target, DefaultMatcherSuite(), blended);
  TableMatchSession without(fx.source, fx.target, DefaultMatcherSuite(), pure);
  // Pure z-normalization saturates: the kind column (2 distinct letters)
  // still gets a confident best target, while the blend keeps it low.
  double best_with = 0, best_without = 0;
  for (const AttributeRef& ref : with.target_refs()) {
    best_with = std::max(best_with, with.PairScore("kind", ref).confidence);
    best_without =
        std::max(best_without, without.PairScore("kind", ref).confidence);
  }
  EXPECT_LT(best_with, best_without);
}

TEST(SessionTest, TargetRefsEnumerateAllTargetAttributes) {
  SessionFixture fx;
  TableMatchSession session(fx.source, fx.target, DefaultMatcherSuite());
  EXPECT_EQ(session.target_refs().size(), 4u);
  EXPECT_EQ(session.source_attributes(),
            (std::vector<std::string>{"kind", "title", "price"}));
}

TEST(SessionTest, StandardMatchHelperAgreesWithSession) {
  SessionFixture fx;
  MatchList helper = StandardMatch(fx.source, fx.target, 0.5);
  TableMatchSession session(fx.source, fx.target, DefaultMatcherSuite());
  MatchList direct = session.AcceptedMatches(0.5);
  ASSERT_EQ(helper.size(), direct.size());
  for (size_t i = 0; i < helper.size(); ++i) {
    EXPECT_TRUE(SameCorrespondence(helper[i], direct[i]));
    EXPECT_DOUBLE_EQ(helper[i].confidence, direct[i].confidence);
  }
}

// The max_training_rows cap must be *exactly* "run the session on the
// deterministically sampled tables": build the capped session, then build
// an uncapped session over tables pre-sampled with the same
// DeriveTableSampleSeed/ReservoirSampleRows draw, and require identical
// matches bit for bit.
TEST(SessionTest, TrainingCapEquivalentToPreSampledTables) {
  SessionFixture fx;
  MatchOptions capped;
  capped.max_training_rows = 20;  // < 60 rows, so every table gets sampled

  auto sampled = [&](const Table& table) {
    Rng rng(DeriveTableSampleSeed(capped.training_sample_seed, table.name()));
    return ReservoirSampleRows(table, capped.max_training_rows, rng);
  };
  Database sampled_target("tgt");
  for (const Table& table : fx.target.tables()) {
    sampled_target.AddTable(sampled(table));
  }

  MatchList capped_matches = StandardMatch(fx.source, fx.target, 0.0, capped);
  MatchList manual_matches =
      StandardMatch(sampled(fx.source), sampled_target, 0.0);
  ASSERT_EQ(capped_matches.size(), manual_matches.size());
  for (size_t i = 0; i < capped_matches.size(); ++i) {
    EXPECT_TRUE(SameCorrespondence(capped_matches[i], manual_matches[i]));
    EXPECT_EQ(capped_matches[i].confidence, manual_matches[i].confidence);
    EXPECT_EQ(capped_matches[i].score, manual_matches[i].score);
  }
}

// Tables at or under the cap must be completely unaffected by it.
TEST(SessionTest, TrainingCapNoOpWhenTablesFit) {
  SessionFixture fx;
  MatchOptions capped;
  capped.max_training_rows = 60;  // == fixture table size
  MatchList with_cap = StandardMatch(fx.source, fx.target, 0.0, capped);
  MatchList without = StandardMatch(fx.source, fx.target, 0.0);
  ASSERT_EQ(with_cap.size(), without.size());
  for (size_t i = 0; i < with_cap.size(); ++i) {
    EXPECT_TRUE(SameCorrespondence(with_cap[i], without[i]));
    EXPECT_EQ(with_cap[i].confidence, without[i].confidence);
  }
}

TEST(MatchTypesTest, ToStringAndCorrespondence) {
  Match m;
  m.source = {"inv", "Title"};
  m.target = {"Book", "BookTitle"};
  m.score = 0.5;
  m.confidence = 0.75;
  EXPECT_NE(m.ToString().find("inv.Title -> Book.BookTitle"),
            std::string::npos);
  EXPECT_TRUE(m.is_standard());
  Match c = m;
  c.condition = Condition::Equals("ItemType", S("Book1"));
  EXPECT_FALSE(c.is_standard());
  EXPECT_NE(c.ToString().find("[ItemType = 'Book1']"), std::string::npos);
  EXPECT_FALSE(SameCorrespondence(m, c));
  c.condition = Condition::True();
  EXPECT_TRUE(SameCorrespondence(m, c));
}

}  // namespace
}  // namespace csm

namespace csm {
namespace {

// Appended: ValueOverlapMatcher coverage.
TEST(ValueOverlapMatcherTest, FractionOfSharedDistinctValues) {
  ValueOverlapMatcher m;
  auto a = StringSample("s", "a", {"x", "y", "z", "x"});
  auto b = StringSample("t", "b", {"y", "z", "q"});
  // Distinct source {x,y,z}; {y,z} appear in target -> 2/3.
  EXPECT_NEAR(m.Score(a, b), 2.0 / 3.0, 1e-12);
  // Asymmetric by design: target {y,z,q}, {y,z} in source -> 2/3 too here.
  EXPECT_NEAR(m.Score(b, a), 2.0 / 3.0, 1e-12);
}

TEST(ValueOverlapMatcherTest, DisjointAndIdenticalExtremes) {
  ValueOverlapMatcher m;
  auto a = StringSample("s", "a", {"1", "2"});
  auto b = StringSample("t", "b", {"3", "4"});
  EXPECT_DOUBLE_EQ(m.Score(a, b), 0.0);
  EXPECT_DOUBLE_EQ(m.Score(a, a), 1.0);
}

TEST(ValueOverlapMatcherTest, ApplicabilityNeedsValues) {
  ValueOverlapMatcher m;
  AttributeSample empty(AttributeRef{"t", "e"}, ValueType::kString, {});
  auto a = StringSample("s", "a", {"x"});
  EXPECT_FALSE(m.Applicable(a, empty));
  EXPECT_TRUE(m.Applicable(a, a));
}

TEST(ValueOverlapMatcherTest, CrossTypeValuesCompareByRendering) {
  ValueOverlapMatcher m;
  AttributeSample ints(AttributeRef{"s", "i"}, ValueType::kInt,
                       {Value::Int(1), Value::Int(2)});
  auto strings = StringSample("t", "s", {"1", "9"});
  EXPECT_NEAR(m.Score(ints, strings), 0.5, 1e-12);
}

}  // namespace
}  // namespace csm
