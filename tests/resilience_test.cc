// The self-healing layer end to end: retry/backoff/budget primitives, the
// circuit breaker state machine, watchdog stall + deadline enforcement,
// CoDel-style shedding, brownout, quota edge cases, MatchClient behavior,
// and the crash-safe cold tier (truncated-blob quarantine, kill-and-restart
// recovery).  Deterministic throughout: breakers run on manual clocks,
// backoff schedules on seeded Rngs, faults on scripted FaultInjector
// specs, and the dispatcher is held still with test_dispatch_gate wherever
// exact queue depths matter.  The CI `chaos` job runs this binary under
// TSan with the service_test alongside.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/fingerprint.h"
#include "common/fault_injector.h"
#include "common/random.h"
#include "common/retry.h"
#include "core/match_engine.h"
#include "datagen/retail_gen.h"
#include "service/disk_store.h"
#include "service/match_client.h"
#include "service/match_service.h"

namespace csm {
namespace {

RetailDataset SmallRetail(uint64_t seed) {
  RetailOptions options;
  options.num_items = 60;
  options.gamma = 2;
  options.seed = seed;
  return MakeRetailDataset(options);
}

ContextMatchOptions FastEngine() {
  ContextMatchOptions options;
  options.threads = 1;
  return options;
}

MatchRequest RequestOver(const RetailDataset& data, int64_t deadline_ms,
                         const std::string& tenant = "") {
  MatchRequest request;
  request.tenant = tenant;
  request.deadline_ms = deadline_ms;
  request.source = BorrowDatabase(data.source);
  request.target = BorrowDatabase(data.target);
  return request;
}

/// A dispatcher gate that can open and close repeatedly (service_test's
/// one-shot gate, plus Close for the half-open-probe test).
class ToggleGate {
 public:
  explicit ToggleGate(bool open = false) : open_(open) {}

  std::function<void()> AsHook() {
    return [this] {
      entered_.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return open_; });
    };
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }

  void AwaitEntered(int n) {
    while (entered_.load() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  int entered() const { return entered_.load(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_;
  std::atomic<int> entered_{0};
};

std::string FreshSpoolDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("csm_resilience_test_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Every test disarms on exit so scripted faults never leak across tests.
class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Retry primitives
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsJitteredBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.max_backoff_ms = 200.0;

  Rng rng_a(42), rng_b(42);
  double prev_a = 0.0, prev_b = 0.0;
  for (int i = 0; i < 32; ++i) {
    const double hi = std::max(policy.initial_backoff_ms, 3.0 * prev_a);
    const double next_a = policy.NextBackoffMs(prev_a, rng_a);
    const double next_b = policy.NextBackoffMs(prev_b, rng_b);
    // Same seed, same schedule — bit-identical.
    EXPECT_EQ(next_a, next_b);
    EXPECT_GE(next_a, policy.initial_backoff_ms);
    EXPECT_LE(next_a, std::min(hi * 3.0, policy.max_backoff_ms) + 1e-9);
    EXPECT_LE(next_a, policy.max_backoff_ms);
    prev_a = next_a;
    prev_b = next_b;
  }
}

TEST(RetryBudgetTest, SpendsToZeroAndRefillsOnSuccess) {
  RetryBudget budget(2.0, 0.5);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend()) << "capacity 2 allows exactly 2 retries";
  budget.RecordSuccess();
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TrySpend()) << "two successes refill one token";
  EXPECT_FALSE(budget.TrySpend());

  RetryBudget unlimited(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.TrySpend());
}

TEST(CircuitBreakerTest, OpensHalfOpensAndClosesOnManualClock) {
  int64_t now = 0;
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_ms = 100;
  options.now_ms = [&now] { return now; };
  CircuitBreaker breaker(options);

  // Closed: trip-class failures accumulate, a success resets the streak.
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure(StatusCode::kUnavailable);
  breaker.RecordFailure(StatusCode::kUnavailable);
  breaker.RecordSuccess();
  breaker.RecordFailure(StatusCode::kUnavailable);
  breaker.RecordFailure(StatusCode::kDeadlineExceeded);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(StatusCode::kInternal);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  // Open: refused without touching the backend until open_ms elapses.
  EXPECT_FALSE(breaker.Allow());
  now = 99;
  EXPECT_FALSE(breaker.Allow());

  // Half-open admits exactly one probe; concurrent calls keep refusing.
  now = 100;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());

  // Probe failure re-opens for another full window.
  breaker.RecordFailure(StatusCode::kUnavailable);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.Allow());

  // Next window's probe succeeds and closes the circuit.
  now = 250;
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, ReleaseProbeFreesTheHalfOpenSlot) {
  int64_t now = 0;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 10;
  options.now_ms = [&now] { return now; };
  CircuitBreaker breaker(options);
  breaker.RecordFailure(StatusCode::kUnavailable);
  now = 10;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  // The probe was answered without reaching the backend (e.g. shed): the
  // slot frees and the next request becomes the probe.
  breaker.ReleaseProbe();
  EXPECT_TRUE(breaker.Allow());
  // Non-trip outcomes release the slot too, and judge nothing.
  breaker.RecordFailure(StatusCode::kResourceExhausted);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, DisabledBreakerAlwaysAllows) {
  CircuitBreaker breaker(DisabledBreakerOptions());
  for (int i = 0; i < 10; ++i) {
    breaker.RecordFailure(StatusCode::kUnavailable);
    EXPECT_TRUE(breaker.Allow());
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Service self-healing: breaker, watchdog, shedding, brownout, health
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, BreakerOpensOnDispatchFaultsAndHalfOpenAdmitsOne) {
  RetailDataset data = SmallRetail(3);
  int64_t now = 0;
  std::mutex now_mu;  // the breaker clock is read from service threads
  ToggleGate gate(/*open=*/true);
  ServiceOptions options;
  options.engine = FastEngine();
  options.breaker.failure_threshold = 2;
  options.breaker.open_ms = 1000;
  options.breaker.now_ms = [&] {
    std::lock_guard<std::mutex> lock(now_mu);
    return now;
  };
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  // Two injected dispatch faults in a row trip the breaker.
  FaultInjector::ArmSpec spec;
  spec.site = "service.dispatch";
  spec.action = FaultInjector::Action::kFail;
  spec.fire_limit = 2;
  FaultInjector::Arm(spec);

  EXPECT_EQ(service.Call(RequestOver(data, 60001)).status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service.Call(RequestOver(data, 60002)).status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service.metrics().Counter("service.dispatch_faults"), 2u);

  // Open: rejected at Submit, before queueing.
  MatchResponse rejected = service.Call(RequestOver(data, 60003));
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.metrics().Counter("service.rejected_breaker_open"), 1u);
  EXPECT_EQ(service.metrics().Counter("service.admitted"), 2u);
  EXPECT_FALSE(service.Health().accepting);

  // Cool-off elapses: exactly one probe goes through; a second submission
  // while the probe is in flight is still refused.
  {
    std::lock_guard<std::mutex> lock(now_mu);
    now = 1000;
  }
  gate.Close();
  SubmitHandle probe = service.Submit(RequestOver(data, 60004));
  gate.AwaitEntered(3);  // parked pre-run: probe admitted, not yet judged
  MatchResponse refused = service.Submit(RequestOver(data, 60005)).future.get();
  EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.metrics().Counter("service.rejected_breaker_open"), 2u);

  // The probe succeeds (faults exhausted) and closes the circuit.
  gate.Open();
  EXPECT_TRUE(probe.future.get().ok());
  EXPECT_TRUE(service.Call(RequestOver(data, 60006)).ok());
  EXPECT_TRUE(service.Health().accepting);
  service.Stop();
}

TEST_F(ResilienceTest, WatchdogCancelsStalledDispatchWithinTwoIntervals) {
  RetailDataset data = SmallRetail(3);
  ToggleGate gate;  // closed: the dispatcher wedges in the gate
  ServiceOptions options;
  options.engine = FastEngine();
  options.watchdog_interval_ms = 20;
  options.tenant_quotas[""].requests_per_second = 1000.0;
  options.tenant_quotas[""].burst = 8;
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  const auto submitted = std::chrono::steady_clock::now();
  SubmitHandle stuck = service.Submit(RequestOver(data, 60001));
  gate.AwaitEntered(1);

  // The waiter is answered by the watchdog even though the dispatcher
  // never comes back — no hung request.
  MatchResponse response = stuck.future.get();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - submitted)
                                .count();
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(response.completeness, MatchCompleteness::kBaselineOnly);
  EXPECT_GE(service.metrics().Counter("service.watchdog_stall_cancels"), 1u);
  // Detection bound: stall_ms (= interval) + one interval of tick skew,
  // plus slop for a loaded CI machine.
  EXPECT_LT(elapsed_ms, 20.0 * 2 + 250.0);
  // The stalled request never bought work: its rate token came back.
  EXPECT_EQ(service.metrics().Counter("service.rate_tokens_refunded"), 1u);

  gate.Open();  // release the dispatcher so Stop can join
  service.Stop();
}

TEST_F(ResilienceTest, WatchdogForcesDeadlineOnWedgedRun) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  options.watchdog_interval_ms = 5;
  options.watchdog_stall_ms = 10000;  // stall-steal path is not under test
  options.watchdog_grace = 1.5;
  MatchService service(options);

  // Wedge the run at its very first unit of work, so it is provably
  // mid-run (not merely slow) when grace * deadline elapses.  The
  // watchdog must force the token so every later poll site drains.
  FaultInjector::ArmSpec spec;
  spec.site = "standard.session";
  spec.action = FaultInjector::Action::kSleep;
  spec.sleep_ms = 400;
  spec.fire_limit = 1;
  FaultInjector::Arm(spec);

  MatchResponse response = service.Call(RequestOver(data, /*deadline_ms=*/20));
  EXPECT_GE(service.metrics().Counter("service.watchdog_deadline_cancels"),
            1u);
  // The run degraded instead of hanging: definitive status, partial answer.
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(response.completeness, MatchCompleteness::kComplete);
  service.Stop();
}

TEST_F(ResilienceTest, CoDelShedsAgedRequestsUnderCongestionAndRefunds) {
  RetailDataset data = SmallRetail(3);
  ToggleGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.queue_target_ms = 1;
  options.shed_min_depth = 2;
  options.tenant_quotas[""].requests_per_second = 1000.0;
  options.tenant_quotas[""].burst = 8;
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  // One parked at the gate, four queued behind it, all aging past the
  // 1 ms target while the gate is closed.
  SubmitHandle running = service.Submit(RequestOver(data, 60001));
  gate.AwaitEntered(1);
  std::vector<SubmitHandle> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(service.Submit(RequestOver(data, 60002 + i)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.Open();

  // The parked request popped with an empty queue behind it (depth 0 at
  // pop): aged but not congested, so it runs.  Pops with >= 2 still queued
  // behind them are shed; the final two run.
  EXPECT_TRUE(running.future.get().ok());
  int shed = 0, ran = 0;
  for (auto& handle : queued) {
    MatchResponse response = handle.future.get();
    if (response.status.code() == StatusCode::kResourceExhausted) {
      EXPECT_EQ(response.completeness, MatchCompleteness::kBaselineOnly);
      ++shed;
    } else {
      EXPECT_TRUE(response.ok());
      ++ran;
    }
  }
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(service.metrics().Counter("service.shed_aged"), 2u);
  // Shed before dispatch = tokens refunded, full quota accounting.
  EXPECT_EQ(service.metrics().Counter("service.rate_tokens_refunded"), 2u);
  service.Stop();
}

TEST_F(ResilienceTest, BrownoutForcesBaselineOnlyUnderSustainedCongestion) {
  RetailDataset data = SmallRetail(3);
  ToggleGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.max_queue = 8;
  options.brownout_enter_fraction = 0.5;  // enter at post-pop depth >= 4
  options.brownout_exit_fraction = 0.0;   // exit only when drained
  options.brownout_consecutive = 2;
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  SubmitHandle parked = service.Submit(RequestOver(data, 60001));
  gate.AwaitEntered(1);
  std::vector<SubmitHandle> queued;
  for (int i = 0; i < 6; ++i) {
    queued.push_back(service.Submit(RequestOver(data, 60002 + i)));
  }
  gate.Open();

  // Post-pop depths run 5,4,3,2,1,0: two consecutive >= 4 enter brownout;
  // depth 0 exits it.  Brownout answers are OK but baseline-only.
  EXPECT_TRUE(parked.future.get().ok());
  int baseline_only = 0;
  for (auto& handle : queued) {
    MatchResponse response = handle.future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    if (response.completeness == MatchCompleteness::kBaselineOnly) {
      ++baseline_only;
    }
  }
  EXPECT_GE(baseline_only, 1);
  EXPECT_GE(service.metrics().Counter("service.brownout_entered"), 1u);
  EXPECT_GE(service.metrics().Counter("service.brownout_exited"), 1u);
  EXPECT_EQ(service.metrics().Counter("service.brownout_runs"),
            static_cast<uint64_t>(baseline_only));
  EXPECT_GE(service.metrics().Counter("engine.baseline_only_runs"),
            static_cast<uint64_t>(baseline_only));
  // Back out of brownout: a fresh request gets the full pipeline again.
  MatchResponse after = service.Call(RequestOver(data, 60050));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.completeness, MatchCompleteness::kComplete);
  EXPECT_TRUE(service.Health().ready);
  service.Stop();
}

TEST_F(ResilienceTest, BaselineOnlyRequestMatchesStandardBaseline) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  MatchService service(options);
  MatchRequest request = RequestOver(data, 0);
  request.baseline_only = true;
  MatchResponse response = service.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.completeness, MatchCompleteness::kBaselineOnly);
  // A baseline-only run and a full run are distinct dedup keys: the full
  // answer must not be served from the brownout twin.
  MatchResponse full = service.Call(RequestOver(data, 0));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.completeness, MatchCompleteness::kComplete);
  service.Stop();
}

TEST_F(ResilienceTest, HealthSnapshotReportsQueueBreakerAndColdTier) {
  const std::string dir = FreshSpoolDir("health");
  RetailDataset data = SmallRetail(3);
  DiskSessionStore store(dir);
  ServiceOptions options;
  options.engine = FastEngine();
  options.cold_store = &store;
  MatchService service(options);

  HealthSnapshot health = service.Health();
  EXPECT_TRUE(health.accepting);
  EXPECT_TRUE(health.ready);
  EXPECT_EQ(health.max_queue, options.max_queue);
  EXPECT_FALSE(health.brownout);
  EXPECT_EQ(health.breaker_state, CircuitBreaker::State::kClosed);
  EXPECT_TRUE(health.cold_tier_attached);
  EXPECT_EQ(health.cold_tier_quarantined, 0u);

  // Both renderings carry the readiness verdict and the queue numbers.
  EXPECT_NE(health.ToString().find("ready"), std::string::npos);
  EXPECT_NE(health.ToJson().find("\"ready\": true"), std::string::npos);
  EXPECT_NE(health.ToJson().find("\"breaker_state\": \"closed\""),
            std::string::npos);

  service.Stop();
  EXPECT_FALSE(service.Health().accepting);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Quota edges
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, ZeroCapacityBucketRejectsEveryRequestCleanly) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  // Burst below one token: the bucket can never hold a full admission.
  options.tenant_quotas["starved"].requests_per_second = 1e-9;
  options.tenant_quotas["starved"].burst = 0.5;
  MatchService service(options);
  for (int i = 0; i < 3; ++i) {
    MatchResponse response =
        service.Call(RequestOver(data, 60001 + i, "starved"));
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(service.metrics().Counter("service.rejected_rate_limit"), 3u);
  EXPECT_EQ(service.metrics().Counter("service.admitted"), 0u);
  service.Stop();
}

TEST_F(ResilienceTest, InFlightCapOfOneStillAdmitsDedupedWaiters) {
  RetailDataset data = SmallRetail(3);
  ToggleGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.tenant_quotas["capped"].max_in_flight = 1;
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  MatchRequest request = RequestOver(data, 60001, "capped");
  SubmitHandle primary = service.Submit(request);
  gate.AwaitEntered(1);
  // Identical twins attach to the in-flight run: dedup is checked before
  // the cap, so waiting on existing work is never rejected.
  SubmitHandle twin1 = service.Submit(request);
  SubmitHandle twin2 = service.Submit(request);
  EXPECT_TRUE(twin1.deduplicated);
  EXPECT_TRUE(twin2.deduplicated);
  // A *different* request from the same tenant hits the cap.
  SubmitHandle other = service.Submit(RequestOver(data, 60002, "capped"));
  EXPECT_EQ(other.future.get().status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().Counter("service.rejected_in_flight"), 1u);

  gate.Open();
  ASSERT_TRUE(primary.future.get().ok());
  EXPECT_EQ(check::FingerprintResult(primary.future.get().result),
            check::FingerprintResult(twin1.future.get().result));
  EXPECT_EQ(check::FingerprintResult(primary.future.get().result),
            check::FingerprintResult(twin2.future.get().result));
  // The cap released: the tenant can run again.
  EXPECT_TRUE(service.Call(RequestOver(data, 60003, "capped")).ok());
  service.Stop();
}

// ---------------------------------------------------------------------------
// MatchClient: retries, budget, client breaker, hedging
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, ClientRetriesThroughTransientFaultsDeterministically) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  MatchService service(options);

  // The first two dispatches fail; the third succeeds.
  FaultInjector::ArmSpec spec;
  spec.site = "service.dispatch";
  spec.action = FaultInjector::Action::kFail;
  spec.fire_limit = 2;
  FaultInjector::Arm(spec);

  std::vector<double> backoffs;
  MatchClientOptions client_options;
  client_options.retry.max_attempts = 4;
  client_options.retry.initial_backoff_ms = 5.0;
  client_options.retry.max_backoff_ms = 50.0;
  client_options.seed = 7;
  client_options.sleep_fn = [&backoffs](double ms) { backoffs.push_back(ms); };
  MatchClient client(service, client_options);

  MatchResponse response = client.Call(RequestOver(data, 0));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(client.retries(), 2u);
  ASSERT_EQ(backoffs.size(), 2u);
  for (double ms : backoffs) {
    EXPECT_GE(ms, 5.0);
    EXPECT_LE(ms, 50.0);
  }
  // Same seed, same schedule: the backoff sequence is replayable.
  Rng replay(7);
  RetryPolicy policy = client_options.retry;
  double prev = 0.0;
  for (double ms : backoffs) {
    prev = policy.NextBackoffMs(prev, replay);
    EXPECT_EQ(ms, prev);
  }
  service.Stop();
}

TEST_F(ResilienceTest, ClientBudgetBoundsRetriesUnderSustainedOutage) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  MatchService service(options);

  // Every dispatch fails: a sustained outage.
  FaultInjector::ArmSpec spec;
  spec.site = "service.dispatch";
  spec.action = FaultInjector::Action::kFail;
  spec.fire_limit = 0;
  spec.period = 1;
  FaultInjector::Arm(spec);

  MatchClientOptions client_options;
  client_options.retry.max_attempts = 5;
  client_options.retry_budget_capacity = 1.0;
  client_options.sleep_fn = [](double) {};
  MatchClient client(service, client_options);

  MatchResponse response = client.Call(RequestOver(data, 0));
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  // Capacity 1 allowed exactly one retry; the storm was cut off there.
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.budget_exhausted(), 1u);
  service.Stop();
}

TEST_F(ResilienceTest, ClientBreakerStopsSubmittingAfterConsecutiveFailures) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  MatchService service(options);

  FaultInjector::ArmSpec spec;
  spec.site = "service.dispatch";
  spec.action = FaultInjector::Action::kFail;
  spec.fire_limit = 0;
  spec.period = 1;
  FaultInjector::Arm(spec);

  MatchClientOptions client_options;
  client_options.retry.max_attempts = 2;
  client_options.retry_budget_capacity = 0.0;  // unlimited; breaker decides
  client_options.breaker.failure_threshold = 2;
  client_options.breaker.open_ms = 60000;
  client_options.sleep_fn = [](double) {};
  MatchClient client(service, client_options);

  EXPECT_EQ(client.Call(RequestOver(data, 60001)).status.code(),
            StatusCode::kUnavailable);
  const uint64_t admitted = service.metrics().Counter("service.admitted");
  // The client breaker tripped on the first Call's two failures: the next
  // Call is refused locally, without a submission.
  EXPECT_EQ(client.Call(RequestOver(data, 60002)).status.code(),
            StatusCode::kUnavailable);
  EXPECT_GE(client.breaker_rejections(), 1u);
  EXPECT_EQ(service.metrics().Counter("service.admitted"), admitted);
  service.Stop();
}

TEST_F(ResilienceTest, HedgedRequestAttachesToInFlightTwin) {
  RetailDataset data = SmallRetail(3);
  ToggleGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  MatchClientOptions client_options;
  client_options.hedge_delay_ms = 5;
  MatchClient client(service, client_options);

  MatchResponse response;
  std::thread caller(
      [&] { response = client.Call(RequestOver(data, 60001)); });
  gate.AwaitEntered(1);
  // Give the hedge timer time to fire while the original is parked.
  while (client.hedges() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.Open();
  caller.join();

  ASSERT_TRUE(response.ok());
  EXPECT_EQ(client.hedges(), 1u);
  // The hedge deduplicated against the original: one admission charged a
  // run, the other attached.
  EXPECT_EQ(service.metrics().Counter("service.deduplicated"), 1u);
  EXPECT_EQ(service.metrics().Counter("service.completed"), 1u);
  service.Stop();
}

// ---------------------------------------------------------------------------
// Chaos smoke: sustained fault rate, zero hung requests, definitive codes
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, TenPercentDispatchFaultsNeverHangAndStayDefinitive) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  options.watchdog_interval_ms = 50;
  MatchService service(options);

  // Deterministic 1-in-10 dispatch fault schedule, unlimited fires.
  FaultInjector::ArmSpec spec;
  spec.site = "service.dispatch";
  spec.action = FaultInjector::Action::kFail;
  spec.fire_limit = 0;
  spec.period = 10;
  FaultInjector::Arm(spec);

  MatchClientOptions client_options;
  client_options.retry.max_attempts = 3;
  client_options.retry.initial_backoff_ms = 1.0;
  client_options.retry.max_backoff_ms = 5.0;
  MatchClient client(service, client_options);

  const int kCalls = 30;
  int ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    MatchResponse response = client.Call(RequestOver(data, 0));
    // Every answer must be definitive: success or a classified failure.
    if (response.ok()) {
      ++ok;
    } else {
      EXPECT_NE(response.status.code(), StatusCode::kOk);
      EXPECT_FALSE(response.status.message().empty());
    }
  }
  // Goodput: with retries over a 10% fault rate, effectively every call
  // lands (acceptance asks >= 90% of fault-free, i.e. >= 27 of 30).
  EXPECT_GE(ok, 27);
  EXPECT_GE(service.metrics().Counter("service.dispatch_faults"), 3u);
  service.Stop();
}

// ---------------------------------------------------------------------------
// Crash-safe cold tier
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, TruncatedBlobIsQuarantinedNotReturned) {
  const std::string dir = FreshSpoolDir("truncated");
  DiskSessionStore store(dir);
  const uint64_t key = 0xabcdef12u;
  const std::string payload = "csm-sessions 1\ntables 1\nt scores 1 1\n0.5\n";
  ASSERT_TRUE(store.Store(key, payload));

  // Simulate a torn write published without the frame's protection: chop
  // the file mid-payload.
  const std::string path = store.PathForKey(key);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 10);

  std::string blob;
  EXPECT_FALSE(store.Load(key, &blob));
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));

  // The key is writable again and round-trips bit-identically.
  ASSERT_TRUE(store.Store(key, payload));
  ASSERT_TRUE(store.Load(key, &blob));
  EXPECT_EQ(blob, payload);
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, RestartScanQuarantinesAllCorruptBlobsRestoresRest) {
  const std::string dir = FreshSpoolDir("restart_scan");
  std::vector<std::string> payloads;
  {
    DiskSessionStore writer(dir);
    for (uint64_t key = 1; key <= 5; ++key) {
      payloads.push_back("payload-" + std::to_string(key) +
                         std::string(100, 'x'));
      ASSERT_TRUE(writer.Store(key, payloads.back()));
    }
    // Crash simulation: one blob truncated mid-payload, one overwritten
    // with garbage, one leftover temp file from a dying writer.
    std::filesystem::resize_file(
        writer.PathForKey(2),
        std::filesystem::file_size(writer.PathForKey(2)) - 5);
    std::ofstream(writer.PathForKey(4), std::ios::trunc) << "garbage";
    std::ofstream(std::filesystem::path(dir) / "dead.csmss.tmp.123")
        << "partial";
  }

  // "Restart": a fresh store over the same spool scans on construction.
  DiskSessionStore restarted(dir);
  EXPECT_EQ(restarted.quarantined(), 2u) << "100% of corrupt blobs set aside";
  EXPECT_EQ(restarted.recovered_valid(), 3u);
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) /
                                       "dead.csmss.tmp.123"));

  // Non-quarantined blobs come back bit-identical; quarantined keys read
  // as absent (the engine rebuilds them).
  for (uint64_t key = 1; key <= 5; ++key) {
    std::string blob;
    const bool loaded = restarted.Load(key, &blob);
    if (key == 2 || key == 4) {
      EXPECT_FALSE(loaded);
    } else {
      ASSERT_TRUE(loaded);
      EXPECT_EQ(blob, payloads[key - 1]);
    }
  }
  // No double-quarantine on reload.
  EXPECT_EQ(restarted.quarantined(), 2u);
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, ColdTierSurvivesServiceKillAndRestart) {
  const std::string dir = FreshSpoolDir("kill_restart");
  RetailDataset data = SmallRetail(5);
  std::string first;
  {
    DiskSessionStore store(dir);
    ServiceOptions options;
    options.engine = FastEngine();
    options.cold_store = &store;
    MatchService service(options);
    MatchResponse response = service.Call(RequestOver(data, 0));
    ASSERT_TRUE(response.ok());
    first = check::FingerprintResult(response.result);
    service.Stop();
  }
  // Corrupt the spool the way a crash would, then restart the whole stack.
  size_t corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".csmss") continue;
    std::filesystem::resize_file(entry.path(),
                                 std::filesystem::file_size(entry.path()) / 2);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);
  {
    DiskSessionStore store(dir);
    EXPECT_EQ(store.quarantined(), corrupted);
    ServiceOptions options;
    options.engine = FastEngine();
    options.cold_store = &store;
    MatchService service(options);
    // The quarantine shows up in health; the answer is still bit-identical
    // (rebuilt from scratch, same deterministic pipeline).
    EXPECT_EQ(service.Health().cold_tier_quarantined, corrupted);
    MatchResponse response = service.Call(RequestOver(data, 0));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(first, check::FingerprintResult(response.result));
    EXPECT_EQ(service.metrics().Counter("engine.session_cold_hits"), 0u);
    service.Stop();
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, StoreWriteFaultIsNonFatal) {
  const std::string dir = FreshSpoolDir("write_fault");
  RetailDataset data = SmallRetail(5);
  DiskSessionStore store(dir);

  FaultInjector::ArmSpec spec;
  spec.site = "store.write";
  spec.action = FaultInjector::Action::kFail;
  spec.fire_limit = 0;
  spec.period = 1;
  FaultInjector::Arm(spec);

  ServiceOptions options;
  options.engine = FastEngine();
  options.cold_store = &store;
  MatchService service(options);
  // The write fails, the answer does not.
  MatchResponse response = service.Call(RequestOver(data, 0));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(store.stores(), 0u);
  EXPECT_GE(FaultInjector::FireCount("store.write"), 1u);
  service.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace csm
