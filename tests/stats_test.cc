// Tests for src/stats: distributions, descriptive accumulators, and the
// ClusteredViewGen significance test.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/significance.h"

namespace csm {
namespace {

// --------------------------------------------------------- Distributions

TEST(DistributionsTest, NormalPdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989423, 1e-6);
  EXPECT_NEAR(NormalPdf(1.0), 0.2419707, 1e-6);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-12);
}

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.0), 0.1586553, 1e-6);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(NormalCdf(6.0), 1.0, 1e-8);
}

TEST(DistributionsTest, NormalCdfMonotone) {
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    double cdf = NormalCdf(x);
    EXPECT_GE(cdf, prev);
    prev = cdf;
  }
}

TEST(DistributionsTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-7) << "p=" << p;
  }
}

TEST(DistributionsTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.95), 1.644854, 1e-5);
}

TEST(DistributionsTest, BinomialMoments) {
  EXPECT_DOUBLE_EQ(BinomialMean(100, 0.3), 30.0);
  EXPECT_NEAR(BinomialStdDev(100, 0.3), std::sqrt(21.0), 1e-12);
  EXPECT_DOUBLE_EQ(BinomialStdDev(100, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialStdDev(100, 1.0), 0.0);
}

TEST(DistributionsTest, ZScoreClampsAndHandlesZeroStdDev) {
  EXPECT_DOUBLE_EQ(ZScore(5.0, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ZScore(6.0, 5.0, 0.0), kMaxZ);
  EXPECT_DOUBLE_EQ(ZScore(4.0, 5.0, 0.0), -kMaxZ);
  EXPECT_DOUBLE_EQ(ZScore(1000.0, 0.0, 1.0), kMaxZ);
  EXPECT_NEAR(ZScore(7.0, 5.0, 2.0), 1.0, 1e-12);
}

// ----------------------------------------------------------- Descriptive

TEST(DescriptiveTest, EmptyAccumulator) {
  DescriptiveStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.SampleVariance(), 0.0);
}

TEST(DescriptiveTest, KnownMoments) {
  DescriptiveStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
  EXPECT_DOUBLE_EQ(s.PopulationStdDev(), 2.0);
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(DescriptiveTest, SingleValue) {
  DescriptiveStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 0.0);
  EXPECT_DOUBLE_EQ(s.SampleVariance(), 0.0);
}

TEST(DescriptiveTest, MergeEqualsSequential) {
  DescriptiveStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    double x = rng.NextGaussian(2.0, 3.0);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.PopulationVariance(), all.PopulationVariance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(DescriptiveTest, MergeWithEmpty) {
  DescriptiveStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  DescriptiveStats b = a;
  b.Merge(empty);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.Mean(), 2.0);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(DescriptiveTest, NumericallyStableForLargeOffsets) {
  DescriptiveStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.PopulationVariance(), 0.25, 1e-6);
}

// ---------------------------------------------------------- Significance

TEST(SignificanceTest, PerfectClassifierOnBalancedLabelsIsSignificant) {
  // 100 test items, null p = 0.5 (most common label half the data):
  // observed 100 correct is overwhelmingly significant.
  SignificanceResult r = ClassifierSignificance(100, 100, 0.5);
  EXPECT_GT(r.significance, 0.999);
  EXPECT_DOUBLE_EQ(r.null_mean, 50.0);
  EXPECT_NEAR(r.null_stddev, 5.0, 1e-12);
}

TEST(SignificanceTest, ChanceLevelIsNotSignificant) {
  SignificanceResult r = ClassifierSignificance(50, 100, 0.5);
  EXPECT_NEAR(r.significance, 0.5, 1e-9);
  EXPECT_LT(r.significance, 0.95);
}

TEST(SignificanceTest, BelowChanceIsVeryInsignificant) {
  SignificanceResult r = ClassifierSignificance(30, 100, 0.5);
  EXPECT_LT(r.significance, 0.05);
}

TEST(SignificanceTest, SkewedNullRaisesBar) {
  // With a 90%-dominant label, 92/100 correct is barely above the null...
  SignificanceResult weak = ClassifierSignificance(92, 100, 0.9);
  // ...while the same count against a 50% null is overwhelming.
  SignificanceResult strong = ClassifierSignificance(92, 100, 0.5);
  EXPECT_LT(weak.significance, strong.significance);
  EXPECT_LT(weak.significance, 0.95);
  EXPECT_GT(strong.significance, 0.999);
}

TEST(SignificanceTest, EmptyTestSetIsNeutral) {
  SignificanceResult r = ClassifierSignificance(0, 0, 0.5);
  EXPECT_DOUBLE_EQ(r.significance, 0.0);
}

TEST(SignificanceTest, DegenerateNullHandled) {
  // p = 1 (single label): any correct count equals the null mean -> z = 0 or
  // below; never "significant".
  SignificanceResult r = ClassifierSignificance(100, 100, 1.0);
  EXPECT_LE(r.significance, 0.5 + 1e-9);
}

TEST(SignificanceTest, MonotoneInObservedCorrect) {
  double prev = -1.0;
  for (size_t correct = 0; correct <= 100; correct += 10) {
    SignificanceResult r = ClassifierSignificance(correct, 100, 0.4);
    EXPECT_GE(r.significance, prev);
    prev = r.significance;
  }
}

}  // namespace
}  // namespace csm
