// Status / StatusOr coverage, including the cancellation-era codes
// (kDeadlineExceeded, kCancelled) added with the degradation layer.

#include <gtest/gtest.h>

#include "common/status.h"

namespace csm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, EveryCodeHasACanonicalSpelling) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

// The exit-code contract csv_match_tool documents ("0 success, 1 tool
// failure, 2 bad input, 3 degraded-but-answered") derives from this single
// table; the service's admission rejections reuse it.  A regression here is
// a CLI-visible behavior change — update the tool docs if intentional.
TEST(StatusTest, ExitCodeTableCoversEveryCode) {
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kOk), 0);

  EXPECT_EQ(ExitCodeForStatus(StatusCode::kInvalidArgument), 2);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kNotFound), 2);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kAlreadyExists), 2);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kFailedPrecondition), 2);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kOutOfRange), 2);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kIoError), 2);

  EXPECT_EQ(ExitCodeForStatus(StatusCode::kDeadlineExceeded), 3);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kCancelled), 3);

  EXPECT_EQ(ExitCodeForStatus(StatusCode::kUnimplemented), 1);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kInternal), 1);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kResourceExhausted), 1);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kUnavailable), 1);
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status deadline = Status::DeadlineExceeded("budget spent");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.message(), "budget spent");
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: budget spent");

  Status cancelled = Status::Cancelled("caller asked");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller asked");

  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Cancelled("a"), Status::Cancelled("a"));
  EXPECT_FALSE(Status::Cancelled("a") == Status::Cancelled("b"));
  EXPECT_FALSE(Status::Cancelled("a") == Status::DeadlineExceeded("a"));
  EXPECT_EQ(Status(), Status::Ok());
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok_value = 42;
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);

  StatusOr<int> err = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace csm
