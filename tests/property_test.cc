// Property-style sweeps over substrate invariants, driven by seeded random
// inputs (deterministic per seed).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "datagen/wordlists.h"
#include "ml/naive_bayes.h"
#include "relational/condition.h"
#include "relational/sample.h"
#include "relational/view.h"
#include "stats/distributions.h"
#include "text/profile.h"
#include "text/string_distance.h"
#include "text/tokenizer.h"
#include "tests/test_util.h"

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::S;

std::string RandomWord(Rng& rng, size_t max_len = 12) {
  std::string out;
  size_t len = 1 + rng.NextBounded(max_len);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>('a' + rng.NextBounded(26));
  }
  return out;
}

// ----------------------------------------------------- Seeded sweeps

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededPropertyTest, QGramCountFormulaHolds) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::string text = RandomWord(rng, 30);
    // n + q - 1 padded grams for non-empty normalized text of length n.
    EXPECT_EQ(QGrams(text, 3).size(), text.size() + 2) << text;
  }
}

TEST_P(SeededPropertyTest, CosineBoundedAndReflexive) {
  Rng rng(GetParam() ^ 1);
  for (int i = 0; i < 30; ++i) {
    TokenProfile a, b;
    for (int t = 0; t < 20; ++t) {
      a.Add(RandomWord(rng, 6));
      b.Add(RandomWord(rng, 6));
    }
    double sim = CosineSimilarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0 + 1e-12);
    EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(sim, CosineSimilarity(b, a));
  }
}

TEST_P(SeededPropertyTest, LevenshteinMetricAxioms) {
  Rng rng(GetParam() ^ 2);
  for (int i = 0; i < 20; ++i) {
    std::string a = RandomWord(rng), b = RandomWord(rng), c = RandomWord(rng);
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
    // Distance bounded by the longer string.
    EXPECT_LE(LevenshteinDistance(a, b), std::max(a.size(), b.size()));
  }
}

TEST_P(SeededPropertyTest, NormalCdfQuantileInverse) {
  Rng rng(GetParam() ^ 3);
  for (int i = 0; i < 50; ++i) {
    double p = 0.001 + rng.NextDouble() * 0.998;
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-6);
  }
}

TEST_P(SeededPropertyTest, ViewFamilyFromAnyCategoricalPartitions) {
  Rng rng(GetParam() ^ 4);
  std::vector<Row> rows;
  size_t cardinality = 2 + rng.NextBounded(6);
  for (int i = 0; i < 100; ++i) {
    rows.push_back(
        {S(("v" + std::to_string(rng.NextBounded(cardinality))).c_str()),
         S(RandomWord(rng).c_str())});
  }
  Table t = MakeTable("t", {"label", "payload"}, rows);
  ViewFamily family = MakeSimpleViewFamily(t, "label");
  EXPECT_TRUE(family.IsWellFormed());
  size_t covered = 0;
  std::set<size_t> seen_rows;
  for (const View& v : family.views) {
    for (size_t r : v.MatchingRows(t)) {
      EXPECT_TRUE(seen_rows.insert(r).second);
      ++covered;
    }
  }
  EXPECT_EQ(covered, t.num_rows());
}

TEST_P(SeededPropertyTest, ConditionConjunctionIsIntersection) {
  Rng rng(GetParam() ^ 5);
  std::vector<Row> rows;
  for (int i = 0; i < 80; ++i) {
    rows.push_back({I(static_cast<int64_t>(rng.NextBounded(4))),
                    I(static_cast<int64_t>(rng.NextBounded(3)))});
  }
  Table t = MakeTable("t", {"a", "b"}, rows);
  Condition ca = Condition::In("a", {I(0), I(2)});
  Condition cb = Condition::Equals("b", I(1));
  Condition both = ca.Conjoin(cb);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool expectation = ca.Evaluate(t.schema(), t.row(r)) &&
                       cb.Evaluate(t.schema(), t.row(r));
    EXPECT_EQ(both.Evaluate(t.schema(), t.row(r)), expectation);
  }
}

TEST_P(SeededPropertyTest, TrainTestSplitIsExactPartition) {
  Rng data_rng(GetParam() ^ 6);
  std::vector<Row> rows;
  size_t n = 10 + data_rng.NextBounded(200);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({I(static_cast<int64_t>(i))});
  }
  Table t = MakeTable("t", {"id"}, rows);
  Rng split_rng(GetParam() ^ 7);
  double fraction = data_rng.NextDouble();
  TrainTestSplit split = SplitTrainTest(t, fraction, split_rng);
  EXPECT_EQ(split.train.num_rows() + split.test.num_rows(), n);
  std::set<int64_t> ids;
  for (const Row& r : split.train.rows()) ids.insert(r[0].AsInt());
  for (const Row& r : split.test.rows()) {
    EXPECT_TRUE(ids.insert(r[0].AsInt()).second);
  }
  EXPECT_EQ(ids.size(), n);
}

TEST_P(SeededPropertyTest, NaiveBayesTrainingOrderInvariant) {
  Rng rng(GetParam() ^ 8);
  std::vector<std::pair<std::string, std::string>> examples;
  for (int i = 0; i < 40; ++i) {
    examples.emplace_back(MakeBookTitle(rng), "book");
    examples.emplace_back(MakeUpc(rng), "cd");
  }
  NaiveBayesClassifier forward(3), backward(3);
  for (const auto& [text, label] : examples) {
    forward.Train(Value::String(text), label);
  }
  for (auto it = examples.rbegin(); it != examples.rend(); ++it) {
    backward.Train(Value::String(it->first), it->second);
  }
  for (int i = 0; i < 20; ++i) {
    Value probe = Value::String(rng.NextBernoulli(0.5) ? MakeBookTitle(rng)
                                                       : MakeUpc(rng));
    EXPECT_EQ(forward.Classify(probe), backward.Classify(probe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace csm
