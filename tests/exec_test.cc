// Tests for the execution-engine layer: ThreadPool, ParallelFor/Map,
// per-task RNG splitting and PhaseStats aggregation.

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/parallel.h"
#include "exec/phase_stats.h"
#include "exec/task_rng.h"
#include "exec/thread_pool.h"

namespace csm {
namespace exec {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, InWorkerIsTrueOnWorkersOnly) {
  EXPECT_FALSE(ThreadPool::InWorker());
  std::atomic<bool> saw_in_worker{false};
  std::atomic<bool> done{false};
  {
    ThreadPool pool(2);
    pool.Submit([&] {
      saw_in_worker = ThreadPool::InWorker();
      done = true;
    });
  }
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(saw_in_worker.load());
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, EffectiveThreadsResolvesZero) {
  EXPECT_EQ(EffectiveThreads(1), 1u);
  EXPECT_EQ(EffectiveThreads(7), 7u);
  EXPECT_EQ(EffectiveThreads(0), ThreadPool::HardwareThreads());
  EXPECT_GE(EffectiveThreads(0), 1u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(&pool, kN, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
  ParallelFor(nullptr, 0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, NullPoolRunsSeriallyInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [&](size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool is still usable after an exception.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, ExceptionOnSerialPathPropagatesToo) {
  EXPECT_THROW(ParallelFor(nullptr, 3,
                           [](size_t i) {
                             if (i == 1) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, NestedCallFromWorkerRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  // Saturate the pool with outer iterations that each start an inner
  // ParallelFor.  Without the InWorker guard the inner loops would wait on
  // queue slots held by the outer ones and deadlock.
  std::atomic<int> inner_total{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadPool pool(4);
  std::vector<size_t> out =
      ParallelMap(&pool, 257, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMapTest, SameResultSerialAndParallel) {
  auto fn = [](size_t i) {
    Rng rng = TaskRng(/*phase_seed=*/42, i);
    return rng.Next();
  };
  ThreadPool pool(4);
  std::vector<uint64_t> parallel = ParallelMap(&pool, 100, fn);
  std::vector<uint64_t> serial = ParallelMap(nullptr, 100, fn);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelForTest, CancelledTokenStopsNewClaims) {
  // A pre-cancelled token means no iteration is ever claimed.
  CancellationToken token;
  token.Cancel();
  std::atomic<size_t> ran{0};
  ParallelFor(nullptr, 100, [&](size_t) { ++ran; }, &token);
  EXPECT_EQ(ran.load(), 0u);
  ThreadPool pool(4);
  ParallelFor(&pool, 100, [&](size_t) { ++ran; }, &token);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForTest, CancellationMidLoopDrains) {
  // Serial path: cancelling inside iteration 10 stops before iteration 11.
  CancellationToken token;
  std::vector<size_t> visited;
  ParallelFor(
      nullptr, 100,
      [&](size_t i) {
        visited.push_back(i);
        if (i == 10) token.Cancel();
      },
      &token);
  ASSERT_EQ(visited.size(), 11u);
  EXPECT_EQ(visited.back(), 10u);
}

TEST(CancellableChunkedMapTest, NoTokenComputesEverything) {
  ChunkedMapCut cut;
  auto out = CancellableChunkedMap(nullptr, 10, 4, nullptr, &cut,
                                   [](size_t i) { return i * 2; });
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 2);
  EXPECT_EQ(cut.completed, 10u);
  EXPECT_FALSE(cut.cancelled);
}

TEST(CancellableChunkedMapTest, PreCancelledTokenComputesNothing) {
  CancellationToken token;
  token.Cancel();
  ChunkedMapCut cut;
  auto out = CancellableChunkedMap(nullptr, 10, 4, &token, &cut,
                                   [](size_t i) { return i; });
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cut.completed, 0u);
  EXPECT_TRUE(cut.cancelled);
}

TEST(CancellableChunkedMapTest, CutLandsOnChunkBoundaryAtAnyThreadCount) {
  // Cancelling at logical index 10 with chunk 4: the chunk containing 10
  // (indices 8-11) always completes, the barrier before indices 12-15 sees
  // the cancellation.  The completed prefix is 12 items — serial or pooled.
  auto run = [](ThreadPool* pool) {
    CancellationToken token;
    ChunkedMapCut cut;
    auto out = CancellableChunkedMap(pool, 20, 4, &token, &cut, [&](size_t i) {
      if (i == 10) token.Cancel(CancelReason::kDeadline);
      return i + 1;
    });
    EXPECT_EQ(cut.completed, 12u);
    EXPECT_TRUE(cut.cancelled);
    EXPECT_EQ(out.size(), 12u);
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
  };
  run(nullptr);
  ThreadPool pool2(2);
  run(&pool2);
  ThreadPool pool4(4);
  run(&pool4);
}

TEST(CancellableChunkedMapTest, FinalChunkCancellationStillReportsCut) {
  // The token fires inside the last chunk: the output is complete, but the
  // caller still learns the run was cancelled (it must degrade).
  CancellationToken token;
  ChunkedMapCut cut;
  auto out = CancellableChunkedMap(nullptr, 8, 4, &token, &cut, [&](size_t i) {
    if (i == 7) token.Cancel();
    return i;
  });
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(cut.completed, 8u);
  EXPECT_TRUE(cut.cancelled);
}

TEST(TaskRngTest, StreamsAreIndependentOfEachOther) {
  // Distinct streams from one phase seed produce distinct sequences, and a
  // stream depends only on (phase_seed, index) — not on the other streams.
  const uint64_t phase_seed = Rng(7).Next();
  std::set<uint64_t> first_draws;
  for (uint64_t stream = 0; stream < 1000; ++stream) {
    first_draws.insert(TaskRng(phase_seed, stream).Next());
  }
  EXPECT_EQ(first_draws.size(), 1000u);

  Rng replay = TaskRng(phase_seed, 500);
  Rng fresh = TaskRng(phase_seed, 500);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(replay.Next(), fresh.Next());
}

TEST(TaskRngTest, DifferentPhaseSeedsGiveDifferentStreams) {
  EXPECT_NE(TaskSeed(1, 0), TaskSeed(2, 0));
  EXPECT_NE(TaskRng(1, 3).Next(), TaskRng(2, 3).Next());
}

TEST(PhaseStatsTest, AggregatesAcrossThreads) {
  PhaseStats stats;
  ThreadPool pool(4);
  ParallelFor(&pool, 100, [&](size_t) {
    stats.AddCount("cells");
    stats.AddSeconds("train", 0.5);
  });
  EXPECT_EQ(stats.Count("cells"), 100u);
  EXPECT_NEAR(stats.Seconds("train"), 50.0, 1e-9);
  EXPECT_EQ(stats.Count("missing"), 0u);
  EXPECT_EQ(stats.Seconds("missing"), 0.0);
  auto counts = stats.CountsSnapshot();
  EXPECT_EQ(counts.at("cells"), 100u);
  EXPECT_NE(stats.ToString().find("cells"), std::string::npos);
}

TEST(ScopedPhaseTimerTest, AddsElapsedTime) {
  PhaseStats stats;
  { ScopedPhaseTimer timer(&stats, "phase"); }
  EXPECT_GE(stats.Seconds("phase"), 0.0);
}

}  // namespace
}  // namespace exec
}  // namespace csm
