// The failure-model contracts (DESIGN.md "Failure model, deadlines &
// degradation"): deadlines, caller cancellation, and injected faults must
// degrade a Match run — never corrupt it.  A degraded run returns the
// standard-match baseline plus every contextual view that was fully
// scored, a non-OK status naming the phase, and a completeness tag.
//
// All cancellation tests run through the FaultInjector sites so the
// degradation point is a deterministic function of the logical work (see
// common/fault_injector.h); the one wall-clock test only asserts structure
// and relative timing, keeping it meaningful under TSan's slowdown.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "core/match_engine.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"
#include "tests/test_util.h"

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::S;

class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }

  static RetailDataset Data() {
    RetailOptions d;
    d.num_items = 200;
    d.gamma = 2;
    d.seed = 1;
    return MakeRetailDataset(d);
  }

  /// SrcClassInfer options: exercise the classifier grid (and its
  /// "inference.cell" fault site).
  static ContextMatchOptions Options(size_t threads) {
    ContextMatchOptions o;
    o.inference = ViewInferenceKind::kSrcClass;
    o.early_disjuncts = true;
    o.omega = 0.05;
    o.seed = 2;
    o.threads = threads;
    return o;
  }

  /// NaiveInfer options: produce enough candidate views (8 on the Retail
  /// fixture) for the "scoring.candidate" site to have indices to fire on.
  static ContextMatchOptions NaiveOptions(size_t threads) {
    ContextMatchOptions o = Options(threads);
    o.inference = ViewInferenceKind::kNaive;
    return o;
  }

  static double RunSeconds(MatchEngine& engine, const Database& src,
                           const Database& tgt, ContextMatchResult* out) {
    const auto start = std::chrono::steady_clock::now();
    *out = engine.Match(src, tgt);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }
};

TEST_F(RobustnessTest, CleanRunIsComplete) {
  RetailDataset data = Data();
  MatchEngine engine(NaiveOptions(2));
  ContextMatchResult r = engine.Match(data.source, data.target);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.completeness, MatchCompleteness::kComplete);
  EXPECT_FALSE(r.pool.base_matches.empty());
  // The reference workload must actually have contextual work to cut short,
  // or the degradation tests below would pass vacuously.
  ASSERT_GE(r.pool.candidate_views.size(), 8u);
  EXPECT_FALSE(r.pool.view_matches.empty());
  EXPECT_EQ(r.phases.counters.count("engine.cancelled"), 0u);
}

TEST_F(RobustnessTest, WallClockDeadlineDegradesAndReturnsEarly) {
  RetailDataset data = Data();

  // Inflate the classifier grid with a 10ms sleep per cell so the workload
  // durably exceeds the deadline.  kSleep never changes results, only time.
  FaultInjector::Arm({.site = "inference.cell",
                      .action = FaultInjector::Action::kSleep,
                      .sleep_ms = 10,
                      .fire_limit = 0});

  ContextMatchResult full;
  MatchEngine slow_engine(Options(1));
  const double full_seconds =
      RunSeconds(slow_engine, data.source, data.target, &full);
  ASSERT_TRUE(full.status.ok());

  ContextMatchOptions bounded = Options(1);
  bounded.deadline_ms = 60;
  MatchEngine engine(bounded);
  ContextMatchResult r;
  const double degraded_seconds =
      RunSeconds(engine, data.source, data.target, &r);

  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded) << r.status;
  EXPECT_NE(r.completeness, MatchCompleteness::kComplete);
  // The baseline survives: phase 1 runs before the deadline can fire.
  EXPECT_FALSE(r.pool.base_matches.empty());
  EXPECT_EQ(r.pool.base_matches.size(), full.pool.base_matches.size());
  // Degrading must actually save time; an absolute bound would be flaky
  // under sanitizers, the full run is the honest yardstick.
  EXPECT_LT(degraded_seconds, full_seconds);
  EXPECT_GE(r.phases.counters.at("engine.cancelled"), 1u);
}

TEST_F(RobustnessTest, InjectedDeadlineDuringScoringKeepsScoredPrefix) {
  RetailDataset data = Data();
  CancellationToken token;
  FaultInjector::Arm({.site = "scoring.candidate",
                      .index = 5,
                      .action = FaultInjector::Action::kCancel,
                      .token = &token,
                      .reason = CancelReason::kDeadline});

  MatchEngine engine(NaiveOptions(2));
  ContextMatchResult r = engine.Match(data.source, data.target, &token);

  EXPECT_EQ(FaultInjector::FireCount("scoring.candidate"), 1u);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded) << r.status;
  EXPECT_NE(r.status.message().find("scoring"), std::string::npos)
      << r.status;
  // Candidate 5 is in the first scoring chunk, which completes; at least
  // that chunk's matches are in the pool.
  EXPECT_EQ(r.completeness, MatchCompleteness::kPartialViews);
  EXPECT_FALSE(r.pool.view_matches.empty());
  EXPECT_FALSE(r.pool.base_matches.empty());
  EXPECT_GE(r.phases.counters.at("engine.cancelled"), 1u);
  EXPECT_GE(r.phases.counters.at("cancelled.scoring"), 1u);
  if (!r.matches.empty()) {
    EXPECT_GE(r.phases.counters.at("engine.degraded_results"), 1u);
  }
}

TEST_F(RobustnessTest, CancelDuringInferenceDiscardsTheStage) {
  RetailDataset data = Data();

  MatchEngine clean_engine(Options(2));
  ContextMatchResult clean = clean_engine.Match(data.source, data.target);
  ASSERT_TRUE(clean.status.ok());

  CancellationToken token;
  FaultInjector::Arm({.site = "inference.cell",
                      .index = 0,
                      .action = FaultInjector::Action::kCancel,
                      .token = &token,
                      .reason = CancelReason::kCaller});

  MatchEngine engine(Options(2));
  ContextMatchResult r = engine.Match(data.source, data.target, &token);

  EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status;
  EXPECT_NE(r.status.message().find("inference"), std::string::npos);
  // Contract: a stage cancelled during inference contributes nothing — the
  // result is the full baseline and only the baseline.
  EXPECT_EQ(r.completeness, MatchCompleteness::kBaselineOnly);
  EXPECT_TRUE(r.pool.view_matches.empty());
  EXPECT_TRUE(r.pool.candidate_views.empty());
  EXPECT_EQ(r.pool.base_matches.size(), clean.pool.base_matches.size());
  EXPECT_GE(r.phases.counters.at("cancelled.inference"), 1u);
}

TEST_F(RobustnessTest, InjectedTaskFailureDegradesWithInternalStatus) {
  RetailDataset data = Data();
  CancellationToken token;
  FaultInjector::Arm({.site = "scoring.candidate",
                      .index = 2,
                      .action = FaultInjector::Action::kFail,
                      .token = &token});

  MatchEngine engine(NaiveOptions(2));
  ContextMatchResult r = engine.Match(data.source, data.target, &token);

  // The run completes (no crash, no hang) but reports the fault.
  EXPECT_EQ(r.status.code(), StatusCode::kInternal) << r.status;
  EXPECT_NE(r.completeness, MatchCompleteness::kComplete);
  EXPECT_FALSE(r.pool.base_matches.empty());
  // The failed candidate is recorded (its chunk completed) but unscored.
  EXPECT_GE(r.pool.candidate_views.size(), 3u);
}

TEST_F(RobustnessTest, EngineCancelFromAnotherThread) {
  RetailDataset data = Data();

  // Slow the grid down so the run is still in flight when Cancel() lands.
  FaultInjector::Arm({.site = "inference.cell",
                      .action = FaultInjector::Action::kSleep,
                      .sleep_ms = 10,
                      .fire_limit = 0});

  MatchEngine engine(Options(2));
  ContextMatchResult r;
  std::thread runner(
      [&] { r = engine.Match(data.source, data.target); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.Cancel();
  runner.join();

  EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status;
  EXPECT_NE(r.completeness, MatchCompleteness::kComplete);

  // Cancel() with no run in flight is a harmless no-op, and the engine
  // stays usable: the next (un-slowed) call completes normally.
  engine.Cancel();
  FaultInjector::DisarmAll();
  ContextMatchResult again = engine.Match(data.source, data.target);
  EXPECT_TRUE(again.status.ok());
  EXPECT_EQ(again.completeness, MatchCompleteness::kComplete);
}

TEST_F(RobustnessTest, Phase1CutIsAWholeChunkTablePrefix) {
  // Ten tiny source tables; cancellation fired from inside the first chunk
  // of 8 is observed at the chunk barrier, so exactly 8 tables survive —
  // at any thread count.
  Database source("src");
  for (int t = 0; t < 10; ++t) {
    source.AddTable(MakeTable(
        "t" + std::to_string(t), {"name", "qty"},
        {{S("alpha"), I(1)}, {S("beta"), I(2)}, {S("gamma"), I(3)}}));
  }
  Database target("tgt");
  target.AddTable(MakeTable("items", {"name", "qty"},
                            {{S("alpha"), I(1)}, {S("delta"), I(4)}}));

  for (size_t threads : {1u, 2u, 4u}) {
    CancellationToken token;
    FaultInjector::Arm({.site = "standard.session",
                        .index = 3,
                        .action = FaultInjector::Action::kCancel,
                        .token = &token,
                        .reason = CancelReason::kDeadline});

    MatchEngine engine(Options(threads));
    ContextMatchResult r = engine.Match(source, target, &token);

    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads;
    EXPECT_NE(r.status.message().find("standard_match"), std::string::npos);
    EXPECT_EQ(r.completeness, MatchCompleteness::kBaselineOnly);
    EXPECT_EQ(r.phases.counters.at("source_tables"), 8u)
        << "threads=" << threads;
    EXPECT_GE(r.phases.counters.at("cancelled.standard_match"), 1u);
    FaultInjector::DisarmAll();

    // The partial session prefix must never be cached: a fresh healthy
    // call on the same data rebuilds and sees all 10 tables.
    ContextMatchResult healthy = engine.Match(source, target);
    EXPECT_TRUE(healthy.status.ok()) << healthy.status;
    EXPECT_EQ(healthy.phases.counters.at("source_tables"), 10u);
    EXPECT_EQ(engine.session_cache_hits(), 0u);
  }
}

TEST_F(RobustnessTest, ScoringCutIsAWholeChunkCandidatePrefix) {
  // The Grades fixture with NaiveInfer yields ~30 candidate views — more
  // than one scoring chunk of 16 — so a cancellation fired from inside the
  // first chunk truncates the pool to exactly 16 candidates, at any thread
  // count.
  GradesOptions g;
  g.num_students = 120;
  g.seed = 3;
  GradesDataset data = MakeGradesDataset(g);
  auto opts = [](size_t threads) {
    ContextMatchOptions o;
    o.inference = ViewInferenceKind::kNaive;
    o.tau = 0.45;
    o.omega = 0.025;
    o.seed = 4;
    o.threads = threads;
    return o;
  };

  MatchEngine clean_engine(opts(2));
  ContextMatchResult clean = clean_engine.Match(data.source, data.target);
  ASSERT_TRUE(clean.status.ok());
  ASSERT_GT(clean.pool.candidate_views.size(), 16u);

  for (size_t threads : {1u, 2u, 4u}) {
    CancellationToken token;
    FaultInjector::Arm({.site = "scoring.candidate",
                        .index = 5,
                        .action = FaultInjector::Action::kCancel,
                        .token = &token,
                        .reason = CancelReason::kDeadline});
    MatchEngine engine(opts(threads));
    ContextMatchResult r = engine.Match(data.source, data.target, &token);
    FaultInjector::DisarmAll();

    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads;
    EXPECT_EQ(r.completeness, MatchCompleteness::kPartialViews);
    EXPECT_EQ(r.pool.candidate_views.size(), 16u) << "threads=" << threads;
    EXPECT_EQ(r.phases.counters.at("candidate_views"), 16u);
    // Scored candidates past the cut never leak into the pool.
    EXPECT_LT(r.pool.view_matches.size(), clean.pool.view_matches.size());
  }
}

TEST_F(RobustnessTest, SleepInjectionNeverChangesResults) {
  // kSleep at the schedule-dependent "pool.task" site (and anywhere else)
  // perturbs timing only; the output stays bit-identical.
  RetailDataset data = Data();
  MatchEngine clean_engine(Options(2));
  ContextMatchResult clean = clean_engine.Match(data.source, data.target);

  FaultInjector::Arm({.site = "pool.task",
                      .action = FaultInjector::Action::kSleep,
                      .sleep_ms = 1,
                      .fire_limit = 16});
  MatchEngine slow_engine(Options(2));
  ContextMatchResult slow = slow_engine.Match(data.source, data.target);

  EXPECT_TRUE(slow.status.ok());
  ASSERT_EQ(slow.matches.size(), clean.matches.size());
  for (size_t i = 0; i < slow.matches.size(); ++i) {
    EXPECT_EQ(slow.matches[i].ToString(), clean.matches[i].ToString());
  }
}

}  // namespace
}  // namespace csm
