// Tests for the streaming / chunked-parallel CSV ingest path
// (relational/csv.h, "Streaming ingest & sampling" in DESIGN.md):
// chunk-boundary correctness at hostile chunk sizes, the single-pass
// byte-once guarantee of the file loaders, and error-order parity with the
// serial parser.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "relational/csv.h"
#include "relational/table.h"
#include "tests/test_util.h"  // NOLINT

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::N;
using testing::R;
using testing::S;

/// Serial ground truth; the streaming path must match it bit for bit.
Table SerialParse(const TableSchema& schema, const std::string& csv) {
  auto parsed = TableFromCsv(schema, csv);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed.value());
}

/// Asserts value-level and dictionary-code-level equality.
void ExpectBitIdentical(const Table& expected, const Table& actual,
                        const std::string& what) {
  ASSERT_EQ(actual.num_rows(), expected.num_rows()) << what;
  for (size_t r = 0; r < expected.num_rows(); ++r) {
    ASSERT_EQ(actual.row(r), expected.row(r)) << what << " at row " << r;
  }
  for (size_t c = 0; c < expected.schema().num_attributes(); ++c) {
    if (expected.schema().attribute(c).type != ValueType::kString) continue;
    EXPECT_EQ(actual.column(c).codes(), expected.column(c).codes())
        << what << ": dictionary codes diverged in column "
        << expected.schema().attribute(c).name;
    ASSERT_EQ(actual.column(c).dictionary().size(),
              expected.column(c).dictionary().size())
        << what;
    for (uint32_t code = 0; code < expected.column(c).dictionary().size();
         ++code) {
      EXPECT_EQ(actual.column(c).dictionary().value(code),
                expected.column(c).dictionary().value(code))
          << what << ": dictionary entry " << code;
    }
  }
}

/// Parses `csv` through the chunked path at every chunk size in
/// [1, csv.size()] and asserts bit-identity with the serial parser.  A
/// 1-byte target chunk places a boundary after every record, so every
/// hostile construct (quoted terminator, CRLF, NULL row, multi-byte
/// character) gets exercised adjacent to a split.
void SweepAllChunkSizes(const TableSchema& schema, const std::string& csv,
                        size_t threads = 2) {
  const Table expected = SerialParse(schema, csv);
  for (size_t chunk_bytes = 1; chunk_bytes <= csv.size(); ++chunk_bytes) {
    CsvIngestOptions options;
    options.chunk_bytes = chunk_bytes;
    options.threads = threads;
    auto parsed = TableFromCsvParallel(schema, csv, options);
    ASSERT_TRUE(parsed.ok())
        << "chunk_bytes=" << chunk_bytes << ": " << parsed.status().ToString();
    ExpectBitIdentical(expected, *parsed,
                       "chunk_bytes=" + std::to_string(chunk_bytes));
  }
}

// ------------------------------------------------------------- chunk scan

TEST(CsvChunkScanTest, SpansAreContiguousAndCoverTheText) {
  const std::string csv = "a,b\n1,x\n2,y\n3,z\n4,w\n";
  for (size_t target = 1; target <= csv.size() + 4; ++target) {
    size_t cursor = 4;  // just past the header record
    for (const CsvChunkSpan& span : ScanCsvChunks(csv, 4, target)) {
      EXPECT_EQ(span.begin, cursor) << "target=" << target;
      EXPECT_GT(span.end, span.begin) << "target=" << target;
      cursor = span.end;
    }
    EXPECT_EQ(cursor, csv.size()) << "target=" << target;
  }
}

TEST(CsvChunkScanTest, NeverSplitsBetweenCarriageReturnAndLineFeed) {
  // CRLF terminators at every record; any 1-byte-granularity scan that
  // treated CR and LF separately would start some chunk on the LF and parse
  // a phantom empty record there.
  const std::string csv = "a\r\n1\r\n22\r\n333\r\n4444\r\n";
  for (size_t target = 1; target <= csv.size(); ++target) {
    for (const CsvChunkSpan& span : ScanCsvChunks(csv, 3, target)) {
      if (span.begin == 0 || span.begin >= csv.size()) continue;
      EXPECT_FALSE(csv[span.begin - 1] == '\r' && csv[span.begin] == '\n')
          << "target=" << target << " split CRLF at byte " << span.begin;
    }
  }
}

TEST(CsvChunkScanTest, RecordCountsBoundReservations) {
  // Quoted embedded newlines make terminator counting exact per record; a
  // final unterminated record is still counted.
  const std::string csv = "a\n\"x\ny\"\nplain\nlast";
  const std::vector<CsvChunkSpan> spans = ScanCsvChunks(csv, 2, csv.size());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].records, 3u);
}

TEST(CsvChunkScanTest, AutotuneClampsToSaneRange) {
  // Tiny inputs: floor of 64 KiB keeps small files effectively serial.
  EXPECT_EQ(AutotuneCsvChunkBytes(1000, 4), 64u << 10);
  // Huge inputs: ceiling of 16 MiB bounds per-chunk table sizes.
  EXPECT_EQ(AutotuneCsvChunkBytes(size_t{1} << 40, 2), 16u << 20);
  // In between: ~4 chunks per worker.
  EXPECT_EQ(AutotuneCsvChunkBytes(size_t{32} << 20, 4), (32u << 20) / 16);
}

// -------------------------------------------- chunk-boundary parse parity

TEST(CsvStreamTest, QuotedTerminatorsAcrossChunkBoundaries) {
  Table t = MakeTable("q", {"text", "n"},
                      {{S("embedded\nnewline"), I(1)},
                       {S("embedded\r\ncrlf"), I(2)},
                       {S("bare\rcr"), I(3)},
                       {S("quote\"inside"), I(4)},
                       {S("comma,inside"), I(5)},
                       {S("\"leading quote"), I(6)}});
  SweepAllChunkSizes(t.schema(), TableToCsv(t));
}

TEST(CsvStreamTest, MixedLineEndingsAcrossChunkBoundaries) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  // \n, \r\n, bare \r terminators interleaved, CR-only tail.
  SweepAllChunkSizes(schema, "a\n1\r\n2\r3\n4\r\n5\r");
}

TEST(CsvStreamTest, CarriageReturnOnlyFile) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  schema.AddAttribute("b", ValueType::kString);
  SweepAllChunkSizes(schema, "a,b\r1,x\r2,y\r3,z\r");
}

TEST(CsvStreamTest, Utf8CellsAcrossChunkBoundaries) {
  // Multi-byte sequences land adjacent to every chunk split; continuation
  // bytes must never be mistaken for quotes or terminators.
  Table t = MakeTable("u", {"s"},
                      {{S("caf\xc3\xa9")},
                       {S("\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e")},
                       {S("emoji \xf0\x9f\x98\x80 mix")},
                       {S("\xc3\xa9\xc3\xa8\xc3\xaa")}});
  SweepAllChunkSizes(t.schema(), TableToCsv(t));
}

TEST(CsvStreamTest, NullRowsSpanningChunkSplits) {
  Table t = MakeTable("n", {"a", "b"},
                      {{I(1), N()},
                       {N(), N()},
                       {N(), S("x")},
                       {I(4), S("")}});
  SweepAllChunkSizes(t.schema(), TableToCsv(t));
}

TEST(CsvStreamTest, SingleAttributeNullRowsRenderedAsQuotedEmpty) {
  // A single-attribute NULL row renders as `""` — a 1-byte chunk sweep puts
  // splits inside and around those two quote characters.
  Table t = MakeTable("n1", {"a"}, {{N()}, {S("v")}, {N()}, {N()}});
  SweepAllChunkSizes(t.schema(), TableToCsv(t));
}

TEST(CsvStreamTest, DictionaryCodesIdenticalAcrossThreadCounts) {
  // Repeated strings whose first occurrences are spread over several
  // chunks: the merged dictionary must reproduce serial first-seen order.
  std::vector<Row> rows;
  const char* values[] = {"delta", "alpha", "beta", "alpha", "gamma",
                          "delta", "beta",  "epsilon"};
  for (const char* v : values) rows.push_back({S(v)});
  Table t = MakeTable("d", {"s"}, rows);
  const std::string csv = TableToCsv(t);
  const Table expected = SerialParse(t.schema(), csv);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t chunk_bytes : {size_t{1}, size_t{8}, size_t{64}}) {
      CsvIngestOptions options;
      options.threads = threads;
      options.chunk_bytes = chunk_bytes;
      auto parsed = TableFromCsvParallel(t.schema(), csv, options);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      ExpectBitIdentical(expected, *parsed,
                         "threads=" + std::to_string(threads) +
                             " chunk_bytes=" + std::to_string(chunk_bytes));
    }
  }
}

TEST(CsvStreamTest, BorrowedPoolProducesSameTable) {
  Table t = MakeTable("p", {"a", "b"},
                      {{I(1), S("x")}, {I(2), S("y")}, {I(3), S("z")}});
  const std::string csv = TableToCsv(t);
  const Table expected = SerialParse(t.schema(), csv);
  exec::ThreadPool pool(3);
  CsvIngestOptions options;
  options.pool = &pool;
  options.chunk_bytes = 2;
  auto parsed = TableFromCsvParallel(t.schema(), csv, options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectBitIdentical(expected, *parsed, "borrowed pool");
}

TEST(CsvStreamTest, HeaderOnlyTextYieldsEmptyTable) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  for (const std::string& csv : {std::string("a\n"), std::string("a")}) {
    CsvIngestOptions options;
    options.chunk_bytes = 1;
    auto parsed = TableFromCsvParallel(schema, csv, options);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->num_rows(), 0u);
  }
}

TEST(CsvStreamTest, FirstErrorInTextOrderMatchesSerialParser) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  // Two bad records; the serial parser reports the *first* one.  The
  // chunked path must report the same error even when a later chunk (with
  // the second bad record) finishes first.
  const std::string csv = "a\n1\nbad_early\n3\nbad_late\n5\n";
  const Status serial = TableFromCsv(schema, csv).status();
  ASSERT_FALSE(serial.ok());
  for (size_t chunk_bytes : {size_t{1}, size_t{4}, size_t{1024}}) {
    CsvIngestOptions options;
    options.chunk_bytes = chunk_bytes;
    options.threads = 4;
    const Status chunked = TableFromCsvParallel(schema, csv, options).status();
    ASSERT_FALSE(chunked.ok()) << "chunk_bytes=" << chunk_bytes;
    EXPECT_EQ(chunked.message(), serial.message())
        << "chunk_bytes=" << chunk_bytes;
  }
}

TEST(CsvStreamTest, HeaderMismatchRejected) {
  TableSchema schema("t");
  schema.AddAttribute("wrong", ValueType::kInt);
  EXPECT_FALSE(TableFromCsvParallel(schema, "a\n1\n").ok());
}

// ----------------------------------------------------------- file loaders

std::string WriteTempCsv(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

TEST(CsvStreamFileTest, ReadFallbackReadsEveryByteExactlyOnce) {
  Table t = MakeTable("f", {"a", "b"},
                      {{I(1), S("x")}, {I(2), S("y")}, {I(3), S("z")}});
  const std::string csv = TableToCsv(t);
  const std::string path = WriteTempCsv("csm_stream_once.csv", csv);
  CsvIngestOptions options;
  options.force_read_fallback = true;
  CsvIngestStats stats;
  auto parsed = ReadCsvFileStreaming(t.schema(), path, options, &stats);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectBitIdentical(SerialParse(t.schema(), csv), *parsed, "read fallback");
  // The instrumented reader counts every byte it copies: exactly one pass
  // over the file, no separate estimate scan (the old loader read the body
  // twice).
  EXPECT_FALSE(stats.used_mmap);
  EXPECT_EQ(stats.file_bytes, csv.size());
  EXPECT_EQ(stats.bytes_read, csv.size());
  EXPECT_EQ(stats.records, t.num_rows());
  std::remove(path.c_str());
}

TEST(CsvStreamFileTest, MmapPathCopiesNothing) {
  Table t = MakeTable("m", {"a"}, {{I(1)}, {I(2)}});
  const std::string csv = TableToCsv(t);
  const std::string path = WriteTempCsv("csm_stream_mmap.csv", csv);
  CsvIngestStats stats;
  auto parsed = ReadCsvFileStreaming(t.schema(), path, {}, &stats);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 2u);
#ifndef _WIN32
  EXPECT_TRUE(stats.used_mmap);
  EXPECT_EQ(stats.bytes_read, 0u);
#endif
  EXPECT_EQ(stats.file_bytes, csv.size());
  std::remove(path.c_str());
}

TEST(CsvStreamFileTest, MissingFileIsIoError) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  EXPECT_EQ(
      ReadCsvFileStreaming(schema, "/nonexistent/file.csv").status().code(),
      StatusCode::kIoError);
}

TEST(CsvStreamFileTest, EmptyFileRejectedLikeSerialLoader) {
  const std::string path = WriteTempCsv("csm_stream_empty.csv", "");
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  const Status streaming = ReadCsvFileStreaming(schema, path).status();
  const Status serial = ReadCsvFile(schema, path).status();
  EXPECT_FALSE(streaming.ok());
  EXPECT_EQ(streaming.ok(), serial.ok());
  std::remove(path.c_str());
}

TEST(CsvStreamFileTest, InferredStreamingMatchesInferredLoader) {
  const std::string csv =
      "id,price,name\n1,9.5,ab\n2,1.25,cd\n3,7.0,ef\n4,2.5,gh\n";
  const std::string path = WriteTempCsv("csm_stream_infer.csv", csv);
  auto legacy = ReadCsvFileInferred("inv", path);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  CsvIngestStats stats;
  auto streaming = ReadCsvFileInferredStreaming("inv", path, 2, {}, &stats);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  ExpectBitIdentical(*legacy, *streaming, "inferred streaming");
  EXPECT_EQ(streaming->schema().attribute(0).type, ValueType::kInt);
  EXPECT_EQ(streaming->schema().attribute(1).type, ValueType::kReal);
  EXPECT_EQ(streaming->schema().attribute(2).type, ValueType::kString);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csm
