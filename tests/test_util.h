// Shared helpers for the csm test suite: compact table builders.

#ifndef CSM_TESTS_TEST_UTIL_H_
#define CSM_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "relational/table.h"

namespace csm {
namespace testing {

/// Builds a table whose attribute types are inferred from the first row's
/// cell types (NULLs default to string).
inline Table MakeTable(const std::string& name,
                       const std::vector<std::string>& attribute_names,
                       const std::vector<Row>& rows) {
  TableSchema schema(name);
  for (size_t c = 0; c < attribute_names.size(); ++c) {
    ValueType type = ValueType::kString;
    for (const Row& row : rows) {
      if (c < row.size() && !row[c].is_null()) {
        type = row[c].type();
        break;
      }
    }
    schema.AddAttribute(attribute_names[c], type);
  }
  Table table(schema);
  for (const Row& row : rows) table.AddRow(row);
  return table;
}

inline Value S(const char* s) { return Value::String(s); }
inline Value I(int64_t i) { return Value::Int(i); }
inline Value R(double r) { return Value::Real(r); }
inline Value N() { return Value::Null(); }

}  // namespace testing
}  // namespace csm

#endif  // CSM_TESTS_TEST_UTIL_H_
