// Golden-corpus runner: recomputes every case in src/check/golden.cc and
// diffs the serialized ContextMatchResult against tests/golden/<case>.golden.
//
//   golden_runner <golden_dir>            # verify (exit 1 on divergence)
//   golden_runner <golden_dir> --update   # re-record expectations

#include <cstring>
#include <iostream>

#include "check/golden.h"

int main(int argc, char** argv) {
  const char* golden_dir = nullptr;
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (golden_dir == nullptr) {
      golden_dir = argv[i];
    } else {
      std::cerr << "usage: golden_runner <golden_dir> [--update]\n";
      return 2;
    }
  }
  if (golden_dir == nullptr) {
    std::cerr << "usage: golden_runner <golden_dir> [--update]\n";
    return 2;
  }
  const int failures =
      csm::check::RunGoldenCorpus(golden_dir, update, std::cout);
  if (failures > 0) {
    std::cerr << failures << " golden case(s) diverged\n";
    return 1;
  }
  return 0;
}
