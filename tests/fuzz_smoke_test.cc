// Smoke runs of the seeded structured fuzzers and differential oracles
// (src/check/fuzz.h).  Iteration counts are sized so the whole binary stays
// in tier-1 test time; the environment overrides let CI or a soak run crank
// them up without a rebuild:
//
//   CSM_FUZZ_SEED=7 CSM_FUZZ_ITERS=1000 ./tests/fuzz_smoke
//
// A failure message embeds "replay: seed=<S> iteration=<I>" — rerunning
// with CSM_FUZZ_SEED=<S> (any iteration count > I) reproduces it exactly.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "check/fuzz.h"

namespace csm {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

check::FuzzOptions Options(size_t default_iterations) {
  check::FuzzOptions options;
  options.seed = EnvOr("CSM_FUZZ_SEED", 1);
  options.iterations = EnvOr("CSM_FUZZ_ITERS", default_iterations);
  options.thread_counts = {1, 2, 4};
  return options;
}

TEST(FuzzSmokeTest, CsvRoundTrip) {
  const Status status = check::FuzzCsvRoundTrip(Options(400));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(FuzzSmokeTest, CsvChunkedParse) {
  const Status status = check::FuzzCsvChunkedParse(Options(60));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(FuzzSmokeTest, ConditionEvaluation) {
  const Status status = check::FuzzConditionEvaluation(Options(400));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(FuzzSmokeTest, Pipeline) {
  const Status status = check::FuzzPipeline(Options(40));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(FuzzSmokeTest, RowColumnarEquivalence) {
  const Status status = check::FuzzRowColumnarEquivalence(Options(400));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(FuzzSmokeTest, TokenKernelEquivalence) {
  const Status status = check::FuzzTokenKernelEquivalence(Options(150));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(FuzzSmokeTest, DifferentialOracles) {
  const Status status = check::FuzzDifferential(Options(10));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace csm
