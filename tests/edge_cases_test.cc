// Additional edge-case and parameter-sweep coverage: significance
// threshold sensitivity, categorical-rule option sweeps, conjunctive
// staging corner cases, executor coercions, and selection bookkeeping.

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "core/clustered_view_gen.h"
#include "core/context_match.h"
#include "datagen/retail_gen.h"
#include "datagen/wordlists.h"
#include "mapping/executor.h"
#include "ml/gaussian_classifier.h"
#include "ml/naive_bayes.h"
#include "relational/categorical.h"
#include "tests/test_util.h"

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::R;
using testing::S;

ClassifierFactory SrcFactory() {
  return [](ValueType type) -> std::unique_ptr<ValueClassifier> {
    if (type == ValueType::kInt || type == ValueType::kReal) {
      return std::make_unique<GaussianClassifier>();
    }
    return std::make_unique<NaiveBayesClassifier>(3);
  };
}

/// A table where `type` clusters `text` with an adjustable noise fraction:
/// `noise_fraction` of the rows get the wrong-kind text.
Table NoisyClusteredFixture(double noise_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (int i = 0; i < 240; ++i) {
    bool is_book = rng.NextBernoulli(0.5);
    bool flip = rng.NextBernoulli(noise_fraction);
    bool text_book = flip ? !is_book : is_book;
    rows.push_back({S(is_book ? "book" : "cd"),
                    S(text_book ? MakeBookTitle(rng).c_str()
                                : MakeUpc(rng).c_str())});
  }
  return MakeTable("inv", {"type", "text"}, rows);
}

// --------------------------------------- Significance threshold sweeps

class SignificanceThresholdTest : public ::testing::TestWithParam<double> {};

TEST_P(SignificanceThresholdTest, CleanDataAcceptedNoisyDataRejected) {
  ClusteredViewGenOptions options;
  options.significance_threshold = GetParam();
  Rng rng(7);
  // Perfectly clustered: accepted at any reasonable threshold.
  Table clean = NoisyClusteredFixture(0.0, 1);
  EXPECT_FALSE(
      ClusteredViewGen(clean, SrcFactory(), options, {}, false, rng).empty());
  // Pure noise (labels independent of text): rejected.
  Table noisy = NoisyClusteredFixture(0.5, 2);
  EXPECT_TRUE(
      ClusteredViewGen(noisy, SrcFactory(), options, {}, false, rng).empty());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SignificanceThresholdTest,
                         ::testing::Values(0.90, 0.95, 0.99));

TEST(SignificanceThresholdTest, ModerateNoiseStillDetected) {
  // 20% label noise: the correlation is weaker but still highly
  // significant over ~120 test rows.
  Rng rng(8);
  Table t = NoisyClusteredFixture(0.2, 3);
  auto families = ClusteredViewGen(t, SrcFactory(), {}, {}, false, rng);
  ASSERT_FALSE(families.empty());
  EXPECT_LT(families[0].classifier_f1, 1.0);
  EXPECT_GT(families[0].classifier_f1, 0.6);
}

// -------------------------------------------- Categorical option sweeps

class CategoricalFractionTest
    : public ::testing::TestWithParam<std::pair<double, bool>> {};

TEST_P(CategoricalFractionTest, TupleFractionControlsDetection) {
  auto [tuple_fraction, expect_categorical] = GetParam();
  // 20 values x 10 tuples each = 200 rows; each value covers 5% of tuples.
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({S(StrFormat("v%d", i % 20).c_str())});
  }
  Table t = MakeTable("t", {"k"}, rows);
  CategoricalOptions options;
  options.tuple_fraction = tuple_fraction;
  EXPECT_EQ(IsCategoricalAttribute(t, "k", options), expect_categorical);
}

INSTANTIATE_TEST_SUITE_P(
    Fractions, CategoricalFractionTest,
    ::testing::Values(std::make_pair(0.01, true),   // 5% > 1%
                      std::make_pair(0.04, true),   // 5% > 4%
                      std::make_pair(0.06, false),  // 5% < 6%
                      std::make_pair(0.10, false)));

// --------------------------------------------------- Conjunctive corners

// --------------------------------------- Degenerate-input validation
//
// Regression tests for the defensive guards: inputs with nothing to learn
// from must come back clean and empty, never crash or divide by zero.

using testing::N;

TEST(DegenerateInputTest, EmptyTableYieldsNoFamilies) {
  Table empty = MakeTable("empty", {"type", "text"}, {});
  Rng rng(1);
  EXPECT_TRUE(
      ClusteredViewGen(empty, SrcFactory(), {}, {}, false, rng).empty());
}

TEST(DegenerateInputTest, SingleRowTableYieldsNoFamilies) {
  Table one = MakeTable("one", {"type", "text"}, {{S("book"), S("dune")}});
  Rng rng(1);
  EXPECT_TRUE(
      ClusteredViewGen(one, SrcFactory(), {}, {}, false, rng).empty());
}

TEST(DegenerateInputTest, AllNullCategoricalColumnYieldsNoFamilies) {
  // The label column is entirely NULL; even named explicitly as a label
  // attribute it has no values to partition on.
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({N(), S(i % 2 == 0 ? "alpha" : "beta")});
  }
  Table t = MakeTable("nulls", {"type", "text"}, rows);
  Rng rng(1);
  EXPECT_TRUE(ClusteredViewGen(t, SrcFactory(), {}, {}, false, rng,
                               /*label_attributes=*/{"type"})
                  .empty());
}

TEST(DegenerateInputTest, LabelBelowSupportFloorYieldsNoFamilies) {
  // Every label value occurs exactly once: no value can appear in both the
  // train and test halves, so no cell can pass the significance gate.
  std::vector<Row> rows;
  for (int i = 0; i < 12; ++i) {
    rows.push_back({S(("label" + std::to_string(i)).c_str()),
                    S(i % 2 == 0 ? "left text" : "right text")});
  }
  Table t = MakeTable("sparse", {"type", "text"}, rows);
  Rng rng(1);
  EXPECT_TRUE(ClusteredViewGen(t, SrcFactory(), {}, {}, false, rng,
                               /*label_attributes=*/{"type"})
                  .empty());
}

TEST(DegenerateInputTest, InferenceOnEmptySampleReturnsNoCandidates) {
  // InferCandidateViews with accepted matches but an empty sample: the new
  // source_sample guard returns cleanly before touching the grid.
  ContextMatchOptions options;
  auto inference = MakeViewInference(ViewInferenceKind::kSrcClass, options);
  Table empty = MakeTable("empty", {"type", "text"}, {});
  Match accepted;
  accepted.source = {"empty", "text"};
  accepted.target = {"tgt", "title"};
  accepted.confidence = 0.9;
  MatchList matches{accepted};
  InferenceInput input;
  input.source_sample = empty;
  input.matches = &matches;
  Rng rng(1);
  EXPECT_TRUE(inference->InferCandidateViews(input, rng).empty());
}

TEST(ConjunctiveEdgeTest, ExtraStagesAreHarmlessWhenNothingToRefine) {
  RetailOptions d;
  d.num_items = 200;
  d.gamma = 2;
  d.seed = 91;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.seed = 92;
  ContextMatchResult one = ConjunctiveContextMatch(data.source, data.target,
                                                   o, 1);
  ContextMatchResult three = ConjunctiveContextMatch(data.source, data.target,
                                                     o, 3);
  // No second informative attribute exists, so deeper stages cannot select
  // conjunctive views; the simple views must survive unchanged.
  std::set<std::string> one_keys, three_simple_keys;
  for (const View& v : one.selected_views) {
    one_keys.insert(v.condition().ToString());
  }
  for (const View& v : three.selected_views) {
    if (v.condition().NumAttributes() == 1) {
      three_simple_keys.insert(v.condition().ToString());
    }
  }
  EXPECT_EQ(one_keys, three_simple_keys);
}

TEST(ConjunctiveEdgeTest, StageConditionsNeverRepeatAttributes) {
  RetailOptions d;
  d.num_items = 200;
  d.gamma = 4;
  d.correlated_attributes = 1;
  d.rho = 0.5;
  d.seed = 93;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.seed = 94;
  ContextMatchResult r =
      ConjunctiveContextMatch(data.source, data.target, o, 3);
  for (const View& v : r.pool.candidate_views) {
    std::set<std::string> attrs;
    for (const std::string& a : v.condition().MentionedAttributes()) {
      EXPECT_TRUE(attrs.insert(a).second) << v.ToString();
    }
    EXPECT_LE(v.condition().NumAttributes(), 3u);
  }
}

// ----------------------------------------------------- Executor corners

TEST(ExecutorEdgeTest, CoercionsAndNulls) {
  Database db("src");
  db.AddTable(MakeTable("t", {"r", "s"},
                        {{R(3.0), S("x")}, {R(2.5), S("y")}}));
  Schema target("tgt");
  TableSchema out("out");
  out.AddAttribute("as_int", ValueType::kInt);
  target.AddTable(out);
  MatchList matches;
  Match m;
  m.source = {"t", "r"};
  m.target = {"out", "as_int"};
  m.confidence = 1.0;
  matches.push_back(m);
  auto queries = GenerateMappings(target, matches, {}, {});
  ASSERT_EQ(queries.size(), 1u);
  auto result = ExecuteMapping(queries[0], db, {}, target.GetTable("out"));
  ASSERT_TRUE(result.ok());
  // 3.0 coerces to int 3; 2.5 is lossy and becomes NULL.
  EXPECT_EQ(result->at(0, "as_int"), Value::Int(3));
  EXPECT_TRUE(result->at(1, "as_int").is_null());
}

TEST(ExecutorEdgeTest, DuplicateOutputRowsCollapse) {
  Database db("src");
  db.AddTable(MakeTable("t", {"v"}, {{S("same")}, {S("same")}, {S("other")}}));
  Schema target("tgt");
  TableSchema out("out");
  out.AddAttribute("v", ValueType::kString);
  target.AddTable(out);
  MatchList matches;
  Match m;
  m.source = {"t", "v"};
  m.target = {"out", "v"};
  m.confidence = 1.0;
  matches.push_back(m);
  auto queries = GenerateMappings(target, matches, {}, {});
  auto result = ExecuteMapping(queries[0], db, {}, target.GetTable("out"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(ExecutorEdgeTest, EmptyRelationListRejected) {
  Database db("src");
  MappingQuery query;
  query.target_table = "out";
  TableSchema out("out");
  out.AddAttribute("v", ValueType::kString);
  auto result = ExecuteMapping(query, db, {}, out);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------ Selection bookkeeping

TEST(SelectionBookkeepingTest, SelectedViewsMatchEmittedConditions) {
  RetailOptions d;
  d.num_items = 250;
  d.gamma = 4;
  d.seed = 95;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.early_disjuncts = false;
  o.seed = 96;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  std::set<std::string> selected_conditions;
  for (const View& v : r.selected_views) {
    selected_conditions.insert(v.condition().ToString());
  }
  for (const Match& m : r.matches) {
    if (m.condition.is_true()) continue;
    EXPECT_TRUE(selected_conditions.count(m.condition.ToString()))
        << m.ToString();
  }
}

TEST(SelectionBookkeepingTest, MatchesSortedByTargetThenConfidence) {
  RetailOptions d;
  d.num_items = 250;
  d.seed = 97;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.seed = 98;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  for (size_t i = 1; i < r.matches.size(); ++i) {
    const Match& prev = r.matches[i - 1];
    const Match& cur = r.matches[i];
    bool target_ordered = prev.target < cur.target || prev.target == cur.target;
    EXPECT_TRUE(target_ordered);
    if (prev.target == cur.target) {
      EXPECT_GE(prev.confidence, cur.confidence);
    }
  }
}

// ------------------------------------------------ Sample-size robustness

class SampleSizeRobustnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SampleSizeRobustnessTest, PipelineRunsAtAllSizes) {
  RetailOptions d;
  d.num_items = GetParam();
  d.seed = 99;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.seed = 100;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  MatchQuality q = EvaluateMatches(data.truth, r.matches);
  EXPECT_GE(q.precision, 0.0);  // completing cleanly is the main assertion
  if (GetParam() >= 200) {
    EXPECT_GT(q.fmeasure, 0.5);  // enough data: must actually work
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SampleSizeRobustnessTest,
                         ::testing::Values(2, 5, 10, 50, 200, 400));

}  // namespace
}  // namespace csm

namespace csm {
namespace {

// Ablation: the size-matched placebo correction (DESIGN.md) is what keeps
// wide noisy schemas from drowning real improvements.
TEST(PlaceboCorrectionTest, ImprovesWideSchemaFMeasure) {
  RetailOptions d;
  d.num_items = 200;
  d.extra_noncategorical = 8;
  d.extra_categorical = 2;
  d.seed = 101;
  double with_sum = 0.0, without_sum = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    RetailDataset data = MakeRetailDataset(d);
    ContextMatchOptions o;
    o.omega = 0.1;
    o.seed = 102 + static_cast<uint64_t>(rep);
    o.placebo_correction = true;
    with_sum += EvaluateMatches(
                    data.truth,
                    ContextMatch(data.source, data.target, o).matches)
                    .fmeasure;
    o.placebo_correction = false;
    without_sum += EvaluateMatches(
                       data.truth,
                       ContextMatch(data.source, data.target, o).matches)
                       .fmeasure;
    d.seed += 10;
  }
  EXPECT_GT(with_sum, without_sum);
  EXPECT_GT(with_sum / 3.0, 0.3);
}

TEST(PlaceboCorrectionTest, DoesNotHurtCleanSchemas) {
  RetailOptions d;
  d.num_items = 300;
  d.seed = 111;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.1;
  o.seed = 112;
  o.placebo_correction = true;
  MatchQuality q = EvaluateMatches(
      data.truth, ContextMatch(data.source, data.target, o).matches);
  EXPECT_GT(q.fmeasure, 0.75);
}

}  // namespace
}  // namespace csm
