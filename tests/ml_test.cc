// Tests for src/ml: Naive Bayes, Gaussian classifier, evaluation machinery.

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/evaluation.h"
#include "ml/gaussian_classifier.h"
#include "ml/naive_bayes.h"

namespace csm {
namespace {

// ------------------------------------------------------------ NaiveBayes

NaiveBayesClassifier TrainedBookCdClassifier() {
  NaiveBayesClassifier nb(3);
  const char* books[] = {"the silent river", "a winter garden",
                         "the lost kingdom", "history of light",
                         "the paper ocean"};
  const char* cds[] = {"velvet thunder", "neon wolves live", "cobalt drift",
                       "static bloom remix", "echo parade"};
  for (const char* b : books) nb.Train(Value::String(b), "book");
  for (const char* c : cds) nb.Train(Value::String(c), "cd");
  return nb;
}

TEST(NaiveBayesTest, ClassifiesTrainingLikeInputs) {
  NaiveBayesClassifier nb = TrainedBookCdClassifier();
  EXPECT_EQ(nb.Classify(Value::String("the silent kingdom")), "book");
  EXPECT_EQ(nb.Classify(Value::String("velvet drift")), "cd");
}

TEST(NaiveBayesTest, LabelsAndTrainingSize) {
  NaiveBayesClassifier nb = TrainedBookCdClassifier();
  EXPECT_EQ(nb.Labels(), (std::vector<std::string>{"book", "cd"}));
  EXPECT_EQ(nb.TrainingSize(), 10u);
}

TEST(NaiveBayesTest, UntrainedReturnsEmpty) {
  NaiveBayesClassifier nb;
  EXPECT_EQ(nb.Classify(Value::String("anything")), "");
  EXPECT_TRUE(nb.Labels().empty());
}

TEST(NaiveBayesTest, NullInputsIgnored) {
  NaiveBayesClassifier nb;
  nb.Train(Value::Null(), "x");
  EXPECT_EQ(nb.TrainingSize(), 0u);
  nb.Train(Value::String("abc"), "x");
  EXPECT_EQ(nb.Classify(Value::Null()), "");
}

TEST(NaiveBayesTest, LogScoreOrdersLabels) {
  NaiveBayesClassifier nb = TrainedBookCdClassifier();
  Value v = Value::String("the silent garden");
  EXPECT_GT(nb.LogScore(v, "book"), nb.LogScore(v, "cd"));
  EXPECT_EQ(nb.LogScore(v, "unknown_label"),
            -std::numeric_limits<double>::infinity());
}

TEST(NaiveBayesTest, UnseenInputGetsDeterministicTrainedLabel) {
  NaiveBayesClassifier nb;
  nb.Train(Value::String("aaa"), "major");
  nb.Train(Value::String("aab"), "major");
  nb.Train(Value::String("aac"), "major");
  nb.Train(Value::String("zzz"), "minor");
  // Input sharing no informative grams still classifies to some trained
  // label, deterministically.
  std::string first = nb.Classify(Value::String("qqq"));
  EXPECT_TRUE(first == "major" || first == "minor");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(nb.Classify(Value::String("qqq")), first);
  }
}

TEST(NaiveBayesTest, NumericInputsClassifiedViaRendering) {
  NaiveBayesClassifier nb;
  for (int i = 0; i < 5; ++i) {
    nb.Train(Value::Int(1000 + i), "low");
    nb.Train(Value::Int(999000 + i), "high");
  }
  EXPECT_EQ(nb.Classify(Value::Int(1007)), "low");
  EXPECT_EQ(nb.Classify(Value::Int(999007)), "high");
}

TEST(NaiveBayesTest, DeterministicClassification) {
  NaiveBayesClassifier a = TrainedBookCdClassifier();
  NaiveBayesClassifier b = TrainedBookCdClassifier();
  const char* probes[] = {"river", "thunder", "x", "the the the"};
  for (const char* p : probes) {
    EXPECT_EQ(a.Classify(Value::String(p)), b.Classify(Value::String(p)));
  }
}

TEST(NaiveBayesTest, CodedPathMatchesBoxedPath) {
  StringDictionary dict;
  const char* books[] = {"the silent river", "a winter garden",
                         "the lost kingdom"};
  const char* cds[] = {"velvet thunder", "neon wolves live", "cobalt drift"};
  NaiveBayesClassifier boxed(3), coded(3);
  for (const char* b : books) {
    boxed.Train(Value::String(b), "book");
    coded.TrainCoded(dict, dict.GetOrAdd(b), "book");
  }
  for (const char* c : cds) {
    boxed.Train(Value::String(c), "cd");
    coded.TrainCoded(dict, dict.GetOrAdd(c), "cd");
  }
  EXPECT_EQ(boxed.TrainingSize(), coded.TrainingSize());
  const char* probes[] = {"the silent kingdom", "velvet drift", "qqq"};
  for (const char* p : probes) {
    const uint32_t code = dict.GetOrAdd(p);
    EXPECT_EQ(coded.ClassifyCoded(dict, code), boxed.Classify(Value::String(p)));
  }
  EXPECT_EQ(coded.ClassifyCoded(dict, kNullCode), "");
}

TEST(NaiveBayesTest, ClassifyCodedMemoizesPerDistinctValue) {
  StringDictionary dict;
  NaiveBayesClassifier nb(3);
  nb.TrainCoded(dict, dict.GetOrAdd("aaa"), "a");
  nb.TrainCoded(dict, dict.GetOrAdd("zzz"), "z");
  const uint32_t probe = dict.GetOrAdd("aab");
  const std::string first = nb.ClassifyCoded(dict, probe);
  const uint64_t hits_before =
      GlobalTokenKernelStats().nb_memo_hits.load(std::memory_order_relaxed);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(nb.ClassifyCoded(dict, probe), first);
  }
  const uint64_t hits_after =
      GlobalTokenKernelStats().nb_memo_hits.load(std::memory_order_relaxed);
  EXPECT_GE(hits_after - hits_before, 10u);
}

TEST(NaiveBayesTest, TrainingAfterClassifyInvalidatesMemo) {
  StringDictionary dict;
  NaiveBayesClassifier nb(3);
  const uint32_t aaa = dict.GetOrAdd("aaa");
  const uint32_t probe = dict.GetOrAdd("aaz");
  nb.TrainCoded(dict, aaa, "a");
  EXPECT_EQ(nb.ClassifyCoded(dict, probe), "a");
  // Flood a second label; the classifier must re-score, not replay the memo.
  for (int i = 0; i < 20; ++i) {
    nb.TrainCoded(dict, dict.GetOrAdd("aazq"), "z");
  }
  NaiveBayesClassifier fresh(3);
  fresh.TrainCoded(dict, aaa, "a");
  for (int i = 0; i < 20; ++i) {
    fresh.TrainCoded(dict, dict.GetOrAdd("aazq"), "z");
  }
  EXPECT_EQ(nb.ClassifyCoded(dict, probe), fresh.ClassifyCoded(dict, probe));
  EXPECT_EQ(nb.Classify(Value::String("aaz")), fresh.ClassifyCoded(dict, probe));
}

TEST(NaiveBayesTest, LargeQFallsBackToInternedWordGrams) {
  // q > kMaxPackedGramQ routes through the TokenInterner fallback; the
  // classifier contract is unchanged.
  NaiveBayesClassifier nb(6);
  nb.Train(Value::String("alpha beta gamma"), "greek");
  nb.Train(Value::String("monday tuesday"), "days");
  EXPECT_EQ(nb.Classify(Value::String("alpha gamma")), "greek");
  EXPECT_EQ(nb.Classify(Value::String("monday")), "days");
}

// -------------------------------------------------------------- Gaussian

GaussianClassifier TrainedGaussian(double sigma, Rng& rng) {
  GaussianClassifier g;
  for (int i = 0; i < 200; ++i) {
    g.Train(Value::Real(rng.NextGaussian(10.0, sigma)), "low");
    g.Train(Value::Real(rng.NextGaussian(50.0, sigma)), "high");
  }
  return g;
}

TEST(GaussianTest, SeparatesWellSeparatedClasses) {
  Rng rng(17);
  GaussianClassifier g = TrainedGaussian(3.0, rng);
  EXPECT_EQ(g.Classify(Value::Real(11.0)), "low");
  EXPECT_EQ(g.Classify(Value::Real(49.0)), "high");
  EXPECT_EQ(g.Classify(Value::Int(9)), "low");  // ints widen
}

TEST(GaussianTest, MidpointGoesToCloserMean) {
  Rng rng(18);
  GaussianClassifier g = TrainedGaussian(3.0, rng);
  EXPECT_EQ(g.Classify(Value::Real(20.0)), "low");
  EXPECT_EQ(g.Classify(Value::Real(40.0)), "high");
}

TEST(GaussianTest, PriorsMatterForImbalancedData) {
  GaussianClassifier g;
  Rng rng(19);
  for (int i = 0; i < 900; ++i) {
    g.Train(Value::Real(rng.NextGaussian(0.0, 10.0)), "common");
  }
  for (int i = 0; i < 10; ++i) {
    g.Train(Value::Real(rng.NextGaussian(5.0, 10.0)), "rare");
  }
  // Near the rare mean but the common prior dominates at equal likelihood
  // distance.
  EXPECT_EQ(g.Classify(Value::Real(2.5)), "common");
}

TEST(GaussianTest, NonNumericInputFallsBackToMostFrequent) {
  GaussianClassifier g;
  g.Train(Value::Real(1.0), "a");
  g.Train(Value::Real(2.0), "a");
  g.Train(Value::Real(100.0), "b");
  EXPECT_EQ(g.Classify(Value::String("oops")), "a");
}

TEST(GaussianTest, StringTrainingIgnored) {
  GaussianClassifier g;
  g.Train(Value::String("nope"), "a");
  EXPECT_EQ(g.TrainingSize(), 0u);
  EXPECT_EQ(g.Classify(Value::Real(1.0)), "");
}

TEST(GaussianTest, ConstantClassHandledByStdDevFloor) {
  GaussianClassifier g;
  for (int i = 0; i < 10; ++i) g.Train(Value::Real(5.0), "const");
  for (int i = 0; i < 10; ++i) {
    g.Train(Value::Real(20.0 + static_cast<double>(i)), "spread");
  }
  EXPECT_EQ(g.Classify(Value::Real(5.0)), "const");
  EXPECT_EQ(g.Classify(Value::Real(24.0)), "spread");
}

TEST(GaussianTest, LogScoreUnknownLabelIsMinusInfinity) {
  GaussianClassifier g;
  g.Train(Value::Real(1.0), "a");
  EXPECT_EQ(g.LogScore(1.0, "zzz"),
            -std::numeric_limits<double>::infinity());
}

// ------------------------------------------------------------ Evaluation

TEST(EvaluationTest, AccuracyAndCounts) {
  ClassifierEvaluation e;
  e.Observe("a", "a");
  e.Observe("a", "b");
  e.Observe("b", "b");
  e.Observe("b", "b");
  EXPECT_EQ(e.total(), 4u);
  EXPECT_EQ(e.correct(), 3u);
  EXPECT_DOUBLE_EQ(e.Accuracy(), 0.75);
}

TEST(EvaluationTest, MicroAveragesEqualAccuracyForSingleLabel) {
  // Single-label multi-class: micro P == micro R == accuracy.
  ClassifierEvaluation e;
  e.Observe("a", "a");
  e.Observe("a", "b");
  e.Observe("b", "a");
  e.Observe("c", "c");
  EXPECT_DOUBLE_EQ(e.MicroPrecision(), e.Accuracy());
  EXPECT_DOUBLE_EQ(e.MicroRecall(), e.Accuracy());
  EXPECT_DOUBLE_EQ(e.MicroF(1.0), e.Accuracy());
}

TEST(EvaluationTest, PerLabelPrecisionRecall) {
  ClassifierEvaluation e;
  e.Observe("a", "a");  // a: TP
  e.Observe("a", "b");  // a: FN, b: FP
  e.Observe("b", "b");  // b: TP
  EXPECT_DOUBLE_EQ(e.LabelPrecision("a"), 1.0);
  EXPECT_DOUBLE_EQ(e.LabelRecall("a"), 0.5);
  EXPECT_DOUBLE_EQ(e.LabelPrecision("b"), 0.5);
  EXPECT_DOUBLE_EQ(e.LabelRecall("b"), 1.0);
  EXPECT_DOUBLE_EQ(e.LabelPrecision("zzz"), 0.0);
}

TEST(EvaluationTest, FBetaFormula) {
  EXPECT_DOUBLE_EQ(FBeta(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(FBeta(0.0, 0.0), 0.0);
  EXPECT_NEAR(FBeta(0.5, 1.0), 2.0 / 3.0, 1e-12);
  // beta = 2 weighs recall higher.
  EXPECT_GT(FBeta(0.5, 1.0, 2.0), FBeta(1.0, 0.5, 2.0));
}

TEST(EvaluationTest, MacroFAveragesLabels) {
  ClassifierEvaluation e;
  e.Observe("a", "a");
  e.Observe("b", "a");
  // a: P=0.5, R=1 -> F=2/3; b: P=0, R=0 -> F=0.
  EXPECT_NEAR(e.MacroF(1.0), (2.0 / 3.0) / 2.0, 1e-12);
}

TEST(EvaluationTest, ErrorPairsAreUnordered) {
  ClassifierEvaluation e;
  e.Observe("x", "y");
  e.Observe("y", "x");
  e.Observe("x", "z");
  const auto& pairs = e.error_pairs();
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs.at(MakeErrorPair("y", "x")), 2u);
  EXPECT_EQ(pairs.at(MakeErrorPair("x", "z")), 1u);
}

TEST(EvaluationTest, MakeErrorPairCanonicalizes) {
  EXPECT_EQ(MakeErrorPair("b", "a"), MakeErrorPair("a", "b"));
  EXPECT_EQ(MakeErrorPair("a", "b").first, "a");
}

TEST(EvaluationTest, NormalizedErrorPairsRankByRelativeConfusion) {
  ClassifierEvaluation e;
  // "big1"/"big2": 100 observations each, 10 confusions -> 10/200 = 0.05.
  for (int i = 0; i < 90; ++i) {
    e.Observe("big1", "big1");
    e.Observe("big2", "big2");
  }
  for (int i = 0; i < 10; ++i) {
    e.Observe("big1", "big2");
    e.Observe("big2", "big2");
  }
  // "small1"/"small2": 5 observations each, 3 confusions -> 3/10 = 0.3.
  for (int i = 0; i < 2; ++i) {
    e.Observe("small1", "small1");
    e.Observe("small2", "small2");
  }
  for (int i = 0; i < 3; ++i) {
    e.Observe("small1", "small2");
    e.Observe("small2", "small1");
  }
  auto ranked = e.NormalizedErrorPairs();
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].first, MakeErrorPair("small1", "small2"));
}

TEST(EvaluationTest, NoErrorsMeansEmptyPairs) {
  ClassifierEvaluation e;
  e.Observe("a", "a");
  EXPECT_TRUE(e.error_pairs().empty());
  EXPECT_TRUE(e.NormalizedErrorPairs().empty());
}

TEST(EvaluationTest, EmptyEvaluationIsZero) {
  ClassifierEvaluation e;
  EXPECT_DOUBLE_EQ(e.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(e.MicroF(1.0), 0.0);
  EXPECT_TRUE(e.Labels().empty());
}

// Parameterized sweep: NB accuracy should degrade gracefully as the two
// classes' vocabularies overlap more.
class NaiveBayesOverlapTest : public ::testing::TestWithParam<int> {};

TEST_P(NaiveBayesOverlapTest, AccuracyAboveChance) {
  const int shared = GetParam();  // shared tokens out of 10
  Rng rng(101 + static_cast<uint64_t>(shared));
  std::vector<std::string> vocab_a, vocab_b;
  for (int i = 0; i < 10; ++i) {
    vocab_a.push_back("worda" + std::to_string(i));
    vocab_b.push_back(i < shared ? vocab_a[static_cast<size_t>(i)]
                                 : "wordb" + std::to_string(i));
  }
  NaiveBayesClassifier nb(3);
  auto sentence = [&](const std::vector<std::string>& vocab) {
    std::string s;
    for (int w = 0; w < 3; ++w) {
      s += vocab[rng.NextBounded(vocab.size())] + " ";
    }
    return s;
  };
  for (int i = 0; i < 60; ++i) {
    nb.Train(Value::String(sentence(vocab_a)), "a");
    nb.Train(Value::String(sentence(vocab_b)), "b");
  }
  ClassifierEvaluation eval;
  for (int i = 0; i < 100; ++i) {
    eval.Observe("a", nb.Classify(Value::String(sentence(vocab_a))));
    eval.Observe("b", nb.Classify(Value::String(sentence(vocab_b))));
  }
  // Even at 70% vocabulary overlap the classifier must beat chance.
  EXPECT_GT(eval.Accuracy(), 0.55) << "shared=" << shared;
}

INSTANTIATE_TEST_SUITE_P(OverlapSweep, NaiveBayesOverlapTest,
                         ::testing::Values(0, 3, 5, 7));

}  // namespace
}  // namespace csm
