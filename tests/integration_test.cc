// Integration and property tests: end-to-end pipelines over both paper
// workloads, plus parameterized invariant sweeps.

#include <gtest/gtest.h>

#include <set>

#include "core/context_match.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"
#include "mapping/clio.h"

namespace csm {
namespace {

// ------------------------------------------------- End-to-end: Retail

TEST(IntegrationTest, RetailEndToEndAllTargets) {
  for (RetailTarget target : {RetailTarget::kRyanEyers,
                              RetailTarget::kAaronDay,
                              RetailTarget::kBarrettArney}) {
    RetailOptions d;
    d.num_items = 300;
    d.gamma = 2;
    d.target = target;
    d.seed = 51;
    RetailDataset data = MakeRetailDataset(d);
    ContextMatchOptions o;
    o.omega = 0.05;
    o.inference = ViewInferenceKind::kSrcClass;
    o.seed = 52;
    ContextMatchResult r = ContextMatch(data.source, data.target, o);
    MatchQuality q = EvaluateMatches(data.truth, r.matches);
    EXPECT_GT(q.fmeasure, 0.6) << RetailTargetToString(target);
    EXPECT_GT(q.precision, 0.8) << RetailTargetToString(target);
  }
}

TEST(IntegrationTest, RetailTgtClassInferAlsoWorks) {
  RetailOptions d;
  d.num_items = 300;
  d.gamma = 4;
  d.seed = 53;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.inference = ViewInferenceKind::kTgtClass;
  o.early_disjuncts = true;
  o.seed = 54;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  MatchQuality q = EvaluateMatches(data.truth, r.matches);
  EXPECT_GT(q.fmeasure, 0.7);
}

TEST(IntegrationTest, CorrelatedChameleonsNeverEnterGroundTruth) {
  RetailOptions d;
  d.num_items = 300;
  d.correlated_attributes = 3;
  d.rho = 0.95;
  d.seed = 55;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.seed = 56;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  // Any match conditioned on a CorrType attribute must be judged incorrect.
  for (const Match& m : r.matches) {
    if (m.condition.is_true()) continue;
    if (m.condition.MentionsAttribute("CorrType1") ||
        m.condition.MentionsAttribute("CorrType2") ||
        m.condition.MentionsAttribute("CorrType3")) {
      EXPECT_FALSE(IsCorrectMatch(data.truth, m));
    }
  }
}

// ------------------------------------------------- End-to-end: Grades

TEST(IntegrationTest, GradesAttributeNormalizationEndToEnd) {
  GradesOptions g;
  g.num_students = 100;
  g.sigma = 4.0;
  g.seed = 57;
  GradesDataset data = MakeGradesDataset(g);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.early_disjuncts = false;  // one view per exam must survive
  o.inference = ViewInferenceKind::kSrcClass;
  o.seed = 58;
  ClioQualTableResult r = ClioQualTable(data.source, data.target, o);

  // Match quality.
  MatchQuality q = EvaluateMatches(data.truth, r.match_result.matches);
  EXPECT_GT(q.fmeasure, 0.8);

  // The mapping must join the selected exam views on name via join 1.
  ASSERT_FALSE(r.mapping.queries.empty());
  bool has_multi_view_query = false;
  for (const MappingQuery& query : r.mapping.queries) {
    if (query.logical.relations.size() >= 2) {
      has_multi_view_query = true;
      for (const JoinEdge& edge : query.logical.joins) {
        EXPECT_EQ(edge.rule, JoinRuleKind::kJoin1);
        EXPECT_EQ(edge.left_attributes, std::vector<std::string>{"name"});
      }
    }
  }
  EXPECT_TRUE(has_multi_view_query);

  // Executing the mapping yields one row per student with the selected
  // exams' grades promoted to columns.
  auto executed = ExecuteMappings(r.mapping.queries, data.source,
                                  r.mapping.views, data.target.GetSchema());
  ASSERT_TRUE(executed.ok());
  const Table& wide = executed->GetTable("grades_wide");
  EXPECT_EQ(wide.num_rows(), 100u);
  // At least 4 of the 5 grade columns populated for the first row.
  size_t populated = 0;
  for (size_t c = 1; c < wide.schema().num_attributes(); ++c) {
    if (!wide.at(0, c).is_null()) ++populated;
  }
  EXPECT_GE(populated, 4u);
}

TEST(IntegrationTest, GradesViewsCarryCorrectPerExamMatches) {
  GradesOptions g;
  g.num_students = 120;
  g.sigma = 3.0;
  g.seed = 59;
  GradesDataset data = MakeGradesDataset(g);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.early_disjuncts = false;
  o.seed = 60;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  // Every emitted grade->gradeN match must condition on examNum = N.
  for (const Match& m : r.matches) {
    if (m.condition.is_true() || m.source.attribute != "grade") continue;
    const std::string& target_attr = m.target.attribute;  // "gradeN"
    ASSERT_EQ(m.condition.NumAttributes(), 1u);
    ASSERT_EQ(m.condition.clauses()[0].values.size(), 1u);
    int64_t exam = m.condition.clauses()[0].values[0].AsInt();
    EXPECT_EQ(target_attr, "grade" + std::to_string(exam)) << m.ToString();
  }
}

// ----------------------------------------------------- Property sweeps

/// Invariant: the selected matches are always a subset of the scored pool,
/// selected views are among the candidates, and evaluation metrics are in
/// range — across a grid of option combinations.
struct PipelineParam {
  ViewInferenceKind inference;
  SelectionPolicy selection;
  bool early;
};

class PipelinePropertyTest : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelinePropertyTest, InvariantsHold) {
  PipelineParam p = GetParam();
  RetailOptions d;
  d.num_items = 200;
  d.gamma = 4;
  d.seed = 61;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.inference = p.inference;
  o.selection = p.selection;
  o.early_disjuncts = p.early;
  o.omega = 0.05;
  o.seed = 62;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);

  std::set<std::string> candidate_keys;
  for (const View& v : r.pool.candidate_views) {
    candidate_keys.insert(v.base_table() + "|" + v.condition().ToString());
  }
  for (const View& v : r.selected_views) {
    EXPECT_TRUE(candidate_keys.count(v.base_table() + "|" +
                                     v.condition().ToString()))
        << v.ToString();
  }
  for (const Match& m : r.matches) {
    EXPECT_GE(m.confidence, 0.0);
    EXPECT_LE(m.confidence, 1.0);
    if (!m.condition.is_true()) {
      EXPECT_TRUE(candidate_keys.count(m.source.table + "|" +
                                       m.condition.ToString()))
          << m.ToString();
    }
  }
  MatchQuality q = EvaluateMatches(data.truth, r.matches);
  EXPECT_GE(q.accuracy, 0.0);
  EXPECT_LE(q.accuracy, 1.0);
  EXPECT_GE(q.precision, 0.0);
  EXPECT_LE(q.precision, 1.0);
  EXPECT_LE(q.correct_matches, q.view_matches);
}

INSTANTIATE_TEST_SUITE_P(
    OptionGrid, PipelinePropertyTest,
    ::testing::Values(
        PipelineParam{ViewInferenceKind::kNaive, SelectionPolicy::kQualTable,
                      true},
        PipelineParam{ViewInferenceKind::kNaive, SelectionPolicy::kMultiTable,
                      false},
        PipelineParam{ViewInferenceKind::kSrcClass,
                      SelectionPolicy::kQualTable, true},
        PipelineParam{ViewInferenceKind::kSrcClass,
                      SelectionPolicy::kQualTable, false},
        PipelineParam{ViewInferenceKind::kSrcClass,
                      SelectionPolicy::kMultiTable, true},
        PipelineParam{ViewInferenceKind::kTgtClass,
                      SelectionPolicy::kQualTable, true},
        PipelineParam{ViewInferenceKind::kTgtClass,
                      SelectionPolicy::kQualTable, false}));

/// Invariant: whatever omega is, raising it never *adds* selected views.
class OmegaMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(OmegaMonotonicityTest, HigherOmegaSelectsFewerOrEqualViews) {
  double omega = GetParam();
  RetailOptions d;
  d.num_items = 200;
  d.seed = 63;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions lo;
  lo.omega = omega;
  lo.seed = 64;
  ContextMatchOptions hi = lo;
  hi.omega = omega + 0.1;
  ContextMatchResult r_lo = ContextMatch(data.source, data.target, lo);
  ContextMatchResult r_hi = ContextMatch(data.source, data.target, hi);
  EXPECT_GE(r_lo.selected_views.size(), r_hi.selected_views.size());
}

INSTANTIATE_TEST_SUITE_P(OmegaSweep, OmegaMonotonicityTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.4));

/// Invariant: the materialized views of a selected family never overlap and
/// never exceed the base table.
TEST(IntegrationTest, SelectedViewsPartitionTheirLabelSlices) {
  RetailOptions d;
  d.num_items = 250;
  d.gamma = 4;
  d.seed = 65;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.early_disjuncts = true;
  o.seed = 66;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  const Table& inv = data.source.GetTable("inventory");
  std::set<size_t> claimed;
  for (const View& v : r.selected_views) {
    for (size_t row : v.MatchingRows(inv)) {
      EXPECT_TRUE(claimed.insert(row).second)
          << "row " << row << " claimed twice";
    }
  }
  EXPECT_LE(claimed.size(), inv.num_rows());
}

/// Failure injection: empty source tables and all-null columns must not
/// crash the pipeline.
TEST(IntegrationTest, DegenerateInputsAreHandled) {
  TableSchema schema("empty_table");
  schema.AddAttribute("a", ValueType::kString);
  schema.AddAttribute("b", ValueType::kInt);
  Database source("src");
  source.AddTable(Table(schema));
  TableSchema nulls_schema("nulls");
  nulls_schema.AddAttribute("x", ValueType::kString);
  Table nulls(nulls_schema);
  for (int i = 0; i < 10; ++i) nulls.AddRow({Value::Null()});
  source.AddTable(std::move(nulls));

  RetailOptions d;
  d.num_items = 50;
  d.seed = 67;
  RetailDataset data = MakeRetailDataset(d);

  ContextMatchOptions o;
  o.seed = 68;
  ContextMatchResult r = ContextMatch(source, data.target, o);
  EXPECT_TRUE(r.matches.empty());
}

TEST(IntegrationTest, SingleRowSourceDoesNotCrash) {
  RetailOptions d;
  d.num_items = 1;
  d.seed = 69;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 70;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  (void)r;  // completing without CHECK failure is the assertion
}

}  // namespace
}  // namespace csm

// Appended: Example 1.2 of the paper — the price table with a prccode
// column ("reg" / "sale") whose rows normalize into separate price and
// sale-price columns of the target music table.
#include "datagen/wordlists.h"

namespace csm {
namespace {

TEST(IntegrationTest, Example12PriceNormalization) {
  Rng rng(71);
  // Source: music items plus a price table with one row per (item, code).
  TableSchema items_schema("items");
  items_schema.AddAttribute("iid", ValueType::kInt);
  items_schema.AddAttribute("title", ValueType::kString);
  Table items(items_schema);
  TableSchema price_schema("price");
  price_schema.AddAttribute("pid", ValueType::kInt);
  price_schema.AddAttribute("prccode", ValueType::kString);
  price_schema.AddAttribute("price", ValueType::kReal);
  Table price(price_schema);
  for (int64_t i = 0; i < 150; ++i) {
    items.AddRow({Value::Int(i), Value::String(MakeAlbumTitle(rng))});
    double regular = 10.0 + rng.NextDouble() * 10.0;
    price.AddRow({Value::Int(i), Value::String("reg"), Value::Real(regular)});
    price.AddRow({Value::Int(i), Value::String("sale"),
                  Value::Real(regular * 0.5)});
  }
  Database source("src");
  source.AddTable(std::move(items));
  source.AddTable(std::move(price));

  // Target: one music table with separate price and saleprice columns.
  TableSchema music_schema("music");
  music_schema.AddAttribute("mid", ValueType::kInt);
  music_schema.AddAttribute("name", ValueType::kString);
  music_schema.AddAttribute("price", ValueType::kReal);
  music_schema.AddAttribute("saleprice", ValueType::kReal);
  Table music(music_schema);
  for (int64_t i = 0; i < 150; ++i) {
    double regular = 10.0 + rng.NextDouble() * 10.0;
    music.AddRow({Value::Int(i), Value::String(MakeAlbumTitle(rng)),
                  Value::Real(regular), Value::Real(regular * 0.5)});
  }
  Database target("tgt");
  target.AddTable(std::move(music));

  ContextMatchOptions o;
  o.tau = 0.45;  // the sale edge is the paper's false-negative example
  o.omega = 0.025;
  o.early_disjuncts = false;
  // QualTable picks a single best source table per target table (§3.4), so
  // the supplementary price table would lose to items for the music target;
  // MultiTable's per-target-attribute selection is the right policy when a
  // table *supplements* another (as Fig. 4 supplements Rs).
  o.selection = SelectionPolicy::kMultiTable;
  o.seed = 72;
  ContextMatchResult r = ContextMatch(source, target, o);

  bool reg_to_price = false, sale_to_saleprice = false;
  for (const Match& m : r.matches) {
    if (m.condition.is_true() || m.source.attribute != "price") continue;
    ASSERT_EQ(m.condition.NumAttributes(), 1u);
    const auto& clause = m.condition.clauses()[0];
    EXPECT_EQ(clause.attribute, "prccode");
    if (clause.Matches(Value::String("reg")) &&
        m.target.attribute == "price") {
      reg_to_price = true;
    }
    if (clause.Matches(Value::String("sale")) &&
        m.target.attribute == "saleprice") {
      sale_to_saleprice = true;
    }
  }
  EXPECT_TRUE(reg_to_price);
  EXPECT_TRUE(sale_to_saleprice);
}

}  // namespace
}  // namespace csm
