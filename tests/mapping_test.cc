// Tests for src/mapping: constraints, mining, propagation rules, join
// rules / logical tables, query generation, and execution.

#include <gtest/gtest.h>

#include <set>

#include "mapping/association.h"
#include "mapping/clio.h"
#include "mapping/constraint_mining.h"
#include "mapping/constraints.h"
#include "mapping/executor.h"
#include "mapping/propagation.h"
#include "mapping/query_gen.h"
#include "tests/test_util.h"

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::N;
using testing::R;
using testing::S;

// The running example of Sections 4.1-4.3: student/project.
Table StudentTable() {
  return MakeTable("student", {"name", "email", "address"},
                   {{S("ann"), S("ann@u"), S("12 elm")},
                    {S("bob"), S("bob@u"), S("9 oak")},
                    {S("cat"), S("cat@u"), S("4 fir")}});
}

Table ProjectTable() {
  // (name, assign, grade, instructor); key (name, assign).
  return MakeTable("project", {"name", "assign", "grade", "instructor"},
                   {{S("ann"), I(0), S("A"), S("prof x")},
                    {S("ann"), I(1), S("B"), S("prof y")},
                    {S("bob"), I(0), S("B"), S("prof x")},
                    {S("bob"), I(1), S("A"), S("prof y")},
                    {S("cat"), I(0), S("C"), S("prof x")},
                    {S("cat"), I(1), S("A"), S("prof y")}});
}

Database StudentDb() {
  Database db("src");
  db.AddTable(StudentTable());
  db.AddTable(ProjectTable());
  return db;
}

View AssignView(int i) {
  return View("V" + std::to_string(i), "project",
              Condition::Equals("assign", I(i)), {"name", "grade"});
}

// ------------------------------------------------------------ Constraints

TEST(ConstraintsTest, ToStringRendering) {
  Key k{"project", {"name", "assign"}};
  EXPECT_EQ(k.ToString(), "project[name, assign] -> project");
  ForeignKey fk{"project", {"name"}, "student", {"name"}};
  EXPECT_EQ(fk.ToString(), "project[name] ⊆ student[name]");
  ContextualForeignKey cfk{"V0",       {"name"},  "assign", Value::Int(0),
                           "project",  {"name"},  "assign"};
  EXPECT_EQ(cfk.ToString(), "V0[name, assign = 0] ⊆ project[name, assign]");
}

TEST(ConstraintsTest, AddDeduplicates) {
  ConstraintSet set;
  set.Add(Key{"t", {"a"}});
  set.Add(Key{"t", {"a"}});
  set.Add(ForeignKey{"t", {"a"}, "u", {"b"}});
  set.Add(ForeignKey{"t", {"a"}, "u", {"b"}});
  EXPECT_EQ(set.keys.size(), 1u);
  EXPECT_EQ(set.foreign_keys.size(), 1u);
  EXPECT_EQ(set.size(), 2u);
}

TEST(ConstraintsTest, HasKeyChecksCoverage) {
  ConstraintSet set;
  set.Add(Key{"t", {"a", "b"}});
  EXPECT_TRUE(set.HasKey("t", {"a", "b", "c"}));  // superset covers
  EXPECT_FALSE(set.HasKey("t", {"a"}));
  EXPECT_FALSE(set.HasKey("u", {"a", "b"}));
  EXPECT_EQ(set.KeysOf("t").size(), 1u);
}

TEST(ConstraintsTest, MergeCombines) {
  ConstraintSet a, b;
  a.Add(Key{"t", {"x"}});
  b.Add(Key{"t", {"x"}});
  b.Add(Key{"u", {"y"}});
  a.Merge(b);
  EXPECT_EQ(a.keys.size(), 2u);
}

// ----------------------------------------------------------------- Mining

TEST(MiningTest, SingleAttributeKeys) {
  auto keys = MineKeys(StudentTable());
  // name, email, address all unique in the sample.
  EXPECT_EQ(keys.size(), 3u);
  for (const Key& k : keys) EXPECT_EQ(k.attributes.size(), 1u);
}

TEST(MiningTest, CompositeKeysWhenNoSingleKey) {
  auto keys = MineKeys(ProjectTable());
  bool found_name_assign = false;
  for (const Key& k : keys) {
    if (k.attributes == std::vector<std::string>{"name", "assign"}) {
      found_name_assign = true;
    }
    // Minimality: no single-attribute key exists in this table except none.
    EXPECT_LE(k.attributes.size(), 2u);
  }
  EXPECT_TRUE(found_name_assign);
}

TEST(MiningTest, NullColumnsAreNotKeys) {
  Table t = MakeTable("t", {"a"}, {{I(1)}, {N()}});
  EXPECT_TRUE(MineKeys(t).empty());
}

TEST(MiningTest, DuplicatesAreNotKeys) {
  Table t = MakeTable("t", {"a", "b"},
                      {{I(1), I(1)}, {I(1), I(2)}, {I(2), I(1)}});
  auto keys = MineKeys(t);
  ASSERT_EQ(keys.size(), 1u);  // only the pair (a, b)
  EXPECT_EQ(keys[0].attributes.size(), 2u);
}

TEST(MiningTest, MinimalKeysOnlySuppressesSupersets) {
  Table t = MakeTable("t", {"id", "x"},
                      {{I(1), S("a")}, {I(2), S("a")}, {I(3), S("b")}});
  MiningOptions options;
  auto keys = MineKeys(t, options);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].attributes, std::vector<std::string>{"id"});
  options.minimal_keys_only = false;
  auto all = MineKeys(t, options);
  EXPECT_EQ(all.size(), 2u);  // id and (id, x)
}

TEST(MiningTest, ForeignKeyDiscoveredFromInclusion) {
  Database db = StudentDb();
  ConstraintSet constraints = MineConstraints(db);
  bool found = false;
  for (const ForeignKey& fk : constraints.foreign_keys) {
    if (fk.referencing == "project" && fk.fk_attributes[0] == "name" &&
        fk.referenced == "student" && fk.key_attributes[0] == "name") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << constraints.ToString();
}

TEST(MiningTest, FkRequiresMinDistinctValues) {
  Database db("d");
  db.AddTable(MakeTable("ref", {"k"}, {{I(1)}, {I(2)}, {I(3)}}));
  db.AddTable(MakeTable("one", {"v"}, {{I(2)}, {I(2)}}));
  MiningOptions options;
  options.min_fk_distinct_values = 2;
  ConstraintSet constraints = MineConstraints(db, options);
  // "one.v" has a single distinct value: no FK mined.
  EXPECT_TRUE(constraints.foreign_keys.empty());
}

// ------------------------------------------------------------ Propagation

TEST(PropagationTest, ContextualPropagationDerivesViewKey) {
  Database db = StudentDb();
  PropagationInput input;
  input.views = {AssignView(0), AssignView(1)};
  input.base_constraints.Add(Key{"project", {"name", "assign"}});
  input.source_sample = &db;
  ConstraintSet derived = PropagateConstraints(input);
  // V_i[name] -> V_i from contextual propagation.
  EXPECT_TRUE(derived.HasKey("V0", {"name"}));
  EXPECT_TRUE(derived.HasKey("V1", {"name"}));
}

TEST(PropagationTest, ContextualConstraintDerivesContextualFk) {
  Database db = StudentDb();
  PropagationInput input;
  input.views = {AssignView(0)};
  input.base_constraints.Add(Key{"project", {"name", "assign"}});
  input.source_sample = &db;
  ConstraintSet derived = PropagateConstraints(input);
  ASSERT_EQ(derived.contextual_foreign_keys.size(), 1u);
  const ContextualForeignKey& cfk = derived.contextual_foreign_keys[0];
  EXPECT_EQ(cfk.view, "V0");
  EXPECT_EQ(cfk.fk_attributes, std::vector<std::string>{"name"});
  EXPECT_EQ(cfk.context_attribute, "assign");
  EXPECT_EQ(cfk.context_value, Value::Int(0));
  EXPECT_EQ(cfk.referenced, "project");
}

TEST(PropagationTest, FkPropagation) {
  // project[name] ⊆ student[name] propagates to the view (Example 4.2).
  Database db = StudentDb();
  PropagationInput input;
  input.views = {AssignView(0)};
  input.base_constraints.Add(Key{"project", {"name", "assign"}});
  input.base_constraints.Add(Key{"student", {"name"}});
  input.base_constraints.Add(
      ForeignKey{"project", {"name"}, "student", {"name"}});
  input.source_sample = &db;
  ConstraintSet derived = PropagateConstraints(input);
  bool found = false;
  for (const ForeignKey& fk : derived.foreign_keys) {
    if (fk.referencing == "V0" && fk.referenced == "student") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PropagationTest, KeyProjectionRequiresAttributesInView) {
  Database db = StudentDb();
  PropagationInput input;
  // View projects name+instructor: the (name, assign) key does NOT project.
  input.views = {View("U0", "project", Condition::Equals("assign", I(0)),
                      {"name", "instructor"})};
  input.base_constraints.Add(Key{"project", {"name", "assign"}});
  input.source_sample = &db;
  ConstraintSet derived = PropagateConstraints(input);
  EXPECT_TRUE(derived.HasKey("U0", {"name"}));  // contextual propagation
  // The full base key (name, assign) must NOT be declared on the view,
  // since `assign` is projected away.
  for (const Key* key : derived.KeysOf("U0")) {
    EXPECT_EQ(key->attributes, std::vector<std::string>{"name"});
  }
}

TEST(PropagationTest, ViewReferencingNeedsFullDomain) {
  Database db = StudentDb();
  PropagationInput input;
  // Select-* views so the whole key projects.
  input.views = {
      View("Vall", "project", Condition::In("assign", {I(0), I(1)})),
      View("Vpart", "project", Condition::Equals("assign", I(0)))};
  input.base_constraints.Add(Key{"project", {"name", "assign"}});
  input.source_sample = &db;
  ConstraintSet derived = PropagateConstraints(input);
  bool full_domain_fk = false, partial_fk = false;
  for (const ForeignKey& fk : derived.foreign_keys) {
    if (fk.referencing == "project" && fk.referenced == "Vall") {
      full_domain_fk = true;
    }
    if (fk.referencing == "project" && fk.referenced == "Vpart") {
      partial_fk = true;
    }
  }
  EXPECT_TRUE(full_domain_fk);   // {0,1} covers assign's sample domain
  EXPECT_FALSE(partial_fk);      // {0} does not
}

TEST(PropagationTest, NoRulesFireWithoutBaseKeys) {
  Database db = StudentDb();
  PropagationInput input;
  input.views = {AssignView(0)};
  input.source_sample = &db;
  ConstraintSet derived = PropagateConstraints(input);
  EXPECT_EQ(derived.size(), 0u);
}

// ------------------------------------------------------------ Association

ConstraintSet GradesLikeConstraints(const std::vector<View>& views) {
  ConstraintSet constraints;
  constraints.Add(Key{"project", {"name", "assign"}});
  PropagationInput input;
  input.views = views;
  input.base_constraints = constraints;
  Database db = StudentDb();
  input.source_sample = &db;
  ConstraintSet derived = PropagateConstraints(input);
  constraints.Merge(derived);
  return constraints;
}

TEST(AssociationTest, Join1BetweenSameAttributeViews) {
  std::vector<View> views = {AssignView(0), AssignView(1)};
  ConstraintSet constraints = GradesLikeConstraints(views);
  auto edges = DeriveJoinEdges({"V0", "V1"}, views, constraints);
  bool found = false;
  for (const JoinEdge& e : edges) {
    if (e.rule == JoinRuleKind::kJoin1) {
      found = true;
      EXPECT_EQ(e.left_attributes, std::vector<std::string>{"name"});
    }
  }
  EXPECT_TRUE(found);
}

TEST(AssociationTest, Join2BetweenDifferentAttributeViewsSameCondition) {
  // V0 projects (name, grade), U0 projects (name, instructor), same
  // condition assign = 0: join 2 (Example 4.5).
  std::vector<View> views = {
      AssignView(0), View("U0", "project", Condition::Equals("assign", I(0)),
                          {"name", "instructor"})};
  ConstraintSet constraints = GradesLikeConstraints(views);
  auto edges = DeriveJoinEdges({"V0", "U0"}, views, constraints);
  bool join2 = false;
  for (const JoinEdge& e : edges) {
    if (e.rule == JoinRuleKind::kJoin2) join2 = true;
  }
  EXPECT_TRUE(join2);
}

TEST(AssociationTest, NoJoin2AcrossDifferentConditions) {
  // V0 and U1 (different assign values, different attributes): Example 4.5
  // says joining them is not logical.
  std::vector<View> views = {
      AssignView(0), View("U1", "project", Condition::Equals("assign", I(1)),
                          {"name", "instructor"})};
  ConstraintSet constraints = GradesLikeConstraints(views);
  auto edges = DeriveJoinEdges({"V0", "U1"}, views, constraints);
  for (const JoinEdge& e : edges) {
    EXPECT_NE(e.rule, JoinRuleKind::kJoin2) << e.ToString();
    EXPECT_NE(e.rule, JoinRuleKind::kJoin1) << e.ToString();
  }
}

TEST(AssociationTest, Join3FromContextualForeignKey) {
  std::vector<View> views = {AssignView(0)};
  ConstraintSet constraints = GradesLikeConstraints(views);
  auto edges = DeriveJoinEdges({"V0", "project"}, views, constraints);
  bool join3 = false;
  for (const JoinEdge& e : edges) {
    if (e.rule == JoinRuleKind::kJoin3) {
      join3 = true;
      EXPECT_EQ(e.right, "project");
      ASSERT_TRUE(e.filter_attribute.has_value());
      EXPECT_EQ(*e.filter_attribute, "assign");
      EXPECT_EQ(e.filter_value, Value::Int(0));
    }
  }
  EXPECT_TRUE(join3);
}

TEST(AssociationTest, ForeignKeyEdgeBetweenBaseTables) {
  ConstraintSet constraints;
  constraints.Add(Key{"student", {"name"}});
  constraints.Add(ForeignKey{"project", {"name"}, "student", {"name"}});
  auto edges = DeriveJoinEdges({"project", "student"}, {}, constraints);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].rule, JoinRuleKind::kForeignKey);
}

TEST(AssociationTest, AssembleConnectedComponents) {
  JoinEdge ab;
  ab.left = "a";
  ab.right = "b";
  ab.left_attributes = {"k"};
  ab.right_attributes = {"k"};
  std::vector<LogicalTable> tables =
      AssembleLogicalTables({"a", "b", "c"}, {ab});
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].relations, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(tables[0].joins.size(), 1u);
  EXPECT_EQ(tables[1].relations, (std::vector<std::string>{"c"}));
}

TEST(AssociationTest, AssembleDropsCycleEdges) {
  auto edge = [](const char* l, const char* r) {
    JoinEdge e;
    e.left = l;
    e.right = r;
    e.left_attributes = {"k"};
    e.right_attributes = {"k"};
    return e;
  };
  std::vector<LogicalTable> tables = AssembleLogicalTables(
      {"a", "b", "c"}, {edge("a", "b"), edge("b", "c"), edge("c", "a")});
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].joins.size(), 2u);  // spanning tree only
}

// -------------------------------------------------------------- Query gen

MatchList GradesMatches(size_t num_views) {
  MatchList matches;
  for (size_t i = 0; i < num_views; ++i) {
    Match name;
    name.source = {"project", "name"};
    name.target = {"projs", "name"};
    name.condition = Condition::Equals("assign", I(static_cast<int64_t>(i)));
    name.confidence = 0.9;
    matches.push_back(name);
    Match grade;
    grade.source = {"project", "grade"};
    grade.target = {"projs", "grade" + std::to_string(i)};
    grade.condition = Condition::Equals("assign", I(static_cast<int64_t>(i)));
    grade.confidence = 0.9;
    matches.push_back(grade);
  }
  return matches;
}

Schema ProjsTarget(size_t num_grades) {
  Schema schema("tgt");
  TableSchema projs("projs");
  projs.AddAttribute("name", ValueType::kString);
  for (size_t i = 0; i < num_grades; ++i) {
    projs.AddAttribute("grade" + std::to_string(i), ValueType::kString);
  }
  projs.AddAttribute("advisor", ValueType::kString);  // unmapped
  schema.AddTable(projs);
  return schema;
}

TEST(QueryGenTest, MatchRelationResolvesViews) {
  std::vector<View> views = {AssignView(0)};
  Match m;
  m.source = {"project", "grade"};
  m.target = {"projs", "grade0"};
  m.condition = Condition::Equals("assign", I(0));
  EXPECT_EQ(MatchRelation(m, views), "V0");
  m.condition = Condition::True();
  EXPECT_EQ(MatchRelation(m, views), "project");
  m.condition = Condition::Equals("assign", I(9));
  EXPECT_EQ(MatchRelation(m, views), "");  // no such view
}

TEST(QueryGenTest, GeneratesOneQueryJoiningAllViews) {
  std::vector<View> views = {AssignView(0), AssignView(1)};
  ConstraintSet constraints = GradesLikeConstraints(views);
  auto queries =
      GenerateMappings(ProjsTarget(2), GradesMatches(2), views, constraints);
  ASSERT_EQ(queries.size(), 1u);
  const MappingQuery& q = queries[0];
  EXPECT_EQ(q.target_table, "projs");
  EXPECT_EQ(q.logical.relations.size(), 2u);
  EXPECT_EQ(q.logical.joins.size(), 1u);
  // grade0 maps from V0, grade1 from V1, advisor is a Skolem.
  for (const TargetAttrMapping& m : q.attr_mappings) {
    if (m.target_attribute == "grade0") {
      ASSERT_TRUE(m.source.has_value());
      EXPECT_EQ(m.source->first, "V0");
    } else if (m.target_attribute == "grade1") {
      ASSERT_TRUE(m.source.has_value());
      EXPECT_EQ(m.source->first, "V1");
    } else if (m.target_attribute == "advisor") {
      EXPECT_FALSE(m.source.has_value());
      EXPECT_TRUE(m.skolem);
    }
  }
}

TEST(QueryGenTest, DisconnectedRelationsYieldSeparateQueries) {
  std::vector<View> views = {AssignView(0), AssignView(1)};
  // No constraints at all: no join edges, two singleton logical tables.
  auto queries =
      GenerateMappings(ProjsTarget(2), GradesMatches(2), views, {});
  EXPECT_EQ(queries.size(), 2u);
}

TEST(QueryGenTest, SqlRenderingMentionsViewsAndJoins) {
  std::vector<View> views = {AssignView(0), AssignView(1)};
  ConstraintSet constraints = GradesLikeConstraints(views);
  auto queries =
      GenerateMappings(ProjsTarget(2), GradesMatches(2), views, constraints);
  ASSERT_EQ(queries.size(), 1u);
  std::string sql = queries[0].ToSql(views);
  EXPECT_NE(sql.find("insert into projs"), std::string::npos);
  EXPECT_NE(sql.find("full outer join"), std::string::npos);
  EXPECT_NE(sql.find("select name, grade from project where assign = 0"),
            std::string::npos);
  EXPECT_NE(sql.find("sk_projs_advisor"), std::string::npos);
}

// --------------------------------------------------------------- Executor

TEST(ExecutorTest, AttributeNormalizationJoinsOnName) {
  Database db = StudentDb();
  std::vector<View> views = {AssignView(0), AssignView(1)};
  ConstraintSet constraints = GradesLikeConstraints(views);
  auto queries =
      GenerateMappings(ProjsTarget(2), GradesMatches(2), views, constraints);
  ASSERT_EQ(queries.size(), 1u);
  Schema target = ProjsTarget(2);
  auto result = ExecuteMapping(queries[0], db, views, target.GetTable("projs"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 3u);  // one per student
  for (const Row& row : result->rows()) {
    // Every student got both grades promoted into one row.
    EXPECT_FALSE(row[1].is_null());
    EXPECT_FALSE(row[2].is_null());
  }
  // Spot-check ann: grades A (assign 0) and B (assign 1).
  bool found_ann = false;
  for (size_t r = 0; r < result->num_rows(); ++r) {
    if (result->at(r, "name") == S("ann")) {
      found_ann = true;
      EXPECT_EQ(result->at(r, "grade0"), S("A"));
      EXPECT_EQ(result->at(r, "grade1"), S("B"));
      EXPECT_EQ(result->at(r, "advisor").AsString(),
                "sk_projs_advisor(ann,A,B)");
    }
  }
  EXPECT_TRUE(found_ann);
}

TEST(ExecutorTest, FullOuterJoinKeepsUnmatchedRows) {
  // A student with only assign 0: the assign-1 side is NULL.
  Database db("src");
  db.AddTable(MakeTable("project", {"name", "assign", "grade", "instructor"},
                        {{S("ann"), I(0), S("A"), S("x")},
                         {S("ann"), I(1), S("B"), S("y")},
                         {S("solo"), I(0), S("C"), S("x")}}));
  std::vector<View> views = {AssignView(0), AssignView(1)};
  ConstraintSet constraints;
  constraints.Add(Key{"project", {"name", "assign"}});
  PropagationInput pi;
  pi.views = views;
  pi.base_constraints = constraints;
  pi.source_sample = &db;
  constraints.Merge(PropagateConstraints(pi));
  auto queries =
      GenerateMappings(ProjsTarget(2), GradesMatches(2), views, constraints);
  ASSERT_EQ(queries.size(), 1u);
  Schema target = ProjsTarget(2);
  auto result = ExecuteMapping(queries[0], db, views, target.GetTable("projs"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  for (size_t r = 0; r < result->num_rows(); ++r) {
    if (result->at(r, "name") == S("solo")) {
      EXPECT_EQ(result->at(r, "grade0"), S("C"));
      EXPECT_TRUE(result->at(r, "grade1").is_null());
    }
  }
}

TEST(ExecutorTest, Join3FilterRestrictsReferencedSide) {
  Database db = StudentDb();
  std::vector<View> views = {AssignView(0)};
  ConstraintSet constraints = GradesLikeConstraints(views);
  // Map (V0.name, project.instructor) into a target; join 3 connects V0 to
  // project with the assign = 0 filter.
  Schema target("tgt");
  TableSchema t("report");
  t.AddAttribute("who", ValueType::kString);
  t.AddAttribute("prof", ValueType::kString);
  target.AddTable(t);
  MatchList matches;
  Match m1;
  m1.source = {"project", "name"};
  m1.target = {"report", "who"};
  m1.condition = Condition::Equals("assign", I(0));
  m1.confidence = 0.9;
  Match m2;
  m2.source = {"project", "instructor"};
  m2.target = {"report", "prof"};
  m2.confidence = 0.9;
  matches = {m1, m2};
  auto queries = GenerateMappings(target, matches, views, constraints);
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].logical.relations.size(), 2u);
  auto result =
      ExecuteMapping(queries[0], db, views, target.GetTable("report"));
  ASSERT_TRUE(result.ok());
  // 3 students x 1 (assign 0) instructor each.
  EXPECT_EQ(result->num_rows(), 3u);
  for (const Row& row : result->rows()) {
    EXPECT_EQ(row[1], S("prof x"));  // only the assign-0 instructor
  }
}

TEST(ExecutorTest, MissingViewIsAnError) {
  Database db = StudentDb();
  MappingQuery query;
  query.target_table = "projs";
  query.logical.relations = {"no_such_view"};
  Schema target = ProjsTarget(1);
  auto result = ExecuteMapping(query, db, {}, target.GetTable("projs"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, TypeCoercionInProjection) {
  Database db("src");
  db.AddTable(MakeTable("t", {"num"}, {{I(5)}, {I(7)}}));
  Schema target("tgt");
  TableSchema out("out");
  out.AddAttribute("as_string", ValueType::kString);
  target.AddTable(out);
  MatchList matches;
  Match m;
  m.source = {"t", "num"};
  m.target = {"out", "as_string"};
  m.confidence = 1.0;
  matches.push_back(m);
  auto queries = GenerateMappings(target, matches, {}, {});
  ASSERT_EQ(queries.size(), 1u);
  auto result = ExecuteMapping(queries[0], db, {}, target.GetTable("out"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at(0, "as_string"), S("5"));
}

TEST(ExecutorTest, ExecuteMappingsUnionsPerTargetTable) {
  Database db = StudentDb();
  std::vector<View> views = {AssignView(0), AssignView(1)};
  // No join constraints: two disconnected queries into the same table.
  auto queries = GenerateMappings(ProjsTarget(2), GradesMatches(2), views, {});
  ASSERT_EQ(queries.size(), 2u);
  Schema target = ProjsTarget(2);
  auto result = ExecuteMappings(queries, db, views, target);
  ASSERT_TRUE(result.ok());
  // Union of both queries' rows (3 students x 2 queries, deduplicated per
  // query but not across queries).
  EXPECT_EQ(result->GetTable("projs").num_rows(), 6u);
}

// ---------------------------------------------------------------- Facade

TEST(ClioTest, BuildSchemaMappingMinesPropagatesAndGenerates) {
  Database db = StudentDb();
  std::vector<View> views = {AssignView(0), AssignView(1)};
  MatchList matches = GradesMatches(2);
  SchemaMappingResult result =
      BuildSchemaMapping(db, ProjsTarget(2), matches, views);
  EXPECT_FALSE(result.constraints.keys.empty());
  EXPECT_FALSE(result.constraints.contextual_foreign_keys.empty());
  ASSERT_EQ(result.queries.size(), 1u);
  EXPECT_EQ(result.queries[0].logical.relations.size(), 2u);
}

}  // namespace
}  // namespace csm
