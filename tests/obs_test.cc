// Tests for the observability layer (src/obs/): histogram quantiles,
// registry aggregation under concurrency, hierarchical span recording, the
// Chrome trace-event export, and the end-to-end span coverage of a traced
// MatchEngine run.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_engine.h"
#include "datagen/retail_gen.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace csm {
namespace {

TEST(HistogramTest, SummaryOfSingleValueIsExact) {
  obs::Histogram h;
  h.Observe(0.25);
  obs::HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.sum, 0.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 0.25);
  // Quantiles are clamped to the observed range.
  EXPECT_DOUBLE_EQ(s.p50, 0.25);
  EXPECT_DOUBLE_EQ(s.p99, 0.25);
}

TEST(HistogramTest, QuantilesOrderedAndWithinRange) {
  obs::Histogram h;
  // 1ms .. 100ms uniform-ish spread.
  for (int i = 1; i <= 100; ++i) h.Observe(i * 0.001);
  obs::HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.sum, 5.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 0.1);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Buckets are factor-2 wide, so the p50 estimate for a uniform 1..100ms
  // spread must land within a bucket of the true median (50.5ms).
  EXPECT_GT(s.p50, 0.025);
  EXPECT_LT(s.p50, 0.1);
}

TEST(HistogramTest, MergeFromCombinesCounts) {
  obs::Histogram a, b;
  a.Observe(0.001);
  a.Observe(0.002);
  b.Observe(1.0);
  a.MergeFrom(b);
  obs::HistogramSummary s = a.Summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(MetricsRegistryTest, CountersExactUnderPoolConcurrency) {
  obs::MetricsRegistry registry;
  exec::ThreadPool pool(4);
  const size_t kIters = 2000;
  exec::ParallelFor(&pool, kIters, [&](size_t i) {
    registry.AddCounter("events");
    registry.AddSeconds("phase", 0.001);
    registry.Observe("latency", 1e-4 * static_cast<double>(i % 7 + 1));
  });
  EXPECT_EQ(registry.Counter("events"), kIters);
  EXPECT_NEAR(registry.Seconds("phase"), 0.001 * kIters, 1e-6);
  EXPECT_EQ(registry.Summary("latency").count, kIters);
}

TEST(MetricsRegistryTest, MergeFromFoldsEverySection) {
  obs::MetricsRegistry a, b;
  a.AddCounter("n", 2);
  b.AddCounter("n", 3);
  a.AddSeconds("t", 1.0);
  b.AddSeconds("t", 0.5);
  b.SetGauge("g", 7.0);
  b.Observe("h", 0.01);
  a.MergeFrom(b);
  obs::PhaseReport report = a.Snapshot();
  EXPECT_EQ(report.Count("n"), 5u);
  EXPECT_DOUBLE_EQ(report.Seconds("t"), 1.5);
  EXPECT_DOUBLE_EQ(report.Gauge("g"), 7.0);
  EXPECT_EQ(report.Histogram("h").count, 1u);
}

TEST(PhaseReportTest, JsonHasAllSections) {
  obs::MetricsRegistry registry;
  registry.AddSeconds("scoring", 0.5);
  registry.AddCounter("views", 4);
  registry.SetGauge("threads", 2.0);
  registry.Observe("lat", 0.001);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"scoring\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TracerTest, NullTracerSpansAreNoops) {
  obs::ScopedSpan outer(nullptr, "outer");
  EXPECT_EQ(outer.id(), 0u);
  EXPECT_EQ(obs::Tracer::CurrentSpan(), 0u);
}

TEST(TracerTest, NestedSpansParentAutomatically) {
  obs::Tracer tracer;
  uint64_t outer_id = 0, inner_id = 0;
  {
    obs::ScopedSpan outer(&tracer, "outer");
    outer_id = outer.id();
    EXPECT_EQ(obs::Tracer::CurrentSpan(), outer_id);
    {
      obs::ScopedSpan inner(&tracer, "inner");
      inner_id = inner.id();
      EXPECT_EQ(obs::Tracer::CurrentSpan(), inner_id);
    }
    EXPECT_EQ(obs::Tracer::CurrentSpan(), outer_id);
  }
  EXPECT_EQ(obs::Tracer::CurrentSpan(), 0u);

  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto& inner =
      spans[0].name == "inner" ? spans[0] : spans[1];
  const auto& outer =
      spans[0].name == "outer" ? spans[0] : spans[1];
  EXPECT_EQ(inner.parent, outer_id);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.id, inner_id);
  EXPECT_GE(outer.duration_seconds, inner.duration_seconds);
}

TEST(TracerTest, CrossThreadSpansNestUnderPoolTaskSpans) {
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  exec::ThreadPool pool(3);
  pool.SetObservability(&registry, &tracer);
  uint64_t root_id = 0;
  {
    obs::ScopedSpan root(&tracer, "root");
    root_id = root.id();
    exec::ParallelFor(&pool, 16, [&](size_t) {
      obs::ScopedSpan work(&tracer, "work");
      // Touch the span so the loop body is not empty.
      ASSERT_NE(work.id(), 0u);
    });
  }
  pool.SetObservability(nullptr, nullptr);

  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  std::map<uint64_t, const obs::SpanRecord*> by_id;
  for (const auto& s : spans) by_id[s.id] = &s;

  size_t work_spans = 0, pool_task_spans = 0;
  for (const auto& s : spans) {
    if (s.name == "pool_task") {
      ++pool_task_spans;
      // Pool task spans parent under the span current at Submit time.
      EXPECT_EQ(s.parent, root_id);
    }
    if (s.name != "work") continue;
    ++work_spans;
    // Every work span chains up to the root: directly (inline execution on
    // the calling thread) or via its worker's pool_task span.
    ASSERT_NE(s.parent, 0u);
    const obs::SpanRecord* parent = by_id[s.parent];
    ASSERT_NE(parent, nullptr);
    EXPECT_TRUE(parent->id == root_id || parent->name == "pool_task")
        << "unexpected parent " << parent->name;
  }
  EXPECT_EQ(work_spans, 16u);
  EXPECT_GE(pool_task_spans, 1u);

  // Worker spans carry a different dense thread index than the caller's.
  std::set<size_t> thread_indices;
  for (const auto& s : spans) thread_indices.insert(s.thread_index);
  EXPECT_GE(thread_indices.size(), 2u);

  // The pool reported its task metrics into the registry.
  EXPECT_GE(registry.Counter("pool.tasks_run"), 1u);
  EXPECT_GE(registry.Summary("pool.task_run_seconds").count, 1u);
}

TEST(TracerTest, ChromeTraceJsonIsStructurallySound) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan a(&tracer, "alpha");
    obs::ScopedSpan b(&tracer, "beta \"quoted\"\n");
  }
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  // Special characters in names are escaped, not emitted raw.
  EXPECT_NE(json.find("beta \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string tree = tracer.ToTextTree();
  EXPECT_NE(tree.find("alpha"), std::string::npos);
}

TEST(TracedMatchTest, SpansCoverTheRunAndNestUnderRoot) {
  RetailOptions d;
  d.num_items = 120;
  d.seed = 21;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 22;
  o.omega = 0.1;
  o.threads = 2;

  MatchEngine engine(o);
  obs::Tracer tracer;
  engine.set_tracer(&tracer);
  ContextMatchResult result = engine.Match(data.source, data.target);
  ASSERT_FALSE(result.matches.empty());

  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  const obs::SpanRecord* root = nullptr;
  for (const auto& s : spans) {
    if (s.name == "ContextMatch") root = &s;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);

  // The root span covers (almost) all of the phase wall-clock: the
  // "spans cover the run" acceptance check.
  EXPECT_GE(tracer.RootSeconds(), 0.95 * result.TotalSeconds());

  // Every phase span nests under the root; stages sit in between.
  std::map<uint64_t, const obs::SpanRecord*> by_id;
  for (const auto& s : spans) by_id[s.id] = &s;
  std::set<std::string> phase_names;
  for (const auto& s : spans) {
    if (s.name != "standard_match" && s.name != "inference" &&
        s.name != "scoring" && s.name != "selection") {
      continue;
    }
    phase_names.insert(s.name);
    const obs::SpanRecord* p = by_id[s.parent];
    ASSERT_NE(p, nullptr) << s.name << " has unknown parent";
    if (p->name.rfind("stage:", 0) == 0) p = by_id[p->parent];
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->id, root->id) << s.name << " not under the root";
  }
  EXPECT_EQ(phase_names.size(), 4u);

  // Grid-cell and per-view scoring spans exist and chain up to the root.
  size_t cell_spans = 0, score_spans = 0;
  for (const auto& s : spans) {
    if (s.name.rfind("cell:", 0) == 0) ++cell_spans;
    if (s.name.rfind("score:", 0) == 0) ++score_spans;
  }
  EXPECT_GE(cell_spans, 1u);
  EXPECT_GE(score_spans, 1u);
  EXPECT_EQ(score_spans, result.pool.candidate_views.size());

  // The same run's metrics landed in the result's PhaseReport.
  EXPECT_EQ(result.phases.Histogram("scoring.view_seconds").count,
            result.pool.candidate_views.size());
  EXPECT_GE(result.phases.Histogram("inference.cell_seconds").count,
            cell_spans);
  EXPECT_GT(result.phases.Seconds("standard_match"), 0.0);
}

}  // namespace
}  // namespace csm
