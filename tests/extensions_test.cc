// Tests for the extension features: target-side contextual matching
// (Section 7 future work) and CSV schema inference (CLI tool substrate).

#include <gtest/gtest.h>

#include <set>

#include "core/target_context.h"
#include "datagen/retail_gen.h"
#include "relational/csv.h"
#include "tests/test_util.h"

namespace csm {
namespace {

using testing::S;

// ------------------------------------------------- TargetContextMatch

/// Reversed retail: separate Book/Music sources, combined inventory target.
struct ReversedRetail {
  Database source;  // the retail target (Book, Music)
  Database target;  // the retail source (combined inventory)

  explicit ReversedRetail(uint64_t seed) {
    RetailOptions options;
    options.num_items = 300;
    options.gamma = 2;
    options.seed = seed;
    RetailDataset data = MakeRetailDataset(options);
    source = std::move(data.target);
    target = std::move(data.source);
  }
};

TEST(TargetContextMatchTest, FindsConditionsOnTargetTables) {
  ReversedRetail data(81);
  ContextMatchOptions options;
  options.omega = 0.05;
  options.inference = ViewInferenceKind::kSrcClass;
  options.seed = 82;
  TargetContextMatchResult result =
      TargetContextMatch(data.source, data.target, options);

  ASSERT_FALSE(result.selected_target_views.empty());
  for (const View& v : result.selected_target_views) {
    EXPECT_EQ(v.base_table(), "inventory");
    EXPECT_TRUE(v.condition().MentionsAttribute("ItemType"))
        << v.ToString();
  }
  // Matches are flipped into source -> target orientation, with the
  // condition flagged as living on the target table.
  bool found_book_title = false;
  for (const Match& m : result.matches) {
    EXPECT_EQ(m.target.table, "inventory");
    if (!m.condition.is_true()) {
      EXPECT_TRUE(m.condition_on_target);
      EXPECT_NE(m.ToString().find("[target: "), std::string::npos);
    }
    if (m.source == (AttributeRef{"Book", "BookTitle"}) &&
        m.target == (AttributeRef{"inventory", "Title"}) &&
        m.condition == Condition::Equals("ItemType", S("Book1"))) {
      found_book_title = true;
    }
  }
  EXPECT_TRUE(found_book_title);
}

TEST(TargetContextMatchTest, ReversedDiagnosticsPreserved) {
  ReversedRetail data(83);
  ContextMatchOptions options;
  options.omega = 0.05;
  options.seed = 84;
  TargetContextMatchResult result =
      TargetContextMatch(data.source, data.target, options);
  EXPECT_EQ(result.matches.size(), result.reversed.matches.size());
  for (size_t i = 0; i < result.matches.size(); ++i) {
    EXPECT_EQ(result.matches[i].source, result.reversed.matches[i].target);
    EXPECT_EQ(result.matches[i].target, result.reversed.matches[i].source);
    EXPECT_DOUBLE_EQ(result.matches[i].confidence,
                     result.reversed.matches[i].confidence);
  }
}

TEST(TargetContextMatchTest, StandardMatchesAreNotFlaggedTargetConditioned) {
  ReversedRetail data(85);
  ContextMatchOptions options;
  options.omega = 5.0;  // nothing improves: only base matches survive
  options.seed = 86;
  TargetContextMatchResult result =
      TargetContextMatch(data.source, data.target, options);
  for (const Match& m : result.matches) {
    EXPECT_TRUE(m.condition.is_true());
    EXPECT_FALSE(m.condition_on_target);
  }
}

// ------------------------------------------------------ CSV inference

TEST(CsvInferenceTest, InfersIntRealString) {
  auto table = TableFromCsvInferred(
      "t", "id,price,name\n1,2.5,abc\n2,3,def\n3,4.25,ghi\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().attribute(0).type, ValueType::kInt);
  EXPECT_EQ(table->schema().attribute(1).type, ValueType::kReal);
  EXPECT_EQ(table->schema().attribute(2).type, ValueType::kString);
  EXPECT_EQ(table->at(0, "id"), Value::Int(1));
  EXPECT_EQ(table->at(1, "price"), Value::Real(3.0));
}

TEST(CsvInferenceTest, OneBadCellDemotesColumn) {
  auto table = TableFromCsvInferred("t", "x\n1\n2\noops\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().attribute(0).type, ValueType::kString);
  EXPECT_EQ(table->at(0, "x"), Value::String("1"));
}

TEST(CsvInferenceTest, EmptyCellsAreNullAndDoNotAffectType) {
  auto table = TableFromCsvInferred("t", "x\n1\n\n3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().attribute(0).type, ValueType::kInt);
  EXPECT_TRUE(table->at(1, "x").is_null());
}

TEST(CsvInferenceTest, AllEmptyColumnDefaultsToString) {
  auto table = TableFromCsvInferred("t", "a,b\n1,\n2,\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().attribute(1).type, ValueType::kString);
}

TEST(CsvInferenceTest, RoundTripThroughWriter) {
  Table original = testing::MakeTable(
      "roundtrip", {"n", "r", "s"},
      {{Value::Int(1), Value::Real(1.5), Value::String("x,y")},
       {Value::Int(2), Value::Real(2.5), Value::String("z")}});
  auto parsed = TableFromCsvInferred("roundtrip", TableToCsv(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->at(0, "n"), Value::Int(1));
  EXPECT_EQ(parsed->at(0, "r"), Value::Real(1.5));
  EXPECT_EQ(parsed->at(0, "s"), Value::String("x,y"));
}

TEST(CsvInferenceTest, ArityMismatchRejected) {
  EXPECT_FALSE(TableFromCsvInferred("t", "a,b\n1\n").ok());
}

TEST(CsvInferenceTest, FileVariantReadsFromDisk) {
  Table t = testing::MakeTable("disk", {"v"}, {{Value::Int(9)}});
  std::string path = ::testing::TempDir() + "/csm_infer_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto parsed = ReadCsvFileInferred("disk", path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(0, "v"), Value::Int(9));
}

}  // namespace
}  // namespace csm

// Appended: constraint-validation tests (Section 7's target-constraint
// checking method).
#include "datagen/grades_gen.h"
#include "mapping/clio.h"
#include "mapping/validation.h"

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::N;

TEST(ValidationTest, CleanInstanceHasNoViolations) {
  Database db("d");
  db.AddTable(MakeTable("t", {"id", "ref"}, {{I(1), I(10)}, {I(2), I(10)}}));
  db.AddTable(MakeTable("u", {"uid"}, {{I(10)}, {I(11)}}));
  ConstraintSet constraints;
  constraints.Add(Key{"t", {"id"}});
  constraints.Add(Key{"u", {"uid"}});
  constraints.Add(ForeignKey{"t", {"ref"}, "u", {"uid"}});
  EXPECT_TRUE(CheckConstraints(db, constraints).empty());
}

TEST(ValidationTest, KeyViolationReported) {
  Database db("d");
  db.AddTable(MakeTable("t", {"id"}, {{I(1)}, {I(1)}, {I(2)}}));
  ConstraintSet constraints;
  constraints.Add(Key{"t", {"id"}});
  auto violations = CheckConstraints(db, constraints);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].ToString().find("t[id] -> t"), std::string::npos);
}

TEST(ValidationTest, ForeignKeyViolationReported) {
  Database db("d");
  db.AddTable(MakeTable("t", {"ref"}, {{I(10)}, {I(99)}}));
  db.AddTable(MakeTable("u", {"uid"}, {{I(10)}}));
  ConstraintSet constraints;
  constraints.Add(ForeignKey{"t", {"ref"}, "u", {"uid"}});
  auto violations = CheckConstraints(db, constraints);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("(99)"), std::string::npos);
}

TEST(ValidationTest, NullForeignKeysReferenceNothing) {
  Database db("d");
  db.AddTable(MakeTable("t", {"ref"}, {{N()}, {I(10)}}));
  db.AddTable(MakeTable("u", {"uid"}, {{I(10)}}));
  ConstraintSet constraints;
  constraints.Add(ForeignKey{"t", {"ref"}, "u", {"uid"}});
  EXPECT_TRUE(CheckConstraints(db, constraints).empty());
}

TEST(ValidationTest, ContextualForeignKeyChecked) {
  Database db("d");
  db.AddTable(MakeTable("project", {"name", "assign"},
                        {{S("ann"), I(0)}, {S("bob"), I(0)}}));
  std::vector<View> views = {
      View("V0", "project", Condition::Equals("assign", I(0)), {"name"})};
  ConstraintSet constraints;
  // Correct contextual FK: V0[name, assign=0] ⊆ project[name, assign].
  constraints.Add(ContextualForeignKey{
      "V0", {"name"}, "assign", I(0), "project", {"name"}, "assign"});
  EXPECT_TRUE(CheckConstraints(db, constraints, views).empty());
  // Wrong context value: every V0 row is a violation.
  ConstraintSet wrong;
  wrong.Add(ContextualForeignKey{
      "V0", {"name"}, "assign", I(7), "project", {"name"}, "assign"});
  EXPECT_EQ(CheckConstraints(db, wrong, views).size(), 2u);
}

TEST(ValidationTest, ViolationCapRespected) {
  Database db("d");
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({I(1)});
  db.AddTable(MakeTable("t", {"id"}, rows));
  ConstraintSet constraints;
  constraints.Add(Key{"t", {"id"}});
  EXPECT_EQ(CheckConstraints(db, constraints, {}, 3).size(), 3u);
  EXPECT_EQ(CheckConstraints(db, constraints, {}, 0).size(), 19u);
}

TEST(ValidationTest, UnknownRelationsAndAttributesSkipped) {
  Database db("d");
  db.AddTable(MakeTable("t", {"id"}, {{I(1)}}));
  ConstraintSet constraints;
  constraints.Add(Key{"missing_table", {"id"}});
  constraints.Add(Key{"t", {"missing_attr"}});
  EXPECT_TRUE(CheckConstraints(db, constraints).empty());
}

TEST(ValidationTest, ExecutedGradesMappingSatisfiesWideKey) {
  // End-to-end: the executed attribute-normalization mapping keeps `name`
  // a key of the wide table.
  GradesOptions g;
  g.num_students = 40;
  g.sigma = 3.0;
  g.seed = 121;
  GradesDataset data = MakeGradesDataset(g);
  ContextMatchOptions o;
  o.tau = 0.45;
  o.omega = 0.025;
  o.early_disjuncts = false;
  o.seed = 122;
  ClioQualTableResult r = ClioQualTable(data.source, data.target, o);
  auto executed = ExecuteMappings(r.mapping.queries, data.source,
                                  r.mapping.views, data.target.GetSchema());
  ASSERT_TRUE(executed.ok());
  ConstraintSet target_constraints;
  target_constraints.Add(Key{"grades_wide", {"name"}});
  EXPECT_TRUE(CheckConstraints(*executed, target_constraints).empty());
}

}  // namespace
}  // namespace csm
