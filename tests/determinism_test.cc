// Bit-identical results across thread counts (DESIGN.md "Threading model &
// determinism"): ContextMatch with threads=N must produce byte-identical
// matches, selected views and scored-pool contents to threads=1, because
// the work decomposition and per-task RNG streams are fixed up front and
// only the scheduling changes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/fingerprint.h"
#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "core/match_engine.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace csm {
namespace {

/// Canonical serialization of everything a run produced — shared with the
/// differential oracles and the golden corpus (src/check/fingerprint.h).
std::string Fingerprint(const ContextMatchResult& r) {
  return check::FingerprintResult(r);
}

std::string RunRetail(uint64_t data_seed, uint64_t match_seed,
                      size_t threads) {
  RetailOptions d;
  d.num_items = 200;
  d.gamma = 2;
  d.seed = data_seed;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kSrcClass;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = match_seed;
  o.threads = threads;
  return Fingerprint(ContextMatch(data.source, data.target, o));
}

std::string RunGrades(uint64_t data_seed, uint64_t match_seed,
                      size_t threads) {
  GradesOptions d;
  d.num_students = 120;
  d.seed = data_seed;
  GradesDataset data = MakeGradesDataset(d);
  ContextMatchOptions o;
  o.tau = 0.45;
  o.omega = 0.025;
  o.early_disjuncts = false;
  o.seed = match_seed;
  o.threads = threads;
  return Fingerprint(ContextMatch(data.source, data.target, o));
}

TEST(ThreadDeterminismTest, RetailIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {1u, 7u, 31u}) {
    const std::string serial = RunRetail(seed, seed + 1, /*threads=*/1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, RunRetail(seed, seed + 1, /*threads=*/2))
        << "threads=2 diverged, seed " << seed;
    EXPECT_EQ(serial, RunRetail(seed, seed + 1, /*threads=*/4))
        << "threads=4 diverged, seed " << seed;
  }
}

TEST(ThreadDeterminismTest, GradesIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {3u, 11u}) {
    const std::string serial = RunGrades(seed, seed + 1, /*threads=*/1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, RunGrades(seed, seed + 1, /*threads=*/4))
        << "threads=4 diverged, seed " << seed;
  }
}

TEST(ThreadDeterminismTest, HardwareThreadsKnobMatchesSerial) {
  // threads=0 resolves to the hardware concurrency; still identical.
  EXPECT_EQ(RunRetail(5, 6, /*threads=*/1), RunRetail(5, 6, /*threads=*/0));
}

TEST(ThreadDeterminismTest, ReportsThreadsUsed) {
  RetailOptions d;
  d.num_items = 60;
  d.seed = 9;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 10;
  o.threads = 3;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  EXPECT_EQ(r.threads_used, 3u);
  EXPECT_EQ(r.phases.counters.at("source_tables"),
            data.source.tables().size());
}

// ---------------------------------------------------------------------------
// MatchEngine equivalence: the engine API (pooled threads, cached sessions,
// optional tracing) must be bit-identical to the free functions, because it
// only changes where state lives — never the work decomposition or the RNG
// streams.

std::string EngineRunRetail(uint64_t data_seed, uint64_t match_seed,
                            size_t threads, size_t repeats,
                            bool traced = false) {
  RetailOptions d;
  d.num_items = 200;
  d.gamma = 2;
  d.seed = data_seed;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kSrcClass;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = match_seed;
  o.threads = threads;
  MatchEngine engine(o);
  obs::Tracer tracer;
  if (traced) engine.set_tracer(&tracer);
  std::string fingerprint;
  for (size_t i = 0; i < repeats; ++i) {
    // Repeat > 1 exercises the warm session cache.
    fingerprint = Fingerprint(engine.Match(data.source, data.target));
  }
  if (repeats > 1) {
    EXPECT_GE(engine.session_cache_hits(), repeats - 1);
    EXPECT_EQ(engine.session_cache_misses(), 1u);
  }
  return fingerprint;
}

TEST(MatchEngineTest, MatchesFreeFunctionBitIdentically) {
  for (uint64_t seed : {1u, 7u}) {
    const std::string free_fn = RunRetail(seed, seed + 1, /*threads=*/1);
    EXPECT_EQ(free_fn, EngineRunRetail(seed, seed + 1, /*threads=*/1,
                                       /*repeats=*/1));
    EXPECT_EQ(free_fn, EngineRunRetail(seed, seed + 1, /*threads=*/4,
                                       /*repeats=*/1));
  }
}

TEST(MatchEngineTest, SessionCacheReuseIsInvisible) {
  const std::string cold = RunRetail(3, 4, /*threads=*/1);
  EXPECT_EQ(cold, EngineRunRetail(3, 4, /*threads=*/1, /*repeats=*/3));
  EXPECT_EQ(cold, EngineRunRetail(3, 4, /*threads=*/4, /*repeats=*/3));
}

TEST(MatchEngineTest, TracingDoesNotChangeResults) {
  const std::string untraced =
      EngineRunRetail(5, 6, /*threads=*/4, /*repeats=*/1, /*traced=*/false);
  const std::string traced =
      EngineRunRetail(5, 6, /*threads=*/4, /*repeats=*/1, /*traced=*/true);
  EXPECT_EQ(untraced, traced);
}

TEST(MatchEngineTest, GradesEngineMatchesFreeFunction) {
  GradesOptions d;
  d.num_students = 120;
  d.seed = 3;
  GradesDataset data = MakeGradesDataset(d);
  ContextMatchOptions o;
  o.tau = 0.45;
  o.omega = 0.025;
  o.early_disjuncts = false;
  o.seed = 4;
  o.threads = 2;
  const std::string free_fn =
      Fingerprint(ContextMatch(data.source, data.target, o));
  MatchEngine engine(o);
  EXPECT_EQ(free_fn, Fingerprint(engine.Match(data.source, data.target)));
  EXPECT_EQ(free_fn, Fingerprint(engine.Match(data.source, data.target)));
  EXPECT_EQ(engine.session_cache_hits(), 1u);
}

// ---------------------------------------------------------------------------
// Cancellation determinism: a run cancelled at a fixed *logical* point (a
// FaultInjector spec armed on a candidate index) must produce bit-identical
// partial results at any thread count, because degradation is quantized to
// fixed chunk boundaries and a started chunk always completes (DESIGN.md
// "Failure model, deadlines & degradation").

std::string DegradedRunRetail(size_t threads, StatusCode* code,
                              MatchCompleteness* completeness) {
  RetailOptions d;
  d.num_items = 200;
  d.gamma = 2;
  d.seed = 1;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  // NaiveInfer yields 8 candidate views on this fixture, so index 7 below
  // is guaranteed to fire during scoring.
  o.inference = ViewInferenceKind::kNaive;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = 2;
  o.threads = threads;

  CancellationToken token;
  FaultInjector::Arm({.site = "scoring.candidate",
                      .index = 7,
                      .action = FaultInjector::Action::kCancel,
                      .token = &token,
                      .reason = CancelReason::kDeadline});
  MatchEngine engine(o);
  ContextMatchResult r = engine.Match(data.source, data.target, &token);
  FaultInjector::DisarmAll();

  *code = r.status.code();
  *completeness = r.completeness;
  return Fingerprint(r);
}

TEST(CancellationDeterminismTest, FixedInjectionPointIsThreadCountInvariant) {
  StatusCode serial_code;
  MatchCompleteness serial_completeness;
  const std::string serial =
      DegradedRunRetail(1, &serial_code, &serial_completeness);
  EXPECT_EQ(serial_code, StatusCode::kDeadlineExceeded);
  EXPECT_NE(serial_completeness, MatchCompleteness::kComplete);
  EXPECT_FALSE(serial.empty());

  for (size_t threads : {2u, 4u}) {
    StatusCode code;
    MatchCompleteness completeness;
    EXPECT_EQ(serial, DegradedRunRetail(threads, &code, &completeness))
        << "degraded run diverged at threads=" << threads;
    EXPECT_EQ(code, serial_code);
    EXPECT_EQ(completeness, serial_completeness);
  }
}

// ---------------------------------------------------------------------------
// Session-cache LRU eviction: a ninth distinct (source, target) pair must
// evict only the least-recently-used entry, not flush the whole cache.  (The
// cache used to clear() wholesale when full, so a working set one pair
// larger than capacity thrashed every previously warm entry to a miss.)

Database TinyDatabase(const std::string& name, int salt) {
  std::vector<Row> rows;
  for (int r = 0; r < 6; ++r) {
    rows.push_back({testing::I(salt * 100 + r),
                    testing::S(r % 2 == 0 ? "alpha" : "beta")});
  }
  Database db(name + std::to_string(salt));
  db.AddTable(testing::MakeTable("items", {"id", "kind"}, rows));
  return db;
}

TEST(MatchEngineTest, SessionCacheEvictsLeastRecentlyUsed) {
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kNaive;
  o.seed = 1;
  o.threads = 1;
  MatchEngine engine(o);
  obs::MetricsRegistry metrics;
  engine.set_metrics(&metrics);

  const Database target = TinyDatabase("tgt", 999);
  std::vector<Database> sources;
  for (int i = 0; i < 9; ++i) sources.push_back(TinyDatabase("src", i));

  // Fill the cache to capacity (kMaxCachedSessionSets = 8 entries), then
  // touch pairs 1..7 again so pair 0 is the least recently used.
  for (int i = 0; i < 8; ++i) engine.Match(sources[i], target);
  EXPECT_EQ(engine.session_cache_misses(), 8u);
  EXPECT_EQ(engine.session_cache_evictions(), 0u);
  for (int i = 1; i < 8; ++i) engine.Match(sources[i], target);
  EXPECT_EQ(engine.session_cache_hits(), 7u);

  // A ninth distinct pair evicts exactly one entry.
  engine.Match(sources[8], target);
  EXPECT_EQ(engine.session_cache_evictions(), 1u);
  EXPECT_EQ(metrics.Counter("engine.session_cache_evictions"), 1u);

  // The seven retouched pairs and the newcomer are all still warm...
  const uint64_t hits_before = engine.session_cache_hits();
  for (int i = 1; i < 9; ++i) engine.Match(sources[i], target);
  EXPECT_EQ(engine.session_cache_hits(), hits_before + 8);

  // ...and pair 0 was the eviction victim.
  const uint64_t misses_before = engine.session_cache_misses();
  engine.Match(sources[0], target);
  EXPECT_EQ(engine.session_cache_misses(), misses_before + 1);
}

TEST(MatchEngineTest, ConjunctiveAndTargetWrappersAgree) {
  RetailOptions d;
  d.num_items = 120;
  d.gamma = 2;
  d.seed = 11;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.seed = 12;
  o.threads = 2;

  MatchEngine engine(o);
  EXPECT_EQ(
      Fingerprint(ConjunctiveContextMatch(data.source, data.target, o, 2)),
      Fingerprint(engine.ConjunctiveMatch(data.source, data.target, 2)));

  TargetContextMatchResult free_fn =
      TargetContextMatch(data.source, data.target, o);
  TargetContextMatchResult via_engine =
      engine.TargetContextMatch(data.source, data.target);
  EXPECT_EQ(Fingerprint(free_fn.reversed),
            Fingerprint(via_engine.reversed));
  ASSERT_EQ(free_fn.matches.size(), via_engine.matches.size());
  for (size_t i = 0; i < free_fn.matches.size(); ++i) {
    EXPECT_EQ(free_fn.matches[i].ToString(), via_engine.matches[i].ToString());
  }
}

// The unified Execute entrypoint must be bit-identical to the legacy
// wrappers for every mode — the wrappers are contractually thin shims, and
// this is what lets callers migrate without re-validating results.
TEST(MatchEngineTest, ExecuteMatchesLegacyEntrypointsBitIdentically) {
  RetailOptions d;
  d.num_items = 120;
  d.gamma = 2;
  d.seed = 11;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.omega = 0.05;
  o.seed = 12;
  o.threads = 2;

  MatchRequest request;
  request.source = BorrowDatabase(data.source);
  request.target = BorrowDatabase(data.target);

  {
    MatchEngine via_execute(o);
    MatchEngine via_wrapper(o);
    request.mode = MatchMode::kContext;
    EXPECT_EQ(Fingerprint(via_execute.Execute(request).result),
              Fingerprint(via_wrapper.Match(data.source, data.target)));
  }
  {
    MatchEngine via_execute(o);
    MatchEngine via_wrapper(o);
    request.mode = MatchMode::kConjunctive;
    request.max_stages = 2;
    EXPECT_EQ(
        Fingerprint(via_execute.Execute(request).result),
        Fingerprint(via_wrapper.ConjunctiveMatch(data.source, data.target, 2)));
    request.max_stages = 1;
  }
  {
    MatchEngine via_execute(o);
    MatchEngine via_wrapper(o);
    request.mode = MatchMode::kTargetContext;
    MatchResponse response = via_execute.Execute(request);
    TargetContextMatchResult legacy =
        via_wrapper.TargetContextMatch(data.source, data.target);
    EXPECT_EQ(Fingerprint(response.result), Fingerprint(legacy.reversed));
    ASSERT_EQ(response.matches.size(), legacy.matches.size());
    for (size_t i = 0; i < response.matches.size(); ++i) {
      EXPECT_EQ(response.matches[i].ToString(), legacy.matches[i].ToString());
    }
    ASSERT_EQ(response.selected_views.size(),
              legacy.selected_target_views.size());
    for (size_t i = 0; i < response.selected_views.size(); ++i) {
      EXPECT_EQ(response.selected_views[i].ToString(),
                legacy.selected_target_views[i].ToString());
    }
  }

  // Malformed requests answer kInvalidArgument without running.
  MatchEngine engine(o);
  MatchRequest bad;
  bad.mode = MatchMode::kContext;
  EXPECT_EQ(engine.Execute(bad).status.code(), StatusCode::kInvalidArgument);
  bad.source = BorrowDatabase(data.source);
  bad.target = BorrowDatabase(data.target);
  bad.max_stages = 0;
  EXPECT_EQ(engine.Execute(bad).status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace csm
