// Bit-identical results across thread counts (DESIGN.md "Threading model &
// determinism"): ContextMatch with threads=N must produce byte-identical
// matches, selected views and scored-pool contents to threads=1, because
// the work decomposition and per-task RNG streams are fixed up front and
// only the scheduling changes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/context_match.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"

namespace csm {
namespace {

/// Canonical serialization of everything a run produced.
std::string Fingerprint(const ContextMatchResult& r) {
  std::string out;
  out += "matches:\n";
  for (const Match& m : r.matches) out += "  " + m.ToString() + "\n";
  out += "selected_views:\n";
  for (const View& v : r.selected_views) {
    out += "  " + v.name() + "|" + v.base_table() + "|" +
           v.condition().ToString() + "\n";
  }
  out += "base_matches:\n";
  for (const Match& m : r.pool.base_matches) out += "  " + m.ToString() + "\n";
  out += "view_matches:\n";
  for (const Match& m : r.pool.view_matches) out += "  " + m.ToString() + "\n";
  out += "candidate_views:\n";
  for (const View& v : r.pool.candidate_views) {
    out += "  " + v.base_table() + "|" + v.condition().ToString() + "\n";
  }
  out += "view_row_counts:\n";
  for (const auto& [key, count] : r.pool.view_row_counts) {
    out += "  " + key + "=" + std::to_string(count) + "\n";
  }
  return out;
}

std::string RunRetail(uint64_t data_seed, uint64_t match_seed,
                      size_t threads) {
  RetailOptions d;
  d.num_items = 200;
  d.gamma = 2;
  d.seed = data_seed;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kSrcClass;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = match_seed;
  o.threads = threads;
  return Fingerprint(ContextMatch(data.source, data.target, o));
}

std::string RunGrades(uint64_t data_seed, uint64_t match_seed,
                      size_t threads) {
  GradesOptions d;
  d.num_students = 120;
  d.seed = data_seed;
  GradesDataset data = MakeGradesDataset(d);
  ContextMatchOptions o;
  o.tau = 0.45;
  o.omega = 0.025;
  o.early_disjuncts = false;
  o.seed = match_seed;
  o.threads = threads;
  return Fingerprint(ContextMatch(data.source, data.target, o));
}

TEST(ThreadDeterminismTest, RetailIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {1u, 7u, 31u}) {
    const std::string serial = RunRetail(seed, seed + 1, /*threads=*/1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, RunRetail(seed, seed + 1, /*threads=*/2))
        << "threads=2 diverged, seed " << seed;
    EXPECT_EQ(serial, RunRetail(seed, seed + 1, /*threads=*/4))
        << "threads=4 diverged, seed " << seed;
  }
}

TEST(ThreadDeterminismTest, GradesIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {3u, 11u}) {
    const std::string serial = RunGrades(seed, seed + 1, /*threads=*/1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, RunGrades(seed, seed + 1, /*threads=*/4))
        << "threads=4 diverged, seed " << seed;
  }
}

TEST(ThreadDeterminismTest, HardwareThreadsKnobMatchesSerial) {
  // threads=0 resolves to the hardware concurrency; still identical.
  EXPECT_EQ(RunRetail(5, 6, /*threads=*/1), RunRetail(5, 6, /*threads=*/0));
}

TEST(ThreadDeterminismTest, ReportsThreadsUsed) {
  RetailOptions d;
  d.num_items = 60;
  d.seed = 9;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 10;
  o.threads = 3;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  EXPECT_EQ(r.threads_used, 3u);
  EXPECT_EQ(r.counters.at("source_tables"), data.source.tables().size());
}

}  // namespace
}  // namespace csm
