// Tests for src/relational: Value, Schema, Table, Condition, View,
// categorical detection, sampling, CSV.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "relational/categorical.h"
#include "relational/column.h"
#include "relational/condition.h"
#include "relational/csv.h"
#include "relational/sample.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/table_view.h"
#include "relational/value.h"
#include "relational/view.h"
#include "tests/test_util.h"  // NOLINT

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::N;
using testing::R;
using testing::S;

// ----------------------------------------------------------------- Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, NumericView) {
  EXPECT_DOUBLE_EQ(Value::Int(4).AsNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value::Real(4.5).AsNumeric(), 4.5);
  EXPECT_TRUE(Value::Int(1).IsNumeric());
  EXPECT_TRUE(Value::Real(1.0).IsNumeric());
  EXPECT_FALSE(Value::String("1").IsNumeric());
  EXPECT_FALSE(Value::Null().IsNumeric());
}

TEST(ValueTest, EqualityIsTypeStrict) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::String("1"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, TotalOrder) {
  // NULL < numerics < strings.
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Int(5), Value::String(""));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Int(1), Value::Real(1.5));
  EXPECT_LT(Value::Real(0.5), Value::Int(1));
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, OrderIsStrictWeak) {
  std::vector<Value> values = {Value::String("b"), Value::Int(2),
                               Value::Null(),      Value::Real(1.5),
                               Value::Int(1),      Value::String("a")};
  std::sort(values.begin(), values.end());
  EXPECT_TRUE(values[0].is_null());
  EXPECT_EQ(values[1], Value::Int(1));
  EXPECT_EQ(values[2], Value::Real(1.5));
  EXPECT_EQ(values[3], Value::Int(2));
  EXPECT_EQ(values[4], Value::String("a"));
  EXPECT_EQ(values[5], Value::String("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  // Different types of "equal-looking" values hash apart (not guaranteed in
  // general, but required for these canary cases).
  EXPECT_NE(Value::Int(1).Hash(), Value::String("1").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Real(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Real(2.25).ToString(), "2.25");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
}

TEST(ValueTest, ParseInt) {
  auto v = Value::Parse("42", ValueType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(42));
  EXPECT_FALSE(Value::Parse("4x", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("3.5", ValueType::kInt).ok());
}

TEST(ValueTest, ParseReal) {
  auto v = Value::Parse(" 2.5 ", ValueType::kReal);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Real(2.5));
  EXPECT_FALSE(Value::Parse("abc", ValueType::kReal).ok());
}

TEST(ValueTest, ParseEmptyIsNull) {
  EXPECT_TRUE(Value::Parse("", ValueType::kInt)->is_null());
  EXPECT_TRUE(Value::Parse("   ", ValueType::kReal)->is_null());
  EXPECT_TRUE(Value::Parse("", ValueType::kString)->is_null());
}

TEST(ValueTest, ParseStringKeepsWhitespaceContent) {
  EXPECT_EQ(Value::Parse(" a b ", ValueType::kString)->AsString(), " a b ");
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, TableSchemaBasics) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  schema.AddAttribute("b", ValueType::kString);
  EXPECT_EQ(schema.num_attributes(), 2u);
  EXPECT_EQ(schema.AttributeIndex("b"), 1u);
  EXPECT_TRUE(schema.HasAttribute("a"));
  EXPECT_FALSE(schema.HasAttribute("c"));
  EXPECT_FALSE(schema.FindAttribute("c").has_value());
  EXPECT_EQ(schema.ToString(), "t(a: int, b: string)");
}

TEST(SchemaTest, DuplicateAttributeDies) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  EXPECT_DEATH(schema.AddAttribute("a", ValueType::kReal), "duplicate");
}

TEST(SchemaTest, SchemaCatalog) {
  Schema schema("db");
  schema.AddTable(TableSchema("t1", {{"a", ValueType::kInt}}));
  schema.AddTable(TableSchema(
      "t2", {{"x", ValueType::kString}, {"y", ValueType::kReal}}));
  EXPECT_EQ(schema.num_tables(), 2u);
  EXPECT_EQ(schema.TotalAttributes(), 3u);
  EXPECT_TRUE(schema.HasTable("t1"));
  EXPECT_EQ(schema.GetTable("t2").num_attributes(), 2u);
  EXPECT_EQ(schema.FindTable("nope"), nullptr);
}

TEST(SchemaTest, AttributeRefOrderAndToString) {
  AttributeRef a{"t", "x"}, b{"t", "y"}, c{"u", "a"};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.ToString(), "t.x");
  EXPECT_EQ(a, (AttributeRef{"t", "x"}));
}

// ----------------------------------------------------------------- Table

Table SampleInventory() {
  return MakeTable("inv", {"id", "type", "name", "price"},
                   {{I(1), S("book"), S("war and peace"), R(12.5)},
                    {I(2), S("cd"), S("abbey road"), R(9.0)},
                    {I(3), S("book"), S("dune"), R(7.25)},
                    {I(4), S("cd"), S("kind of blue"), N()}});
}

TEST(TableTest, BasicAccessors) {
  Table t = SampleInventory();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.name(), "inv");
  EXPECT_EQ(t.at(0, "name"), S("war and peace"));
  EXPECT_EQ(t.at(2, 0u), I(3));
  EXPECT_TRUE(t.at(3, "price").is_null());
}

TEST(TableTest, ArityMismatchDies) {
  Table t = SampleInventory();
  EXPECT_DEATH(t.AddRow({I(9)}), "arity");
}

TEST(TableTest, TypeMismatchDies) {
  Table t = SampleInventory();
  EXPECT_DEATH(t.AddRow({S("x"), S("book"), S("y"), R(1.0)}), "type mismatch");
}

TEST(TableTest, NullsBypassTypeCheck) {
  Table t = SampleInventory();
  t.AddRow({N(), N(), N(), N()});
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST(TableTest, ValueBagKeepsOrderAndNulls) {
  Table t = SampleInventory();
  std::vector<Value> bag = t.ValueBag("price");
  ASSERT_EQ(bag.size(), 4u);
  EXPECT_EQ(bag[0], R(12.5));
  EXPECT_TRUE(bag[3].is_null());
}

TEST(TableTest, ValueCountsSkipsNulls) {
  Table t = SampleInventory();
  auto counts = t.ValueCounts("type");
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[S("book")], 2u);
  EXPECT_EQ(counts[S("cd")], 2u);
  EXPECT_EQ(t.ValueCounts("price").size(), 3u);  // NULL not counted
}

TEST(TableTest, SelectRows) {
  Table t = SampleInventory();
  Table subset = t.SelectRows(std::vector<size_t>{0, 2});
  EXPECT_EQ(subset.num_rows(), 2u);
  EXPECT_EQ(subset.at(1, "name"), S("dune"));
}

TEST(TableTest, Renamed) {
  Table t = SampleInventory().Renamed("inventory2");
  EXPECT_EQ(t.name(), "inventory2");
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.schema().num_attributes(), 4u);
}

TEST(TableTest, ToStringTruncates) {
  Table t = SampleInventory();
  std::string rendered = t.ToString(2);
  EXPECT_NE(rendered.find("2 more rows"), std::string::npos);
}

TEST(DatabaseTest, AddFindGet) {
  Database db("d");
  db.AddTable(SampleInventory());
  EXPECT_TRUE(db.HasTable("inv"));
  EXPECT_EQ(db.GetTable("inv").num_rows(), 4u);
  EXPECT_EQ(db.FindTable("x"), nullptr);
  EXPECT_NE(db.FindMutableTable("inv"), nullptr);
  Schema schema = db.GetSchema();
  EXPECT_EQ(schema.num_tables(), 1u);
}

TEST(DatabaseTest, DuplicateTableDies) {
  Database db("d");
  db.AddTable(SampleInventory());
  EXPECT_DEATH(db.AddTable(SampleInventory()), "duplicate");
}

// ------------------------------------------------------------- Condition

TEST(ConditionTest, TrueCondition) {
  Condition c;
  EXPECT_TRUE(c.is_true());
  EXPECT_EQ(c.NumAttributes(), 0u);
  EXPECT_EQ(c.ToString(), "true");
  Table t = SampleInventory();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_TRUE(c.Evaluate(t.schema(), t.row(r)));
  }
}

TEST(ConditionTest, SimpleEquality) {
  Condition c = Condition::Equals("type", S("book"));
  Table t = SampleInventory();
  EXPECT_TRUE(c.Evaluate(t.schema(), t.row(0)));
  EXPECT_FALSE(c.Evaluate(t.schema(), t.row(1)));
  EXPECT_EQ(c.ToString(), "type = 'book'");
  EXPECT_EQ(c.NumAttributes(), 1u);
}

TEST(ConditionTest, DisjunctiveIn) {
  Condition c = Condition::In("id", {I(1), I(4)});
  Table t = SampleInventory();
  EXPECT_TRUE(c.Evaluate(t.schema(), t.row(0)));
  EXPECT_FALSE(c.Evaluate(t.schema(), t.row(1)));
  EXPECT_TRUE(c.Evaluate(t.schema(), t.row(3)));
  EXPECT_EQ(c.ToString(), "id in {1, 4}");
}

TEST(ConditionTest, InListIsNormalized) {
  Condition c = Condition::In("id", {I(4), I(1), I(4)});
  EXPECT_EQ(c.clauses()[0].values.size(), 2u);
  EXPECT_EQ(c.clauses()[0].values[0], I(1));  // sorted
  EXPECT_EQ(c, Condition::In("id", {I(1), I(4)}));
}

TEST(ConditionTest, ConjunctionEvaluatesAllClauses) {
  Condition c = Condition::Equals("type", S("book"))
                    .Conjoin(Condition::In("id", {I(3), I(4)}));
  Table t = SampleInventory();
  EXPECT_FALSE(c.Evaluate(t.schema(), t.row(0)));  // book but id 1
  EXPECT_FALSE(c.Evaluate(t.schema(), t.row(3)));  // id 4 but cd
  EXPECT_TRUE(c.Evaluate(t.schema(), t.row(2)));   // book, id 3
  EXPECT_EQ(c.NumAttributes(), 2u);
  EXPECT_EQ(c.ToString(), "type = 'book' and id in {3, 4}");
}

TEST(ConditionTest, NullNeverMatches) {
  Condition c = Condition::Equals("price", R(9.0));
  Table t = SampleInventory();
  EXPECT_TRUE(c.Evaluate(t.schema(), t.row(1)));
  EXPECT_FALSE(c.Evaluate(t.schema(), t.row(3)));  // NULL price
}

TEST(ConditionTest, DuplicateAttributeInConjunctionDies) {
  Condition c = Condition::Equals("a", I(1));
  EXPECT_DEATH(c.AddClause("a", {I(2)}), "already mentions");
}

TEST(ConditionTest, MentionedAttributes) {
  Condition c = Condition::Equals("x", I(1)).Conjoin(
      Condition::Equals("y", I(2)));
  EXPECT_EQ(c.MentionedAttributes(), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(c.MentionsAttribute("x"));
  EXPECT_FALSE(c.MentionsAttribute("z"));
}

// ------------------------------------------------------------------ View

TEST(ViewTest, SelectOnlyMaterialization) {
  Table t = SampleInventory();
  View v("books", "inv", Condition::Equals("type", S("book")));
  Table m = v.Materialize(t);
  EXPECT_EQ(m.num_rows(), 2u);
  EXPECT_EQ(m.name(), "books");
  EXPECT_EQ(m.schema().num_attributes(), 4u);
  EXPECT_EQ(m.at(0, "name"), S("war and peace"));
}

TEST(ViewTest, ProjectionMaterialization) {
  Table t = SampleInventory();
  View v("book_names", "inv", Condition::Equals("type", S("book")),
         {"name", "price"});
  Table m = v.Materialize(t);
  EXPECT_EQ(m.schema().num_attributes(), 2u);
  EXPECT_EQ(m.schema().attribute(0).name, "name");
  EXPECT_EQ(m.at(1, "name"), S("dune"));
}

TEST(ViewTest, MatchingRows) {
  Table t = SampleInventory();
  View v("cds", "inv", Condition::Equals("type", S("cd")));
  EXPECT_EQ(v.MatchingRows(t), (std::vector<size_t>{1, 3}));
}

TEST(ViewTest, TrueConditionKeepsEverything) {
  Table t = SampleInventory();
  View v("all", "inv", Condition::True());
  EXPECT_EQ(v.Materialize(t).num_rows(), t.num_rows());
}

TEST(ViewTest, WrongBaseTableDies) {
  Table t = SampleInventory().Renamed("other");
  View v("x", "inv", Condition::True());
  EXPECT_DEATH(v.Materialize(t), "");
}

TEST(ViewTest, ToStringRendering) {
  View v("books", "inv", Condition::Equals("type", S("book")));
  EXPECT_EQ(v.ToString(), "books := select * from inv where type = 'book'");
}

TEST(ViewFamilyTest, SimpleFamilyIsWellFormed) {
  Table t = SampleInventory();
  ViewFamily family = MakeSimpleViewFamily(t, "type");
  EXPECT_EQ(family.views.size(), 2u);
  EXPECT_TRUE(family.IsWellFormed());
  EXPECT_EQ(family.label_attribute, "type");
  // Each view selects its slice.
  size_t total = 0;
  for (const View& v : family.views) total += v.Materialize(t).num_rows();
  EXPECT_EQ(total, t.num_rows());
}

TEST(ViewFamilyTest, OverlappingValuesAreIllFormed) {
  ViewFamily family;
  family.base_table = "inv";
  family.label_attribute = "type";
  family.views.emplace_back("a", "inv", Condition::In("type", {S("x"), S("y")}));
  family.views.emplace_back("b", "inv", Condition::Equals("type", S("y")));
  EXPECT_FALSE(family.IsWellFormed());
}

TEST(ViewFamilyTest, WrongAttributeIsIllFormed) {
  ViewFamily family;
  family.base_table = "inv";
  family.label_attribute = "type";
  family.views.emplace_back("a", "inv", Condition::Equals("id", I(1)));
  EXPECT_FALSE(family.IsWellFormed());
}

// ----------------------------------------------------------- Categorical

Table CategoricalFixture(size_t rows_per_value, size_t num_values,
                         size_t unique_rows) {
  std::vector<Row> rows;
  for (size_t v = 0; v < num_values; ++v) {
    for (size_t r = 0; r < rows_per_value; ++r) {
      rows.push_back({S(("v" + std::to_string(v)).c_str()),
                      S(("u" + std::to_string(rows.size())).c_str())});
    }
  }
  for (size_t r = 0; r < unique_rows; ++r) {
    rows.push_back({S(("w" + std::to_string(r)).c_str()),
                    S(("u" + std::to_string(rows.size())).c_str())});
  }
  return MakeTable("t", {"label", "unique"}, rows);
}

TEST(CategoricalTest, LowCardinalityRepeatedIsCategorical) {
  Table t = CategoricalFixture(50, 4, 0);
  EXPECT_TRUE(IsCategoricalAttribute(t, "label"));
}

TEST(CategoricalTest, AllUniqueIsNotCategorical) {
  Table t = CategoricalFixture(50, 4, 0);
  EXPECT_FALSE(IsCategoricalAttribute(t, "unique"));
}

TEST(CategoricalTest, SmallSampleNeedsTwoByTwo) {
  // Two values, but one appears once: fails the 2-values-with-2-tuples rule.
  Table t = MakeTable("t", {"a"}, {{S("x")}, {S("x")}, {S("y")}});
  EXPECT_FALSE(IsCategoricalAttribute(t, "a"));
  // Both values twice: passes.
  Table t2 = MakeTable("t", {"a"}, {{S("x")}, {S("x")}, {S("y")}, {S("y")}});
  EXPECT_TRUE(IsCategoricalAttribute(t2, "a"));
}

TEST(CategoricalTest, EmptyAndAllNullNotCategorical) {
  Table empty = MakeTable("t", {"a"}, {});
  EXPECT_FALSE(IsCategoricalAttribute(empty, "a"));
  Table nulls = MakeTable("t", {"a"}, {{N()}, {N()}});
  EXPECT_FALSE(IsCategoricalAttribute(nulls, "a"));
}

TEST(CategoricalTest, MostlyUniqueWithFewRepeatsNotCategorical) {
  // 2 frequent values among 100 distinct ones: 2% < 10% of values.
  std::vector<Row> rows;
  for (int i = 0; i < 5; ++i) rows.push_back({S("a")});
  for (int i = 0; i < 5; ++i) rows.push_back({S("b")});
  for (int i = 0; i < 98; ++i) {
    rows.push_back({S(("u" + std::to_string(i)).c_str())});
  }
  Table t = MakeTable("t", {"x"}, rows);
  EXPECT_FALSE(IsCategoricalAttribute(t, "x"));
}

TEST(CategoricalTest, PartitionHelpers) {
  Table t = CategoricalFixture(50, 3, 0);
  EXPECT_EQ(CategoricalAttributes(t), (std::vector<std::string>{"label"}));
  EXPECT_EQ(NonCategoricalAttributes(t),
            (std::vector<std::string>{"unique"}));
}

TEST(CategoricalTest, IntLabelsWork) {
  std::vector<Row> rows;
  for (int i = 0; i < 60; ++i) rows.push_back({I(i % 3)});
  Table t = MakeTable("t", {"k"}, rows);
  EXPECT_TRUE(IsCategoricalAttribute(t, "k"));
}

// ---------------------------------------------------------------- Sample

TEST(SampleTest, SplitSizesAndDisjointness) {
  Table t = CategoricalFixture(20, 3, 0);  // 60 rows
  Rng rng(5);
  TrainTestSplit split = SplitTrainTest(t, 0.5, rng);
  EXPECT_EQ(split.train.num_rows() + split.test.num_rows(), 60u);
  EXPECT_NEAR(static_cast<double>(split.train.num_rows()), 30.0, 1.0);
  // Disjoint: every "unique" value appears exactly once across both sides.
  std::set<std::string> seen;
  for (const Row& r : split.train.rows()) seen.insert(r[1].AsString());
  for (const Row& r : split.test.rows()) {
    EXPECT_TRUE(seen.insert(r[1].AsString()).second);
  }
  EXPECT_EQ(seen.size(), 60u);
}

TEST(SampleTest, SplitIsDeterministicGivenSeed) {
  Table t = CategoricalFixture(20, 3, 0);
  Rng rng1(5), rng2(5);
  TrainTestSplit a = SplitTrainTest(t, 0.6, rng1);
  TrainTestSplit b = SplitTrainTest(t, 0.6, rng2);
  ASSERT_EQ(a.train.num_rows(), b.train.num_rows());
  for (size_t r = 0; r < a.train.num_rows(); ++r) {
    EXPECT_EQ(a.train.row(r), b.train.row(r));
  }
}

TEST(SampleTest, SplitAlwaysKeepsBothSidesNonEmpty) {
  Table t = CategoricalFixture(2, 2, 0);  // 4 rows
  Rng rng(1);
  TrainTestSplit lo = SplitTrainTest(t, 0.0, rng);
  EXPECT_GE(lo.train.num_rows(), 1u);
  TrainTestSplit hi = SplitTrainTest(t, 1.0, rng);
  EXPECT_GE(hi.test.num_rows(), 1u);
}

TEST(SampleTest, SampleRowsSubsets) {
  Table t = CategoricalFixture(20, 3, 0);
  Rng rng(9);
  Table s = SampleRows(t, 10, rng);
  EXPECT_EQ(s.num_rows(), 10u);
  Table all = SampleRows(t, 1000, rng);
  EXPECT_EQ(all.num_rows(), 60u);
}

TEST(SampleTest, SampleRowPositionsAscendingDistinctInBounds) {
  Rng rng(7);
  PosList positions = SampleRowPositions(1000, 64, rng);
  ASSERT_EQ(positions.size(), 64u);
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_LT(positions[i], 1000u);
    if (i > 0) {
      EXPECT_LT(positions[i - 1], positions[i]);
    }
  }
}

TEST(SampleTest, SampleRowPositionsReturnsAllWhenSampleCoversTable) {
  Rng rng(7);
  PosList all = SampleRowPositions(10, 10, rng);
  PosList over = SampleRowPositions(10, 99, rng);
  PosList expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(all, expected);
  EXPECT_EQ(over, expected);
  EXPECT_TRUE(SampleRowPositions(0, 5, rng).empty());
  EXPECT_TRUE(SampleRowPositions(5, 0, rng).empty());
}

TEST(SampleTest, SampleRowPositionsDeterministicGivenSeed) {
  Rng a(42), b(42), c(43), d(42);
  EXPECT_EQ(SampleRowPositions(500, 20, a), SampleRowPositions(500, 20, b));
  EXPECT_NE(SampleRowPositions(500, 20, d), SampleRowPositions(500, 20, c));
}

// Differential oracle for the SampleRows -> ReservoirSampleRows delegation:
// both entry points must pick bit-identical rows for the same rng state.
TEST(SampleTest, ReservoirSampleRowsMatchesSampleRows) {
  Table t = CategoricalFixture(40, 3, 0);  // 120 rows
  for (uint64_t seed : {1u, 9u, 77u}) {
    for (size_t k : {size_t{1}, size_t{17}, size_t{120}, size_t{500}}) {
      Rng legacy_rng(seed), reservoir_rng(seed);
      Table legacy = SampleRows(t, k, legacy_rng);
      Table reservoir = ReservoirSampleRows(t, k, reservoir_rng);
      ASSERT_EQ(legacy.num_rows(), reservoir.num_rows())
          << "seed=" << seed << " k=" << k;
      for (size_t r = 0; r < legacy.num_rows(); ++r) {
        EXPECT_EQ(legacy.row(r), reservoir.row(r))
            << "seed=" << seed << " k=" << k << " row=" << r;
      }
    }
  }
}

// Regression for the O(table)-cost sampling path: SampleRowPositions must
// draw k of n by index sampling (Floyd), not by materializing and shuffling
// an n-entry vector.  At n = 3e9 the old path would allocate ~12 GB and run
// for minutes; the bounded-cost path finishes instantly or this test times
// out / OOMs.
TEST(SampleTest, SmallSampleCostIndependentOfTableSize) {
  const size_t huge = size_t{3'000'000'000};
  Rng rng(11);
  PosList positions = SampleRowPositions(huge, 64, rng);
  ASSERT_EQ(positions.size(), 64u);
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_LT(positions[i], huge);
    if (i > 0) {
      EXPECT_LT(positions[i - 1], positions[i]);
    }
  }
}

TEST(SampleTest, DeriveTableSampleSeedIsStableAndTableDependent) {
  const uint64_t seed = 0x5eed0f5a4d704e65ULL;
  EXPECT_EQ(DeriveTableSampleSeed(seed, "inventory"),
            DeriveTableSampleSeed(seed, "inventory"));
  EXPECT_NE(DeriveTableSampleSeed(seed, "inventory"),
            DeriveTableSampleSeed(seed, "books"));
  EXPECT_NE(DeriveTableSampleSeed(seed, "inventory"),
            DeriveTableSampleSeed(seed + 1, "inventory"));
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, RoundTrip) {
  Table t = SampleInventory();
  std::string csv = TableToCsv(t);
  auto parsed = TableFromCsv(t.schema(), csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(parsed->row(r), t.row(r));
  }
}

TEST(CsvTest, QuotingSpecialCharacters) {
  Table t = MakeTable("q", {"text"},
                      {{S("has,comma")},
                       {S("has \"quotes\"")},
                       {S("has\nnewline")}});
  std::string csv = TableToCsv(t);
  auto parsed = TableFromCsv(t.schema(), csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(0, "text"), S("has,comma"));
  EXPECT_EQ(parsed->at(1, "text"), S("has \"quotes\""));
  EXPECT_EQ(parsed->at(2, "text"), S("has\nnewline"));
}

TEST(CsvTest, NullsRoundTripAsEmpty) {
  Table t = MakeTable("n", {"a", "b"}, {{I(1), N()}, {I(2), R(1.5)}});
  auto parsed = TableFromCsv(t.schema(), TableToCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->at(0, "b").is_null());
  EXPECT_EQ(parsed->at(1, "b"), R(1.5));
}

TEST(CsvTest, HeaderMismatchRejected) {
  Table t = SampleInventory();
  TableSchema other("inv");
  other.AddAttribute("wrong", ValueType::kInt);
  other.AddAttribute("type", ValueType::kString);
  other.AddAttribute("name", ValueType::kString);
  other.AddAttribute("price", ValueType::kReal);
  EXPECT_FALSE(TableFromCsv(other, TableToCsv(t)).ok());
}

TEST(CsvTest, ArityMismatchRejected) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  schema.AddAttribute("b", ValueType::kInt);
  EXPECT_FALSE(TableFromCsv(schema, "a,b\n1\n").ok());
}

TEST(CsvTest, BadCellTypeRejected) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  EXPECT_FALSE(TableFromCsv(schema, "a\nnot_an_int\n").ok());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kString);
  EXPECT_FALSE(TableFromCsv(schema, "a\n\"oops\n").ok());
}

TEST(CsvTest, FileRoundTrip) {
  Table t = SampleInventory();
  std::string path = ::testing::TempDir() + "/csm_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto parsed = ReadCsvFile(t.schema(), path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), t.num_rows());
}

TEST(CsvTest, MissingFileErrors) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  EXPECT_EQ(ReadCsvFile(schema, "/nonexistent/file.csv").status().code(),
            StatusCode::kIoError);
}

// Regression: ParseRecord used to skip a bare "\r" without terminating the
// record, so a classic-Mac (CR-only) file collapsed into a single record.
TEST(CsvTest, BareCarriageReturnTerminatesRecord) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  auto parsed = TableFromCsv(schema, "a\r1\r2\r");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->at(0, "a"), I(1));
  EXPECT_EQ(parsed->at(1, "a"), I(2));
}

TEST(CsvTest, MixedLineEndingsParse) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  auto parsed = TableFromCsv(schema, "a\n1\r\n2\r3\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 3u);
  EXPECT_EQ(parsed->at(0, "a"), I(1));
  EXPECT_EQ(parsed->at(1, "a"), I(2));
  EXPECT_EQ(parsed->at(2, "a"), I(3));
}

// Regression: an unquoted embedded "\r" used to be silently dropped; it now
// terminates the record like any other line ending, so the writer's quoting
// is what preserves it through a round trip.
TEST(CsvTest, EmbeddedCarriageReturnRoundTrip) {
  Table t = MakeTable("t", {"text"}, {{S("line\rbreak")}, {S("dos\r\nend")}});
  auto parsed = TableFromCsv(t.schema(), TableToCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(0, "text"), S("line\rbreak"));
  EXPECT_EQ(parsed->at(1, "text"), S("dos\r\nend"));
}

TEST(CsvTest, Utf8InQuotedFields) {
  Table t = MakeTable("t", {"text"},
                      {{S("h\xc3\xa9llo, world")},
                       {S("\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e")},
                       {S("\xf0\x9f\x99\x82 ok")}});
  auto parsed = TableFromCsv(t.schema(), TableToCsv(t));
  ASSERT_TRUE(parsed.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(parsed->row(r), t.row(r));
  }
}

TEST(CsvTest, TrailingCommaIsEmptyField) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  schema.AddAttribute("b", ValueType::kString);
  auto parsed = TableFromCsv(schema, "a,b\n1,\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->at(0, "a"), I(1));
  EXPECT_TRUE(parsed->at(0, "b").is_null());
}

TEST(CsvTest, QuotedFieldAtEofWithoutNewline) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kString);
  auto parsed = TableFromCsv(schema, "a\n\"hi, there\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->at(0, "a"), S("hi, there"));
}

TEST(CsvTest, EmptyFileRejectedHeaderOnlyAccepted) {
  TableSchema schema("t");
  schema.AddAttribute("a", ValueType::kInt);
  EXPECT_FALSE(TableFromCsv(schema, "").ok());
  auto header_only = TableFromCsv(schema, "a\n");
  ASSERT_TRUE(header_only.ok()) << header_only.status().ToString();
  EXPECT_EQ(header_only->num_rows(), 0u);
  auto no_newline = TableFromCsv(schema, "a");
  ASSERT_TRUE(no_newline.ok()) << no_newline.status().ToString();
  EXPECT_EQ(no_newline->num_rows(), 0u);
}

// Regression (found by FuzzCsvRoundTrip): a single-attribute NULL row used
// to serialize as an empty line, indistinguishable from the file's trailing
// newline, so a trailing NULL row vanished on the round trip.  The writer
// now emits `""` for such rows.
TEST(CsvTest, SingleAttributeNullRowsRoundTrip) {
  Table t = MakeTable("t", {"a"}, {{N()}, {I(1)}, {N()}});
  const std::string csv = TableToCsv(t);
  EXPECT_NE(csv.find("\"\""), std::string::npos);
  auto parsed = TableFromCsv(t.schema(), csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 3u);
  EXPECT_TRUE(parsed->at(0, "a").is_null());
  EXPECT_EQ(parsed->at(1, "a"), I(1));
  EXPECT_TRUE(parsed->at(2, "a").is_null());
}

// --------------------------------------------------- Columnar storage

TEST(ColumnTest, DictionaryCodesAreFirstSeenOrder) {
  Table t = MakeTable("t", {"s"}, {{S("b")}, {S("a")}, {S("b")}, {S("c")}});
  const Column& col = t.column(0);
  ASSERT_EQ(col.type(), ValueType::kString);
  EXPECT_EQ(col.codes(), (std::vector<uint32_t>{0, 1, 0, 2}));
  EXPECT_EQ(col.dictionary().size(), 3u);
  EXPECT_EQ(col.dictionary().value(0), "b");
  EXPECT_EQ(col.CodeFor("c"), std::optional<uint32_t>(2));
  EXPECT_EQ(col.CodeFor("missing"), std::nullopt);
}

TEST(ColumnTest, NullStringCellUsesReservedCode) {
  Table t = MakeTable("t", {"s"}, {{S("x")}, {N()}});
  const Column& col = t.column(0);
  EXPECT_EQ(col.codes()[1], kNullCode);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.dictionary().size(), 1u);  // NULL never enters the dict
}

TEST(ColumnTest, CellHashMatchesValueHash) {
  Table t = MakeTable("t", {"s", "i", "r"},
                      {{S("x"), I(7), R(2.5)}, {N(), N(), N()}});
  for (size_t c = 0; c < 3; ++c) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_EQ(t.column(c).CellHash(r),
                static_cast<uint64_t>(t.ValueAt(r, c).Hash()))
          << "row " << r << " col " << c;
    }
  }
}

TEST(ColumnTest, GatherSharesDictionaryUntilMutation) {
  Table t = MakeTable("t", {"s"}, {{S("a")}, {S("b")}, {S("a")}});
  Table gathered = t.SelectRows(PosList{2, 0});
  // Zero-copy gather: same dictionary object, original codes preserved.
  EXPECT_EQ(&gathered.column(0).dictionary(), &t.column(0).dictionary());
  EXPECT_EQ(gathered.column(0).codes(), (std::vector<uint32_t>{0, 0}));
  // Appending a new string clones the shared dictionary first
  // (copy-on-write); the parent's encoding is untouched.
  gathered.AddRow({S("z")});
  EXPECT_NE(&gathered.column(0).dictionary(), &t.column(0).dictionary());
  EXPECT_EQ(t.column(0).dictionary().size(), 2u);
  EXPECT_EQ(gathered.column(0).dictionary().size(), 3u);
  EXPECT_EQ(gathered.at(2, "s"), S("z"));
}

TEST(TableTest, AddRowFromTextRollsBackOnBadCell) {
  TableSchema schema("t");
  schema.AddAttribute("i", ValueType::kInt);
  schema.AddAttribute("s", ValueType::kString);
  Table t(schema);
  ASSERT_TRUE(t.AddRowFromText({"1", "one"}).ok());
  EXPECT_FALSE(t.AddRowFromText({"not-an-int", "two"}).ok());
  EXPECT_EQ(t.num_rows(), 1u);  // failed row left no partial cells
  ASSERT_TRUE(t.AddRowFromText({"3", "three"}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(1, "i"), I(3));
  EXPECT_EQ(t.at(1, "s"), S("three"));
}

TEST(ConditionTest, MatchingPositionsMatchesPerRowEvaluate) {
  Table t = MakeTable("t", {"s", "i"},
                      {{S("a"), I(1)},
                       {S("b"), I(2)},
                       {N(), I(1)},
                       {S("a"), N()},
                       {S("a"), I(1)}});
  // Mixed literals: one present, one absent from the dictionary, one of
  // the wrong type — MatchingPositions must agree with Evaluate on all.
  const Condition cond =
      Condition::In("s", {S("a"), S("zzz"), I(9)})
          .Conjoin(Condition::Equals("i", I(1)));
  PosList expected;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (cond.Evaluate(t.schema(), t.row(r))) {
      expected.push_back(static_cast<RowId>(r));
    }
  }
  EXPECT_EQ(cond.MatchingPositions(t), expected);
  EXPECT_EQ(expected, (PosList{0, 4}));
}

TEST(ConditionTest, TrueConditionMatchesAllPositions) {
  Table t = MakeTable("t", {"i"}, {{I(1)}, {I(2)}});
  EXPECT_EQ(Condition::True().MatchingPositions(t), (PosList{0, 1}));
}

TEST(TableViewTest, IdentityViewIsZeroCopy) {
  Table t = MakeTable("t", {"s"}, {{S("a")}, {S("b")}});
  const TableView view(t);
  EXPECT_TRUE(view.valid());
  EXPECT_TRUE(view.is_identity());
  EXPECT_EQ(view.num_rows(), 2u);
  EXPECT_EQ(view.name(), "t");
  EXPECT_EQ(view.ValueAt(1, 0), S("b"));
  EXPECT_EQ(view.Positions(), (PosList{0, 1}));
}

TEST(TableViewTest, PosListViewReadsAndComposes) {
  Table t = MakeTable("t", {"i"}, {{I(10)}, {I(20)}, {I(30)}, {I(40)}});
  const TableView view(t, PosList{3, 1, 0});
  EXPECT_EQ(view.num_rows(), 3u);
  EXPECT_EQ(view.ValueAt(0, 0), I(40));
  EXPECT_EQ(view.position(1), 1u);
  // Select() composes over *view* rows, not base rows.
  const TableView sub = view.Select(PosList{2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.ValueAt(0, 0), I(10));
  EXPECT_EQ(sub.ValueAt(1, 0), I(40));
}

TEST(TableViewTest, BagAndCountsMatchMaterializedTable) {
  Table t = MakeTable("t", {"s"},
                      {{S("a")}, {S("b")}, {N()}, {S("a")}, {S("c")}});
  const PosList positions{0, 2, 3, 4};
  const TableView view(t, positions);
  const Table materialized = t.SelectRows(positions);
  EXPECT_EQ(view.ValueBag("s"), materialized.ValueBag("s"));
  EXPECT_EQ(view.ValueCounts("s"), materialized.ValueCounts("s"));
}

TEST(TableViewTest, RenamedAndToTable) {
  Table t = MakeTable("t", {"s"}, {{S("a")}, {S("b")}, {S("c")}});
  const TableView view =
      TableView(t, PosList{2, 0}).Renamed("slice");
  EXPECT_EQ(view.name(), "slice");
  const Table copy = view.ToTable();
  EXPECT_EQ(copy.name(), "slice");
  ASSERT_EQ(copy.num_rows(), 2u);
  EXPECT_EQ(copy.at(0, "s"), S("c"));
  EXPECT_EQ(copy.at(1, "s"), S("a"));
}

TEST(TableViewTest, ViewBindMatchesMaterialize) {
  Table t = MakeTable("t", {"s", "i"},
                      {{S("a"), I(1)}, {S("b"), I(2)}, {S("a"), I(3)}});
  const View v("va", "t", Condition::Equals("s", S("a")));
  const TableView bound = v.Bind(t);
  const Table materialized = v.Materialize(t);
  ASSERT_EQ(bound.num_rows(), materialized.num_rows());
  for (size_t r = 0; r < bound.num_rows(); ++r) {
    for (size_t c = 0; c < bound.num_columns(); ++c) {
      EXPECT_EQ(bound.ValueAt(r, c), materialized.ValueAt(r, c));
    }
  }
  EXPECT_EQ(bound.name(), materialized.name());
}

TEST(SampleTest, ViewSplitSelectsSameRowsAsTableSplit) {
  Table t = MakeTable("t", {"i"},
                      {{I(0)}, {I(1)}, {I(2)}, {I(3)}, {I(4)}, {I(5)}});
  Rng rng_a(99);
  Rng rng_b(99);
  const TrainTestSplit tables = SplitTrainTest(t, 0.5, rng_a);
  const TrainTestViewSplit views = SplitTrainTestView(t, 0.5, rng_b);
  ASSERT_EQ(views.train.num_rows(), tables.train.num_rows());
  ASSERT_EQ(views.test.num_rows(), tables.test.num_rows());
  for (size_t r = 0; r < tables.train.num_rows(); ++r) {
    EXPECT_EQ(views.train.ValueAt(r, 0), tables.train.at(r, 0));
  }
  for (size_t r = 0; r < tables.test.num_rows(); ++r) {
    EXPECT_EQ(views.test.ValueAt(r, 0), tables.test.at(r, 0));
  }
}

}  // namespace
}  // namespace csm
