// MatchService admission control, quotas, deduplication and the cold
// session tier.  Deterministic concurrency: tests hold the dispatcher
// still with ServiceOptions::test_dispatch_gate while they fill the queue
// to an exact depth, so every rejection below is forced, not racy.  The CI
// `service` job runs this binary under TSan.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/fingerprint.h"
#include "core/match_engine.h"
#include "datagen/retail_gen.h"
#include "service/disk_store.h"
#include "service/match_service.h"

namespace csm {
namespace {

RetailDataset SmallRetail(uint64_t seed) {
  RetailOptions options;
  options.num_items = 60;
  options.gamma = 2;
  options.seed = seed;
  return MakeRetailDataset(options);
}

ContextMatchOptions FastEngine() {
  ContextMatchOptions options;
  options.threads = 1;
  return options;
}

/// A dispatcher gate the tests open and close: while closed, the
/// dispatcher parks after popping a ticket, keeping the popped ticket
/// in-flight and the rest of the queue at a depth the test controls.
class DispatchGate {
 public:
  std::function<void()> AsHook() {
    return [this] {
      entered_.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return open_; });
    };
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  /// Spins until the dispatcher has parked in the gate `n` times.
  void AwaitEntered(int n) {
    while (entered_.load() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<int> entered_{0};
};

/// Distinct admissible requests over the same data: the deadline is part
/// of the dedup key, so distinct deadlines make distinct requests.
MatchRequest RequestOver(const RetailDataset& data, int64_t deadline_ms,
                         const std::string& tenant = "") {
  MatchRequest request;
  request.tenant = tenant;
  request.deadline_ms = deadline_ms;
  request.source = BorrowDatabase(data.source);
  request.target = BorrowDatabase(data.target);
  return request;
}

TEST(MatchServiceTest, AnswersAndMatchesDirectEngineRun) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  MatchService service(options);
  MatchResponse response = service.Call(RequestOver(data, 0));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.completeness, MatchCompleteness::kComplete);
  EXPECT_FALSE(response.matches.empty());
  EXPECT_GE(response.run_seconds, 0.0);

  MatchEngine engine(FastEngine());
  ContextMatchResult direct = engine.Match(data.source, data.target);
  EXPECT_EQ(check::FingerprintResult(response.result),
            check::FingerprintResult(direct));
  service.Stop();
}

TEST(MatchServiceTest, QueueFullRejectsWithResourceExhausted) {
  RetailDataset data = SmallRetail(3);
  DispatchGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.max_queue = 2;
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  // First submission is popped and parked in the gate; the next two fill
  // the queue exactly.
  SubmitHandle running = service.Submit(RequestOver(data, 60001));
  gate.AwaitEntered(1);
  SubmitHandle q1 = service.Submit(RequestOver(data, 60002));
  SubmitHandle q2 = service.Submit(RequestOver(data, 60003));
  EXPECT_EQ(service.queue_depth(), 2u);

  SubmitHandle overflow = service.Submit(RequestOver(data, 60004));
  MatchResponse rejected = overflow.future.get();  // already resolved
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.completeness, MatchCompleteness::kBaselineOnly);
  EXPECT_EQ(service.metrics().Counter("service.rejected_queue_full"), 1u);

  gate.Open();
  EXPECT_TRUE(running.future.get().ok());
  EXPECT_TRUE(q1.future.get().ok());
  EXPECT_TRUE(q2.future.get().ok());
  EXPECT_EQ(service.metrics().Counter("service.completed"), 3u);
  service.Stop();
}

TEST(MatchServiceTest, TenantRateLimitRejectsPastBurst) {
  RetailDataset data = SmallRetail(3);
  ServiceOptions options;
  options.engine = FastEngine();
  // Two tokens, effectively no refill within the test's lifetime.
  options.tenant_quotas["metered"].requests_per_second = 1e-6;
  options.tenant_quotas["metered"].burst = 2;
  MatchService service(options);

  SubmitHandle first = service.Submit(RequestOver(data, 60001, "metered"));
  SubmitHandle second = service.Submit(RequestOver(data, 60002, "metered"));
  SubmitHandle third = service.Submit(RequestOver(data, 60003, "metered"));
  MatchResponse rejected = third.future.get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().Counter("service.rejected_rate_limit"), 1u);

  // Other tenants are not affected by "metered"'s empty bucket.
  EXPECT_TRUE(service.Call(RequestOver(data, 0, "open")).ok());

  EXPECT_TRUE(first.future.get().ok());
  EXPECT_TRUE(second.future.get().ok());
  service.Stop();
}

TEST(MatchServiceTest, TenantInFlightCapRejects) {
  RetailDataset data = SmallRetail(3);
  DispatchGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.tenant_quotas["capped"].max_in_flight = 1;
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  SubmitHandle running = service.Submit(RequestOver(data, 60001, "capped"));
  gate.AwaitEntered(1);  // popped but not delivered: still in flight
  SubmitHandle second = service.Submit(RequestOver(data, 60002, "capped"));
  MatchResponse rejected = second.future.get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().Counter("service.rejected_in_flight"), 1u);

  // The cap binds per tenant, not globally.
  SubmitHandle other = service.Submit(RequestOver(data, 60003, "free"));

  gate.Open();
  EXPECT_TRUE(running.future.get().ok());
  EXPECT_TRUE(other.future.get().ok());
  service.Stop();
}

TEST(MatchServiceTest, InFlightDeduplicationSharesOneBitIdenticalRun) {
  RetailDataset data = SmallRetail(3);
  DispatchGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  MatchRequest request = RequestOver(data, 60000);
  SubmitHandle primary = service.Submit(request);
  gate.AwaitEntered(1);  // parked: the primary stays in flight
  SubmitHandle twin1 = service.Submit(request);
  SubmitHandle twin2 = service.Submit(request);
  EXPECT_FALSE(primary.deduplicated);
  EXPECT_TRUE(twin1.deduplicated);
  EXPECT_TRUE(twin2.deduplicated);
  EXPECT_EQ(service.metrics().Counter("service.deduplicated"), 2u);
  // Attaching charged no queue slot: only the primary was admitted.
  EXPECT_EQ(service.metrics().Counter("service.admitted"), 1u);

  gate.Open();
  const MatchResponse& r0 = primary.future.get();
  const MatchResponse& r1 = twin1.future.get();
  const MatchResponse& r2 = twin2.future.get();
  ASSERT_TRUE(r0.ok());
  const std::string fingerprint = check::FingerprintResult(r0.result);
  EXPECT_EQ(fingerprint, check::FingerprintResult(r1.result));
  EXPECT_EQ(fingerprint, check::FingerprintResult(r2.result));

  // And the shared run is bit-identical to an independent engine run.
  MatchEngine engine(FastEngine());
  EXPECT_EQ(fingerprint,
            check::FingerprintResult(engine.Match(data.source, data.target)));
  EXPECT_EQ(service.metrics().Counter("service.completed"), 1u);
  service.Stop();
}

TEST(MatchServiceTest, RequestExpiredInQueueIsAnsweredWithoutRunning) {
  RetailDataset data = SmallRetail(3);
  DispatchGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  SubmitHandle handle = service.Submit(RequestOver(data, /*deadline_ms=*/30));
  gate.AwaitEntered(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  gate.Open();

  MatchResponse response = handle.future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.completeness, MatchCompleteness::kBaselineOnly);
  EXPECT_TRUE(response.matches.empty());
  EXPECT_EQ(service.metrics().Counter("service.expired_in_queue"), 1u);
  EXPECT_EQ(service.metrics().Counter("service.completed"), 0u);
  service.Stop();
}

TEST(MatchServiceTest, StopAnswersQueuedRequestsWithUnavailable) {
  RetailDataset data = SmallRetail(3);
  DispatchGate gate;
  ServiceOptions options;
  options.engine = FastEngine();
  options.test_dispatch_gate = gate.AsHook();
  MatchService service(options);

  SubmitHandle running = service.Submit(RequestOver(data, 60001));
  gate.AwaitEntered(1);
  SubmitHandle queued = service.Submit(RequestOver(data, 60002));

  std::thread stopper([&] { service.Stop(); });
  gate.Open();
  stopper.join();

  // The popped request finished its run; the queued one was answered
  // without running.
  EXPECT_TRUE(running.future.get().ok());
  MatchResponse drained = queued.future.get();
  EXPECT_EQ(drained.status.code(), StatusCode::kUnavailable);

  // Admission after Stop is refused outright.
  MatchResponse late = service.Call(RequestOver(data, 60003));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
}

TEST(MatchServiceTest, ResponseExitCodesFollowSharedTable) {
  MatchResponse response;
  EXPECT_EQ(response.ExitCode(), 0);
  response.status = Status::ResourceExhausted("queue full");
  EXPECT_EQ(response.ExitCode(), 1);
  response.status = Status::InvalidArgument("bad request");
  EXPECT_EQ(response.ExitCode(), 2);
  response.status = Status::DeadlineExceeded("late");
  EXPECT_EQ(response.ExitCode(), 3);
  response.status = Status::Cancelled("stopped");
  EXPECT_EQ(response.ExitCode(), 3);
  // The same table the csv_match_tool derives its process exit codes from.
  EXPECT_EQ(response.ExitCode(),
            ExitCodeForStatus(StatusCode::kCancelled));
}

TEST(MatchServiceTest, InvalidRequestAnsweredWithInvalidArgument) {
  ServiceOptions options;
  options.engine = FastEngine();
  MatchService service(options);
  MatchRequest request;  // null databases
  MatchResponse response = service.Call(request);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response.ExitCode(), 2);
  service.Stop();
}

// ---------------------------------------------------------------------------
// Cold session tier
// ---------------------------------------------------------------------------

std::string FreshSpoolDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("csm_service_test_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(ColdStoreTest, RoundTripRestoresBitIdenticalSessions) {
  const std::string dir = FreshSpoolDir("roundtrip");
  RetailDataset data = SmallRetail(5);
  DiskSessionStore store(dir);

  MatchEngine writer(FastEngine());
  writer.set_cold_store(&store);
  const std::string fresh =
      check::FingerprintResult(writer.Match(data.source, data.target));
  EXPECT_EQ(writer.session_cold_stores(), 1u);
  EXPECT_EQ(writer.session_cold_hits(), 0u);
  EXPECT_EQ(store.stores(), 1u);

  // A fresh engine (empty hot cache) over the same spool restores from
  // disk instead of rebuilding — and the result is bit-identical.
  MatchEngine reader(FastEngine());
  reader.set_cold_store(&store);
  const std::string restored =
      check::FingerprintResult(reader.Match(data.source, data.target));
  EXPECT_EQ(fresh, restored);
  EXPECT_EQ(reader.session_cold_hits(), 1u);
  EXPECT_EQ(reader.session_cold_stores(), 0u) << "a cold hit must not re-store";

  // The restored entry was promoted into the hot tier: a repeat run is a
  // hot hit, not another disk read.
  const uint64_t loads_before = store.loads();
  reader.Match(data.source, data.target);
  EXPECT_EQ(store.loads(), loads_before);
  EXPECT_EQ(reader.session_cache_hits(), 1u);

  std::filesystem::remove_all(dir);
}

TEST(ColdStoreTest, CorruptBlobFallsBackToFreshBuild) {
  const std::string dir = FreshSpoolDir("corrupt");
  RetailDataset data = SmallRetail(5);
  DiskSessionStore store(dir);

  MatchEngine writer(FastEngine());
  writer.set_cold_store(&store);
  const std::string fresh =
      check::FingerprintResult(writer.Match(data.source, data.target));

  // Re-store garbage under every key with a VALID frame: the store's CRC
  // check passes, so the blob reaches the engine's parse-level validation
  // and must be rejected there (raw overwrites would be quarantined by the
  // frame check before the engine ever saw them — see resilience_test).
  std::vector<uint64_t> keys;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".csmss") continue;
    keys.push_back(std::stoull(entry.path().stem().string(), nullptr, 16));
  }
  ASSERT_GT(keys.size(), 0u);
  for (uint64_t key : keys) {
    ASSERT_TRUE(store.Store(key, "csm-sessions 1\ntables 1\ngarbage\n"));
  }

  obs::MetricsRegistry metrics;
  MatchEngine reader(FastEngine());
  reader.set_cold_store(&store);
  reader.set_metrics(&metrics);
  const std::string rebuilt =
      check::FingerprintResult(reader.Match(data.source, data.target));
  EXPECT_EQ(fresh, rebuilt);
  EXPECT_EQ(reader.session_cold_hits(), 0u);
  EXPECT_GE(metrics.Counter("engine.session_cold_invalid"), 1u);
  // The fallback build re-stored a good blob over the corrupt one.
  EXPECT_EQ(reader.session_cold_stores(), 1u);

  std::filesystem::remove_all(dir);
}

TEST(ColdStoreTest, ServiceRestartServesFromColdTier) {
  const std::string dir = FreshSpoolDir("restart");
  RetailDataset data = SmallRetail(5);
  DiskSessionStore store(dir);
  ServiceOptions options;
  options.engine = FastEngine();
  options.cold_store = &store;

  std::string first;
  {
    MatchService service(options);
    MatchResponse response = service.Call(RequestOver(data, 0));
    ASSERT_TRUE(response.ok());
    first = check::FingerprintResult(response.result);
    service.Stop();
  }
  {
    MatchService service(options);
    MatchResponse response = service.Call(RequestOver(data, 0));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(first, check::FingerprintResult(response.result));
    EXPECT_EQ(service.metrics().Counter("engine.session_cold_hits"), 1u);
    service.Stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(ColdStoreTest, DistinctOptionsDoNotShareBlobs) {
  const std::string dir = FreshSpoolDir("options");
  RetailDataset data = SmallRetail(5);
  DiskSessionStore store(dir);

  ContextMatchOptions a = FastEngine();
  MatchEngine first(a);
  first.set_cold_store(&store);
  first.Match(data.source, data.target);

  // min_non_null_values changes which triples get scored, so the cold key
  // must differ and the second engine must NOT restore the first's blob.
  ContextMatchOptions b = FastEngine();
  b.match.min_non_null_values = 5;
  MatchEngine second(b);
  second.set_cold_store(&store);
  second.Match(data.source, data.target);
  EXPECT_EQ(second.session_cold_hits(), 0u);
  EXPECT_EQ(store.stores(), 2u);

  std::filesystem::remove_all(dir);
}

// Concurrent submissions from many threads: exercised under TSan by the CI
// service job.  Every response must be either a completed run or a
// well-formed rejection — never a torn result.
TEST(MatchServiceTest, ConcurrentMixedSubmissionsAreAllAnswered) {
  RetailDataset data_a = SmallRetail(3);
  RetailDataset data_b = SmallRetail(9);
  ServiceOptions options;
  options.engine = FastEngine();
  options.max_queue = 4;  // small enough that overload rejections happen
  MatchService service(options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const RetailDataset& data = (t + i) % 2 == 0 ? data_a : data_b;
        MatchRequest request = RequestOver(data, 60000 + t * 100 + i);
        if ((t + i) % 3 == 0) request.mode = MatchMode::kTargetContext;
        MatchResponse response = service.Call(request);
        if (response.ok()) {
          completed.fetch_add(1);
        } else {
          ASSERT_EQ(response.status.code(), StatusCode::kResourceExhausted);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(service.metrics().Counter("service.completed"),
            static_cast<uint64_t>(completed.load()) -
                service.metrics().Counter("service.deduplicated"));
  service.Stop();
}

}  // namespace
}  // namespace csm
