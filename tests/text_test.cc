// Tests for src/text: tokenizer, profiles & similarities, string distances,
// TF-IDF.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "text/gram.h"
#include "text/profile.h"
#include "text/string_distance.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace csm {
namespace {

// ------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, NormalizeText) {
  EXPECT_EQ(NormalizeText("Lance Armstrong's War!"), "lance armstrong s war");
  EXPECT_EQ(NormalizeText("  A--B  "), "a b");
  EXPECT_EQ(NormalizeText(""), "");
  EXPECT_EQ(NormalizeText("!!!"), "");
  EXPECT_EQ(NormalizeText("abc123"), "abc123");
}

TEST(TokenizerTest, WordTokens) {
  EXPECT_EQ(WordTokens("The Quick, Brown Fox."),
            (std::vector<std::string>{"the", "quick", "brown", "fox"}));
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("---").empty());
  EXPECT_EQ(WordTokens("x"), (std::vector<std::string>{"x"}));
}

TEST(TokenizerTest, QGramsPaddedAndOrdered) {
  std::vector<std::string> grams = QGrams("ab", 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"##a", "#ab", "ab#", "b##"}));
}

TEST(TokenizerTest, QGramsNormalizeFirst) {
  EXPECT_EQ(QGrams("A-B", 3), QGrams("a b", 3));
}

TEST(TokenizerTest, QGramsEdgeCases) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_TRUE(QGrams("!!!", 3).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
  // q=1: no padding beyond the string itself.
  EXPECT_EQ(QGrams("ab", 1), (std::vector<std::string>{"a", "b"}));
}

TEST(TokenizerTest, QGramCountMatchesFormula) {
  // Padded length = n + 2(q-1); gram count = padded - q + 1 = n + q - 1.
  std::string text = "hello";
  EXPECT_EQ(QGrams(text, 3).size(), text.size() + 2);
}

// --------------------------------------------------------------- Profile

TokenProfile ProfileOf(const std::vector<std::string>& tokens) {
  TokenProfile p;
  p.AddAll(tokens);
  return p;
}

TEST(ProfileTest, CountsAndTotals) {
  TokenProfile p = ProfileOf({"a", "b", "a"});
  EXPECT_EQ(p.num_distinct(), 2u);
  EXPECT_DOUBLE_EQ(p.total(), 3.0);
  EXPECT_DOUBLE_EQ(p.Count("a"), 2.0);
  EXPECT_DOUBLE_EQ(p.Count("z"), 0.0);
}

TEST(ProfileTest, NormAndDot) {
  TokenProfile p = ProfileOf({"a", "a", "b"});  // (2,1)
  TokenProfile q = ProfileOf({"a", "b", "b"});  // (1,2)
  EXPECT_DOUBLE_EQ(p.Norm(), std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(p.Dot(q), 4.0);
  EXPECT_EQ(p.IntersectionSize(q), 2u);
}

TEST(ProfileTest, CosineIdenticalIsOne) {
  TokenProfile p = ProfileOf({"x", "y", "x"});
  EXPECT_NEAR(CosineSimilarity(p, p), 1.0, 1e-12);
}

TEST(ProfileTest, CosineDisjointIsZero) {
  EXPECT_DOUBLE_EQ(
      CosineSimilarity(ProfileOf({"a"}), ProfileOf({"b"})), 0.0);
}

TEST(ProfileTest, CosineEmptyIsZero) {
  TokenProfile empty;
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, ProfileOf({"a"})), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, empty), 0.0);
}

TEST(ProfileTest, CosineIsSymmetric) {
  TokenProfile p = ProfileOf({"a", "b", "c", "a"});
  TokenProfile q = ProfileOf({"b", "c", "d"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(p, q), CosineSimilarity(q, p));
}

TEST(ProfileTest, JaccardAndDiceAndOverlap) {
  TokenProfile p = ProfileOf({"a", "b", "c"});
  TokenProfile q = ProfileOf({"b", "c", "d", "e"});
  // intersection 2, union 5.
  EXPECT_DOUBLE_EQ(JaccardSimilarity(p, q), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(p, q), 2.0 * 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(p, q), 2.0 / 3.0);
}

TEST(ProfileTest, SimilaritiesBounded) {
  TokenProfile p = ProfileOf({"a", "b"});
  TokenProfile q = ProfileOf({"a", "b"});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(p, q), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(p, q), 1.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(p, q), 1.0);
}

// ------------------------------------------------------ String distances

TEST(StringDistanceTest, LevenshteinKnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
  EXPECT_EQ(LevenshteinDistance("a", "b"), 1u);
}

TEST(StringDistanceTest, LevenshteinSymmetric) {
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"),
            LevenshteinDistance("lawn", "flaw"));
}

TEST(StringDistanceTest, LevenshteinTriangleInequality) {
  const char* words[] = {"book", "back", "cork", "sick"};
  for (const char* a : words) {
    for (const char* b : words) {
      for (const char* c : words) {
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
      }
    }
  }
}

TEST(StringDistanceTest, LevenshteinSimilarityNormalized) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-12);
}

TEST(StringDistanceTest, JaroKnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
}

TEST(StringDistanceTest, JaroWinklerBoostsCommonPrefix) {
  double jaro = JaroSimilarity("martha", "marhta");
  double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.9611, 1e-3);
  // No common prefix: equal to Jaro.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "xbc"),
                   JaroSimilarity("abc", "xbc"));
}

TEST(StringDistanceTest, JaroWinklerBounded) {
  EXPECT_LE(JaroWinklerSimilarity("prefixes", "prefixed"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

// ----------------------------------------------------------------- TFIDF

TEST(TfIdfTest, IdfDiscountsCommonTokens) {
  TfIdfCorpus corpus;
  TokenProfile d1, d2, d3;
  d1.AddAll({"the", "cat"});
  d2.AddAll({"the", "dog"});
  d3.AddAll({"the", "fox"});
  corpus.AddDocument(d1);
  corpus.AddDocument(d2);
  corpus.AddDocument(d3);
  EXPECT_EQ(corpus.num_documents(), 3u);
  EXPECT_LT(corpus.Idf("the"), corpus.Idf("cat"));
  EXPECT_GT(corpus.Idf("never_seen"), corpus.Idf("cat"));
}

TEST(TfIdfTest, WeightScalesCounts) {
  TfIdfCorpus corpus;
  TokenProfile d;
  d.AddAll({"rare", "common", "common"});
  corpus.AddDocument(d);
  TokenProfile w = corpus.Weight(d);
  EXPECT_DOUBLE_EQ(w.Count("rare"), 1.0 * corpus.Idf("rare"));
  EXPECT_DOUBLE_EQ(w.Count("common"), 2.0 * corpus.Idf("common"));
}

TEST(TfIdfTest, WeightedCosinePrefersDistinctiveOverlap) {
  // Documents share "the"; only d1/d2 share "cat".  The weighted cosine of
  // (d1, d2) must exceed that of (d1, d3) by more than the raw cosine does,
  // because "the" is discounted.
  TfIdfCorpus corpus;
  TokenProfile d1, d2, d3, d4;
  d1.AddAll({"the", "cat", "sat"});
  d2.AddAll({"the", "cat", "ran"});
  d3.AddAll({"the", "dog", "ran"});
  d4.AddAll({"the", "owl", "hid"});
  for (const auto* d : {&d1, &d2, &d3, &d4}) corpus.AddDocument(*d);
  double w12 = corpus.WeightedCosine(d1, d2);
  double w14 = corpus.WeightedCosine(d1, d4);
  EXPECT_GT(w12, w14);
}

TEST(TfIdfTest, EmptyCorpusStillWorks) {
  TfIdfCorpus corpus;
  TokenProfile d;
  d.AddAll({"a"});
  EXPECT_GT(corpus.Idf("a"), 0.0);
  EXPECT_NEAR(corpus.WeightedCosine(d, d), 1.0, 1e-12);
}

// ------------------------------------------------------------ Gram kernel

TEST(GramKernelTest, PackUnpackRoundTrip) {
  for (size_t q = 1; q <= kMaxPackedGramQ; ++q) {
    for (const std::string text : {"hello", "a", "x9 z", "the end"}) {
      for (const std::string& gram : QGrams(text, q)) {
        EXPECT_EQ(UnpackGram(PackGram(gram), q), gram);
      }
    }
  }
}

TEST(GramKernelTest, PackedOrderIsLexOrder) {
  // Big-endian packing: numeric id order == lexicographic gram order for a
  // fixed q (what lets sorted flat profiles replace the sorted map).
  std::vector<std::string> grams = QGrams("schema matching", 3);
  std::sort(grams.begin(), grams.end());
  for (size_t g = 1; g < grams.size(); ++g) {
    EXPECT_LE(PackGram(grams[g - 1]), PackGram(grams[g]));
    if (grams[g - 1] != grams[g]) {
      EXPECT_LT(PackGram(grams[g - 1]), PackGram(grams[g]));
    }
  }
}

TEST(GramKernelTest, AppendPackedMatchesStringGrams) {
  std::string scratch;
  for (size_t q = 1; q <= kMaxPackedGramQ; ++q) {
    for (const std::string text :
         {"", "!!!", "ab", "Hello, World", "caf\xc3\xa9 menu", "42.5"}) {
      const std::vector<std::string> grams = QGrams(text, q);
      std::vector<GramId> ids;
      AppendPackedQGrams(text, q, &scratch, &ids);
      ASSERT_EQ(ids.size(), grams.size()) << "q=" << q << " \"" << text << '"';
      for (size_t g = 0; g < grams.size(); ++g) {
        EXPECT_EQ(ids[g], PackGram(grams[g]));
      }
    }
  }
}

TEST(GramKernelTest, EmptyAndSeparatorOnlyTextsProduceNoGrams) {
  std::string scratch;
  std::vector<GramId> ids;
  AppendPackedQGrams("", 3, &scratch, &ids);
  EXPECT_TRUE(ids.empty());
  AppendPackedQGrams("?!,", 3, &scratch, &ids);
  EXPECT_TRUE(ids.empty());
}

TEST(GramKernelTest, MultiByteUtf8ActsAsSeparator) {
  // NormalizeText maps bytes >= 0x80 to separators, so multi-byte UTF-8
  // never reaches the packer and packed ids stay injective.
  EXPECT_EQ(QGrams("caf\xc3\xa9", 3), QGrams("caf", 3));
  std::string scratch;
  std::vector<GramId> ids, ascii_ids;
  AppendPackedQGrams("caf\xc3\xa9", 3, &scratch, &ids);
  AppendPackedQGrams("caf", 3, &scratch, &ascii_ids);
  EXPECT_EQ(ids, ascii_ids);
}

TEST(GramKernelTest, TokenInternerFirstSeenOrder) {
  TokenInterner interner;
  EXPECT_EQ(interner.GetOrAdd("beta"), 0u);
  EXPECT_EQ(interner.GetOrAdd("alpha"), 1u);
  EXPECT_EQ(interner.GetOrAdd("beta"), 0u);
  EXPECT_EQ(interner.Find("alpha"), 1u);
  EXPECT_EQ(interner.Find("gamma"), kNoGramId);
  EXPECT_EQ(interner.value(0), "beta");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(GramKernelTest, FlatProfilesMatchMapProfiles) {
  const std::vector<std::string> texts = {"the silent river", "a winter",
                                          "the paper ocean", ""};
  TokenProfile ref_q, ref_w;
  GramProfileBuilder gram_builder;
  WordProfileBuilder word_builder;
  for (const std::string& text : texts) {
    ref_q.AddAll(QGrams(text, 3));
    ref_w.AddAll(WordTokens(text));
    gram_builder.AddText(text, 3);
    word_builder.AddText(text);
  }
  const GramProfile gp = gram_builder.Build();
  const WordProfile wp = word_builder.Build();
  EXPECT_EQ(gp.num_distinct(), ref_q.num_distinct());
  EXPECT_EQ(gp.total(), ref_q.total());
  EXPECT_EQ(gp.Norm(), ref_q.Norm());
  EXPECT_EQ(gp.Dot(gp), ref_q.Dot(ref_q));
  EXPECT_EQ(wp.num_distinct(), ref_w.num_distinct());
  EXPECT_EQ(wp.total(), ref_w.total());
  EXPECT_EQ(CosineSimilarity(gp, gp), CosineSimilarity(ref_q, ref_q));
  EXPECT_EQ(DiceSimilarity(wp, wp), DiceSimilarity(ref_w, ref_w));
}

TEST(GramKernelTest, WeightedProfileCountsScale) {
  // AddText(text, count) must equal adding the text `count` times.
  GramProfileBuilder once_builder, scaled_builder;
  for (int rep = 0; rep < 5; ++rep) once_builder.AddText("abc", 3);
  scaled_builder.AddText("abc", 3, 5.0);
  const GramProfile repeated = once_builder.Build();
  const GramProfile scaled = scaled_builder.Build();
  EXPECT_EQ(repeated.total(), scaled.total());
  EXPECT_EQ(repeated.Norm(), scaled.Norm());
  EXPECT_EQ(repeated.num_distinct(), scaled.num_distinct());
}

}  // namespace
}  // namespace csm
