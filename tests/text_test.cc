// Tests for src/text: tokenizer, profiles & similarities, string distances,
// TF-IDF.

#include <gtest/gtest.h>

#include <cmath>

#include "text/profile.h"
#include "text/string_distance.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace csm {
namespace {

// ------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, NormalizeText) {
  EXPECT_EQ(NormalizeText("Lance Armstrong's War!"), "lance armstrong s war");
  EXPECT_EQ(NormalizeText("  A--B  "), "a b");
  EXPECT_EQ(NormalizeText(""), "");
  EXPECT_EQ(NormalizeText("!!!"), "");
  EXPECT_EQ(NormalizeText("abc123"), "abc123");
}

TEST(TokenizerTest, WordTokens) {
  EXPECT_EQ(WordTokens("The Quick, Brown Fox."),
            (std::vector<std::string>{"the", "quick", "brown", "fox"}));
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("---").empty());
  EXPECT_EQ(WordTokens("x"), (std::vector<std::string>{"x"}));
}

TEST(TokenizerTest, QGramsPaddedAndOrdered) {
  std::vector<std::string> grams = QGrams("ab", 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"##a", "#ab", "ab#", "b##"}));
}

TEST(TokenizerTest, QGramsNormalizeFirst) {
  EXPECT_EQ(QGrams("A-B", 3), QGrams("a b", 3));
}

TEST(TokenizerTest, QGramsEdgeCases) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_TRUE(QGrams("!!!", 3).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
  // q=1: no padding beyond the string itself.
  EXPECT_EQ(QGrams("ab", 1), (std::vector<std::string>{"a", "b"}));
}

TEST(TokenizerTest, QGramCountMatchesFormula) {
  // Padded length = n + 2(q-1); gram count = padded - q + 1 = n + q - 1.
  std::string text = "hello";
  EXPECT_EQ(QGrams(text, 3).size(), text.size() + 2);
}

// --------------------------------------------------------------- Profile

TokenProfile ProfileOf(const std::vector<std::string>& tokens) {
  TokenProfile p;
  p.AddAll(tokens);
  return p;
}

TEST(ProfileTest, CountsAndTotals) {
  TokenProfile p = ProfileOf({"a", "b", "a"});
  EXPECT_EQ(p.num_distinct(), 2u);
  EXPECT_DOUBLE_EQ(p.total(), 3.0);
  EXPECT_DOUBLE_EQ(p.Count("a"), 2.0);
  EXPECT_DOUBLE_EQ(p.Count("z"), 0.0);
}

TEST(ProfileTest, NormAndDot) {
  TokenProfile p = ProfileOf({"a", "a", "b"});  // (2,1)
  TokenProfile q = ProfileOf({"a", "b", "b"});  // (1,2)
  EXPECT_DOUBLE_EQ(p.Norm(), std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(p.Dot(q), 4.0);
  EXPECT_EQ(p.IntersectionSize(q), 2u);
}

TEST(ProfileTest, CosineIdenticalIsOne) {
  TokenProfile p = ProfileOf({"x", "y", "x"});
  EXPECT_NEAR(CosineSimilarity(p, p), 1.0, 1e-12);
}

TEST(ProfileTest, CosineDisjointIsZero) {
  EXPECT_DOUBLE_EQ(
      CosineSimilarity(ProfileOf({"a"}), ProfileOf({"b"})), 0.0);
}

TEST(ProfileTest, CosineEmptyIsZero) {
  TokenProfile empty;
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, ProfileOf({"a"})), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, empty), 0.0);
}

TEST(ProfileTest, CosineIsSymmetric) {
  TokenProfile p = ProfileOf({"a", "b", "c", "a"});
  TokenProfile q = ProfileOf({"b", "c", "d"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(p, q), CosineSimilarity(q, p));
}

TEST(ProfileTest, JaccardAndDiceAndOverlap) {
  TokenProfile p = ProfileOf({"a", "b", "c"});
  TokenProfile q = ProfileOf({"b", "c", "d", "e"});
  // intersection 2, union 5.
  EXPECT_DOUBLE_EQ(JaccardSimilarity(p, q), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(p, q), 2.0 * 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(p, q), 2.0 / 3.0);
}

TEST(ProfileTest, SimilaritiesBounded) {
  TokenProfile p = ProfileOf({"a", "b"});
  TokenProfile q = ProfileOf({"a", "b"});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(p, q), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(p, q), 1.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(p, q), 1.0);
}

// ------------------------------------------------------ String distances

TEST(StringDistanceTest, LevenshteinKnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
  EXPECT_EQ(LevenshteinDistance("a", "b"), 1u);
}

TEST(StringDistanceTest, LevenshteinSymmetric) {
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"),
            LevenshteinDistance("lawn", "flaw"));
}

TEST(StringDistanceTest, LevenshteinTriangleInequality) {
  const char* words[] = {"book", "back", "cork", "sick"};
  for (const char* a : words) {
    for (const char* b : words) {
      for (const char* c : words) {
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
      }
    }
  }
}

TEST(StringDistanceTest, LevenshteinSimilarityNormalized) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-12);
}

TEST(StringDistanceTest, JaroKnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
}

TEST(StringDistanceTest, JaroWinklerBoostsCommonPrefix) {
  double jaro = JaroSimilarity("martha", "marhta");
  double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.9611, 1e-3);
  // No common prefix: equal to Jaro.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "xbc"),
                   JaroSimilarity("abc", "xbc"));
}

TEST(StringDistanceTest, JaroWinklerBounded) {
  EXPECT_LE(JaroWinklerSimilarity("prefixes", "prefixed"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

// ----------------------------------------------------------------- TFIDF

TEST(TfIdfTest, IdfDiscountsCommonTokens) {
  TfIdfCorpus corpus;
  TokenProfile d1, d2, d3;
  d1.AddAll({"the", "cat"});
  d2.AddAll({"the", "dog"});
  d3.AddAll({"the", "fox"});
  corpus.AddDocument(d1);
  corpus.AddDocument(d2);
  corpus.AddDocument(d3);
  EXPECT_EQ(corpus.num_documents(), 3u);
  EXPECT_LT(corpus.Idf("the"), corpus.Idf("cat"));
  EXPECT_GT(corpus.Idf("never_seen"), corpus.Idf("cat"));
}

TEST(TfIdfTest, WeightScalesCounts) {
  TfIdfCorpus corpus;
  TokenProfile d;
  d.AddAll({"rare", "common", "common"});
  corpus.AddDocument(d);
  TokenProfile w = corpus.Weight(d);
  EXPECT_DOUBLE_EQ(w.Count("rare"), 1.0 * corpus.Idf("rare"));
  EXPECT_DOUBLE_EQ(w.Count("common"), 2.0 * corpus.Idf("common"));
}

TEST(TfIdfTest, WeightedCosinePrefersDistinctiveOverlap) {
  // Documents share "the"; only d1/d2 share "cat".  The weighted cosine of
  // (d1, d2) must exceed that of (d1, d3) by more than the raw cosine does,
  // because "the" is discounted.
  TfIdfCorpus corpus;
  TokenProfile d1, d2, d3, d4;
  d1.AddAll({"the", "cat", "sat"});
  d2.AddAll({"the", "cat", "ran"});
  d3.AddAll({"the", "dog", "ran"});
  d4.AddAll({"the", "owl", "hid"});
  for (const auto* d : {&d1, &d2, &d3, &d4}) corpus.AddDocument(*d);
  double w12 = corpus.WeightedCosine(d1, d2);
  double w14 = corpus.WeightedCosine(d1, d4);
  EXPECT_GT(w12, w14);
}

TEST(TfIdfTest, EmptyCorpusStillWorks) {
  TfIdfCorpus corpus;
  TokenProfile d;
  d.AddAll({"a"});
  EXPECT_GT(corpus.Idf("a"), 0.0);
  EXPECT_NEAR(corpus.WeightedCosine(d, d), 1.0, 1e-12);
}

}  // namespace
}  // namespace csm
