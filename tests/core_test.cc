// Tests for src/core: ClusteredViewGen, the three InferCandidateViews
// strategies, disjunct merging, SelectContextualMatches, and the
// ContextMatch driver.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "core/clustered_view_gen.h"
#include "core/context_match.h"
#include "core/naive_infer.h"
#include "core/src_class_infer.h"
#include "core/tgt_class_infer.h"
#include "datagen/retail_gen.h"
#include "datagen/wordlists.h"
#include "ml/gaussian_classifier.h"
#include "ml/naive_bayes.h"
#include "tests/test_util.h"

namespace csm {
namespace {

using testing::I;
using testing::MakeTable;
using testing::R;
using testing::S;

/// A table whose `type` column genuinely clusters `text`, and whose `noise`
/// column is an uninformative categorical attribute.
Table ClusteredFixture(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> out;
  for (size_t i = 0; i < rows; ++i) {
    bool is_book = rng.NextBernoulli(0.5);
    out.push_back({S(is_book ? "book" : "cd"),
                   S(is_book ? MakeBookTitle(rng).c_str()
                             : MakeUpc(rng).c_str()),
                   S(rng.NextBernoulli(0.5) ? "hi" : "lo")});
  }
  return MakeTable("inv", {"type", "text", "noise"}, out);
}

ClassifierFactory SrcFactory() {
  return [](ValueType evidence_type) -> std::unique_ptr<ValueClassifier> {
    if (evidence_type == ValueType::kInt ||
        evidence_type == ValueType::kReal) {
      return std::make_unique<GaussianClassifier>();
    }
    return std::make_unique<NaiveBayesClassifier>(3);
  };
}

// ------------------------------------------------------ ClusteredViewGen

TEST(ClusteredViewGenTest, AcceptsInformativePartitionRejectsNoise) {
  Table t = ClusteredFixture(200, 1);
  Rng rng(2);
  auto families = ClusteredViewGen(t, SrcFactory(), {}, {}, false, rng);
  ASSERT_FALSE(families.empty());
  for (const ViewFamily& family : families) {
    EXPECT_EQ(family.label_attribute, "type")
        << "noise attribute accepted: " << family.ToString();
    EXPECT_TRUE(family.IsWellFormed());
    EXPECT_GT(family.significance, 0.95);
    EXPECT_GT(family.classifier_f1, 0.5);
    EXPECT_EQ(family.evidence_attribute, "text");
  }
}

TEST(ClusteredViewGenTest, FamilyPartitionsAllLabelValues) {
  Table t = ClusteredFixture(200, 3);
  Rng rng(4);
  auto families = ClusteredViewGen(t, SrcFactory(), {}, {}, false, rng);
  ASSERT_FALSE(families.empty());
  const ViewFamily& family = families[0];
  size_t covered = 0;
  for (const View& v : family.views) {
    covered += v.MatchingRows(t).size();
  }
  EXPECT_EQ(covered, t.num_rows());
}

TEST(ClusteredViewGenTest, ExplicitLabelListRestrictsSearch) {
  Table t = ClusteredFixture(200, 5);
  Rng rng(6);
  auto families =
      ClusteredViewGen(t, SrcFactory(), {}, {}, false, rng, {"noise"});
  EXPECT_TRUE(families.empty());  // noise cannot be predicted by text
}

TEST(ClusteredViewGenTest, HighCardinalityLabelSkipped) {
  Rng data_rng(7);
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({S(StrFormat("label%d", i % 60).c_str()),
                    S(MakeBookTitle(data_rng).c_str())});
  }
  Table t = MakeTable("t", {"many", "text"}, rows);
  ClusteredViewGenOptions options;
  options.max_label_cardinality = 50;
  Rng rng(8);
  auto families =
      ClusteredViewGen(t, SrcFactory(), options, {}, false, rng, {"many"});
  EXPECT_TRUE(families.empty());
}

TEST(ClusteredViewGenTest, TinySampleRejectedByMinTestSize) {
  Table t = ClusteredFixture(6, 9);
  ClusteredViewGenOptions options;
  options.min_test_size = 10;
  Rng rng(10);
  auto families = ClusteredViewGen(t, SrcFactory(), options, {}, false, rng);
  EXPECT_TRUE(families.empty());
}

TEST(ClusteredViewGenTest, EarlyDisjunctsMergeConfusedValues) {
  // Four labels where b1/b2 and c1/c2 are indistinguishable from the text:
  // early-disjunct merging should produce a family with merged conditions.
  Rng data_rng(11);
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    bool is_book = data_rng.NextBernoulli(0.5);
    const char* label = is_book ? (data_rng.NextBernoulli(0.5) ? "b1" : "b2")
                                : (data_rng.NextBernoulli(0.5) ? "c1" : "c2");
    rows.push_back({S(label), S(is_book ? MakeBookTitle(data_rng).c_str()
                                        : MakeUpc(data_rng).c_str())});
  }
  Table t = MakeTable("inv", {"type", "text"}, rows);
  Rng rng(12);
  auto families = ClusteredViewGen(t, SrcFactory(), {}, {}, true, rng);
  bool found_merged = false;
  for (const ViewFamily& family : families) {
    for (const View& v : family.views) {
      const auto& values = v.condition().clauses()[0].values;
      if (values.size() == 2 &&
          ((values[0] == S("b1") && values[1] == S("b2")) ||
           (values[0] == S("c1") && values[1] == S("c2")))) {
        found_merged = true;
      }
      // No merge may ever mix a book label with a cd label.
      if (values.size() == 2) {
        bool has_b = values[0] == S("b1") || values[0] == S("b2") ||
                     values[1] == S("b1") || values[1] == S("b2");
        bool has_c = values[0] == S("c1") || values[0] == S("c2") ||
                     values[1] == S("c1") || values[1] == S("c2");
        EXPECT_FALSE(has_b && has_c) << v.ToString();
      }
    }
  }
  EXPECT_TRUE(found_merged);
}

TEST(ClusteredViewGenTest, DeterministicGivenSeed) {
  Table t = ClusteredFixture(150, 13);
  Rng rng1(14), rng2(14);
  auto a = ClusteredViewGen(t, SrcFactory(), {}, {}, true, rng1);
  auto b = ClusteredViewGen(t, SrcFactory(), {}, {}, true, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString());
    EXPECT_DOUBLE_EQ(a[i].significance, b[i].significance);
  }
}

// ------------------------------------------------------------ NaiveInfer

TEST(NaiveInferTest, EmitsEveryValueOfEveryCategoricalAttribute) {
  Table t = ClusteredFixture(200, 15);
  NaiveInfer infer({}, 12, 50);
  MatchList matches(1);  // non-empty: inference must run
  InferenceInput input;
  input.source_sample = t;
  input.matches = &matches;
  Rng rng(16);
  auto candidates = infer.InferCandidateViews(input, rng);
  std::set<std::string> conditions;
  for (const auto& c : candidates) {
    conditions.insert(c.view.condition().ToString());
  }
  // type has 2 values, noise has 2 values: all four simple conditions.
  EXPECT_TRUE(conditions.count("type = 'book'"));
  EXPECT_TRUE(conditions.count("type = 'cd'"));
  EXPECT_TRUE(conditions.count("noise = 'hi'"));
  EXPECT_TRUE(conditions.count("noise = 'lo'"));
}

TEST(NaiveInferTest, NoMatchesMeansNoCandidates) {
  Table t = ClusteredFixture(200, 17);
  NaiveInfer infer({}, 12, 50);
  MatchList empty;
  InferenceInput input;
  input.source_sample = t;
  input.matches = &empty;
  Rng rng(18);
  EXPECT_TRUE(infer.InferCandidateViews(input, rng).empty());
}

TEST(NaiveInferTest, EarlyDisjunctsEnumerateSubsets) {
  // A 4-valued categorical attribute with early disjuncts: singletons plus
  // all subsets of size 2..3 = 4 + 10 = 14 conditions.
  std::vector<Row> rows;
  for (int i = 0; i < 80; ++i) {
    rows.push_back({S(StrFormat("v%d", i % 4).c_str())});
  }
  Table t = MakeTable("t", {"k"}, rows);
  NaiveInfer infer({}, 12, 50);
  MatchList matches(1);
  InferenceInput input;
  input.source_sample = t;
  input.matches = &matches;
  input.early_disjuncts = true;
  Rng rng(19);
  auto candidates = infer.InferCandidateViews(input, rng);
  EXPECT_EQ(candidates.size(), 14u);
}

TEST(NaiveInferTest, DisjunctLimitGuardsExponentialBlowup) {
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({S(StrFormat("v%d", i % 8).c_str())});
  }
  Table t = MakeTable("t", {"k"}, rows);
  NaiveInfer limited({}, /*disjunct_limit=*/4, 50);
  MatchList matches(1);
  InferenceInput input;
  input.source_sample = t;
  input.matches = &matches;
  input.early_disjuncts = true;
  Rng rng(20);
  // Cardinality 8 > limit 4: only the 8 singleton conditions.
  EXPECT_EQ(limited.InferCandidateViews(input, rng).size(), 8u);
}

TEST(NaiveInferTest, ExcludedAttributesSkipped) {
  Table t = ClusteredFixture(200, 21);
  NaiveInfer infer({}, 12, 50);
  MatchList matches(1);
  InferenceInput input;
  input.source_sample = t;
  input.matches = &matches;
  input.excluded_partition_attributes = {"type"};
  Rng rng(22);
  for (const auto& c : infer.InferCandidateViews(input, rng)) {
    EXPECT_FALSE(c.view.condition().MentionsAttribute("type"));
  }
}

// --------------------------------------------------- Src/Tgt class infer

TEST(SrcClassInferTest, ProposesOnlyInformativeFamilies) {
  Table t = ClusteredFixture(200, 23);
  Database target("tgt");  // SrcClassInfer ignores the target
  SrcClassInfer infer({}, {});
  MatchList matches(1);
  InferenceInput input;
  input.source_sample = t;
  input.target_sample = &target;
  input.matches = &matches;
  Rng rng(24);
  auto candidates = infer.InferCandidateViews(input, rng);
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates) {
    EXPECT_TRUE(c.view.condition().MentionsAttribute("type"))
        << c.view.ToString();
    EXPECT_GT(c.family_significance, 0.95);
  }
}

TEST(TgtTagClassifierTest, TBagScoreAndBestCat) {
  TgtTagClassifier classifier(nullptr);  // every input tags as ""
  classifier.Train(S("x"), "1");
  classifier.Train(S("y"), "1");
  classifier.Train(S("z"), "2");
  // Tag "" was seen 3 times; label 1 twice, label 2 once.
  // score("", "1") = (2/3)*(2/2) = 0.667; score("", "2") = (1/3)*(1/1).
  EXPECT_NEAR(classifier.Score("", "1"), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(classifier.Score("", "2"), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(classifier.BestCat(""), "1");
  EXPECT_EQ(classifier.BestCat("never_seen_tag"), "1");  // most common
  EXPECT_EQ(classifier.Classify(S("anything")), "1");
}

TEST(TgtTagClassifierTest, DistinctTagsSeparateLabels) {
  // Hand-built tagger: a trained NB that maps book-ish text to "Book.Title"
  // and digits to "Music.UPC".
  auto tagger = std::make_shared<NaiveBayesClassifier>(3);
  Rng rng(25);
  for (int i = 0; i < 30; ++i) {
    tagger->Train(S(MakeBookTitle(rng).c_str()), "Book.Title");
    tagger->Train(S(MakeUpc(rng).c_str()), "Music.UPC");
  }
  TgtTagClassifier classifier(tagger);
  for (int i = 0; i < 30; ++i) {
    classifier.Train(S(MakeBookTitle(rng).c_str()), "book");
    classifier.Train(S(MakeUpc(rng).c_str()), "cd");
  }
  EXPECT_EQ(classifier.Classify(S(MakeBookTitle(rng).c_str())), "book");
  EXPECT_EQ(classifier.Classify(S(MakeUpc(rng).c_str())), "cd");
}

TEST(CreateTargetClassifierTest, TrainsOnMatchingTypeOnly) {
  Database target("tgt");
  target.AddTable(MakeTable("books", {"title", "cost"},
                            {{S("the silent river"), R(12.0)},
                             {S("a winter garden"), R(15.0)}}));
  auto string_classifier = CreateTargetClassifier(ValueType::kString, target);
  ASSERT_NE(string_classifier, nullptr);
  EXPECT_EQ(string_classifier->Labels(),
            (std::vector<std::string>{"books.title"}));
  auto numeric_classifier = CreateTargetClassifier(ValueType::kReal, target);
  ASSERT_NE(numeric_classifier, nullptr);
  EXPECT_EQ(numeric_classifier->Labels(),
            (std::vector<std::string>{"books.cost"}));
}

TEST(CreateTargetClassifierTest, NullWhenNoAttributeOfType) {
  Database target("tgt");
  target.AddTable(MakeTable("t", {"s"}, {{S("x")}}));
  EXPECT_EQ(CreateTargetClassifier(ValueType::kReal, target), nullptr);
}

TEST(ViewInferenceTest, FactoryProducesRequestedKind) {
  ContextMatchOptions options;
  EXPECT_EQ(MakeViewInference(ViewInferenceKind::kNaive, options)->Name(),
            "NaiveInfer");
  EXPECT_EQ(MakeViewInference(ViewInferenceKind::kSrcClass, options)->Name(),
            "SrcClassInfer");
  EXPECT_EQ(MakeViewInference(ViewInferenceKind::kTgtClass, options)->Name(),
            "TgtClassInfer");
}

TEST(ViewInferenceTest, DeduplicateKeepsFirst) {
  CandidateView a, b, c;
  a.view = View("v1", "t", Condition::Equals("x", I(1)));
  a.family_f1 = 0.9;
  b.view = View("v1_again", "t", Condition::Equals("x", I(1)));
  b.family_f1 = 0.1;
  c.view = View("v2", "t", Condition::Equals("x", I(2)));
  auto out = DeduplicateCandidates({a, b, c});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].family_f1, 0.9);
}

// ------------------------------------------------ SelectContextualMatches

Match MkMatch(const char* stable, const char* sattr, const char* ttable,
              const char* tattr, double conf, Condition cond = {}) {
  Match m;
  m.source = {stable, sattr};
  m.target = {ttable, tattr};
  m.condition = std::move(cond);
  m.confidence = conf;
  m.score = conf;
  return m;
}

TEST(SelectMatchesTest, MultiTablePicksBestPerTargetAttribute) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("s1", "a", "t", "x", 0.6));
  pool.base_matches.push_back(MkMatch("s2", "b", "t", "x", 0.8));
  SelectionResult r = SelectMultiTable(pool, 0.0);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].source.table, "s2");
}

TEST(SelectMatchesTest, MultiTableViewNeedsOmegaImprovement) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("s", "a", "t", "x", 0.6));
  Condition cond = Condition::Equals("k", I(1));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "x", 0.7, cond));
  pool.candidate_views.emplace_back("v", "s", cond);
  // omega 0.2: 0.7 < 0.6 + 0.2, view not eligible.
  SelectionResult strict = SelectMultiTable(pool, 0.2);
  ASSERT_EQ(strict.matches.size(), 1u);
  EXPECT_TRUE(strict.matches[0].is_standard());
  // omega 0.05: view eligible and wins.
  SelectionResult loose = SelectMultiTable(pool, 0.05);
  ASSERT_EQ(loose.matches.size(), 1u);
  EXPECT_FALSE(loose.matches[0].is_standard());
  EXPECT_EQ(loose.selected_views.size(), 1u);
}

TEST(SelectMatchesTest, QualTableKeepsBaseWhenNoViewImproves) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("s", "a", "t", "x", 0.8));
  Condition cond = Condition::Equals("k", I(1));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "x", 0.82, cond));
  pool.candidate_views.emplace_back("v", "s", cond);
  SelectionResult r = SelectQualTable(pool, 0.15, true, 0.5);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_TRUE(r.matches[0].is_standard());
  EXPECT_TRUE(r.selected_views.empty());
}

TEST(SelectMatchesTest, QualTablePicksBestSourceTableFirst) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("weak", "a", "t", "x", 0.55));
  pool.base_matches.push_back(MkMatch("strong", "a", "t", "x", 0.7));
  pool.base_matches.push_back(MkMatch("strong", "b", "t", "y", 0.7));
  SelectionResult r = SelectQualTable(pool, 0.15, true, 0.5);
  ASSERT_EQ(r.matches.size(), 2u);
  for (const Match& m : r.matches) {
    EXPECT_EQ(m.source.table, "strong");
  }
}

TEST(SelectMatchesTest, QualTableEarlySelectsSingleBestView) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("s", "a", "t", "x", 0.5));
  Condition c1 = Condition::Equals("k", I(1));
  Condition c2 = Condition::Equals("k", I(2));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "x", 0.9, c1));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "x", 0.8, c2));
  pool.candidate_views.emplace_back("v1", "s", c1);
  pool.candidate_views.emplace_back("v2", "s", c2);
  SelectionResult early = SelectQualTable(pool, 0.15, true, 0.5);
  EXPECT_EQ(early.selected_views.size(), 1u);
  EXPECT_EQ(early.selected_views[0].name(), "v1");
  SelectionResult late = SelectQualTable(pool, 0.15, false, 0.5);
  EXPECT_EQ(late.selected_views.size(), 2u);
}

TEST(SelectMatchesTest, QualTableEmitsBestTargetPerSourceAttribute) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("s", "a", "t", "x", 0.5));
  Condition cond = Condition::Equals("k", I(1));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "x", 0.9, cond));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "y", 0.7, cond));
  pool.candidate_views.emplace_back("v", "s", cond);
  SelectionResult r = SelectQualTable(pool, 0.15, true, 0.5);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].target.attribute, "x");
}

// Regression for the BaseConfidenceIndex that replaced the per-view-match
// linear scan over base_matches: on duplicate (source, target) pairs the
// old scan took the *first* match's confidence, so the index must too.
TEST(SelectMatchesTest, MultiTableBaseConfidenceKeepsFirstDuplicate) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("s", "a", "t", "x", 0.3));
  pool.base_matches.push_back(MkMatch("s", "a", "t", "x", 0.9));
  Condition cond = Condition::Equals("k", I(1));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "x", 0.95, cond));
  pool.candidate_views.emplace_back("v", "s", cond);
  // Eligibility gates on the FIRST duplicate (0.3): 0.95 >= 0.3 + 0.1.
  // Against the second duplicate it would fail (0.95 < 0.9 + 0.1) and the
  // 0.9 base match would win instead.
  SelectionResult r = SelectMultiTable(pool, 0.1);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_FALSE(r.matches[0].is_standard());
  EXPECT_DOUBLE_EQ(r.matches[0].confidence, 0.95);
  EXPECT_EQ(r.selected_views.size(), 1u);
}

// Large randomized pool: the indexed selection must emit exactly what the
// brute-force first-match scan it replaced would have.
TEST(SelectMatchesTest, MultiTableIndexedSelectionMatchesLinearScan) {
  const double omega = 0.05;
  ScoredPool pool;
  Rng rng(99);
  // Confidences on a coarse grid so equal-confidence ties actually occur,
  // and ~1 in 6 base matches is a duplicate pair with a new confidence.
  auto conf = [&rng] { return rng.NextBounded(21) / 20.0; };
  std::vector<Condition> conds = {Condition::Equals("k", I(1)),
                                  Condition::Equals("k", I(2)),
                                  Condition::Equals("g", I(7))};
  for (int i = 0; i < 300; ++i) {
    const std::string st = "s" + std::to_string(rng.NextBounded(4));
    const std::string sa = "a" + std::to_string(rng.NextBounded(6));
    const std::string ta = "x" + std::to_string(rng.NextBounded(8));
    pool.base_matches.push_back(
        MkMatch(st.c_str(), sa.c_str(), "t", ta.c_str(), conf()));
    if (rng.NextBounded(6) == 0) {
      pool.base_matches.push_back(
          MkMatch(st.c_str(), sa.c_str(), "t", ta.c_str(), conf()));
    }
  }
  for (int i = 0; i < 200; ++i) {
    const std::string st = "s" + std::to_string(rng.NextBounded(4));
    const std::string sa = "a" + std::to_string(rng.NextBounded(6));
    const std::string ta = "x" + std::to_string(rng.NextBounded(8));
    pool.view_matches.push_back(MkMatch(st.c_str(), sa.c_str(), "t",
                                        ta.c_str(), conf(),
                                        conds[rng.NextBounded(3)]));
  }

  // Reference: the pre-index algorithm, duplicated verbatim — linear
  // first-match base-confidence scan, then best-per-target with the same
  // consideration order (all base matches, then eligible view matches).
  auto linear_base = [&pool](const Match& vm) {
    for (const Match& b : pool.base_matches) {
      if (b.source == vm.source && b.target == vm.target) {
        return b.confidence;
      }
    }
    return 0.0;
  };
  std::map<AttributeRef, const Match*> best;
  auto consider = [&best](const Match& m) {
    auto [it, inserted] = best.try_emplace(m.target, &m);
    if (!inserted && m.confidence > it->second->confidence) it->second = &m;
  };
  for (const Match& m : pool.base_matches) consider(m);
  for (const Match& vm : pool.view_matches) {
    if (vm.confidence >= linear_base(vm) + omega) consider(vm);
  }
  std::multiset<std::string> expected;
  for (const auto& [target, m] : best) expected.insert(m->ToString());

  SelectionResult r = SelectMultiTable(pool, omega);
  std::multiset<std::string> actual;
  for (const Match& m : r.matches) actual.insert(m.ToString());
  EXPECT_EQ(actual, expected);
}

TEST(SelectMatchesTest, QualTableTauRefilter) {
  ScoredPool pool;
  pool.base_matches.push_back(MkMatch("s", "a", "t", "x", 0.5));
  pool.base_matches.push_back(MkMatch("s", "b", "t", "y", 0.5));
  Condition cond = Condition::Equals("k", I(1));
  pool.view_matches.push_back(MkMatch("s", "a", "t", "x", 0.95, cond));
  pool.view_matches.push_back(MkMatch("s", "b", "t", "y", 0.3, cond));
  pool.candidate_views.emplace_back("v", "s", cond);
  SelectionResult r = SelectQualTable(pool, 0.1, true, 0.5);
  // Only the confident pair survives the tau refilter.
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].source.attribute, "a");
}

TEST(SelectMatchesTest, EmptyPoolYieldsEmptyResult) {
  ScoredPool pool;
  EXPECT_TRUE(SelectQualTable(pool, 0.1, true, 0.5).matches.empty());
  EXPECT_TRUE(SelectMultiTable(pool, 0.1).matches.empty());
}

// ---------------------------------------------------------- ContextMatch

TEST(ContextMatchTest, FindsCorrectViewsOnRetail) {
  RetailOptions d;
  d.num_items = 300;
  d.gamma = 2;
  d.seed = 31;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kSrcClass;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = 32;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  ASSERT_EQ(r.selected_views.size(), 2u);
  std::set<std::string> conditions;
  for (const View& v : r.selected_views) {
    conditions.insert(v.condition().ToString());
  }
  EXPECT_TRUE(conditions.count("ItemType = 'Book1'"));
  EXPECT_TRUE(conditions.count("ItemType = 'CD1'"));
  MatchQuality q = EvaluateMatches(data.truth, r.matches);
  EXPECT_GT(q.fmeasure, 0.8);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
}

TEST(ContextMatchTest, PhaseTimersPopulated) {
  RetailOptions d;
  d.num_items = 150;
  d.seed = 33;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 34;
  o.omega = 0.1;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  EXPECT_GT(r.phases.Seconds("standard_match"), 0.0);
  EXPECT_GT(r.TotalSeconds(), 0.0);
}

TEST(ContextMatchTest, DeterministicGivenSeeds) {
  RetailOptions d;
  d.num_items = 150;
  d.seed = 35;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 36;
  o.omega = 0.1;
  ContextMatchResult a = ContextMatch(data.source, data.target, o);
  ContextMatchResult b = ContextMatch(data.source, data.target, o);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].ToString(), b.matches[i].ToString());
  }
}

TEST(ContextMatchTest, PoolContainsConditionalVersionsOfAcceptedMatches) {
  RetailOptions d;
  d.num_items = 200;
  d.seed = 37;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 38;
  o.omega = 0.1;
  ContextMatchResult r = ContextMatch(data.source, data.target, o);
  ASSERT_FALSE(r.pool.candidate_views.empty());
  // Every view match corresponds to some base match's attribute pair.
  for (const Match& vm : r.pool.view_matches) {
    bool found = false;
    for (const Match& base : r.pool.base_matches) {
      if (base.source == vm.source && base.target == vm.target) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << vm.ToString();
  }
  // Expected cardinality: per candidate view, one rescored match per base
  // match of its table.
  EXPECT_EQ(r.pool.view_matches.size(),
            r.pool.candidate_views.size() * r.pool.base_matches.size());
}

TEST(ConjunctiveContextMatchTest, FindsTwoAttributeCondition) {
  // Source: inventory with type (book/cd) and fiction flag; target:
  // a fiction-books table and a music table.  The correct condition for the
  // fiction table is type='book' AND fiction=1, discoverable only at
  // stage 2.
  Rng rng(39);
  std::vector<Row> src_rows, fiction_rows, music_rows;
  for (int i = 0; i < 300; ++i) {
    bool is_book = rng.NextBernoulli(0.5);
    bool fiction = rng.NextBernoulli(0.5);
    std::string title = is_book ? MakeBookTitle(rng) : MakeAlbumTitle(rng);
    // Fiction titles carry a distinctive marker vocabulary.
    if (is_book && fiction) title += " saga of dragons";
    if (is_book && !fiction) title += " a practical handbook";
    src_rows.push_back({S(is_book ? "book" : "cd"), I(fiction ? 1 : 0),
                        S(title.c_str()),
                        S(is_book ? MakePersonName(rng).c_str()
                                  : MakeBandName(rng).c_str())});
  }
  for (int i = 0; i < 150; ++i) {
    fiction_rows.push_back(
        {S((MakeBookTitle(rng) + " saga of dragons").c_str()),
         S(MakePersonName(rng).c_str())});
    music_rows.push_back(
        {S(MakeAlbumTitle(rng).c_str()), S(MakeBandName(rng).c_str())});
  }
  Database source("src");
  source.AddTable(
      MakeTable("inv", {"type", "fiction", "title", "creator"}, src_rows));
  Database target("tgt");
  target.AddTable(MakeTable("fiction_books", {"title", "author"},
                            fiction_rows));
  target.AddTable(MakeTable("music", {"album", "artist"}, music_rows));

  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kSrcClass;
  o.early_disjuncts = false;
  o.omega = 0.05;
  o.seed = 40;
  ContextMatchResult staged =
      ConjunctiveContextMatch(source, target, o, /*max_stages=*/2);
  bool found_conjunction = false;
  for (const View& v : staged.selected_views) {
    if (v.condition().NumAttributes() == 2 &&
        v.condition().MentionsAttribute("type") &&
        v.condition().MentionsAttribute("fiction")) {
      found_conjunction = true;
    }
  }
  EXPECT_TRUE(found_conjunction)
      << "selected views: " << staged.selected_views.size();
}

TEST(ConjunctiveContextMatchTest, SingleStageEqualsContextMatch) {
  RetailOptions d;
  d.num_items = 150;
  d.seed = 41;
  RetailDataset data = MakeRetailDataset(d);
  ContextMatchOptions o;
  o.seed = 42;
  o.omega = 0.1;
  ContextMatchResult a = ContextMatch(data.source, data.target, o);
  ContextMatchResult b =
      ConjunctiveContextMatch(data.source, data.target, o, 1);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].ToString(), b.matches[i].ToString());
  }
}

TEST(OptionEnumsTest, Names) {
  EXPECT_STREQ(ViewInferenceKindToString(ViewInferenceKind::kNaive),
               "NaiveInfer");
  EXPECT_STREQ(SelectionPolicyToString(SelectionPolicy::kQualTable),
               "QualTable");
  EXPECT_STREQ(SelectionPolicyToString(SelectionPolicy::kMultiTable),
               "MultiTable");
}

}  // namespace
}  // namespace csm
