// Tests for src/datagen: wordlists, ground-truth evaluation, retail and
// grades generators, and src/harness: reporting + repetition.

#include <gtest/gtest.h>

#include <set>

#include "datagen/grades_gen.h"
#include "datagen/ground_truth.h"
#include "datagen/retail_gen.h"
#include "datagen/wordlists.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "relational/categorical.h"

namespace csm {
namespace {

// ------------------------------------------------------------- Wordlists

TEST(WordlistsTest, PoolsAreNonEmptyAndDistinct) {
  EXPECT_GT(BookTitleWords().size(), 30u);
  EXPECT_GT(FirstNames().size(), 30u);
  EXPECT_GT(LastNames().size(), 30u);
  EXPECT_GT(BandNameWords().size(), 20u);
  std::set<std::string_view> unique(BookTitleWords().begin(),
                                    BookTitleWords().end());
  EXPECT_EQ(unique.size(), BookTitleWords().size());
}

TEST(WordlistsTest, GeneratorsAreDeterministic) {
  Rng a(5), b(5);
  EXPECT_EQ(MakeBookTitle(a), MakeBookTitle(b));
  EXPECT_EQ(MakePersonName(a), MakePersonName(b));
  EXPECT_EQ(MakeBandName(a), MakeBandName(b));
  EXPECT_EQ(MakeAlbumTitle(a), MakeAlbumTitle(b));
  EXPECT_EQ(MakeIsbn(a), MakeIsbn(b));
  EXPECT_EQ(MakeUpc(a), MakeUpc(b));
}

TEST(WordlistsTest, CodesHaveExpectedShape) {
  Rng rng(6);
  std::string upc = MakeUpc(rng);
  EXPECT_EQ(upc.size(), 12u);
  for (char c : upc) EXPECT_TRUE(c >= '0' && c <= '9');
  std::string isbn = MakeIsbn(rng);
  EXPECT_EQ(std::count(isbn.begin(), isbn.end(), '-'), 3);
}

// ----------------------------------------------------------- GroundTruth

GroundTruth OneEntryTruth() {
  GroundTruth truth;
  truth.entries.push_back(TruthEntry{
      "s", "a", "t", "x", "k",
      {Value::String("v1"), Value::String("v2")}});
  return truth;
}

Match ViewMatch(const char* sattr, const char* tattr,
                std::vector<Value> values, const char* label_attr = "k") {
  Match m;
  m.source = {"s", sattr};
  m.target = {"t", tattr};
  m.condition = Condition::In(label_attr, std::move(values));
  m.confidence = 0.9;
  return m;
}

TEST(GroundTruthTest, CorrectMatchDetection) {
  GroundTruth truth = OneEntryTruth();
  EXPECT_TRUE(IsCorrectMatch(truth, ViewMatch("a", "x", {Value::String("v1")})));
  EXPECT_TRUE(IsCorrectMatch(
      truth, ViewMatch("a", "x", {Value::String("v1"), Value::String("v2")})));
  // Wrong value, wrong attribute pairing, wrong label attribute.
  EXPECT_FALSE(
      IsCorrectMatch(truth, ViewMatch("a", "x", {Value::String("zz")})));
  EXPECT_FALSE(
      IsCorrectMatch(truth, ViewMatch("a", "y", {Value::String("v1")})));
  EXPECT_FALSE(IsCorrectMatch(
      truth, ViewMatch("a", "x", {Value::String("v1")}, "other")));
}

TEST(GroundTruthTest, StandardMatchesIgnored) {
  GroundTruth truth = OneEntryTruth();
  Match standard;
  standard.source = {"s", "a"};
  standard.target = {"t", "x"};
  EXPECT_FALSE(IsCorrectMatch(truth, standard));
  MatchQuality q = EvaluateMatches(truth, {standard});
  EXPECT_EQ(q.view_matches, 0u);
  EXPECT_DOUBLE_EQ(q.accuracy, 0.0);
}

TEST(GroundTruthTest, PartialCoverageEarnsFractionalAccuracy) {
  GroundTruth truth = OneEntryTruth();
  MatchQuality q =
      EvaluateMatches(truth, {ViewMatch("a", "x", {Value::String("v1")})});
  EXPECT_DOUBLE_EQ(q.accuracy, 0.5);  // one of two allowed values covered
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  MatchQuality full = EvaluateMatches(
      truth, {ViewMatch("a", "x", {Value::String("v1")}),
              ViewMatch("a", "x", {Value::String("v2")})});
  EXPECT_DOUBLE_EQ(full.accuracy, 1.0);
}

TEST(GroundTruthTest, IncorrectMatchesHurtPrecision) {
  GroundTruth truth = OneEntryTruth();
  MatchQuality q = EvaluateMatches(
      truth, {ViewMatch("a", "x", {Value::String("v1"), Value::String("v2")}),
              ViewMatch("a", "y", {Value::String("v1")})});
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_NEAR(q.fmeasure, 2.0 / 3.0, 1e-12);
}

TEST(GroundTruthTest, ConjunctiveConditionsNotCredited) {
  GroundTruth truth = OneEntryTruth();
  Match m = ViewMatch("a", "x", {Value::String("v1")});
  m.condition = m.condition.Conjoin(Condition::Equals("extra", Value::Int(1)));
  EXPECT_FALSE(IsCorrectMatch(truth, m));
}

// ---------------------------------------------------------------- Retail

TEST(RetailGenTest, SchemaShapeAndDeterminism) {
  RetailOptions options;
  options.num_items = 100;
  options.seed = 3;
  RetailDataset a = MakeRetailDataset(options);
  RetailDataset b = MakeRetailDataset(options);
  const Table& inv = a.source.GetTable("inventory");
  EXPECT_EQ(inv.num_rows(), 100u);
  EXPECT_TRUE(inv.schema().HasAttribute("ItemType"));
  EXPECT_TRUE(inv.schema().HasAttribute("StockStatus"));
  EXPECT_EQ(a.target.tables().size(), 2u);
  // Deterministic.
  EXPECT_EQ(inv.ToString(5), b.source.GetTable("inventory").ToString(5));
}

TEST(RetailGenTest, GammaControlsLabelCardinality) {
  for (size_t gamma : {2u, 4u, 8u}) {
    RetailOptions options;
    options.num_items = 200;
    options.gamma = gamma;
    options.seed = 4;
    RetailDataset data = MakeRetailDataset(options);
    auto counts = data.source.GetTable("inventory").ValueCounts("ItemType");
    EXPECT_EQ(counts.size(), gamma);
    EXPECT_EQ(data.book_labels.size(), gamma / 2);
    EXPECT_EQ(data.cd_labels.size(), gamma / 2);
  }
}

TEST(RetailGenTest, ItemTypeIsCategoricalTitleIsNot) {
  RetailOptions options;
  options.num_items = 300;
  options.seed = 5;
  RetailDataset data = MakeRetailDataset(options);
  const Table& inv = data.source.GetTable("inventory");
  EXPECT_TRUE(IsCategoricalAttribute(inv, "ItemType"));
  EXPECT_TRUE(IsCategoricalAttribute(inv, "StockStatus"));
  EXPECT_FALSE(IsCategoricalAttribute(inv, "Title"));
  EXPECT_FALSE(IsCategoricalAttribute(inv, "Code"));
}

TEST(RetailGenTest, CorrelatedAttributesTrackRho) {
  RetailOptions options;
  options.num_items = 1000;
  options.correlated_attributes = 1;
  options.rho = 0.8;
  options.seed = 6;
  RetailDataset data = MakeRetailDataset(options);
  const Table& inv = data.source.GetTable("inventory");
  size_t agree = 0;
  for (size_t r = 0; r < inv.num_rows(); ++r) {
    if (inv.at(r, "CorrType1") == inv.at(r, "ItemType")) ++agree;
  }
  // rho + (1-rho)/gamma chance agreement: 0.8 + 0.2/4 = 0.85.
  EXPECT_NEAR(static_cast<double>(agree) / 1000.0, 0.85, 0.05);
}

TEST(RetailGenTest, SchemaExpansionAddsAttributesEverywhere) {
  RetailOptions options;
  options.num_items = 100;
  options.extra_noncategorical = 3;
  options.extra_categorical = 2;
  options.seed = 7;
  RetailDataset data = MakeRetailDataset(options);
  const Table& inv = data.source.GetTable("inventory");
  EXPECT_TRUE(inv.schema().HasAttribute("Extra3"));
  EXPECT_TRUE(inv.schema().HasAttribute("NoiseCat2"));
  for (const Table& t : data.target.tables()) {
    EXPECT_EQ(t.schema().num_attributes(), 6u + 3u);
  }
}

TEST(RetailGenTest, GroundTruthExcludesIds) {
  RetailOptions options;
  options.num_items = 50;
  options.seed = 8;
  RetailDataset data = MakeRetailDataset(options);
  EXPECT_EQ(data.truth.entries.size(), 10u);  // 5 attrs x 2 tables
  for (const TruthEntry& e : data.truth.entries) {
    EXPECT_NE(e.source_attribute, "ItemID");
    EXPECT_EQ(e.label_attribute, "ItemType");
  }
}

TEST(RetailGenTest, TargetVariantsHaveDistinctNames) {
  std::set<std::string> names;
  for (RetailTarget t : {RetailTarget::kRyanEyers, RetailTarget::kAaronDay,
                         RetailTarget::kBarrettArney}) {
    RetailOptions options;
    options.num_items = 30;
    options.target = t;
    options.seed = 9;
    RetailDataset data = MakeRetailDataset(options);
    for (const Table& table : data.target.tables()) {
      EXPECT_TRUE(names.insert(table.name()).second);
    }
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(RetailGenTest, BooksAndCdsHaveDistinctPriceRanges) {
  RetailOptions options;
  options.num_items = 500;
  options.gamma = 2;
  options.seed = 10;
  RetailDataset data = MakeRetailDataset(options);
  const Table& inv = data.source.GetTable("inventory");
  DescriptiveStats book_prices, cd_prices;
  for (size_t r = 0; r < inv.num_rows(); ++r) {
    if (inv.at(r, "ItemType") == data.book_labels[0]) {
      book_prices.Add(inv.at(r, "Price").AsNumeric());
    } else {
      cd_prices.Add(inv.at(r, "Price").AsNumeric());
    }
  }
  EXPECT_GT(book_prices.Mean(), cd_prices.Mean());
  EXPECT_LE(cd_prices.Max(), 20.0 + 1e-9);
}

// ---------------------------------------------------------------- Grades

TEST(GradesGenTest, ShapeAndRowCounts) {
  GradesOptions options;
  options.num_students = 50;
  options.num_exams = 5;
  options.seed = 11;
  GradesDataset data = MakeGradesDataset(options);
  EXPECT_EQ(data.source.GetTable("grades_narrow").num_rows(), 250u);
  EXPECT_EQ(data.target.GetTable("grades_wide").num_rows(), 50u);
  EXPECT_EQ(data.target.GetTable("grades_wide").schema().num_attributes(),
            6u);
}

TEST(GradesGenTest, ExamMeansFollowFormula) {
  GradesOptions options;
  options.num_students = 400;
  options.sigma = 3.0;
  options.seed = 12;
  GradesDataset data = MakeGradesDataset(options);
  const Table& narrow = data.source.GetTable("grades_narrow");
  std::map<int64_t, DescriptiveStats> per_exam;
  for (size_t r = 0; r < narrow.num_rows(); ++r) {
    per_exam[narrow.at(r, "examNum").AsInt()].Add(
        narrow.at(r, "grade").AsNumeric());
  }
  ASSERT_EQ(per_exam.size(), 5u);
  for (const auto& [exam, stats] : per_exam) {
    EXPECT_NEAR(stats.Mean(), 40.0 + 10.0 * static_cast<double>(exam - 1),
                1.0)
        << "exam " << exam;
    EXPECT_NEAR(stats.SampleStdDev(), 3.0, 0.5);
  }
}

TEST(GradesGenTest, NamesAreUniqueWithinEachSchema) {
  GradesOptions options;
  options.num_students = 300;
  options.seed = 13;
  GradesDataset data = MakeGradesDataset(options);
  const Table& wide = data.target.GetTable("grades_wide");
  std::set<std::string> names;
  for (size_t r = 0; r < wide.num_rows(); ++r) {
    EXPECT_TRUE(names.insert(wide.at(r, "name").AsString()).second);
  }
}

TEST(GradesGenTest, ExamNumIsTheOnlyCategoricalAttribute) {
  GradesOptions options;
  options.seed = 14;
  GradesDataset data = MakeGradesDataset(options);
  EXPECT_EQ(CategoricalAttributes(data.source.GetTable("grades_narrow")),
            (std::vector<std::string>{"examNum"}));
}

TEST(GradesGenTest, TruthHasOneEntryPerExamPlusName) {
  GradesOptions options;
  options.num_exams = 7;
  options.seed = 15;
  GradesDataset data = MakeGradesDataset(options);
  EXPECT_EQ(data.truth.entries.size(), 8u);
  EXPECT_EQ(data.truth.entries[0].source_attribute, "name");
  EXPECT_EQ(data.truth.entries[0].allowed_values.size(), 7u);
  EXPECT_EQ(data.truth.entries[3].allowed_values.size(), 1u);
}

TEST(GradesGenTest, GradesAreClampedToScale) {
  GradesOptions options;
  options.sigma = 50.0;  // extreme noise
  options.seed = 16;
  GradesDataset data = MakeGradesDataset(options);
  const Table& narrow = data.source.GetTable("grades_narrow");
  for (size_t r = 0; r < narrow.num_rows(); ++r) {
    double g = narrow.at(r, "grade").AsNumeric();
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 100.0);
  }
}

// --------------------------------------------------------------- Harness

TEST(ReportTest, AlignedRenderingAndCsv) {
  ResultTable table("Fig X", {"param", "value"});
  table.AddRow({"1", ResultTable::Num(0.5)});
  table.AddRow({"20", ResultTable::Num(1.0 / 3.0)});
  std::string text = table.ToString();
  EXPECT_NE(text.find("== Fig X =="), std::string::npos);
  EXPECT_NE(text.find("0.500"), std::string::npos);
  EXPECT_NE(text.find("0.333"), std::string::npos);
  EXPECT_EQ(table.ToCsv(), "param,value\n1,0.500\n20,0.333\n");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ReportTest, NumDecimals) {
  EXPECT_EQ(ResultTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(ResultTable::Num(2.0, 0), "2");
}

TEST(ExperimentTest, RunRepeatedAggregates) {
  AggregatedMetrics agg = RunRepeated(5, 100, [](uint64_t seed) {
    MetricMap m;
    m["seed_derived"] = static_cast<double>(seed - 100);
    m["constant"] = 7.0;
    return m;
  });
  EXPECT_DOUBLE_EQ(agg.Mean("seed_derived"), 3.0);  // mean of 1..5
  EXPECT_DOUBLE_EQ(agg.Mean("constant"), 7.0);
  EXPECT_DOUBLE_EQ(agg.StdDev("constant"), 0.0);
  EXPECT_TRUE(agg.Has("seconds"));
  EXPECT_FALSE(agg.Has("nope"));
  EXPECT_DOUBLE_EQ(agg.Mean("nope"), 0.0);
}

TEST(ExperimentTest, StopwatchMeasuresElapsed) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(watch.Seconds(), 0.0);
  watch.Reset();
  EXPECT_LT(watch.Seconds(), 1.0);
}

TEST(ExperimentTest, BenchConfigFromEnv) {
  unsetenv("CSM_BENCH_REPS");
  unsetenv("CSM_BENCH_THREADS");
  unsetenv("CSM_BENCH_TRACE");
  unsetenv("CSM_BENCH_CLIENTS");
  unsetenv("CSM_BENCH_REQUESTS");
  BenchConfig config = BenchConfig::FromEnv();
  EXPECT_EQ(config.Repetitions(8), 8u);
  EXPECT_EQ(config.Threads(1), 1u);
  EXPECT_EQ(config.TracePrefix(), nullptr);
  EXPECT_EQ(config.clients, 0u);

  setenv("CSM_BENCH_REPS", "3", 1);
  // An explicit THREADS=0 means "all hardware threads", distinct from unset.
  setenv("CSM_BENCH_THREADS", "0", 1);
  setenv("CSM_BENCH_TRACE", "/tmp/trace", 1);
  setenv("CSM_BENCH_CLIENTS", "12", 1);
  setenv("CSM_BENCH_REQUESTS", "240", 1);
  config = BenchConfig::FromEnv();
  EXPECT_EQ(config.Repetitions(8), 3u);
  EXPECT_TRUE(config.threads_set);
  EXPECT_EQ(config.Threads(1), 0u);
  EXPECT_STREQ(config.TracePrefix(), "/tmp/trace");
  EXPECT_EQ(config.clients, 12u);
  EXPECT_EQ(config.requests, 240u);

  // Malformed values read as unset.
  setenv("CSM_BENCH_REPS", "junk", 1);
  setenv("CSM_BENCH_THREADS", "-2", 1);
  config = BenchConfig::FromEnv();
  EXPECT_EQ(config.Repetitions(8), 8u);
  EXPECT_FALSE(config.threads_set);

  unsetenv("CSM_BENCH_REPS");
  unsetenv("CSM_BENCH_THREADS");
  unsetenv("CSM_BENCH_TRACE");
  unsetenv("CSM_BENCH_CLIENTS");
  unsetenv("CSM_BENCH_REQUESTS");
}

}  // namespace
}  // namespace csm
