// Emits a million-row-scale synthetic instance (retail or grades) as CSV
// files plus a truth.tsv, for driving the streaming ingest path and the
// scale benchmarks.
//
//   scale_datagen --family=retail --rows=1000000 --out=/tmp/retail1m
//   scale_datagen --family=grades --rows=200000 --out=/tmp/grades --seed=7
//
// --rows is the source inventory row count for retail and the student
// count for grades.  Generation is chunked and deterministic: the same
// --seed and --rows give byte-identical CSVs at any --threads.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/scale_gen.h"

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --family=retail|grades --rows=N --out=DIR "
               "[--seed=N] [--threads=N] [--gamma=N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string family = "retail";
  std::string out_dir;
  size_t rows = 1'000'000;
  uint64_t seed = 1;
  size_t threads = 0;
  size_t gamma = 4;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const std::string arg = argv[i];
    if (ParseFlag(arg, "family", &value)) {
      family = value;
    } else if (ParseFlag(arg, "rows", &value)) {
      rows = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "out", &value)) {
      out_dir = value;
    } else if (ParseFlag(arg, "seed", &value)) {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "threads", &value)) {
      threads = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "gamma", &value)) {
      gamma = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else {
      return Usage(argv[0]);
    }
  }
  if (out_dir.empty() || rows == 0 || (family != "retail" && family != "grades")) {
    return Usage(argv[0]);
  }

  csm::Database source;
  csm::Database target;
  csm::GroundTruth truth;
  if (family == "retail") {
    csm::ScaleRetailOptions options;
    options.source_rows = rows;
    options.seed = seed;
    options.threads = threads;
    options.gamma = gamma;
    csm::RetailDataset dataset = csm::MakeScaleRetailDataset(options);
    source = std::move(dataset.source);
    target = std::move(dataset.target);
    truth = std::move(dataset.truth);
  } else {
    csm::ScaleGradesOptions options;
    options.num_students = rows;
    options.seed = seed;
    options.threads = threads;
    csm::GradesDataset dataset = csm::MakeScaleGradesDataset(options);
    source = std::move(dataset.source);
    target = std::move(dataset.target);
    truth = std::move(dataset.truth);
  }

  csm::Status status =
      csm::WriteScaleDatasetCsv(source, target, truth, out_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 1;
  }
  for (const auto& table : source.tables()) {
    std::printf("%s/%s.csv: %zu rows\n", out_dir.c_str(),
                table.name().c_str(), table.num_rows());
  }
  for (const auto& table : target.tables()) {
    std::printf("%s/%s.csv: %zu rows\n", out_dir.c_str(),
                table.name().c_str(), table.num_rows());
  }
  std::printf("%s/truth.tsv: %zu entries\n", out_dir.c_str(),
              truth.entries.size());
  return 0;
}
