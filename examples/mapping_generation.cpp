// Section 4 walk-through on the student/project schema of Examples 4.1-4.5:
// declared constraints, constraint propagation to views, the join rules
// (join 1) / (join 2) / (join 3), and the generated mapping queries.
//
// Build & run:  ./build/examples/mapping_generation

#include <cstdio>

#include "mapping/association.h"
#include "mapping/executor.h"
#include "mapping/propagation.h"
#include "mapping/query_gen.h"
#include "relational/table.h"

int main() {
  using namespace csm;

  // ---- Example 4.1 schema: student / project ------------------------
  TableSchema student_schema("student");
  student_schema.AddAttribute("name", ValueType::kString);
  student_schema.AddAttribute("email", ValueType::kString);
  TableSchema project_schema("project");
  project_schema.AddAttribute("name", ValueType::kString);
  project_schema.AddAttribute("assign", ValueType::kInt);
  project_schema.AddAttribute("grade", ValueType::kString);
  project_schema.AddAttribute("instructor", ValueType::kString);

  Database source("src");
  Table student(student_schema);
  student.AddRow({Value::String("ann"), Value::String("ann@u")});
  student.AddRow({Value::String("bob"), Value::String("bob@u")});
  source.AddTable(std::move(student));
  Table project(project_schema);
  const char* grades[] = {"A", "B", "C"};
  for (int s = 0; s < 2; ++s) {
    for (int64_t assign = 0; assign < 3; ++assign) {
      project.AddRow({Value::String(s == 0 ? "ann" : "bob"),
                      Value::Int(assign),
                      Value::String(grades[(s + assign) % 3]),
                      Value::String(assign % 2 == 0 ? "prof x" : "prof y")});
    }
  }
  source.AddTable(std::move(project));

  // ---- Views V_i = select name, grade from project where assign = i
  // and U_i = select name, instructor from project where assign = i.
  std::vector<View> views;
  for (int64_t i = 0; i < 3; ++i) {
    views.emplace_back("V" + std::to_string(i), "project",
                       Condition::Equals("assign", Value::Int(i)),
                       std::vector<std::string>{"name", "grade"});
  }
  views.emplace_back("U0", "project",
                     Condition::Equals("assign", Value::Int(0)),
                     std::vector<std::string>{"name", "instructor"});

  // ---- Declared constraints (Example 4.1) ----------------------------
  ConstraintSet declared;
  declared.Add(Key{"student", {"name"}});
  declared.Add(Key{"project", {"name", "assign"}});
  declared.Add(ForeignKey{"project", {"name"}, "student", {"name"}});

  std::printf("-- declared base constraints --\n%s\n",
              declared.ToString().c_str());

  // ---- Propagation (Section 4.2) --------------------------------------
  PropagationInput propagation;
  propagation.views = views;
  propagation.base_constraints = declared;
  propagation.source_sample = &source;
  ConstraintSet derived = PropagateConstraints(propagation);
  std::printf("-- constraints propagated to the views --\n%s\n",
              derived.ToString().c_str());

  ConstraintSet all = declared;
  all.Merge(derived);

  // ---- Join rules (Section 4.3) ---------------------------------------
  std::vector<std::string> relations = {"V0", "V1", "V2", "U0", "student"};
  std::vector<JoinEdge> edges = DeriveJoinEdges(relations, views, all);
  std::printf("-- derived join edges --\n");
  for (const JoinEdge& edge : edges) {
    std::printf("  %s\n", edge.ToString().c_str());
  }

  // ---- Mapping into projs(name, grade0..grade2, instructor0) ----------
  Schema target("tgt");
  TableSchema projs("projs");
  projs.AddAttribute("name", ValueType::kString);
  for (int i = 0; i < 3; ++i) {
    projs.AddAttribute("grade" + std::to_string(i), ValueType::kString);
  }
  projs.AddAttribute("instructor0", ValueType::kString);
  target.AddTable(projs);

  MatchList matches;
  for (int64_t i = 0; i < 3; ++i) {
    Match name;
    name.source = {"project", "name"};
    name.target = {"projs", "name"};
    name.condition = Condition::Equals("assign", Value::Int(i));
    name.confidence = 0.9;
    matches.push_back(name);
    Match grade;
    grade.source = {"project", "grade"};
    grade.target = {"projs", "grade" + std::to_string(i)};
    grade.condition = Condition::Equals("assign", Value::Int(i));
    grade.confidence = 0.9;
    matches.push_back(grade);
  }
  Match instructor;
  instructor.source = {"project", "instructor"};
  instructor.target = {"projs", "instructor0"};
  instructor.condition = Condition::Equals("assign", Value::Int(0));
  instructor.confidence = 0.85;
  matches.push_back(instructor);

  std::vector<MappingQuery> queries =
      GenerateMappings(target, matches, views, all);
  std::printf("\n-- generated mapping queries --\n");
  for (const MappingQuery& query : queries) {
    std::printf("%s\n\n%s\n\n", query.logical.ToString().c_str(),
                query.ToSql(views).c_str());
  }

  auto executed = ExecuteMappings(queries, source, views, target);
  if (!executed.ok()) {
    std::printf("execution failed: %s\n",
                executed.status().ToString().c_str());
    return 1;
  }
  std::printf("-- executed mapping --\n%s\n",
              executed->GetTable("projs").ToString().c_str());
  return 0;
}
