// Command-line contextual schema matcher over CSV files — the "downstream
// user" entry point: point it at two directories of CSVs (one table per
// file, header row, types inferred) and it prints the contextual matches.
//
// Usage:
//   csv_match_tool SOURCE_DIR TARGET_DIR [options]
// Options:
//   --tau=F          StandardMatch confidence threshold   (default 0.5)
//   --omega=F        view improvement threshold           (default 0.1)
//   --infer=KIND     naive | src | tgt                    (default src)
//   --select=POLICY  qualtable | multitable               (default qualtable)
//   --late           LateDisjuncts (default EarlyDisjuncts)
//   --stages=N       conjunctive condition stages         (default 1)
//   --target-views   also search for conditions on the target tables
//   --seed=N         RNG seed                             (default 1)
//   --threads=N      worker threads; 0 = all cores        (default 1)
//                    (results are identical for every N)
//   --streaming      load CSVs through the mmap + chunked parallel ingest
//                    (types inferred from a prefix; falls back to the
//                    slurping loader per file if the prefix guessed wrong)
//   --sample-rows=N  cap classifier training at N rows per table (uniform
//                    deterministic sample; 0 = train on every row)
//   --load-only      stop after loading both directories (ingest smoke:
//                    CI's million-row scale job uses this to exercise the
//                    streaming loaders under ASan without a full match)
//   --deadline-ms=N  wall-clock budget per match run; on expiry the run
//                    degrades (baseline + views scored so far) and the
//                    tool exits with code 3 after printing what it has
//   --trace-out=F    write a Chrome trace of the run to F
//                    (open in chrome://tracing or https://ui.perfetto.dev)
//   --metrics-out=F  write the run's metrics (phase seconds, counters,
//                    latency histograms) as JSON to F; "-" prints a
//                    readable summary to stdout
//
// Exit codes come from the shared StatusCode table (ExitCodeForStatus in
// common/status.h, the same mapping the match service uses): 0 success,
// 1 internal failure, 2 bad input (unusable flags, missing/unreadable
// CSVs), 3 deadline exceeded or cancelled (degraded result was still
// printed).  Output-write failures (trace/metrics files) exit 1.
//
// Demo (no arguments): generates the Retail data set into a temp directory
// and matches it, so the tool is runnable out of the box.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/match_engine.h"
#include "datagen/retail_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/csv.h"

namespace {

using namespace csm;

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

StatusOr<Database> LoadDirectory(const std::string& dir,
                                 const std::string& db_name, bool streaming,
                                 size_t threads) {
  namespace fs = std::filesystem;
  Database db(db_name);
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".csv") files.push_back(entry.path());
  }
  if (ec) return Status::IoError("cannot list directory: " + dir);
  if (files.empty()) {
    return Status::NotFound("no .csv files in " + dir);
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    Table table;
    if (streaming) {
      CsvIngestOptions ingest;
      ingest.threads = threads;
      CsvIngestStats stats;
      auto loaded = ReadCsvFileInferredStreaming(
          path.stem().string(), path.string(), /*infer_records=*/1024,
          ingest, &stats);
      if (!loaded.ok()) {
        // Prefix-based inference can guess too narrow a type; the slurping
        // loader infers from every record, so it settles it.
        loaded = ReadCsvFileInferred(path.stem().string(), path.string());
      }
      CSM_ASSIGN_OR_RETURN(table, std::move(loaded));
      std::printf("loaded %-24s %8zu rows  [%s, %zu chunks, %.3fs]\n",
                  path.filename().c_str(), table.num_rows(),
                  stats.used_mmap ? "mmap" : "read", stats.chunks,
                  stats.load_seconds + stats.parse_seconds);
    } else {
      CSM_ASSIGN_OR_RETURN(table, ReadCsvFileInferred(path.stem().string(),
                                                      path.string()));
      std::printf("loaded %-24s %8zu rows  %s\n", path.filename().c_str(),
                  table.num_rows(), table.schema().ToString().c_str());
    }
    db.AddTable(std::move(table));
  }
  return db;
}

int WriteDemoData(const std::string& src_dir, const std::string& tgt_dir) {
  RetailOptions options;
  options.num_items = 300;
  options.gamma = 2;
  options.seed = 7;
  RetailDataset data = MakeRetailDataset(options);
  std::filesystem::create_directories(src_dir);
  std::filesystem::create_directories(tgt_dir);
  for (const Table& t : data.source.tables()) {
    if (!WriteCsvFile(t, src_dir + "/" + t.name() + ".csv").ok()) return 1;
  }
  for (const Table& t : data.target.tables()) {
    if (!WriteCsvFile(t, tgt_dir + "/" + t.name() + ".csv").ok()) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source_dir, target_dir;
  ContextMatchOptions options;
  options.omega = 0.1;
  size_t stages = 1;
  bool target_views = false;
  bool streaming = false;
  bool load_only = false;
  std::string trace_out, metrics_out;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    std::string value;
    if (ParseFlag(arg, "tau", &value)) {
      options.tau = std::atof(value.c_str());
    } else if (ParseFlag(arg, "omega", &value)) {
      options.omega = std::atof(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "stages", &value)) {
      stages = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "threads", &value)) {
      options.threads = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "deadline-ms", &value)) {
      options.deadline_ms = std::atoll(value.c_str());
      if (options.deadline_ms <= 0) {
        std::fprintf(stderr, "--deadline-ms needs a positive integer, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "infer", &value)) {
      if (value == "naive") options.inference = ViewInferenceKind::kNaive;
      else if (value == "src") options.inference = ViewInferenceKind::kSrcClass;
      else if (value == "tgt") options.inference = ViewInferenceKind::kTgtClass;
      else {
        std::fprintf(stderr, "unknown --infer value '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "select", &value)) {
      if (value == "qualtable") {
        options.selection = SelectionPolicy::kQualTable;
      } else if (value == "multitable") {
        options.selection = SelectionPolicy::kMultiTable;
      } else {
        std::fprintf(stderr, "unknown --select value '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "trace-out", &value)) {
      trace_out = value;
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      metrics_out = value;
    } else if (ParseFlag(arg, "sample-rows", &value)) {
      options.match.max_training_rows =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (arg == "--streaming") {
      streaming = true;
    } else if (arg == "--load-only") {
      load_only = true;
    } else if (arg == "--late") {
      options.early_disjuncts = false;
    } else if (arg == "--target-views") {
      target_views = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (positional.empty()) {
    // Demo mode: generate retail CSVs into a temp workspace.
    std::string base = std::filesystem::temp_directory_path() /
                       "csm_demo";
    source_dir = base + "/source";
    target_dir = base + "/target";
    std::printf("demo mode: writing Retail CSVs under %s\n\n", base.c_str());
    if (WriteDemoData(source_dir, target_dir) != 0) {
      std::fprintf(stderr, "failed to write demo data\n");
      return 1;
    }
  } else if (positional.size() == 2) {
    source_dir = positional[0];
    target_dir = positional[1];
  } else {
    std::fprintf(stderr, "usage: %s SOURCE_DIR TARGET_DIR [options]\n",
                 argv[0]);
    return 2;
  }

  // Unreadable input is the caller's problem: load failures carry
  // kIoError/kNotFound, which the shared table maps to exit 2 (bad input),
  // distinct from the tool's own failures (exit 1).
  auto source = LoadDirectory(source_dir, "source", streaming,
                              options.threads);
  if (!source.ok()) {
    std::fprintf(stderr, "cannot load source: %s\n",
                 source.status().ToString().c_str());
    return ExitCodeForStatus(source.status().code());
  }
  auto target = LoadDirectory(target_dir, "target", streaming,
                              options.threads);
  if (!target.ok()) {
    std::fprintf(stderr, "cannot load target: %s\n",
                 target.status().ToString().c_str());
    return ExitCodeForStatus(target.status().code());
  }
  if (load_only) {
    std::printf("\nload-only: %zu source + %zu target tables loaded ok\n",
                source->tables().size(), target->tables().size());
    return 0;
  }

  std::printf("\nrunning ContextMatch: tau=%.2f omega=%.3f infer=%s "
              "select=%s %s stages=%zu threads=%zu\n\n",
              options.tau, options.omega,
              ViewInferenceKindToString(options.inference),
              SelectionPolicyToString(options.selection),
              options.early_disjuncts ? "EarlyDisjuncts" : "LateDisjuncts",
              stages, options.threads);

  // One engine for the whole invocation: the --target-views pass below
  // reuses its thread pool, and the optional sinks see both runs.
  MatchEngine engine(options);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (!trace_out.empty()) engine.set_tracer(&tracer);
  if (!metrics_out.empty()) engine.set_metrics(&metrics);

  MatchRequest request;
  request.mode = stages > 1 ? MatchMode::kConjunctive : MatchMode::kContext;
  request.max_stages = stages;
  request.source = BorrowDatabase(*source);
  request.target = BorrowDatabase(*target);
  MatchResponse response = engine.Execute(request);
  const ContextMatchResult& result = response.result;
  std::printf("-- selected views (%zu of %zu candidates) --\n",
              response.selected_views.size(),
              result.pool.candidate_views.size());
  for (const View& v : response.selected_views) {
    std::printf("  %s\n", v.ToString().c_str());
  }
  std::printf("-- matches --\n");
  for (const Match& m : response.matches) {
    std::printf("  %s\n", m.ToString().c_str());
  }
  std::printf("(%zu matches, %.3fs total)\n", response.matches.size(),
              result.TotalSeconds());

  // A degraded run still prints its partial answer above; the status and
  // exit code (shared table: deadline/cancel = 3) tell scripts the answer
  // is incomplete.
  int exit_code = response.ExitCode();
  if (!response.ok()) {
    std::fprintf(stderr, "\nrun degraded: %s (completeness: %s)\n",
                 response.status.ToString().c_str(),
                 MatchCompletenessToString(response.completeness));
  }

  if (target_views) {
    std::printf("\n-- target-side contextual matching --\n");
    request.mode = MatchMode::kTargetContext;
    request.max_stages = 1;
    MatchResponse reversed = engine.Execute(request);
    for (const View& v : reversed.selected_views) {
      std::printf("  target view: %s\n", v.ToString().c_str());
    }
    for (const Match& m : reversed.matches) {
      std::printf("  %s\n", m.ToString().c_str());
    }
    if (!reversed.ok()) {
      std::fprintf(stderr, "\ntarget-side run degraded: %s (completeness: %s)\n",
                   reversed.status.ToString().c_str(),
                   MatchCompletenessToString(reversed.completeness));
      if (exit_code == 0) exit_code = reversed.ExitCode();
    }
  }

  if (!trace_out.empty()) {
    if (tracer.WriteChromeTrace(trace_out)) {
      std::printf("\nwrote trace (%zu spans) to %s\n", tracer.span_count(),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    if (metrics_out == "-") {
      std::printf("\n-- metrics --\n%s", metrics.ToString().c_str());
    } else {
      std::ofstream out(metrics_out);
      out << metrics.ToJson() << "\n";
      if (!out) {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     metrics_out.c_str());
        return 1;
      }
      std::printf("\nwrote metrics to %s\n", metrics_out.c_str());
    }
  }
  return exit_code;
}
