// Quickstart (Example 1.1 of the paper): a combined retail inventory table
// whose `ItemType` column tags rows as books or CDs, matched against a
// target schema that stores books and music in separate tables.  A standard
// matcher returns ambiguous matches; ContextMatch annotates them with the
// selection conditions that disambiguate them.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/match_engine.h"
#include "datagen/retail_gen.h"

int main() {
  using namespace csm;

  // Generate the Retail data set: source "inventory" with gamma = 2
  // (ItemType in {Book1, CD1}), target Ryan_Eyers-style Book/Music tables.
  RetailOptions data_options;
  data_options.num_items = 300;
  data_options.gamma = 2;
  data_options.seed = 7;
  RetailDataset data = MakeRetailDataset(data_options);

  const Schema source_schema = data.source.GetSchema();
  const Schema target_schema = data.target.GetSchema();
  std::printf("Source schema: %s\n", source_schema.tables()[0].ToString().c_str());
  for (const auto& table : target_schema.tables()) {
    std::printf("Target schema: %s\n", table.ToString().c_str());
  }

  // 1) What a standard (non-contextual) matcher produces: every inventory
  // attribute matches *both* target tables — ambiguous.
  MatchList standard = StandardMatch(data.source.GetTable("inventory"),
                                     data.target, /*tau=*/0.5);
  std::printf("\n-- standard matches (tau = 0.5) --\n");
  for (const Match& m : standard) {
    std::printf("  %s\n", m.ToString().c_str());
  }

  // 2) Contextual matching: SrcClassInfer + QualTable + EarlyDisjuncts.
  ContextMatchOptions options;
  options.tau = 0.5;
  options.omega = 0.1;
  options.inference = ViewInferenceKind::kSrcClass;
  options.selection = SelectionPolicy::kQualTable;
  options.early_disjuncts = true;
  options.seed = 42;

  MatchEngine engine(options);  // reusable: pool + session cache live here
  MatchRequest request;         // the unified entrypoint (any mode fits here)
  request.mode = MatchMode::kContext;
  request.source = BorrowDatabase(data.source);
  request.target = BorrowDatabase(data.target);
  MatchResponse response = engine.Execute(request);
  const ContextMatchResult& result = response.result;

  std::printf("\n-- candidate views considered: %zu --\n",
              result.pool.candidate_views.size());
  std::printf("-- selected views --\n");
  for (const View& view : response.selected_views) {
    std::printf("  %s\n", view.ToString().c_str());
  }
  std::printf("-- contextual matches --\n");
  for (const Match& m : response.matches) {
    std::printf("  %s\n", m.ToString().c_str());
  }

  // 3) Score against the designated-correct matches.
  MatchQuality quality = EvaluateMatches(data.truth, result.matches);
  std::printf(
      "\naccuracy %.3f  precision %.3f  f-measure %.3f  "
      "(%zu view matches, %zu correct)\n",
      quality.accuracy, quality.precision, quality.fmeasure,
      quality.view_matches, quality.correct_matches);
  std::printf("total time %.3fs (standard %.3f, infer %.3f, score %.3f)\n",
              result.TotalSeconds(), result.phases.Seconds("standard_match"),
              result.phases.Seconds("inference"),
              result.phases.Seconds("scoring"));
  return 0;
}
