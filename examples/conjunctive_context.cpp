// Conjunctive contextual conditions (Section 3.5): the target's
// fiction_books table corresponds to `type = 'book' AND fiction = 1` in the
// source — a 2-condition that single-stage ContextMatch cannot express.
// ConjunctiveContextMatch finds it in the second stage by re-running view
// inference on the views selected in the first stage, partitioning only on
// attributes not already in the condition.
//
// Build & run:  ./build/examples/conjunctive_context

#include <cstdio>

#include "common/random.h"
#include "core/context_match.h"
#include "datagen/wordlists.h"

int main() {
  using namespace csm;

  // ---- Synthesize source and target -----------------------------------
  Rng rng(33);
  TableSchema inv_schema("inv");
  inv_schema.AddAttribute("type", ValueType::kString);
  inv_schema.AddAttribute("fiction", ValueType::kInt);
  inv_schema.AddAttribute("title", ValueType::kString);
  inv_schema.AddAttribute("creator", ValueType::kString);
  Table inv(inv_schema);
  for (int i = 0; i < 300; ++i) {
    bool is_book = rng.NextBernoulli(0.5);
    bool fiction = rng.NextBernoulli(0.5);
    std::string title = is_book ? MakeBookTitle(rng) : MakeAlbumTitle(rng);
    if (is_book && fiction) title += " saga of dragons";
    if (is_book && !fiction) title += " a practical handbook";
    inv.AddRow({Value::String(is_book ? "book" : "cd"),
                Value::Int(fiction ? 1 : 0), Value::String(title),
                Value::String(is_book ? MakePersonName(rng)
                                      : MakeBandName(rng))});
  }
  Database source("src");
  source.AddTable(std::move(inv));

  TableSchema fiction_schema("fiction_books");
  fiction_schema.AddAttribute("title", ValueType::kString);
  fiction_schema.AddAttribute("author", ValueType::kString);
  Table fiction_books(fiction_schema);
  TableSchema music_schema("music");
  music_schema.AddAttribute("album", ValueType::kString);
  music_schema.AddAttribute("artist", ValueType::kString);
  Table music(music_schema);
  for (int i = 0; i < 150; ++i) {
    fiction_books.AddRow(
        {Value::String(MakeBookTitle(rng) + " saga of dragons"),
         Value::String(MakePersonName(rng))});
    music.AddRow({Value::String(MakeAlbumTitle(rng)),
                  Value::String(MakeBandName(rng))});
  }
  Database target("tgt");
  target.AddTable(std::move(fiction_books));
  target.AddTable(std::move(music));

  ContextMatchOptions options;
  options.inference = ViewInferenceKind::kSrcClass;
  options.early_disjuncts = false;
  options.omega = 0.05;
  options.seed = 34;

  // ---- Stage 1 only: simple 1-conditions -------------------------------
  ContextMatchResult single = ContextMatch(source, target, options);
  std::printf("-- single-stage selected views --\n");
  for (const View& v : single.selected_views) {
    std::printf("  %s\n", v.ToString().c_str());
  }

  // ---- Two stages: conjunctive 2-conditions ----------------------------
  ContextMatchResult staged =
      ConjunctiveContextMatch(source, target, options, /*max_stages=*/2);
  std::printf("\n-- two-stage selected views --\n");
  for (const View& v : staged.selected_views) {
    std::printf("  %s\n", v.ToString().c_str());
  }
  std::printf("\n-- two-stage matches --\n");
  for (const Match& m : staged.matches) {
    std::printf("  %s\n", m.ToString().c_str());
  }

  bool found = false;
  for (const View& v : staged.selected_views) {
    if (v.condition().NumAttributes() == 2 &&
        v.condition().MentionsAttribute("type") &&
        v.condition().MentionsAttribute("fiction")) {
      found = true;
    }
  }
  std::printf("\nconjunctive condition %s\n",
              found ? "FOUND (type AND fiction)" : "not found");
  return found ? 0 : 1;
}
