// Attribute normalization end-to-end (Examples 1.2 / 4.3, Section 5.7).
//
// Source grades_narrow(name, examNum, grade) stores one row per (student,
// exam); target grades_wide(name, grade1..grade5) promotes examNum values
// to attributes.  The pipeline: ContextMatch infers one view per examNum
// value and matches each view's grade to the right target column; the
// mapping layer mines keys, derives contextual foreign keys via the
// propagation rules, groups the views with join rule (join 1) and emits an
// executable mapping query which we then run.
//
// Build & run:  ./build/examples/attribute_normalization

#include <cstdio>

#include "datagen/grades_gen.h"
#include "mapping/clio.h"

int main() {
  using namespace csm;

  GradesOptions data_options;
  data_options.num_students = 60;
  data_options.sigma = 4.0;
  data_options.seed = 21;
  GradesDataset data = MakeGradesDataset(data_options);

  std::printf("Source sample:\n%s\n",
              data.source.GetTable("grades_narrow").ToString(6).c_str());
  std::printf("Target schema: %s\n\n",
              data.target.GetTable("grades_wide").schema().ToString().c_str());

  ContextMatchOptions options;
  options.tau = 0.45;
  options.omega = 0.025;
  options.inference = ViewInferenceKind::kSrcClass;
  options.early_disjuncts = false;  // one view per exam must survive
  options.seed = 22;

  ClioQualTableResult result = ClioQualTable(data.source, data.target, options);

  std::printf("-- contextual matches --\n");
  for (const Match& m : result.match_result.matches) {
    std::printf("  %s\n", m.ToString().c_str());
  }

  std::printf("\n-- constraints (mined + propagated) --\n");
  for (const auto& key : result.mapping.constraints.keys) {
    std::printf("  %s\n", key.ToString().c_str());
  }
  for (const auto& cfk : result.mapping.constraints.contextual_foreign_keys) {
    std::printf("  %s\n", cfk.ToString().c_str());
  }

  std::printf("\n-- mapping queries --\n");
  for (const MappingQuery& query : result.mapping.queries) {
    std::printf("%s\n\n%s\n\n", query.logical.ToString().c_str(),
                query.ToSql(result.mapping.views).c_str());
  }

  auto executed = ExecuteMappings(result.mapping.queries, data.source,
                                  result.mapping.views,
                                  data.target.GetSchema());
  if (!executed.ok()) {
    std::printf("execution failed: %s\n",
                executed.status().ToString().c_str());
    return 1;
  }
  std::printf("-- executed mapping (grades_wide) --\n%s\n",
              executed->GetTable("grades_wide").ToString(8).c_str());

  MatchQuality quality =
      EvaluateMatches(data.truth, result.match_result.matches);
  std::printf("accuracy %.3f  precision %.3f  f-measure %.3f\n",
              quality.accuracy, quality.precision, quality.fmeasure);
  return 0;
}
