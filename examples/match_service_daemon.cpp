// Matching-as-a-service in one process: a MatchService fronting one shared
// MatchEngine with admission control, per-tenant quotas, in-flight
// deduplication and a disk-backed cold session tier.
//
// The demo plays three clients against generated Retail/Grades data:
//   * "analytics" submits the same retail request from four threads at
//     once — one engine run serves all four (in-flight deduplication);
//   * "etl" is quota-limited to 1 in-flight request and a 2-request burst,
//     so its flood of submissions is mostly rejected with
//     kResourceExhausted before any work happens;
//   * an unnamed default tenant mixes grades and reversed-role requests.
// A second service instance over the same spool directory then shows the
// cold tier: its first request restores the sessions from disk instead of
// rebuilding them.
//
// Build & run:  ./build/examples/match_service_daemon [spool_dir]
//               ./build/examples/match_service_daemon --health [spool_dir]
//
// `--health` brings a service up with the self-healing layer enabled
// (watchdog, shedding, brownout, breaker), serves one probe request, and
// prints the HealthSnapshot as JSON — the readiness answer an operator or
// load balancer would scrape.  Exit code 0 iff the service reports ready.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"
#include "service/disk_store.h"
#include "service/match_service.h"

namespace {

/// --health: stand the resilient service up, probe it, report readiness.
int RunHealthCheck(const std::string& spool) {
  using namespace csm;
  RetailOptions retail_options;
  retail_options.num_items = 60;
  retail_options.seed = 7;
  RetailDataset retail = MakeRetailDataset(retail_options);

  DiskSessionStore store(spool);
  ServiceOptions options;
  options.engine.threads = 0;
  options.cold_store = &store;
  options.watchdog_interval_ms = 100;
  options.queue_target_ms = 500;
  options.shed_min_depth = 4;
  options.brownout_enter_fraction = 0.75;
  options.brownout_exit_fraction = 0.25;
  options.breaker.failure_threshold = 5;
  MatchService service(options);

  MatchRequest probe;
  probe.source = BorrowDatabase(retail.source);
  probe.target = BorrowDatabase(retail.target);
  const bool probe_ok = service.Call(probe).ok();

  const HealthSnapshot health = service.Health();
  std::printf("%s\n", health.ToJson().c_str());
  std::fprintf(stderr, "health: %s; probe %s\n", health.ToString().c_str(),
               probe_ok ? "ok" : "FAILED");
  service.Stop();
  return health.ready && probe_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csm;

  if (argc > 1 && std::strcmp(argv[1], "--health") == 0) {
    const std::string health_spool =
        argc > 2 ? argv[2]
                 : (std::filesystem::temp_directory_path() / "csm_spool_health")
                       .string();
    return RunHealthCheck(health_spool);
  }

  const std::string spool =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "csm_spool").string();
  std::printf("cold session tier: %s\n", spool.c_str());

  RetailOptions retail_options;
  retail_options.num_items = 200;
  retail_options.seed = 7;
  RetailDataset retail = MakeRetailDataset(retail_options);
  GradesOptions grades_options;
  grades_options.seed = 11;
  GradesDataset grades = MakeGradesDataset(grades_options);

  DiskSessionStore store(spool);

  ServiceOptions options;
  options.engine.tau = 0.5;
  options.engine.omega = 0.1;
  options.engine.threads = 0;  // engine pool uses all cores
  options.max_queue = 16;
  options.tenant_quotas["etl"].max_in_flight = 1;
  options.tenant_quotas["etl"].requests_per_second = 0.001;
  options.tenant_quotas["etl"].burst = 2;
  options.cold_store = &store;

  {
    MatchService service(options);

    // -- analytics: four identical submissions, one run --------------------
    std::vector<std::thread> clients;
    std::vector<MatchResponse> responses(4);
    for (size_t i = 0; i < responses.size(); ++i) {
      clients.emplace_back([&, i] {
        MatchRequest request;
        request.tenant = "analytics";
        request.source = BorrowDatabase(retail.source);
        request.target = BorrowDatabase(retail.target);
        responses[i] = service.Call(request);
      });
    }
    for (auto& t : clients) t.join();
    size_t deduplicated = 0;
    for (const auto& r : responses) deduplicated += r.deduplicated ? 1 : 0;
    std::printf(
        "analytics: 4 identical submissions -> %zu matches each, "
        "%zu served by deduplication\n",
        responses[0].matches.size(), deduplicated);

    // -- etl: floods past its quota ---------------------------------------
    size_t rejected = 0;
    for (int i = 0; i < 6; ++i) {
      MatchRequest request;
      request.tenant = "etl";
      // Vary the deadline so requests are NOT identical (no dedup escape).
      request.deadline_ms = 60000 + i;
      request.source = BorrowDatabase(grades.source);
      request.target = BorrowDatabase(grades.target);
      SubmitHandle handle = service.Submit(request);
      if (handle.future.get().status.code() == StatusCode::kResourceExhausted) {
        ++rejected;
      }
    }
    std::printf("etl: 6 submissions under a 2-token budget -> %zu rejected\n",
                rejected);

    // -- default tenant: reversed-role request ----------------------------
    MatchRequest reversed;
    reversed.mode = MatchMode::kTargetContext;
    reversed.source = BorrowDatabase(retail.source);
    reversed.target = BorrowDatabase(retail.target);
    MatchResponse response = service.Call(reversed);
    std::printf("default: target-context run -> %zu matches, %zu target views\n",
                response.matches.size(), response.selected_views.size());

    const obs::PhaseReport report = service.metrics().Snapshot();
    std::printf(
        "\nservice metrics: admitted=%llu completed=%llu deduplicated=%llu "
        "rejected=%llu cold_stores=%llu\n",
        static_cast<unsigned long long>(report.Count("service.admitted")),
        static_cast<unsigned long long>(report.Count("service.completed")),
        static_cast<unsigned long long>(report.Count("service.deduplicated")),
        static_cast<unsigned long long>(
            report.Count("service.rejected_rate_limit") +
            report.Count("service.rejected_in_flight") +
            report.Count("service.rejected_queue_full")),
        static_cast<unsigned long long>(
            report.Count("engine.session_cold_stores")));
    const obs::HistogramSummary latency =
        report.Histogram("service.total_seconds");
    std::printf("latency p50=%.3fs p95=%.3fs p99=%.3fs over %llu requests\n",
                latency.p50, latency.p95, latency.p99,
                static_cast<unsigned long long>(latency.count));
    service.Stop();
  }

  // A fresh service (fresh engine, empty hot cache) over the same spool:
  // phase 1 restores from disk instead of rebuilding.
  {
    MatchService service(options);
    MatchRequest request;
    request.source = BorrowDatabase(retail.source);
    request.target = BorrowDatabase(retail.target);
    MatchResponse response = service.Call(request);
    std::printf(
        "\nrestart: %zu matches, served with %llu cold-tier restore(s) "
        "(0 would mean a full rebuild)\n",
        response.matches.size(),
        static_cast<unsigned long long>(
            service.metrics().Counter("engine.session_cold_hits")));
    service.Stop();
  }
  return 0;
}
