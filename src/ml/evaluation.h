// Classifier evaluation: confusion counting, micro-averaged precision /
// recall / F_beta (Section 3.2.2 uses F_1 as the view-family quality), and
// the unordered error-pair extraction that drives early-disjunct merging
// (Section 3.3).

#ifndef CSM_ML_EVALUATION_H_
#define CSM_ML_EVALUATION_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace csm {

/// An unordered pair of labels that were confused with each other; `first`
/// is always <= `second` lexicographically.
struct ErrorPair {
  std::string first;
  std::string second;

  friend bool operator==(const ErrorPair& a, const ErrorPair& b) {
    return a.first == b.first && a.second == b.second;
  }
  friend bool operator<(const ErrorPair& a, const ErrorPair& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  }
};

/// Makes the canonical (sorted) ErrorPair for two labels.
ErrorPair MakeErrorPair(const std::string& a, const std::string& b);

/// Accumulates (actual, predicted) observations and reports quality.
class ClassifierEvaluation {
 public:
  ClassifierEvaluation() = default;

  void Observe(const std::string& actual, const std::string& predicted);

  size_t total() const { return total_; }
  size_t correct() const { return correct_; }

  /// correct / total; 0 when empty.
  double Accuracy() const;

  /// Micro-averaged precision over labels (sum TP / sum (TP+FP)).
  double MicroPrecision() const;

  /// Micro-averaged recall over labels (sum TP / sum (TP+FN)).
  double MicroRecall() const;

  /// F_beta of the micro-averaged precision/recall; beta=1 by default.
  double MicroF(double beta = 1.0) const;

  /// Macro-averaged F_beta (unweighted mean of per-label F).
  double MacroF(double beta = 1.0) const;

  /// Per-label precision/recall; labels seen as actual or predicted.
  double LabelPrecision(const std::string& label) const;
  double LabelRecall(const std::string& label) const;

  /// Error-pair counts: for each misclassification (actual v, predicted
  /// v'), the unordered pair {v, v'} is counted once (false positives and
  /// false negatives are not distinguished, per Section 3.3).
  const std::map<ErrorPair, size_t>& error_pairs() const {
    return error_pairs_;
  }

  /// The most frequent error pair after normalizing each pair's count by
  /// the frequencies of its two labels (Section 3.3 "after normalizing for
  /// the frequency of v and v'"); nullopt-like empty pair when there were
  /// no errors.  Ties break lexicographically.
  std::vector<std::pair<ErrorPair, double>> NormalizedErrorPairs() const;

  /// Labels observed (as actual or predicted), sorted.
  std::vector<std::string> Labels() const;

 private:
  struct LabelCounts {
    size_t true_positive = 0;
    size_t false_positive = 0;
    size_t false_negative = 0;
    size_t actual_total = 0;
  };

  size_t total_ = 0;
  size_t correct_ = 0;
  std::map<std::string, LabelCounts> labels_;
  std::map<ErrorPair, size_t> error_pairs_;
};

/// F_beta from precision and recall; 0 when both are 0.
double FBeta(double precision, double recall, double beta = 1.0);

}  // namespace csm

#endif  // CSM_ML_EVALUATION_H_
