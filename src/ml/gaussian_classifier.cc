#include "ml/gaussian_classifier.h"

#include <cmath>
#include <limits>
#include <numbers>

namespace csm {

void GaussianClassifier::Train(const Value& input, const std::string& label) {
  if (input.is_null() || !input.IsNumeric()) return;
  labels_[label].Add(input.AsNumeric());
  ++total_examples_;
}

double GaussianClassifier::LogScore(double x, const std::string& label) const {
  auto it = labels_.find(label);
  if (it == labels_.end() || total_examples_ == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  const DescriptiveStats& stats = it->second;
  const double prior = static_cast<double>(stats.count()) /
                       static_cast<double>(total_examples_);
  const double stddev = std::max(stats.SampleStdDev(), min_stddev_);
  const double z = (x - stats.Mean()) / stddev;
  return std::log(prior) - std::log(stddev) -
         0.5 * std::log(2.0 * std::numbers::pi) - 0.5 * z * z;
}

std::string GaussianClassifier::Classify(const Value& input) const {
  if (labels_.empty() || input.is_null()) return "";
  if (!input.IsNumeric()) {
    // Fall back to the most frequent label.
    std::string best;
    size_t best_count = 0;
    for (const auto& [label, stats] : labels_) {
      if (stats.count() > best_count) {
        best = label;
        best_count = stats.count();
      }
    }
    return best;
  }
  const double x = input.AsNumeric();
  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [label, stats] : labels_) {
    double score = LogScore(x, label);
    if (score > best_score) {
      best = label;
      best_score = score;
    }
  }
  return best;
}

std::vector<std::string> GaussianClassifier::Labels() const {
  std::vector<std::string> out;
  out.reserve(labels_.size());
  for (const auto& [label, stats] : labels_) out.push_back(label);
  return out;
}

}  // namespace csm
