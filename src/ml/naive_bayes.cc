#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "text/tokenizer.h"

namespace csm {
namespace {

/// Per-thread tokenization scratch (normalized text / gram strings / ids),
/// so the per-row training and classification loops allocate nothing.
struct TokenScratch {
  std::string padded;
  std::vector<std::string> gram_strings;
  std::vector<GramId> ids;
};

TokenScratch& LocalScratch() {
  static thread_local TokenScratch scratch;
  return scratch;
}

}  // namespace

NaiveBayesClassifier::NaiveBayesClassifier(
    NaiveBayesClassifier&& other) noexcept
    : q_(other.q_),
      smoothing_(other.smoothing_),
      total_examples_(other.total_examples_),
      labels_(std::move(other.labels_)),
      vocabulary_(std::move(other.vocabulary_)),
      gram_interner_(std::move(other.gram_interner_)),
      train_token_memo_(std::move(other.train_token_memo_)),
      finalized_(other.finalized_),
      models_(std::move(other.models_)),
      classify_memo_(std::move(other.classify_memo_)) {}

NaiveBayesClassifier& NaiveBayesClassifier::operator=(
    NaiveBayesClassifier&& other) noexcept {
  if (this == &other) return *this;
  q_ = other.q_;
  smoothing_ = other.smoothing_;
  total_examples_ = other.total_examples_;
  labels_ = std::move(other.labels_);
  vocabulary_ = std::move(other.vocabulary_);
  gram_interner_ = std::move(other.gram_interner_);
  train_token_memo_ = std::move(other.train_token_memo_);
  finalized_ = other.finalized_;
  models_ = std::move(other.models_);
  classify_memo_ = std::move(other.classify_memo_);
  return *this;
}

void NaiveBayesClassifier::TokenizeTrain(std::string_view text,
                                         std::vector<GramId>* out) {
  out->clear();
  if (Packed()) {
    AppendPackedQGrams(text, q_, &LocalScratch().padded, out);
    return;
  }
  if (gram_interner_ == nullptr) {
    gram_interner_ = std::make_unique<TokenInterner>();
  }
  std::vector<std::string>& grams = LocalScratch().gram_strings;
  QGrams(text, q_, &grams);
  out->reserve(grams.size());
  for (const std::string& gram : grams) {
    out->push_back(gram_interner_->GetOrAdd(gram));
  }
}

void NaiveBayesClassifier::TokenizeLookup(std::string_view text,
                                          std::vector<GramId>* out) const {
  out->clear();
  if (Packed()) {
    AppendPackedQGrams(text, q_, &LocalScratch().padded, out);
    return;
  }
  std::vector<std::string>& grams = LocalScratch().gram_strings;
  QGrams(text, q_, &grams);
  out->reserve(grams.size());
  for (const std::string& gram : grams) {
    out->push_back(gram_interner_ == nullptr ? kNoGramId
                                             : gram_interner_->Find(gram));
  }
}

void NaiveBayesClassifier::TrainTokens(const std::vector<GramId>& grams,
                                       const std::string& label) {
  LabelStats& stats = labels_[label];
  ++stats.example_count;
  ++total_examples_;
  uint64_t fresh = 0;
  for (GramId gram : grams) {
    stats.token_counts[gram] += 1.0;
    stats.token_total += 1.0;
    if (vocabulary_.insert(gram).second) ++fresh;
  }
  if (fresh > 0) {
    GlobalTokenKernelStats().grams_interned.fetch_add(
        fresh, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    finalized_ = false;
  }
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (!classify_memo_.empty()) classify_memo_.clear();
}

void NaiveBayesClassifier::Train(const Value& input, const std::string& label) {
  if (input.is_null()) return;
  std::vector<GramId>& ids = LocalScratch().ids;
  TokenizeTrain(input.ToString(), &ids);
  TrainTokens(ids, label);
}

void NaiveBayesClassifier::TrainCoded(const StringDictionary& dict,
                                      uint32_t code,
                                      const std::string& label) {
  if (code == kNullCode) return;
  auto& per_dict = train_token_memo_[&dict];
  auto [it, inserted] = per_dict.try_emplace(code);
  if (inserted) TokenizeTrain(dict.value(code), &it->second);
  TrainTokens(it->second, label);
}

const std::vector<NaiveBayesClassifier::LabelModel>&
NaiveBayesClassifier::Finalized() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  if (finalized_) return models_;
  models_.clear();
  models_.reserve(labels_.size());
  const double num_labels = static_cast<double>(labels_.size());
  const double vocab = static_cast<double>(vocabulary_.size());
  for (const auto& [label, stats] : labels_) {
    LabelModel model;
    model.label = &label;
    model.example_count = stats.example_count;
    // The exact expressions of the original per-call implementation, so the
    // precomputed doubles are bit-identical to recomputing them per row.
    model.log_prior = std::log(
        (static_cast<double>(stats.example_count) + smoothing_) /
        (static_cast<double>(total_examples_) + smoothing_ * num_labels));
    const double denom = stats.token_total + smoothing_ * (vocab + 1.0);
    model.log_unseen = std::log((0.0 + smoothing_) / denom);
    model.gram_ids.reserve(stats.token_counts.size());
    for (const auto& [gram, count] : stats.token_counts) {
      model.gram_ids.push_back(gram);
    }
    std::sort(model.gram_ids.begin(), model.gram_ids.end());
    model.gram_log_prob.reserve(model.gram_ids.size());
    for (GramId gram : model.gram_ids) {
      const double count = stats.token_counts.at(gram);
      model.gram_log_prob.push_back(std::log((count + smoothing_) / denom));
    }
    models_.push_back(std::move(model));
  }
  finalized_ = true;
  return models_;
}

double NaiveBayesClassifier::ScoreTokens(
    const LabelModel& model, const std::vector<GramId>& grams) const {
  double score = model.log_prior;
  for (GramId gram : grams) {
    double term = model.log_unseen;
    if (gram != kNoGramId) {
      auto it = std::lower_bound(model.gram_ids.begin(), model.gram_ids.end(),
                                 gram);
      if (it != model.gram_ids.end() && *it == gram) {
        term = model.gram_log_prob[static_cast<size_t>(
            it - model.gram_ids.begin())];
      }
    }
    score += term;
  }
  return score;
}

double NaiveBayesClassifier::LogScore(const Value& input,
                                      const std::string& label) const {
  auto it = labels_.find(label);
  if (it == labels_.end() || total_examples_ == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  const std::vector<LabelModel>& models = Finalized();
  const size_t index =
      static_cast<size_t>(std::distance(labels_.begin(), it));
  std::vector<GramId>& ids = LocalScratch().ids;
  TokenizeLookup(input.ToString(), &ids);
  return ScoreTokens(models[index], ids);
}

std::string NaiveBayesClassifier::ClassifyTokens(
    const std::vector<GramId>& grams) const {
  const std::vector<LabelModel>& models = Finalized();
  const std::string* best = nullptr;
  double best_score = -std::numeric_limits<double>::infinity();
  size_t best_frequency = 0;
  for (const LabelModel& model : models) {
    const double score = ScoreTokens(model, grams);
    // Ties break toward the more frequent label, then lexicographically
    // (model order == label map order), for determinism.
    if (score > best_score ||
        (score == best_score && model.example_count > best_frequency)) {
      best = model.label;
      best_score = score;
      best_frequency = model.example_count;
    }
  }
  return best == nullptr ? "" : *best;
}

std::string NaiveBayesClassifier::Classify(const Value& input) const {
  if (labels_.empty() || input.is_null()) return "";
  std::vector<GramId>& ids = LocalScratch().ids;
  TokenizeLookup(input.ToString(), &ids);
  return ClassifyTokens(ids);
}

std::string NaiveBayesClassifier::ClassifyCoded(const StringDictionary& dict,
                                                uint32_t code) const {
  if (labels_.empty() || code == kNullCode) return "";
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto dict_it = classify_memo_.find(&dict);
    if (dict_it != classify_memo_.end()) {
      auto it = dict_it->second.find(code);
      if (it != dict_it->second.end()) {
        GlobalTokenKernelStats().nb_memo_hits.fetch_add(
            1, std::memory_order_relaxed);
        return it->second;
      }
    }
  }
  // Miss: compute outside the lock (a racing duplicate computes the same
  // deterministic label), then publish.
  std::vector<GramId>& ids = LocalScratch().ids;
  TokenizeLookup(dict.value(code), &ids);
  std::string label = ClassifyTokens(ids);
  std::lock_guard<std::mutex> lock(memo_mu_);
  classify_memo_[&dict].emplace(code, label);
  return label;
}

std::vector<std::string> NaiveBayesClassifier::Labels() const {
  std::vector<std::string> out;
  out.reserve(labels_.size());
  for (const auto& [label, stats] : labels_) out.push_back(label);
  return out;
}

}  // namespace csm
