#include "ml/naive_bayes.h"

#include <cmath>
#include <limits>

#include "text/tokenizer.h"

namespace csm {

void NaiveBayesClassifier::Train(const Value& input, const std::string& label) {
  if (input.is_null()) return;
  LabelStats& stats = labels_[label];
  ++stats.example_count;
  ++total_examples_;
  for (const std::string& gram : QGrams(input.ToString(), q_)) {
    stats.token_counts[gram] += 1.0;
    stats.token_total += 1.0;
    vocabulary_.insert(gram);
  }
}

double NaiveBayesClassifier::LogScore(const Value& input,
                                      const std::string& label) const {
  auto it = labels_.find(label);
  if (it == labels_.end() || total_examples_ == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  const LabelStats& stats = it->second;
  // Smoothed log prior.
  const double num_labels = static_cast<double>(labels_.size());
  double score = std::log(
      (static_cast<double>(stats.example_count) + smoothing_) /
      (static_cast<double>(total_examples_) + smoothing_ * num_labels));
  const double vocab = static_cast<double>(vocabulary_.size());
  const double denom = stats.token_total + smoothing_ * (vocab + 1.0);
  for (const std::string& gram : QGrams(input.ToString(), q_)) {
    auto token_it = stats.token_counts.find(gram);
    const double count =
        token_it == stats.token_counts.end() ? 0.0 : token_it->second;
    score += std::log((count + smoothing_) / denom);
  }
  return score;
}

std::string NaiveBayesClassifier::Classify(const Value& input) const {
  if (labels_.empty() || input.is_null()) return "";
  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();
  size_t best_frequency = 0;
  for (const auto& [label, stats] : labels_) {
    double score = LogScore(input, label);
    // Ties break toward the more frequent label, then lexicographically
    // (map order), for determinism.
    if (score > best_score ||
        (score == best_score && stats.example_count > best_frequency)) {
      best = label;
      best_score = score;
      best_frequency = stats.example_count;
    }
  }
  return best;
}

std::vector<std::string> NaiveBayesClassifier::Labels() const {
  std::vector<std::string> out;
  out.reserve(labels_.size());
  for (const auto& [label, stats] : labels_) out.push_back(label);
  return out;
}

}  // namespace csm
