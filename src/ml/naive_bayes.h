// Multinomial Naive Bayes over 3-gram tokens (Section 3.2.3: "If h is a
// text attribute, a standard Naive Bayesian classifier is used, with the
// values tokenized into 3-grams").
//
// Internally the classifier runs on the interned token kernel (text/gram.h):
// grams are packed uint32 ids (q <= 4) or interned ids (larger q), per-label
// counts live in hash maps during training, and the first classification
// finalizes them into contiguous sorted (id, log-probability) arrays with
// precomputed log-priors and smoothing denominators.  Scores are
// bit-identical to the original map-of-strings implementation: every log
// term is the same std::log((count + alpha) / denom) double, summed in the
// same per-occurrence order.
//
// Thread safety: training is single-writer (no concurrent reads), after
// which any number of threads may classify concurrently — the lazy finalize
// and the per-distinct-input memo of ClassifyCoded are mutex-guarded, which
// is what lets TgtClassInfer share one trained tagger across all grid-cell
// workers.

#ifndef CSM_ML_NAIVE_BAYES_H_
#define CSM_ML_NAIVE_BAYES_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ml/classifier.h"
#include "text/gram.h"

namespace csm {

/// Multinomial NB with Laplace smoothing.  Inputs are rendered to text
/// (numerics via ToString) and tokenized into padded q-grams.
class NaiveBayesClassifier : public ValueClassifier {
 public:
  /// `q` is the gram length (paper: 3).  `smoothing` is the Laplace alpha.
  explicit NaiveBayesClassifier(size_t q = 3, double smoothing = 1.0)
      : q_(q), smoothing_(smoothing) {}

  /// Movable (single-threaded by contract: no concurrent access to either
  /// side during the move); the mutexes of the destination start fresh.
  NaiveBayesClassifier(NaiveBayesClassifier&& other) noexcept;
  NaiveBayesClassifier& operator=(NaiveBayesClassifier&& other) noexcept;

  void Train(const Value& input, const std::string& label) override;
  std::string Classify(const Value& input) const override;

  /// Coded fast path: tokenization is memoized per (dictionary, code), and
  /// ClassifyCoded additionally memoizes the winning label per distinct
  /// input, so a repeated evidence value pays the log-sum once.
  void TrainCoded(const StringDictionary& dict, uint32_t code,
                  const std::string& label) override;
  std::string ClassifyCoded(const StringDictionary& dict,
                            uint32_t code) const override;

  std::vector<std::string> Labels() const override;
  size_t TrainingSize() const override { return total_examples_; }

  /// Log posterior (up to the shared evidence term) of `label` for `input`;
  /// -inf for labels never seen.  Exposed for tests and for TgtClassInfer's
  /// tie diagnostics.
  double LogScore(const Value& input, const std::string& label) const;

 private:
  struct LabelStats {
    size_t example_count = 0;
    double token_total = 0.0;
    std::unordered_map<GramId, double> token_counts;
  };

  /// Finalized per-label scoring model, in labels_ (lexicographic) order.
  struct LabelModel {
    const std::string* label = nullptr;
    size_t example_count = 0;
    double log_prior = 0.0;
    double log_unseen = 0.0;                // log((0 + alpha) / denom)
    std::vector<GramId> gram_ids;           // sorted
    std::vector<double> gram_log_prob;      // parallel to gram_ids
  };

  bool Packed() const { return q_ <= kMaxPackedGramQ; }

  /// Tokenizes `text` into gram ids, interning unseen word-grams in the
  /// q > kMaxPackedGramQ fallback (training path, single-writer).
  void TokenizeTrain(std::string_view text, std::vector<GramId>* out);

  /// Lookup-only tokenization; unseen word-grams map to kNoGramId, which
  /// ScoreTokens treats as unseen.  Safe for concurrent readers.
  void TokenizeLookup(std::string_view text, std::vector<GramId>* out) const;

  void TrainTokens(const std::vector<GramId>& grams, const std::string& label);

  /// Builds models_ on first use after training; thread-safe.
  const std::vector<LabelModel>& Finalized() const;

  double ScoreTokens(const LabelModel& model,
                     const std::vector<GramId>& grams) const;

  /// Classify over pre-tokenized input (the shared tie-break loop).
  std::string ClassifyTokens(const std::vector<GramId>& grams) const;

  size_t q_;
  double smoothing_;
  size_t total_examples_ = 0;
  std::map<std::string, LabelStats> labels_;
  std::unordered_set<GramId> vocabulary_;

  /// Interner for the q > kMaxPackedGramQ fallback (mutated during
  /// training only).
  std::unique_ptr<TokenInterner> gram_interner_;

  /// Token memo for TrainCoded: (dictionary, code) -> gram ids.  Written
  /// during single-writer training only.
  std::unordered_map<const StringDictionary*,
                     std::unordered_map<uint32_t, std::vector<GramId>>>
      train_token_memo_;

  // Lazily finalized model + classification memo; see class comment.
  mutable std::mutex model_mu_;
  mutable bool finalized_ = false;  // guarded by model_mu_
  mutable std::vector<LabelModel> models_;
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<const StringDictionary*,
                             std::unordered_map<uint32_t, std::string>>
      classify_memo_;  // guarded by memo_mu_
};

}  // namespace csm

#endif  // CSM_ML_NAIVE_BAYES_H_
