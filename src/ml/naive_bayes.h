// Multinomial Naive Bayes over 3-gram tokens (Section 3.2.3: "If h is a
// text attribute, a standard Naive Bayesian classifier is used, with the
// values tokenized into 3-grams").

#ifndef CSM_ML_NAIVE_BAYES_H_
#define CSM_ML_NAIVE_BAYES_H_

#include <map>
#include <set>
#include <string>

#include "ml/classifier.h"

namespace csm {

/// Multinomial NB with Laplace smoothing.  Inputs are rendered to text
/// (numerics via ToString) and tokenized into padded q-grams.
class NaiveBayesClassifier : public ValueClassifier {
 public:
  /// `q` is the gram length (paper: 3).  `smoothing` is the Laplace alpha.
  explicit NaiveBayesClassifier(size_t q = 3, double smoothing = 1.0)
      : q_(q), smoothing_(smoothing) {}

  void Train(const Value& input, const std::string& label) override;
  std::string Classify(const Value& input) const override;
  std::vector<std::string> Labels() const override;
  size_t TrainingSize() const override { return total_examples_; }

  /// Log posterior (up to the shared evidence term) of `label` for `input`;
  /// -inf for labels never seen.  Exposed for tests and for TgtClassInfer's
  /// tie diagnostics.
  double LogScore(const Value& input, const std::string& label) const;

 private:
  struct LabelStats {
    size_t example_count = 0;
    double token_total = 0.0;
    std::map<std::string, double> token_counts;
  };

  size_t q_;
  double smoothing_;
  size_t total_examples_ = 0;
  std::map<std::string, LabelStats> labels_;
  std::set<std::string> vocabulary_;
};

}  // namespace csm

#endif  // CSM_ML_NAIVE_BAYES_H_
