#include "ml/evaluation.h"

#include <algorithm>

namespace csm {

ErrorPair MakeErrorPair(const std::string& a, const std::string& b) {
  if (a <= b) return ErrorPair{a, b};
  return ErrorPair{b, a};
}

double FBeta(double precision, double recall, double beta) {
  const double b2 = beta * beta;
  const double denom = b2 * precision + recall;
  if (denom == 0.0) return 0.0;
  return (1.0 + b2) * precision * recall / denom;
}

void ClassifierEvaluation::Observe(const std::string& actual,
                                   const std::string& predicted) {
  ++total_;
  ++labels_[actual].actual_total;
  if (actual == predicted) {
    ++correct_;
    ++labels_[actual].true_positive;
  } else {
    ++labels_[actual].false_negative;
    ++labels_[predicted].false_positive;
    ++error_pairs_[MakeErrorPair(actual, predicted)];
  }
}

double ClassifierEvaluation::Accuracy() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(correct_) / static_cast<double>(total_);
}

double ClassifierEvaluation::MicroPrecision() const {
  size_t tp = 0, fp = 0;
  for (const auto& [label, counts] : labels_) {
    tp += counts.true_positive;
    fp += counts.false_positive;
  }
  if (tp + fp == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ClassifierEvaluation::MicroRecall() const {
  size_t tp = 0, fn = 0;
  for (const auto& [label, counts] : labels_) {
    tp += counts.true_positive;
    fn += counts.false_negative;
  }
  if (tp + fn == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double ClassifierEvaluation::MicroF(double beta) const {
  return FBeta(MicroPrecision(), MicroRecall(), beta);
}

double ClassifierEvaluation::MacroF(double beta) const {
  if (labels_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [label, counts] : labels_) {
    sum += FBeta(LabelPrecision(label), LabelRecall(label), beta);
  }
  return sum / static_cast<double>(labels_.size());
}

double ClassifierEvaluation::LabelPrecision(const std::string& label) const {
  auto it = labels_.find(label);
  if (it == labels_.end()) return 0.0;
  size_t denom = it->second.true_positive + it->second.false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(it->second.true_positive) /
         static_cast<double>(denom);
}

double ClassifierEvaluation::LabelRecall(const std::string& label) const {
  auto it = labels_.find(label);
  if (it == labels_.end()) return 0.0;
  size_t denom = it->second.true_positive + it->second.false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(it->second.true_positive) /
         static_cast<double>(denom);
}

std::vector<std::pair<ErrorPair, double>>
ClassifierEvaluation::NormalizedErrorPairs() const {
  std::vector<std::pair<ErrorPair, double>> out;
  out.reserve(error_pairs_.size());
  for (const auto& [pair, count] : error_pairs_) {
    double freq_a = 0.0, freq_b = 0.0;
    if (auto it = labels_.find(pair.first); it != labels_.end()) {
      freq_a = static_cast<double>(it->second.actual_total);
    }
    if (auto it = labels_.find(pair.second); it != labels_.end()) {
      freq_b = static_cast<double>(it->second.actual_total);
    }
    // Normalize the confusion count by the frequency mass of the two
    // labels; labels never seen as "actual" keep the raw count.
    double denom = freq_a + freq_b;
    double normalized = denom > 0.0
                            ? static_cast<double>(count) / denom
                            : static_cast<double>(count);
    out.emplace_back(pair, normalized);
  }
  // Highest normalized count first; ties lexicographic on the pair.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<std::string> ClassifierEvaluation::Labels() const {
  std::vector<std::string> out;
  out.reserve(labels_.size());
  for (const auto& [label, counts] : labels_) out.push_back(label);
  return out;
}

}  // namespace csm
