// Per-label Gaussian ("statistical") classifier for numeric attributes
// (Section 3.2.3: "If h is a numeric attribute, a statistical classifier
// is used instead").

#ifndef CSM_ML_GAUSSIAN_CLASSIFIER_H_
#define CSM_ML_GAUSSIAN_CLASSIFIER_H_

#include <map>
#include <string>

#include "ml/classifier.h"
#include "stats/descriptive.h"

namespace csm {

/// Models each label's numeric inputs as a Gaussian and classifies by
/// maximum posterior (Gaussian likelihood x label prior).  Non-numeric
/// inputs fall back to the most frequent label.
class GaussianClassifier : public ValueClassifier {
 public:
  /// `min_stddev` floors each label's standard deviation to keep
  /// single-point or constant labels from producing degenerate likelihoods.
  explicit GaussianClassifier(double min_stddev = 1e-6)
      : min_stddev_(min_stddev) {}

  void Train(const Value& input, const std::string& label) override;
  std::string Classify(const Value& input) const override;
  std::vector<std::string> Labels() const override;
  size_t TrainingSize() const override { return total_examples_; }

  /// Log posterior (up to the evidence term) of `label` for numeric `x`.
  double LogScore(double x, const std::string& label) const;

 private:
  double min_stddev_;
  size_t total_examples_ = 0;
  std::map<std::string, DescriptiveStats> labels_;
};

}  // namespace csm

#endif  // CSM_ML_GAUSSIAN_CLASSIFIER_H_
