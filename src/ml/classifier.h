// Single-label classifier interface used by ClusteredViewGen (Fig. 6).
//
// A classifier maps a scalar Value (a cell of the evidence attribute h) to
// a label string.  For SrcClassInfer labels are the categorical values of
// l; for TgtClassInfer's per-type target classifiers labels are target
// column names ("Book.Title").

#ifndef CSM_ML_CLASSIFIER_H_
#define CSM_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/value.h"

namespace csm {

class ValueClassifier {
 public:
  virtual ~ValueClassifier() = default;

  /// Adds one training example.  NULL inputs are ignored.
  virtual void Train(const Value& input, const std::string& label) = 0;

  /// Classifies `input`.  Returns the empty string when the classifier has
  /// seen no training data (or cannot score the input at all).
  virtual std::string Classify(const Value& input) const = 0;

  /// Coded fast path: the example is cell `code` of a dictionary-encoded
  /// string column.  Semantically identical to boxing the cell into a Value
  /// (kNullCode behaves as NULL); implementations may key per-distinct-value
  /// memos on (dictionary, code).  Defaults fall back to the Value path.
  virtual void TrainCoded(const StringDictionary& dict, uint32_t code,
                          const std::string& label) {
    if (code == kNullCode) return;
    Train(Value::String(dict.value(code)), label);
  }
  virtual std::string ClassifyCoded(const StringDictionary& dict,
                                    uint32_t code) const {
    if (code == kNullCode) return Classify(Value::Null());
    return Classify(Value::String(dict.value(code)));
  }

  /// Distinct labels seen during training, sorted.
  virtual std::vector<std::string> Labels() const = 0;

  /// Total number of training examples absorbed.
  virtual size_t TrainingSize() const = 0;
};

}  // namespace csm

#endif  // CSM_ML_CLASSIFIER_H_
