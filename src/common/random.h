// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// experiments are reproducible; Rng wraps the splitmix64/xoshiro256**
// generators with the distribution helpers the matchers and data generators
// need.

#ifndef CSM_COMMON_RANDOM_H_
#define CSM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace csm {

/// A small, fast, deterministic PRNG (xoshiro256**) seeded via splitmix64.
/// Not cryptographically secure; intended for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound).  Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal deviate (Box-Muller, no caching).
  double NextGaussian();

  /// Normal deviate with given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Index drawn from the discrete distribution proportional to `weights`.
  /// Requires a non-empty vector with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns a derived RNG; useful to give each sub-component an
  /// independent but reproducible stream.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace csm

#endif  // CSM_COMMON_RANDOM_H_
