// Retry and circuit-breaking primitives for the self-healing service layer.
//
// Three small, independently testable pieces:
//
//   * RetryPolicy — exponential backoff with *decorrelated jitter*: each
//     delay is drawn uniformly from [base, 3 * previous] (AWS architecture
//     blog recipe), clamped to max_backoff_ms.  The draw comes from a
//     caller-supplied deterministic Rng, so a retry schedule is a pure
//     function of (policy, seed) and replays bit-identically in tests and
//     chaos runs.
//
//   * RetryBudget — a token bucket over *retries* (not requests): every
//     retry spends one token, every first-attempt success refills a
//     fraction.  When a fleet of clients hits a failing backend, budgets
//     collapse the retry storm to a bounded multiple of the success rate
//     instead of amplifying the outage.
//
//   * CircuitBreaker — the classic closed / open / half-open state machine.
//     `failure_threshold` consecutive trip-class failures (kUnavailable /
//     kDeadlineExceeded by default, configurable) open the circuit; while
//     open every Allow() is refused without touching the backend; after
//     open_ms one half-open *probe* is admitted — exactly one, concurrent
//     Allow() calls keep being refused — and its outcome closes the breaker
//     or re-opens it for another open_ms.
//
// Determinism: the breaker takes its clock from options.now_ms, so tests
// drive the state machine with a manual clock instead of sleeping.  All
// three classes are internally synchronized (they sit on request paths
// called from many client threads).

#ifndef CSM_COMMON_RETRY_H_
#define CSM_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace csm {

/// Which StatusCodes an automatic retry may help with.  Rejections of spent
/// resources (kResourceExhausted) and unavailability (kUnavailable) are
/// transient by construction; everything else either already consumed the
/// caller's budget (kDeadlineExceeded) or will fail the same way again.
bool IsRetryableStatus(StatusCode code);

/// Exponential backoff with decorrelated jitter.  Value type; carry one per
/// client and thread the previous delay through NextBackoffMs.
struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retries.
  int max_attempts = 3;
  /// First backoff and the lower bound of every jittered draw.
  double initial_backoff_ms = 5.0;
  /// Upper clamp on any single backoff.
  double max_backoff_ms = 500.0;

  /// The delay before the next attempt, given the previous delay (pass 0
  /// before the first retry).  Draws from `rng`: uniform in
  /// [initial_backoff_ms, 3 * max(previous_ms, initial_backoff_ms)],
  /// clamped to max_backoff_ms.
  double NextBackoffMs(double previous_ms, Rng& rng) const;
};

/// A token bucket spent by retries and refilled by first-attempt successes.
/// Thread-safe.
class RetryBudget {
 public:
  /// `capacity` tokens to start (and as the cap); each success refills
  /// `refill_per_success` tokens.  capacity <= 0 means "unlimited".
  explicit RetryBudget(double capacity = 10.0,
                       double refill_per_success = 0.1);

  /// Spends one token; false when the budget is exhausted (caller must not
  /// retry).
  bool TrySpend();

  /// Credits a first-attempt success.
  void RecordSuccess();

  double tokens() const;

 private:
  const double capacity_;
  const double refill_per_success_;
  mutable std::mutex mu_;
  double tokens_;
};

struct CircuitBreakerOptions {
  /// Consecutive trip-class failures that open the circuit; 0 disables the
  /// breaker entirely (Allow always true, Record* no-ops).
  int failure_threshold = 5;
  /// How long an open circuit refuses work before admitting the half-open
  /// probe.
  int64_t open_ms = 1000;
  /// Successes the half-open state needs before closing (each admitted one
  /// at a time).
  int successes_to_close = 1;
  /// StatusCodes that count as trip-class failures.  Defaults to
  /// kUnavailable + kDeadlineExceeded + kInternal: the backend is down,
  /// drowning, or broken.  Everything else (including kResourceExhausted,
  /// which admission control already bounds) resets nothing and trips
  /// nothing.
  std::vector<StatusCode> trip_codes = {StatusCode::kUnavailable,
                                        StatusCode::kDeadlineExceeded,
                                        StatusCode::kInternal};
  /// Clock in milliseconds; tests substitute a manual clock to drive the
  /// open -> half-open transition without sleeping.  Null = steady_clock.
  std::function<int64_t()> now_ms;
};

/// Options with the breaker disabled (Allow always true, Record* no-ops);
/// the default for every embedded breaker so resilience stays opt-in.
inline CircuitBreakerOptions DisabledBreakerOptions() {
  CircuitBreakerOptions options;
  options.failure_threshold = 0;
  return options;
}

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// True when a request may proceed.  While open, flips to half-open once
  /// open_ms elapsed and admits exactly one probe; further calls are
  /// refused until the probe reports its outcome.
  bool Allow();

  /// Outcome of an admitted request.  Success closes a half-open circuit
  /// (after successes_to_close) and clears the consecutive-failure count;
  /// a trip-class failure re-opens a half-open circuit immediately and
  /// counts toward failure_threshold when closed.
  void RecordSuccess();
  void RecordFailure(StatusCode code);

  /// Releases a half-open probe slot when the admitted request was answered
  /// without reaching the backend (shed, expired in queue, drained at
  /// stop): the probe judged nothing, so another one may go out.  No-op in
  /// any other state.  RecordFailure with a non-trip code does this too.
  void ReleaseProbe();

  State state() const;
  /// Trip-class failures observed in a row while closed.
  int consecutive_failures() const;
  /// Times the circuit transitioned closed/half-open -> open.
  uint64_t trips() const;

  static const char* StateToString(State state);

 private:
  int64_t NowMs() const;
  bool IsTripCode(StatusCode code) const;

  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  int64_t opened_at_ms_ = 0;
  uint64_t trips_ = 0;
};

}  // namespace csm

#endif  // CSM_COMMON_RETRY_H_
