// Lightweight Status / StatusOr error-handling primitives.
//
// The library does not use C++ exceptions across API boundaries (see
// DESIGN.md, Conventions).  Fallible operations return csm::Status or
// csm::StatusOr<T>; invariant violations use the CHECK macros from
// common/logging.h.

#ifndef CSM_COMMON_STATUS_H_
#define CSM_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace csm {

/// Canonical error codes, a small subset of the usual gRPC-style set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  kDeadlineExceeded = 9,
  kCancelled = 10,
  /// A bounded resource (request queue, tenant quota, rate budget) is spent;
  /// retrying later may succeed.  The matching service's admission-control
  /// rejections carry this code.
  kResourceExhausted = 11,
  /// The serving process is stopping or not accepting work at all.
  kUnavailable = 12,
};

/// Returns the canonical spelling of a status code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// The single StatusCode -> process-exit-code table shared by the CLI tools
/// (csv_match_tool, match_service_daemon) and the service's response codes:
///   0  kOk — complete answer
///   2  caller/input problems (kInvalidArgument, kNotFound, kAlreadyExists,
///      kFailedPrecondition, kOutOfRange, kIoError)
///   3  degraded-but-answered (kDeadlineExceeded, kCancelled): a partial
///      result was still produced and printed
///   1  everything else (kInternal, kUnimplemented, kResourceExhausted,
///      kUnavailable) — the tool or service itself failed
int ExitCodeForStatus(StatusCode code);

/// Result of an operation that can fail: a code plus a human-readable
/// message.  Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status.  Never holds both.
template <typename T>
class StatusOr {
 public:
  /// Implicit from Status so `return Status::NotFound(...)` works.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}
  /// Implicit from T so `return value;` works.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().  Checked in debug builds via the optional.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace csm

/// Propagates a non-OK Status from an expression to the caller.
#define CSM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::csm::Status csm_status_tmp_ = (expr);         \
    if (!csm_status_tmp_.ok()) return csm_status_tmp_; \
  } while (false)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// moves the value into `lhs`.
#define CSM_ASSIGN_OR_RETURN(lhs, expr)            \
  auto CSM_CONCAT_(csm_sor_, __LINE__) = (expr);   \
  if (!CSM_CONCAT_(csm_sor_, __LINE__).ok())       \
    return CSM_CONCAT_(csm_sor_, __LINE__).status(); \
  lhs = std::move(CSM_CONCAT_(csm_sor_, __LINE__)).value()

#define CSM_CONCAT_INNER_(a, b) a##b
#define CSM_CONCAT_(a, b) CSM_CONCAT_INNER_(a, b)

#endif  // CSM_COMMON_STATUS_H_
