#include "common/cancellation.h"

#include <limits>

namespace csm {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* CancelReasonToString(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kCaller:
      return "caller";
    case CancelReason::kFault:
      return "fault";
  }
  return "unknown";
}

Deadline Deadline::AfterMillis(int64_t ms) {
  if (ms < 0) ms = 0;
  Deadline d;
  d.ns_ = NowNs() + ms * 1'000'000;
  return d;
}

Deadline Deadline::At(std::chrono::steady_clock::time_point tp) {
  Deadline d;
  d.ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
              tp.time_since_epoch())
              .count();
  return d;
}

bool Deadline::Expired() const {
  return ns_ != kInfiniteNs && NowNs() >= ns_;
}

double Deadline::RemainingSeconds() const {
  if (ns_ == kInfiniteNs) return std::numeric_limits<double>::infinity();
  return static_cast<double>(ns_ - NowNs()) * 1e-9;
}

void CancellationToken::CancelInternal(CancelReason reason) const {
  uint8_t expected = 0;
  reason_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
}

void CancellationToken::Cancel(CancelReason reason) {
  if (reason == CancelReason::kNone) return;
  CancelInternal(reason);
}

bool CancellationToken::cancelled() const {
  if (reason_.load(std::memory_order_acquire) != 0) return true;
  if (parent_ != nullptr && parent_->cancelled()) {
    CancelInternal(parent_->reason());
    return true;
  }
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != Deadline::kInfiniteNs && NowNs() >= deadline) {
    CancelInternal(CancelReason::kDeadline);
    return true;
  }
  return false;
}

}  // namespace csm
