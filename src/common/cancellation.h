// Cooperative cancellation primitives: Deadline (a wall-clock budget on the
// steady clock) and CancellationToken (a thread-safe, shareable "stop now"
// flag with a reason).
//
// The matching pipeline is super-linear in candidate views x target
// attributes, so a service cannot run it as an unbounded all-or-nothing
// call.  Cancellation here is *cooperative*: nothing is interrupted
// preemptively.  Long-running layers (exec::ParallelFor chunk claims, the
// classifier grid, per-candidate scoring) poll the token at checkpoints and
// drain — they finish the work they already claimed and stop starting new
// work.  The degradation contracts built on top (which partial results a
// cancelled run returns) are defined in DESIGN.md "Failure model, deadlines
// & degradation".
//
// Thread safety: Cancel() / cancelled() / reason() may be called from any
// thread concurrently.  set_deadline() and set_parent() are setup-time
// calls: make them before the token is shared with other threads.

#ifndef CSM_COMMON_CANCELLATION_H_
#define CSM_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace csm {

/// Why a token was cancelled.  First cancellation wins; later Cancel()
/// calls with a different reason are ignored.
enum class CancelReason : uint8_t {
  kNone = 0,   // not cancelled
  kDeadline,   // the token's deadline expired (or expiry was injected)
  kCaller,     // an explicit Cancel() from the caller (MatchEngine::Cancel)
  kFault,      // a task-level fault degraded the run (FaultInjector::kFail)
};

const char* CancelReasonToString(CancelReason reason);

/// A point on the steady clock after which work should stop.  Cheap value
/// type; the default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// `ms` from now (clamped to >= 0).
  static Deadline AfterMillis(int64_t ms);

  static Deadline At(std::chrono::steady_clock::time_point tp);

  bool is_infinite() const { return ns_ == kInfiniteNs; }
  bool Expired() const;

  /// Seconds until expiry; negative once expired, +infinity when infinite.
  double RemainingSeconds() const;

  /// Nanoseconds since the steady-clock epoch (kInfiniteNs when infinite).
  int64_t raw_ns() const { return ns_; }

  static constexpr int64_t kInfiniteNs = INT64_MAX;

 private:
  int64_t ns_ = kInfiniteNs;
};

/// Thread-safe cancellation flag.  Cancellation is sticky and one-shot: the
/// first reason to land wins.  A token optionally carries a Deadline —
/// cancelled() self-cancels with kDeadline once it expires — and may be
/// linked to a parent token, whose cancellation it observes and adopts
/// (MatchEngine links its per-run token under the caller's token, so either
/// the caller's Cancel() or the run deadline stops the same machinery).
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(Deadline deadline) { set_deadline(deadline); }

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Cancels with `reason` (no-op if already cancelled).  Safe from any
  /// thread; never blocks.
  void Cancel(CancelReason reason = CancelReason::kCaller);

  /// Setup-time: attach or replace the deadline.  Call before sharing.
  void set_deadline(Deadline deadline) {
    deadline_ns_.store(deadline.raw_ns(), std::memory_order_relaxed);
  }

  /// Setup-time: observe `parent`'s cancellation through this token.  The
  /// parent must outlive this token.  Call before sharing; pass nullptr to
  /// detach.
  void set_parent(const CancellationToken* parent) { parent_ = parent; }

  /// True once cancelled (by Cancel, by the parent, or because the deadline
  /// expired — the deadline is checked lazily here, so polling cancelled()
  /// is what makes deadlines fire).
  bool cancelled() const;

  /// kNone until cancelled; then the first reason that landed.  Note that
  /// an expired-but-never-polled deadline reads kNone; call cancelled()
  /// first when the distinction matters.
  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

 private:
  /// First-writer-wins reason slot.
  void CancelInternal(CancelReason reason) const;

  mutable std::atomic<uint8_t> reason_{0};
  std::atomic<int64_t> deadline_ns_{Deadline::kInfiniteNs};
  const CancellationToken* parent_ = nullptr;
};

}  // namespace csm

#endif  // CSM_COMMON_CANCELLATION_H_
