#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace csm {

bool IsRetryableStatus(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

double RetryPolicy::NextBackoffMs(double previous_ms, Rng& rng) const {
  const double base = std::max(initial_backoff_ms, 0.0);
  const double prev = std::max(previous_ms, base);
  // Decorrelated jitter: uniform in [base, 3 * prev], clamped.  The upper
  // bound grows with the previous draw, so consecutive retries spread out
  // exponentially in expectation without synchronizing across clients.
  const double hi = std::max(base, 3.0 * prev);
  const double drawn = rng.NextDouble(base, std::nextafter(hi, hi + 1.0));
  return std::min(drawn, max_backoff_ms);
}

RetryBudget::RetryBudget(double capacity, double refill_per_success)
    : capacity_(capacity),
      refill_per_success_(std::max(refill_per_success, 0.0)),
      tokens_(capacity) {}

bool RetryBudget::TrySpend() {
  if (capacity_ <= 0.0) return true;  // unlimited
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void RetryBudget::RecordSuccess() {
  if (capacity_ <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(capacity_, tokens_ + refill_per_success_);
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)) {}

int64_t CircuitBreaker::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool CircuitBreaker::IsTripCode(StatusCode code) const {
  for (StatusCode trip : options_.trip_codes) {
    if (code == trip) return true;
  }
  return false;
}

bool CircuitBreaker::Allow() {
  if (options_.failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (NowMs() - opened_at_ms_ < options_.open_ms) return false;
      // The cooling-off period elapsed: admit exactly one probe.
      state_ = State::kHalfOpen;
      half_open_successes_ = 0;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= std::max(options_.successes_to_close, 1)) {
      state_ = State::kClosed;
    }
  }
}

void CircuitBreaker::ReleaseProbe() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure(StatusCode code) {
  if (options_.failure_threshold <= 0) return;
  if (!IsTripCode(code)) {
    // Neutral outcome: judges nothing, but must not strand a half-open
    // probe slot.
    ReleaseProbe();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ms_ = NowMs();
        ++trips_;
      }
      break;
    case State::kHalfOpen:
      // The probe failed: straight back to open for another full window.
      probe_in_flight_ = false;
      state_ = State::kOpen;
      opened_at_ms_ = NowMs();
      ++trips_;
      break;
    case State::kOpen:
      break;  // stale outcome from before the trip; nothing to update
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

const char* CircuitBreaker::StateToString(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kHalfOpen:
      return "half-open";
    case State::kOpen:
      return "open";
  }
  return "unknown";
}

}  // namespace csm
