// Minimal CHECK-style assertion macros.
//
// CHECK* macros abort on failure in all build modes; they guard invariants
// whose violation indicates a programming error (recoverable errors go
// through csm::Status instead).

#ifndef CSM_COMMON_LOGGING_H_
#define CSM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace csm {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace csm

#define CSM_CHECK(condition)                                             \
  if (!(condition))                                                      \
  ::csm::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)  \
      .stream()

#define CSM_CHECK_EQ(a, b) CSM_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_CHECK_NE(a, b) CSM_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_CHECK_LT(a, b) CSM_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_CHECK_LE(a, b) CSM_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_CHECK_GT(a, b) CSM_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_CHECK_GE(a, b) CSM_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Checks that a csm::Status or csm::StatusOr expression is OK.
#define CSM_CHECK_OK(expr)                               \
  do {                                                   \
    const auto& csm_check_ok_ = (expr);                  \
    CSM_CHECK(csm_check_ok_.ok());                       \
  } while (false)

#endif  // CSM_COMMON_LOGGING_H_
