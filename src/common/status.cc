#include "common/status.h"

namespace csm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

int ExitCodeForStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kIoError:
      return 2;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return 3;
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return 1;
  }
  return 1;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace csm
