// Small string helpers shared across the library.

#ifndef CSM_COMMON_STRING_UTIL_H_
#define CSM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace csm {

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace csm

#endif  // CSM_COMMON_STRING_UTIL_H_
