#include "common/random.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace csm {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Avoid the (practically impossible) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CSM_CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CSM_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller transform; draw u1 away from zero to keep log() finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  CSM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CSM_CHECK_GE(w, 0.0);
    total += w;
  }
  CSM_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace csm
