// FaultInjector: named fault-injection sites for testing the cancellation
// and degradation contracts.
//
// Production code calls FaultInjector::Hit("site.name", index) at a few
// well-known points (the thread pool's task dispatch, the classifier grid,
// per-candidate view scoring, per-table session building).  The hook is
// compiled in always but inert unless a test arms it: the unarmed fast
// path is a single relaxed atomic load, so leaving the sites in release
// builds costs nothing measurable.
//
// Tests arm a site with an ArmSpec describing when to fire (a specific
// logical index, or the first hit) and what to do:
//   * kCancel — cancel an external CancellationToken with a chosen reason
//               (injected deadline expiry / caller cancel / fault);
//   * kFail   — Hit() returns true and the caller must fail that one work
//               unit (task-level failure); also cancels the spec's token
//               when one is attached, so a fault can degrade the whole run;
//   * kSleep  — block the calling thread for sleep_ms (slow-worker
//               simulation; never changes results, only timing).
//
// Determinism: sites that pass a *logical* index (candidate index, grid
// cell index, table index) fire on the same unit of work at any thread
// count, which is what makes cancelled-run results reproducible (see
// determinism_test).  The "pool.task" site passes a submission sequence
// number, which is schedule-dependent — arm it only with kSleep.
//
// The registry is global (tests in one binary run sequentially); Arm/
// DisarmAll and concurrent Hit calls are thread-safe.

#ifndef CSM_COMMON_FAULT_INJECTOR_H_
#define CSM_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/cancellation.h"

namespace csm {

class FaultInjector {
 public:
  /// Matches any index (fire on the first `fire_limit` hits of the site).
  static constexpr uint64_t kAnyIndex = UINT64_MAX;

  enum class Action : uint8_t {
    kCancel,  // cancel `token` with `reason`
    kFail,    // caller fails this work unit (and `token` is cancelled too)
    kSleep,   // sleep `sleep_ms` on the hitting thread
  };

  struct ArmSpec {
    std::string site;              // e.g. "scoring.candidate"
    uint64_t index = kAnyIndex;    // logical index to fire on
    Action action = Action::kCancel;
    /// Token to cancel for kCancel / kFail; may be null (kFail then only
    /// fails the unit, kCancel becomes a no-op).  Must stay alive until
    /// DisarmAll().
    CancellationToken* token = nullptr;
    CancelReason reason = CancelReason::kFault;
    int64_t sleep_ms = 0;          // for kSleep
    /// Times this spec may fire; 0 = unlimited.
    uint64_t fire_limit = 1;
    /// Rate-based firing: when > 0 the spec matches only indices with
    /// index % period == 0, i.e. a deterministic 1/period fault rate over
    /// the site's logical index stream (combine with fire_limit = 0 for a
    /// sustained schedule).  0 keeps the exact-index / any-index behavior.
    uint64_t period = 0;
  };

  /// Registers a spec (several may be armed at once).
  static void Arm(ArmSpec spec);

  /// Removes every armed spec and resets fire counts.  Tests must disarm
  /// in teardown; armed specs hold caller-owned token pointers.
  static void DisarmAll();

  /// True when any spec is armed (the slow path is live).
  static bool armed();

  /// Total times any spec fired at `site` since the last DisarmAll.
  static uint64_t FireCount(const std::string& site);

  /// The production-side hook.  Returns true when the caller must fail
  /// this work unit (a kFail spec fired).  Inert (false, one atomic load)
  /// when nothing is armed.
  static bool Hit(std::string_view site, uint64_t index);
};

}  // namespace csm

#endif  // CSM_COMMON_FAULT_INJECTOR_H_
