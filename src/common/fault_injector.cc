#include "common/fault_injector.h"

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace csm {
namespace {

struct ArmedSpec {
  FaultInjector::ArmSpec spec;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<ArmedSpec> specs;              // guarded by mu
  std::map<std::string, uint64_t> fire_counts;  // guarded by mu
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Fast-path gate: number of armed specs.  Relaxed is fine — a Hit racing
/// an Arm may miss it, which is indistinguishable from hitting the site a
/// moment earlier; tests arm before starting the work they instrument.
std::atomic<uint64_t> g_armed_count{0};

}  // namespace

void FaultInjector::Arm(ArmSpec spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.specs.push_back(ArmedSpec{std::move(spec), 0});
  g_armed_count.store(registry.specs.size(), std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.specs.clear();
  registry.fire_counts.clear();
  g_armed_count.store(0, std::memory_order_relaxed);
}

bool FaultInjector::armed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

uint64_t FaultInjector::FireCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.fire_counts.find(site);
  return it == registry.fire_counts.end() ? 0 : it->second;
}

bool FaultInjector::Hit(std::string_view site, uint64_t index) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return false;

  bool fail = false;
  int64_t sleep_ms = 0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (ArmedSpec& armed : registry.specs) {
      const ArmSpec& spec = armed.spec;
      if (spec.site != site) continue;
      if (spec.index != kAnyIndex && spec.index != index) continue;
      if (spec.period > 0 && index % spec.period != 0) continue;
      if (spec.fire_limit != 0 && armed.fires >= spec.fire_limit) continue;
      ++armed.fires;
      ++registry.fire_counts[std::string(site)];
      switch (spec.action) {
        case Action::kCancel:
          if (spec.token != nullptr) spec.token->Cancel(spec.reason);
          break;
        case Action::kFail:
          if (spec.token != nullptr) spec.token->Cancel(spec.reason);
          fail = true;
          break;
        case Action::kSleep:
          sleep_ms += spec.sleep_ms;
          break;
      }
    }
  }
  // Sleep outside the registry lock so slow-worker injection slows only the
  // hitting thread, not every other site.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return fail;
}

}  // namespace csm
