#include "check/differential.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "check/fingerprint.h"
#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "core/match_engine.h"

namespace csm::check {
namespace {

/// First line where two fingerprints diverge, for failure messages.
std::string DiffSummary(const std::string& expected,
                        const std::string& actual) {
  std::istringstream e(expected);
  std::istringstream a(actual);
  std::string eline;
  std::string aline;
  size_t line = 0;
  while (true) {
    const bool has_e = static_cast<bool>(std::getline(e, eline));
    const bool has_a = static_cast<bool>(std::getline(a, aline));
    if (!has_e && !has_a) return "fingerprints equal";
    ++line;
    if (!has_e || !has_a || eline != aline) {
      return "first divergence at line " + std::to_string(line) +
             ": expected '" + (has_e ? eline : "<eof>") + "' vs actual '" +
             (has_a ? aline : "<eof>") + "'";
    }
  }
}

ContextMatchResult RunEngine(const Database& source, const Database& target,
                             ContextMatchOptions options, size_t threads,
                             const CancellationToken* cancel = nullptr) {
  options.threads = threads;
  MatchEngine engine(options);
  return engine.Match(source, target, cancel);
}

/// Disarms the global fault injector on scope exit, so an oracle that
/// returns early can never leak an armed spec into the next run.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::DisarmAll(); }
};

Status CheckMatchListPrefix(const MatchList& prefix, const MatchList& full,
                            const char* what) {
  if (prefix.size() > full.size()) {
    return Status::Internal(std::string(what) + ": degraded run has " +
                            std::to_string(prefix.size()) +
                            " entries, full run only " +
                            std::to_string(full.size()));
  }
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i].ToString() != full[i].ToString()) {
      return Status::Internal(std::string(what) + " diverges at index " +
                              std::to_string(i) + ": degraded '" +
                              prefix[i].ToString() + "' vs full '" +
                              full[i].ToString() + "'");
    }
  }
  return Status::Ok();
}

Status CancelledPrefixAgainstFull(const Database& source,
                                  const Database& target,
                                  const ContextMatchOptions& options,
                                  const ContextMatchResult& full,
                                  size_t fault_index,
                                  const std::vector<size_t>& thread_counts) {
  std::string serial_degraded;
  for (size_t threads : thread_counts) {
    CancellationToken token;
    InjectorGuard guard;
    FaultInjector::Arm({.site = "scoring.candidate",
                        .index = fault_index,
                        .action = FaultInjector::Action::kCancel,
                        .token = &token,
                        .reason = CancelReason::kDeadline});
    const ContextMatchResult degraded =
        RunEngine(source, target, options, threads, &token);
    FaultInjector::DisarmAll();

    if (degraded.status.code() != StatusCode::kDeadlineExceeded) {
      return Status::Internal(
          "cancelled run at threads=" + std::to_string(threads) +
          " reported status '" + degraded.status.ToString() +
          "', expected kDeadlineExceeded");
    }
    if (degraded.completeness == MatchCompleteness::kComplete) {
      return Status::Internal(
          "cancelled run at threads=" + std::to_string(threads) +
          " claims kComplete");
    }

    // Degradation contract: the degraded pool is a prefix of the full pool.
    CSM_RETURN_IF_ERROR(CheckMatchListPrefix(degraded.pool.base_matches,
                                             full.pool.base_matches,
                                             "base_matches"));
    if (degraded.pool.candidate_views.size() >
        full.pool.candidate_views.size()) {
      return Status::Internal("degraded run scored more candidate views than "
                              "the full run");
    }
    for (size_t i = 0; i < degraded.pool.candidate_views.size(); ++i) {
      if (!(degraded.pool.candidate_views[i] ==
            full.pool.candidate_views[i])) {
        return Status::Internal(
            "candidate_views diverge at index " + std::to_string(i) +
            ": degraded '" + degraded.pool.candidate_views[i].ToString() +
            "' vs full '" + full.pool.candidate_views[i].ToString() + "'");
      }
    }
    CSM_RETURN_IF_ERROR(CheckMatchListPrefix(degraded.pool.view_matches,
                                             full.pool.view_matches,
                                             "view_matches"));
    for (const auto& [key, rows] : degraded.pool.view_row_counts) {
      auto it = full.pool.view_row_counts.find(key);
      if (it == full.pool.view_row_counts.end() || it->second != rows) {
        return Status::Internal("view_row_counts['" + key +
                                "'] missing or different in the full run");
      }
    }

    // Cross-thread-count determinism of the degraded run itself.
    const std::string fingerprint = FingerprintResult(degraded);
    if (serial_degraded.empty()) {
      serial_degraded = fingerprint;
    } else if (fingerprint != serial_degraded) {
      return Status::Internal(
          "degraded run diverges at threads=" + std::to_string(threads) +
          "; " + DiffSummary(serial_degraded, fingerprint));
    }
  }
  return Status::Ok();
}

}  // namespace

Status CheckThreadInvariance(const Database& source, const Database& target,
                             const ContextMatchOptions& options,
                             const std::vector<size_t>& thread_counts) {
  const std::string serial =
      FingerprintResult(RunEngine(source, target, options, 1));
  for (size_t threads : thread_counts) {
    if (threads == 1) continue;
    const std::string parallel =
        FingerprintResult(RunEngine(source, target, options, threads));
    if (parallel != serial) {
      return Status::Internal(
          "serial vs threads=" + std::to_string(threads) + " diverged; " +
          DiffSummary(serial, parallel));
    }
  }
  return Status::Ok();
}

Status CheckColdVsWarmCache(const Database& source, const Database& target,
                            const ContextMatchOptions& options) {
  MatchEngine engine(options);
  const std::string cold =
      FingerprintResult(engine.Match(source, target));
  for (int repeat = 0; repeat < 2; ++repeat) {
    const std::string warm =
        FingerprintResult(engine.Match(source, target));
    if (warm != cold) {
      return Status::Internal("warm-cache repeat " +
                              std::to_string(repeat + 1) + " diverged; " +
                              DiffSummary(cold, warm));
    }
  }
  if (engine.session_cache_hits() < 2 || engine.session_cache_misses() != 1) {
    return Status::Internal(
        "session cache did not behave (hits=" +
        std::to_string(engine.session_cache_hits()) +
        ", misses=" + std::to_string(engine.session_cache_misses()) +
        "); the warm comparison proved nothing");
  }
  return Status::Ok();
}

Status CheckEngineVsFreeFunction(const Database& source,
                                 const Database& target,
                                 const ContextMatchOptions& options) {
  const std::string free_fn =
      FingerprintResult(ContextMatch(source, target, options));
  const std::string engine =
      FingerprintResult(RunEngine(source, target, options, options.threads));
  if (engine != free_fn) {
    return Status::Internal("MatchEngine vs free function diverged; " +
                            DiffSummary(free_fn, engine));
  }
  return Status::Ok();
}

Status CheckCancelledPrefix(const Database& source, const Database& target,
                            const ContextMatchOptions& options,
                            size_t fault_index,
                            const std::vector<size_t>& thread_counts) {
  const ContextMatchResult full = RunEngine(source, target, options, 1);
  const size_t candidates = full.pool.candidate_views.size();
  if (candidates < 2) return Status::Ok();  // nothing to cut
  fault_index = std::min(fault_index, candidates - 1);
  return CancelledPrefixAgainstFull(source, target, options, full,
                                    fault_index, thread_counts);
}

Status CheckAllOracles(const Database& source, const Database& target,
                       const ContextMatchOptions& options,
                       const std::vector<size_t>& thread_counts) {
  CSM_RETURN_IF_ERROR(
      CheckThreadInvariance(source, target, options, thread_counts));
  CSM_RETURN_IF_ERROR(CheckColdVsWarmCache(source, target, options));
  CSM_RETURN_IF_ERROR(CheckEngineVsFreeFunction(source, target, options));
  const ContextMatchResult full = RunEngine(source, target, options, 1);
  const size_t candidates = full.pool.candidate_views.size();
  if (candidates < 2) return Status::Ok();
  return CancelledPrefixAgainstFull(source, target, options, full,
                                    candidates / 2, thread_counts);
}

}  // namespace csm::check
