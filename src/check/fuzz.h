// Deterministic structured fuzzers.
//
// Each fuzzer runs `iterations` independent trials; trial i derives its own
// seed IterationSeed(options.seed, i) (generators.h), so a failure replays
// exactly by re-running the same fuzzer with the same FuzzOptions — every
// failure Status embeds "replay: seed=<S> iteration=<I>".  The fuzz_smoke
// test binary wires these to the CSM_FUZZ_SEED / CSM_FUZZ_ITERS environment
// knobs; CI runs them with fixed seeds under CSM_CHECKS=ON + ASan, so a
// violated invariant aborts and a divergence returns a replayable Status.
//
//   * FuzzCsvRoundTrip       random hostile tables through
//                            TableToCsv -> TableFromCsv, plus a re-rendered
//                            variant with randomized \n / \r\n / \r record
//                            terminators through the same parser
//   * FuzzCsvChunkedParse     random hostile tables rendered with mixed
//                            record terminators through the chunked
//                            parallel parser at hostile chunk sizes (down
//                            to 1 byte) and several thread counts; checks
//                            chunk-scan invariants plus bit-identical
//                            tables *and* dictionary code assignment
//                            against the serial parser
//   * FuzzConditionEvaluation random conditions: View::Materialize and
//                            View::MatchingRows against per-row
//                            Condition::Evaluate ground truth
//   * FuzzPipeline           random database pairs through MatchEngine;
//                            checks result invariants (confidence bounds,
//                            row-count conservation, selection contracts)
//   * FuzzDifferential       random database pairs through every
//                            differential oracle (differential.h) at
//                            threads 1/2/4
//   * FuzzRowColumnarEquivalence
//                            random hostile tables: the columnar store's
//                            typed segments, dictionary codes, CellHash,
//                            Condition::MatchingPositions and TableView
//                            gather/reads against boxed row-at-a-time
//                            ground truth (bit-identical fingerprints)
//   * FuzzTokenKernelEquivalence
//                            random hostile tables through the interned
//                            token kernel (text/gram.h): packed gram ids,
//                            flat profiles, TF-IDF weighted cosine and the
//                            Naive Bayes classifier (boxed and coded paths)
//                            against map-of-strings reference
//                            implementations — every score bit-identical

#ifndef CSM_CHECK_FUZZ_H_
#define CSM_CHECK_FUZZ_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace csm::check {

struct FuzzOptions {
  /// Harness seed; trial i uses IterationSeed(seed, i).
  uint64_t seed = 1;
  size_t iterations = 100;
  /// Thread counts the pipeline fuzzers sweep.
  std::vector<size_t> thread_counts = {1, 2, 4};
};

Status FuzzCsvRoundTrip(const FuzzOptions& options);
Status FuzzCsvChunkedParse(const FuzzOptions& options);
Status FuzzConditionEvaluation(const FuzzOptions& options);
Status FuzzPipeline(const FuzzOptions& options);
Status FuzzDifferential(const FuzzOptions& options);
Status FuzzRowColumnarEquivalence(const FuzzOptions& options);
Status FuzzTokenKernelEquivalence(const FuzzOptions& options);

}  // namespace csm::check

#endif  // CSM_CHECK_FUZZ_H_
