#include "check/golden.h"

#include <fstream>
#include <sstream>

#include "check/fingerprint.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "core/match_engine.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"

namespace csm::check {
namespace {

RetailDataset Retail(size_t num_items, size_t gamma, uint64_t seed,
                     size_t correlated = 0, double rho = 0.0) {
  RetailOptions d;
  d.num_items = num_items;
  d.gamma = gamma;
  d.seed = seed;
  d.correlated_attributes = correlated;
  d.rho = rho;
  return MakeRetailDataset(d);
}

std::string RunRetailSrcClassEarly() {
  RetailDataset data = Retail(120, 2, 1);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kSrcClass;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = 2;
  o.threads = 2;
  MatchEngine engine(o);
  return FingerprintResult(engine.Match(data.source, data.target));
}

std::string RunRetailNaiveMultiTable() {
  RetailDataset data = Retail(100, 4, 3);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kNaive;
  o.selection = SelectionPolicy::kMultiTable;
  o.omega = 0.1;
  o.seed = 4;
  o.threads = 1;
  MatchEngine engine(o);
  return FingerprintResult(engine.Match(data.source, data.target));
}

std::string RunRetailTgtClass() {
  RetailDataset data = Retail(120, 2, 5);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kTgtClass;
  o.omega = 0.05;
  o.seed = 6;
  o.threads = 2;
  MatchEngine engine(o);
  return FingerprintResult(engine.Match(data.source, data.target));
}

std::string RunGradesQualTableLate() {
  GradesOptions d;
  d.num_students = 100;
  d.seed = 7;
  GradesDataset data = MakeGradesDataset(d);
  ContextMatchOptions o;
  o.tau = 0.45;
  o.omega = 0.025;
  o.early_disjuncts = false;
  o.seed = 8;
  o.threads = 2;
  MatchEngine engine(o);
  return FingerprintResult(engine.Match(data.source, data.target));
}

std::string RunRetailConjunctiveTwoStage() {
  RetailDataset data = Retail(120, 2, 9, /*correlated=*/1, /*rho=*/0.9);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kSrcClass;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = 10;
  o.threads = 2;
  MatchEngine engine(o);
  return FingerprintResult(
      engine.ConjunctiveMatch(data.source, data.target, /*max_stages=*/2));
}

/// Pins the degradation contract itself: a run cancelled at a fixed
/// scoring-candidate index must keep producing this exact whole-chunk
/// prefix (plus status/completeness) at any thread count.
std::string RunRetailDegradedPrefix() {
  RetailDataset data = Retail(120, 2, 1);
  ContextMatchOptions o;
  o.inference = ViewInferenceKind::kNaive;
  o.early_disjuncts = true;
  o.omega = 0.05;
  o.seed = 2;
  o.threads = 2;
  CancellationToken token;
  FaultInjector::Arm({.site = "scoring.candidate",
                      .index = 3,
                      .action = FaultInjector::Action::kCancel,
                      .token = &token,
                      .reason = CancelReason::kDeadline});
  MatchEngine engine(o);
  ContextMatchResult result = engine.Match(data.source, data.target, &token);
  FaultInjector::DisarmAll();
  return "status: " + std::string(StatusCodeToString(result.status.code())) +
         "\ncompleteness: " +
         std::string(MatchCompletenessToString(result.completeness)) + "\n" +
         FingerprintResult(result);
}

struct GoldenCase {
  const char* name;
  std::string (*run)();
};

constexpr GoldenCase kCases[] = {
    {"retail_srcclass_early", &RunRetailSrcClassEarly},
    {"retail_naive_multitable", &RunRetailNaiveMultiTable},
    {"retail_tgtclass", &RunRetailTgtClass},
    {"grades_qualtable_late", &RunGradesQualTableLate},
    {"retail_conjunctive_2stage", &RunRetailConjunctiveTwoStage},
    {"retail_degraded_prefix", &RunRetailDegradedPrefix},
};

std::string FirstDiffLine(const std::string& expected,
                          const std::string& actual) {
  std::istringstream e(expected);
  std::istringstream a(actual);
  std::string eline;
  std::string aline;
  size_t line = 0;
  while (true) {
    const bool has_e = static_cast<bool>(std::getline(e, eline));
    const bool has_a = static_cast<bool>(std::getline(a, aline));
    if (!has_e && !has_a) return "contents equal";
    ++line;
    if (!has_e || !has_a || eline != aline) {
      return "line " + std::to_string(line) + ": golden '" +
             (has_e ? eline : "<eof>") + "' vs computed '" +
             (has_a ? aline : "<eof>") + "'";
    }
  }
}

}  // namespace

std::vector<std::string> GoldenCaseNames() {
  std::vector<std::string> names;
  for (const GoldenCase& c : kCases) names.emplace_back(c.name);
  return names;
}

std::string RunGoldenCase(const std::string& name) {
  for (const GoldenCase& c : kCases) {
    if (name == c.name) return c.run();
  }
  CSM_CHECK(false) << "unknown golden case '" << name << "'";
  return "";
}

int RunGoldenCorpus(const std::string& golden_dir, bool update,
                    std::ostream& out) {
  int failures = 0;
  for (const GoldenCase& c : kCases) {
    const std::string path = golden_dir + "/" + c.name + ".golden";
    const std::string computed = c.run();
    if (update) {
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      if (!file) {
        out << "FAIL  " << c.name << ": cannot write " << path << "\n";
        ++failures;
        continue;
      }
      file << computed;
      out << "wrote " << c.name << " (" << computed.size() << " bytes)\n";
      continue;
    }
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      out << "FAIL  " << c.name << ": missing " << path
          << " (run with --update to create)\n";
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string expected = buffer.str();
    if (expected != computed) {
      out << "FAIL  " << c.name << ": " << FirstDiffLine(expected, computed)
          << "\n      (intentional change? re-record with --update and "
             "review the diff)\n";
      ++failures;
      continue;
    }
    out << "ok    " << c.name << "\n";
  }
  return failures;
}

}  // namespace csm::check
