// Seeded structured-input generators for the correctness fuzzers.
//
// Everything here is a pure function of the Rng handed in: replaying a
// failing iteration means re-seeding an Rng with the iteration's derived
// seed (fuzz.h prints it on failure) and calling the same generator again.
// Two generator families:
//
//   * Hostile tables (RandomHostileTable): arbitrary schemas whose string
//     cells exercise every CSV escape path — commas, quotes, CR, LF, CRLF,
//     empty fields, multi-byte UTF-8, leading/trailing blanks.  Feed these
//     through WriteCsv -> ParseCsv round trips.
//
//   * Matchable database pairs (RandomDatabasePair): small source/target
//     databases drawing attribute names and cell values from shared,
//     low-cardinality domain pools, so the full ContextMatch pipeline finds
//     base matches, infers candidate views and exercises selection instead
//     of trivially returning nothing.

#ifndef CSM_CHECK_GENERATORS_H_
#define CSM_CHECK_GENERATORS_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "relational/condition.h"
#include "relational/table.h"

namespace csm::check {

/// Derives the per-iteration seed the fuzzers use (splitmix-style fold of
/// the harness seed and the iteration index); exposed so a failure message
/// "seed=S iteration=I" can be replayed as RandomX(Rng(IterationSeed(S, I))).
uint64_t IterationSeed(uint64_t seed, uint64_t iteration);

/// One string cell drawn from the hostile pool: plain words, embedded
/// commas/quotes/newlines/CRs, UTF-8 runs, leading/trailing blanks.  Never
/// empty and never whitespace-only (both of those parse back as NULL by
/// design; the generator emits real NULLs instead).
std::string RandomHostileCell(Rng& rng);

struct HostileTableOptions {
  size_t min_rows = 0;
  size_t max_rows = 16;
  size_t min_attributes = 1;
  size_t max_attributes = 6;
  /// Probability that any one cell is NULL.
  double null_probability = 0.1;
};

/// Random table mixing int / real / string columns; string cells come from
/// RandomHostileCell, reals are exact binary fractions (k/8) so text round
/// trips cannot lose precision.
Table RandomHostileTable(const std::string& name, Rng& rng,
                         const HostileTableOptions& options = {});

/// Random condition over `table`'s attributes: 0-2 clauses on distinct
/// attributes, each an IN over a mix of values present in the column and
/// values absent from it ("true" when 0 clauses).
Condition RandomCondition(const Table& table, Rng& rng);

struct DatabasePairOptions {
  size_t min_source_tables = 1;
  size_t max_source_tables = 2;
  size_t min_target_tables = 1;
  size_t max_target_tables = 2;
  size_t min_rows = 12;
  size_t max_rows = 28;
};

struct DatabasePair {
  Database source;
  Database target;
};

/// Small source/target databases over shared attribute-name and value-domain
/// pools: every table gets at least one low-cardinality categorical column
/// (so view inference has labels to partition on) plus a few domain-typed
/// value columns that overlap between source and target.
DatabasePair RandomDatabasePair(Rng& rng,
                                const DatabasePairOptions& options = {});

}  // namespace csm::check

#endif  // CSM_CHECK_GENERATORS_H_
