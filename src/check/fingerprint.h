// Canonical serializations used by the correctness tooling.
//
// FingerprintResult renders everything a ContextMatch run produced —
// selected matches, selected views, the whole scored pool — into one
// deterministic text blob.  Two runs are "bit-identical" exactly when their
// fingerprints compare equal, which is the equality the differential
// oracles (differential.h), the determinism tests and the golden
// regression corpus (golden.h) all assert.  Keep it append-only: removing
// or reordering fields silently weakens every oracle built on it.

#ifndef CSM_CHECK_FINGERPRINT_H_
#define CSM_CHECK_FINGERPRINT_H_

#include <string>

#include "core/context_match.h"
#include "relational/table.h"

namespace csm::check {

/// Deterministic text rendering of a run's matches, selected views and
/// scored pool (status / timing / observability metadata excluded:
/// fingerprints compare work products, not schedules).
std::string FingerprintResult(const ContextMatchResult& result);

/// Deterministic text rendering of a table: schema line plus one line per
/// row (cells separated by an unprintable delimiter so hostile cell
/// contents cannot collide).  Used in fuzzer failure messages.
std::string FingerprintTable(const Table& table);

}  // namespace csm::check

#endif  // CSM_CHECK_FINGERPRINT_H_
