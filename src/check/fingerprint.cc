#include "check/fingerprint.h"

namespace csm::check {

std::string FingerprintResult(const ContextMatchResult& r) {
  std::string out;
  out += "matches:\n";
  for (const Match& m : r.matches) out += "  " + m.ToString() + "\n";
  out += "selected_views:\n";
  for (const View& v : r.selected_views) {
    out += "  " + v.name() + "|" + v.base_table() + "|" +
           v.condition().ToString() + "\n";
  }
  out += "base_matches:\n";
  for (const Match& m : r.pool.base_matches) out += "  " + m.ToString() + "\n";
  out += "view_matches:\n";
  for (const Match& m : r.pool.view_matches) out += "  " + m.ToString() + "\n";
  out += "candidate_views:\n";
  for (const View& v : r.pool.candidate_views) {
    out += "  " + v.base_table() + "|" + v.condition().ToString() + "\n";
  }
  out += "view_row_counts:\n";
  for (const auto& [key, count] : r.pool.view_row_counts) {
    out += "  " + key + "=" + std::to_string(count) + "\n";
  }
  return out;
}

std::string FingerprintTable(const Table& table) {
  std::string out = table.schema().ToString() + "\n";
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += '\x1f';
      // NULL renders as an unprintable tag a string cell cannot spell.
      out += row[c].is_null() ? std::string("\x01NULL") : row[c].ToString();
    }
    out += '\n';
  }
  return out;
}

}  // namespace csm::check
