#include "check/fingerprint.h"

namespace csm::check {

std::string FingerprintResult(const ContextMatchResult& r) {
  std::string out;
  out += "matches:\n";
  for (const Match& m : r.matches) out += "  " + m.ToString() + "\n";
  out += "selected_views:\n";
  for (const View& v : r.selected_views) {
    out += "  " + v.name() + "|" + v.base_table() + "|" +
           v.condition().ToString() + "\n";
  }
  out += "base_matches:\n";
  for (const Match& m : r.pool.base_matches) out += "  " + m.ToString() + "\n";
  out += "view_matches:\n";
  for (const Match& m : r.pool.view_matches) out += "  " + m.ToString() + "\n";
  out += "candidate_views:\n";
  for (const View& v : r.pool.candidate_views) {
    out += "  " + v.base_table() + "|" + v.condition().ToString() + "\n";
  }
  out += "view_row_counts:\n";
  for (const auto& [key, count] : r.pool.view_row_counts) {
    out += "  " + key + "=" + std::to_string(count) + "\n";
  }
  return out;
}

std::string FingerprintTable(const Table& table) {
  // Reads the column segments directly (no row-cache materialization); the
  // rendering is byte-identical to the historical row-major loop.
  std::string out = table.schema().ToString() + "\n";
  const size_t cols = table.schema().num_attributes();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out += '\x1f';
      const Value v = table.ValueAt(r, c);
      // NULL renders as an unprintable tag a string cell cannot spell.
      out += v.is_null() ? std::string("\x01NULL") : v.ToString();
    }
    out += '\n';
  }
  return out;
}

}  // namespace csm::check
