#include "check/fuzz.h"

#include <algorithm>
#include <string>
#include <vector>

#include "check/differential.h"
#include "check/fingerprint.h"
#include "check/generators.h"
#include "core/match_engine.h"
#include "relational/csv.h"
#include "relational/table_view.h"
#include "relational/view.h"

namespace csm::check {
namespace {

/// Prefixes an oracle failure with the exact replay coordinates.
Status Replay(const FuzzOptions& options, size_t iteration, Status status) {
  if (status.ok()) return status;
  return Status(status.code(),
                "replay: seed=" + std::to_string(options.seed) +
                    " iteration=" + std::to_string(iteration) + "; " +
                    status.message());
}

// --------------------------------------------------------------------- CSV

/// Writer-compatible quoting, duplicated here so the fuzzer can re-render
/// a table with randomized record terminators (the library writer always
/// emits "\n").
std::string QuoteLikeWriter(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Renders `table` as CSV with a random record terminator ("\n", "\r\n" or
/// a bare "\r") per record; the final record keeps its terminator with
/// probability 1/2 (both are legal).
std::string RenderCsvMixedLineEndings(const Table& table, Rng& rng) {
  const char* kTerminators[] = {"\n", "\r\n", "\r"};
  std::string out;
  auto append_record = [&](const std::vector<std::string>& fields,
                           bool last) {
    std::string record;
    for (size_t c = 0; c < fields.size(); ++c) {
      if (c > 0) record += ',';
      record += QuoteLikeWriter(fields[c]);
    }
    // Match the library writer: a would-be-empty line is written as `""`
    // so it cannot fuse with a preceding bare-"\r" terminator into "\r\n"
    // (or vanish as the trailing newline).
    if (record.empty()) record = "\"\"";
    out += record;
    if (!last || rng.NextBounded(2) == 0) {
      out += kTerminators[rng.NextBounded(3)];
    }
  };
  std::vector<std::string> fields;
  for (size_t c = 0; c < table.schema().num_attributes(); ++c) {
    fields.push_back(table.schema().attribute(c).name);
  }
  append_record(fields, table.num_rows() == 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    fields.clear();
    for (const Value& v : table.row(r)) fields.push_back(v.ToString());
    append_record(fields, r + 1 == table.num_rows());
  }
  return out;
}

Status CompareTables(const Table& expected, const Table& actual,
                     const char* what) {
  const std::string e = FingerprintTable(expected);
  const std::string a = FingerprintTable(actual);
  if (e != a) {
    return Status::Internal(std::string(what) +
                            " round trip diverged:\n--- expected ---\n" + e +
                            "--- actual ---\n" + a);
  }
  return Status::Ok();
}

}  // namespace

Status FuzzCsvRoundTrip(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const Table table = RandomHostileTable("fuzz", rng);

    // Library writer -> library parser.
    StatusOr<Table> parsed = TableFromCsv(table.schema(), TableToCsv(table));
    if (!parsed.ok()) {
      return Replay(options, i,
                    Status::Internal("ParseCsv failed on WriteCsv output: " +
                                     parsed.status().message()));
    }
    CSM_RETURN_IF_ERROR(
        Replay(options, i, CompareTables(table, *parsed, "WriteCsv")));

    // Re-rendered with randomized \n / \r\n / \r record terminators.
    const std::string mixed = RenderCsvMixedLineEndings(table, rng);
    parsed = TableFromCsv(table.schema(), mixed);
    if (!parsed.ok()) {
      return Replay(options, i,
                    Status::Internal("ParseCsv failed on mixed-line-ending "
                                     "rendering: " +
                                     parsed.status().message()));
    }
    CSM_RETURN_IF_ERROR(
        Replay(options, i, CompareTables(table, *parsed, "mixed-line-ending")));
  }
  return Status::Ok();
}

Status FuzzCsvChunkedParse(const FuzzOptions& options) {
  // Chunk sizes chosen to force record splits everywhere: 1 byte puts every
  // record (and every quoted terminator) at a chunk boundary; the larger
  // sizes exercise mid-table splits and the single-chunk degenerate case.
  const size_t kChunkSizes[] = {1, 7, 64, 4096};
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const Table table = RandomHostileTable("fuzz", rng);
    const std::string renderings[] = {TableToCsv(table),
                                      RenderCsvMixedLineEndings(table, rng)};
    for (const std::string& csv : renderings) {
      const StatusOr<Table> serial = TableFromCsv(table.schema(), csv);
      if (!serial.ok()) {
        return Replay(options, i,
                      Status::Internal("serial parser rejected rendering: " +
                                       serial.status().message()));
      }

      // Chunk-scan invariants: spans are contiguous, non-empty, and cover
      // [pos, size) exactly, at an arbitrary target size.
      const size_t target = 1 + rng.NextBounded(csv.size() + 1);
      size_t cursor = 0;
      for (const CsvChunkSpan& span : ScanCsvChunks(csv, 0, target)) {
        if (span.begin != cursor || span.end <= span.begin) {
          return Replay(options, i,
                        Status::Internal(
                            "chunk scan produced a gap or empty span at byte " +
                            std::to_string(cursor) + " (target=" +
                            std::to_string(target) + ")"));
        }
        cursor = span.end;
      }
      if (cursor != csv.size()) {
        return Replay(options, i,
                      Status::Internal("chunk scan covered " +
                                       std::to_string(cursor) + " of " +
                                       std::to_string(csv.size()) + " bytes"));
      }

      for (size_t chunk_bytes : kChunkSizes) {
        CsvIngestOptions ingest;
        ingest.chunk_bytes = chunk_bytes;
        ingest.threads = options.thread_counts.empty()
                             ? 1
                             : options.thread_counts[rng.NextBounded(
                                   options.thread_counts.size())];
        const StatusOr<Table> chunked =
            TableFromCsvParallel(table.schema(), csv, ingest);
        auto where = [&](const std::string& message) {
          return Status::Internal(message + " (chunk_bytes=" +
                                  std::to_string(chunk_bytes) + ", threads=" +
                                  std::to_string(ingest.threads) + ")");
        };
        if (!chunked.ok()) {
          return Replay(options, i,
                        where("chunked parser rejected text the serial "
                              "parser accepted: " +
                              chunked.status().message()));
        }
        CSM_RETURN_IF_ERROR(Replay(
            options, i, CompareTables(*serial, *chunked, "chunked parse")));
        // Value equality is not enough: the merged dictionary must assign
        // the exact codes a serial parse would (downstream fingerprints and
        // dictionary-code scans depend on it).
        for (size_t c = 0; c < table.schema().num_attributes(); ++c) {
          const Column& expected = serial->column(c);
          const Column& actual = chunked->column(c);
          if (expected.type() != ValueType::kString) continue;
          if (actual.codes() != expected.codes()) {
            return Replay(options, i,
                          where("dictionary codes diverged from serial parse "
                                "in column " +
                                table.schema().attribute(c).name));
          }
          if (actual.dictionary().size() != expected.dictionary().size()) {
            return Replay(options, i,
                          where("merged dictionary size diverged in column " +
                                table.schema().attribute(c).name));
          }
          for (uint32_t code = 0; code < expected.dictionary().size();
               ++code) {
            if (actual.dictionary().value(code) !=
                expected.dictionary().value(code)) {
              return Replay(
                  options, i,
                  where("dictionary entry " + std::to_string(code) +
                        " diverged in column " +
                        table.schema().attribute(c).name));
            }
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status FuzzConditionEvaluation(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    HostileTableOptions table_options;
    table_options.min_rows = 1;
    const Table table = RandomHostileTable("fuzz", rng, table_options);
    const Condition condition = RandomCondition(table, rng);
    const View view("v", table.name(), condition);

    // Ground truth: independent per-row evaluation.
    std::vector<size_t> expected_rows;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (condition.Evaluate(table.schema(), table.row(r))) {
        expected_rows.push_back(r);
      }
    }

    if (view.MatchingRows(table) != expected_rows) {
      return Replay(options, i,
                    Status::Internal("MatchingRows != per-row Evaluate for " +
                                     view.ToString()));
    }
    const Table materialized = view.Materialize(table);
    if (materialized.num_rows() != expected_rows.size()) {
      return Replay(
          options, i,
          Status::Internal(
              "materialized row count " +
              std::to_string(materialized.num_rows()) + " != " +
              std::to_string(expected_rows.size()) + " rows satisfying " +
              condition.ToString()));
    }
    for (size_t m = 0; m < expected_rows.size(); ++m) {
      if (!(materialized.row(m) == table.row(expected_rows[m]))) {
        return Replay(options, i,
                      Status::Internal("materialized row " +
                                       std::to_string(m) +
                                       " differs from base row " +
                                       std::to_string(expected_rows[m])));
      }
    }
  }
  return Status::Ok();
}

Status FuzzPipeline(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const DatabasePair pair = RandomDatabasePair(rng);

    ContextMatchOptions o;
    const ViewInferenceKind kinds[] = {ViewInferenceKind::kNaive,
                                       ViewInferenceKind::kSrcClass,
                                       ViewInferenceKind::kTgtClass};
    o.inference = kinds[rng.NextBounded(3)];
    o.selection = rng.NextBounded(2) == 0 ? SelectionPolicy::kQualTable
                                          : SelectionPolicy::kMultiTable;
    o.early_disjuncts = rng.NextBounded(2) == 0;
    o.omega = 0.02 + rng.NextDouble() * 0.2;
    o.tau = 0.4 + rng.NextDouble() * 0.15;
    o.seed = rng.Next();
    o.threads = options.thread_counts.empty()
                    ? 1
                    : options.thread_counts[rng.NextBounded(
                          options.thread_counts.size())];

    MatchEngine engine(o);
    const ContextMatchResult result = engine.Match(pair.source, pair.target);
    auto fail = [&](const std::string& message) {
      return Replay(options, i,
                    Status::Internal(message + " (inference=" +
                                     ViewInferenceKindToString(o.inference) +
                                     ", threads=" +
                                     std::to_string(o.threads) + ")"));
    };
    if (!result.status.ok()) {
      return fail("uncancelled pipeline returned non-OK status " +
                  result.status.ToString());
    }
    if (result.completeness != MatchCompleteness::kComplete) {
      return fail("uncancelled pipeline claims degraded completeness");
    }
    for (const Match& m : result.matches) {
      if (m.confidence < 0.0 || m.confidence > 1.0) {
        return fail("selected match confidence out of [0,1]: " +
                    m.ToString());
      }
    }
    // Selection picks only scored views.
    std::vector<std::string> candidate_keys;
    for (const View& v : result.pool.candidate_views) {
      candidate_keys.push_back(v.base_table() + "\x1d" +
                               v.condition().ToString());
    }
    for (const View& v : result.selected_views) {
      const std::string key =
          v.base_table() + "\x1d" + v.condition().ToString();
      if (std::find(candidate_keys.begin(), candidate_keys.end(), key) ==
          candidate_keys.end()) {
        return fail("selected view was never scored: " + v.ToString());
      }
    }
    // Row-count conservation against the source tables.
    for (const View& v : result.pool.candidate_views) {
      const Table* base = pair.source.FindTable(v.base_table());
      if (base == nullptr) {
        return fail("candidate view over unknown base table " +
                    v.base_table());
      }
      auto it = result.pool.view_row_counts.find(
          v.base_table() + "\x1d" + v.condition().ToString());
      if (it != result.pool.view_row_counts.end() &&
          it->second > base->num_rows()) {
        return fail("view row count exceeds base table rows for " +
                    v.ToString());
      }
    }
    // One match per target attribute under multi-table selection.
    if (o.selection == SelectionPolicy::kMultiTable) {
      std::vector<std::string> targets;
      for (const Match& m : result.matches) {
        const std::string t = m.target.ToString();
        if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
          return fail("multi-table selection emitted target twice: " + t);
        }
        targets.push_back(t);
      }
    }
  }
  return Status::Ok();
}

Status FuzzRowColumnarEquivalence(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    HostileTableOptions table_options;
    table_options.min_rows = 1;
    const Table table = RandomHostileTable("fuzz", rng, table_options);
    const size_t cols = table.schema().num_attributes();

    // (1) Re-insert every row through the boxed AddRow path; the rebuilt
    // columnar store must fingerprint bit-identically.
    Table rebuilt(table.schema());
    rebuilt.Reserve(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) rebuilt.AddRow(table.row(r));
    CSM_RETURN_IF_ERROR(
        Replay(options, i, CompareTables(table, rebuilt, "AddRow rebuild")));

    // (2) Columnar cell hashes against boxed Value::Hash (the fingerprint
    // cache keys depend on this equivalence).
    for (size_t c = 0; c < cols; ++c) {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (table.column(c).CellHash(r) !=
            static_cast<uint64_t>(table.ValueAt(r, c).Hash())) {
          return Replay(options, i,
                        Status::Internal(
                            "CellHash != Value::Hash at row " +
                            std::to_string(r) + " col " + std::to_string(c)));
        }
      }
    }

    // (3) Dictionary-code condition scan against per-row Evaluate.
    const Condition condition = RandomCondition(table, rng);
    PosList expected;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (condition.Evaluate(table.schema(), table.row(r))) {
        expected.push_back(static_cast<RowId>(r));
      }
    }
    if (condition.MatchingPositions(table) != expected) {
      return Replay(options, i,
                    Status::Internal("MatchingPositions != per-row Evaluate "
                                     "for " +
                                     condition.ToString()));
    }

    // (4) Zero-copy view reads and column gather against a row-at-a-time
    // copy of the matching rows.
    Table rowpath(table.schema());
    for (RowId r : expected) rowpath.AddRow(table.row(r));
    const TableView bound(table, expected);
    CSM_RETURN_IF_ERROR(Replay(
        options, i, CompareTables(rowpath, bound.ToTable(), "view gather")));
    for (size_t vr = 0; vr < bound.num_rows(); ++vr) {
      for (size_t c = 0; c < cols; ++c) {
        if (!(bound.ValueAt(vr, c) == rowpath.at(vr, c))) {
          return Replay(options, i,
                        Status::Internal(
                            "TableView::ValueAt != row copy at view row " +
                            std::to_string(vr) + " col " + std::to_string(c)));
        }
      }
    }

    // (5) ValueBag / ValueCounts through the view against boxed
    // recomputation from the copied rows.
    for (size_t c = 0; c < cols; ++c) {
      const std::string& attr = table.schema().attribute(c).name;
      const std::vector<Value> bag = bound.ValueBag(attr);
      std::map<Value, size_t> counts;
      if (bag.size() != rowpath.num_rows()) {
        return Replay(options, i,
                      Status::Internal("ValueBag size mismatch on " + attr));
      }
      for (size_t vr = 0; vr < bag.size(); ++vr) {
        if (!(bag[vr] == rowpath.at(vr, c))) {
          return Replay(options, i,
                        Status::Internal("ValueBag mismatch on " + attr +
                                         " at view row " +
                                         std::to_string(vr)));
        }
        if (!bag[vr].is_null()) ++counts[bag[vr]];
      }
      if (bound.ValueCounts(attr) != counts) {
        return Replay(options, i,
                      Status::Internal("ValueCounts mismatch on " + attr));
      }
    }
  }
  return Status::Ok();
}

Status FuzzDifferential(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const DatabasePair pair = RandomDatabasePair(rng);

    ContextMatchOptions o;
    const ViewInferenceKind kinds[] = {ViewInferenceKind::kNaive,
                                       ViewInferenceKind::kSrcClass,
                                       ViewInferenceKind::kTgtClass};
    o.inference = kinds[rng.NextBounded(3)];
    o.selection = rng.NextBounded(2) == 0 ? SelectionPolicy::kQualTable
                                          : SelectionPolicy::kMultiTable;
    o.early_disjuncts = rng.NextBounded(2) == 0;
    o.omega = 0.02 + rng.NextDouble() * 0.2;
    o.seed = rng.Next();
    o.threads = 1;

    CSM_RETURN_IF_ERROR(Replay(
        options, i,
        CheckAllOracles(pair.source, pair.target, o, options.thread_counts)));
  }
  return Status::Ok();
}

}  // namespace csm::check
