#include "check/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/differential.h"
#include "check/fingerprint.h"
#include "check/generators.h"
#include "core/match_engine.h"
#include "ml/naive_bayes.h"
#include "relational/csv.h"
#include "relational/table_view.h"
#include "relational/view.h"
#include "text/gram.h"
#include "text/profile.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace csm::check {
namespace {

/// Prefixes an oracle failure with the exact replay coordinates.
Status Replay(const FuzzOptions& options, size_t iteration, Status status) {
  if (status.ok()) return status;
  return Status(status.code(),
                "replay: seed=" + std::to_string(options.seed) +
                    " iteration=" + std::to_string(iteration) + "; " +
                    status.message());
}

// --------------------------------------------------------------------- CSV

/// Writer-compatible quoting, duplicated here so the fuzzer can re-render
/// a table with randomized record terminators (the library writer always
/// emits "\n").
std::string QuoteLikeWriter(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Renders `table` as CSV with a random record terminator ("\n", "\r\n" or
/// a bare "\r") per record; the final record keeps its terminator with
/// probability 1/2 (both are legal).
std::string RenderCsvMixedLineEndings(const Table& table, Rng& rng) {
  const char* kTerminators[] = {"\n", "\r\n", "\r"};
  std::string out;
  auto append_record = [&](const std::vector<std::string>& fields,
                           bool last) {
    std::string record;
    for (size_t c = 0; c < fields.size(); ++c) {
      if (c > 0) record += ',';
      record += QuoteLikeWriter(fields[c]);
    }
    // Match the library writer: a would-be-empty line is written as `""`
    // so it cannot fuse with a preceding bare-"\r" terminator into "\r\n"
    // (or vanish as the trailing newline).
    if (record.empty()) record = "\"\"";
    out += record;
    if (!last || rng.NextBounded(2) == 0) {
      out += kTerminators[rng.NextBounded(3)];
    }
  };
  std::vector<std::string> fields;
  for (size_t c = 0; c < table.schema().num_attributes(); ++c) {
    fields.push_back(table.schema().attribute(c).name);
  }
  append_record(fields, table.num_rows() == 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    fields.clear();
    for (const Value& v : table.row(r)) fields.push_back(v.ToString());
    append_record(fields, r + 1 == table.num_rows());
  }
  return out;
}

Status CompareTables(const Table& expected, const Table& actual,
                     const char* what) {
  const std::string e = FingerprintTable(expected);
  const std::string a = FingerprintTable(actual);
  if (e != a) {
    return Status::Internal(std::string(what) +
                            " round trip diverged:\n--- expected ---\n" + e +
                            "--- actual ---\n" + a);
  }
  return Status::Ok();
}

}  // namespace

Status FuzzCsvRoundTrip(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const Table table = RandomHostileTable("fuzz", rng);

    // Library writer -> library parser.
    StatusOr<Table> parsed = TableFromCsv(table.schema(), TableToCsv(table));
    if (!parsed.ok()) {
      return Replay(options, i,
                    Status::Internal("ParseCsv failed on WriteCsv output: " +
                                     parsed.status().message()));
    }
    CSM_RETURN_IF_ERROR(
        Replay(options, i, CompareTables(table, *parsed, "WriteCsv")));

    // Re-rendered with randomized \n / \r\n / \r record terminators.
    const std::string mixed = RenderCsvMixedLineEndings(table, rng);
    parsed = TableFromCsv(table.schema(), mixed);
    if (!parsed.ok()) {
      return Replay(options, i,
                    Status::Internal("ParseCsv failed on mixed-line-ending "
                                     "rendering: " +
                                     parsed.status().message()));
    }
    CSM_RETURN_IF_ERROR(
        Replay(options, i, CompareTables(table, *parsed, "mixed-line-ending")));
  }
  return Status::Ok();
}

Status FuzzCsvChunkedParse(const FuzzOptions& options) {
  // Chunk sizes chosen to force record splits everywhere: 1 byte puts every
  // record (and every quoted terminator) at a chunk boundary; the larger
  // sizes exercise mid-table splits and the single-chunk degenerate case.
  const size_t kChunkSizes[] = {1, 7, 64, 4096};
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const Table table = RandomHostileTable("fuzz", rng);
    const std::string renderings[] = {TableToCsv(table),
                                      RenderCsvMixedLineEndings(table, rng)};
    for (const std::string& csv : renderings) {
      const StatusOr<Table> serial = TableFromCsv(table.schema(), csv);
      if (!serial.ok()) {
        return Replay(options, i,
                      Status::Internal("serial parser rejected rendering: " +
                                       serial.status().message()));
      }

      // Chunk-scan invariants: spans are contiguous, non-empty, and cover
      // [pos, size) exactly, at an arbitrary target size.
      const size_t target = 1 + rng.NextBounded(csv.size() + 1);
      size_t cursor = 0;
      for (const CsvChunkSpan& span : ScanCsvChunks(csv, 0, target)) {
        if (span.begin != cursor || span.end <= span.begin) {
          return Replay(options, i,
                        Status::Internal(
                            "chunk scan produced a gap or empty span at byte " +
                            std::to_string(cursor) + " (target=" +
                            std::to_string(target) + ")"));
        }
        cursor = span.end;
      }
      if (cursor != csv.size()) {
        return Replay(options, i,
                      Status::Internal("chunk scan covered " +
                                       std::to_string(cursor) + " of " +
                                       std::to_string(csv.size()) + " bytes"));
      }

      for (size_t chunk_bytes : kChunkSizes) {
        CsvIngestOptions ingest;
        ingest.chunk_bytes = chunk_bytes;
        ingest.threads = options.thread_counts.empty()
                             ? 1
                             : options.thread_counts[rng.NextBounded(
                                   options.thread_counts.size())];
        const StatusOr<Table> chunked =
            TableFromCsvParallel(table.schema(), csv, ingest);
        auto where = [&](const std::string& message) {
          return Status::Internal(message + " (chunk_bytes=" +
                                  std::to_string(chunk_bytes) + ", threads=" +
                                  std::to_string(ingest.threads) + ")");
        };
        if (!chunked.ok()) {
          return Replay(options, i,
                        where("chunked parser rejected text the serial "
                              "parser accepted: " +
                              chunked.status().message()));
        }
        CSM_RETURN_IF_ERROR(Replay(
            options, i, CompareTables(*serial, *chunked, "chunked parse")));
        // Value equality is not enough: the merged dictionary must assign
        // the exact codes a serial parse would (downstream fingerprints and
        // dictionary-code scans depend on it).
        for (size_t c = 0; c < table.schema().num_attributes(); ++c) {
          const Column& expected = serial->column(c);
          const Column& actual = chunked->column(c);
          if (expected.type() != ValueType::kString) continue;
          if (actual.codes() != expected.codes()) {
            return Replay(options, i,
                          where("dictionary codes diverged from serial parse "
                                "in column " +
                                table.schema().attribute(c).name));
          }
          if (actual.dictionary().size() != expected.dictionary().size()) {
            return Replay(options, i,
                          where("merged dictionary size diverged in column " +
                                table.schema().attribute(c).name));
          }
          for (uint32_t code = 0; code < expected.dictionary().size();
               ++code) {
            if (actual.dictionary().value(code) !=
                expected.dictionary().value(code)) {
              return Replay(
                  options, i,
                  where("dictionary entry " + std::to_string(code) +
                        " diverged in column " +
                        table.schema().attribute(c).name));
            }
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status FuzzConditionEvaluation(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    HostileTableOptions table_options;
    table_options.min_rows = 1;
    const Table table = RandomHostileTable("fuzz", rng, table_options);
    const Condition condition = RandomCondition(table, rng);
    const View view("v", table.name(), condition);

    // Ground truth: independent per-row evaluation.
    std::vector<size_t> expected_rows;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (condition.Evaluate(table.schema(), table.row(r))) {
        expected_rows.push_back(r);
      }
    }

    if (view.MatchingRows(table) != expected_rows) {
      return Replay(options, i,
                    Status::Internal("MatchingRows != per-row Evaluate for " +
                                     view.ToString()));
    }
    const Table materialized = view.Materialize(table);
    if (materialized.num_rows() != expected_rows.size()) {
      return Replay(
          options, i,
          Status::Internal(
              "materialized row count " +
              std::to_string(materialized.num_rows()) + " != " +
              std::to_string(expected_rows.size()) + " rows satisfying " +
              condition.ToString()));
    }
    for (size_t m = 0; m < expected_rows.size(); ++m) {
      if (!(materialized.row(m) == table.row(expected_rows[m]))) {
        return Replay(options, i,
                      Status::Internal("materialized row " +
                                       std::to_string(m) +
                                       " differs from base row " +
                                       std::to_string(expected_rows[m])));
      }
    }
  }
  return Status::Ok();
}

Status FuzzPipeline(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const DatabasePair pair = RandomDatabasePair(rng);

    ContextMatchOptions o;
    const ViewInferenceKind kinds[] = {ViewInferenceKind::kNaive,
                                       ViewInferenceKind::kSrcClass,
                                       ViewInferenceKind::kTgtClass};
    o.inference = kinds[rng.NextBounded(3)];
    o.selection = rng.NextBounded(2) == 0 ? SelectionPolicy::kQualTable
                                          : SelectionPolicy::kMultiTable;
    o.early_disjuncts = rng.NextBounded(2) == 0;
    o.omega = 0.02 + rng.NextDouble() * 0.2;
    o.tau = 0.4 + rng.NextDouble() * 0.15;
    o.seed = rng.Next();
    o.threads = options.thread_counts.empty()
                    ? 1
                    : options.thread_counts[rng.NextBounded(
                          options.thread_counts.size())];

    MatchEngine engine(o);
    const ContextMatchResult result = engine.Match(pair.source, pair.target);
    auto fail = [&](const std::string& message) {
      return Replay(options, i,
                    Status::Internal(message + " (inference=" +
                                     ViewInferenceKindToString(o.inference) +
                                     ", threads=" +
                                     std::to_string(o.threads) + ")"));
    };
    if (!result.status.ok()) {
      return fail("uncancelled pipeline returned non-OK status " +
                  result.status.ToString());
    }
    if (result.completeness != MatchCompleteness::kComplete) {
      return fail("uncancelled pipeline claims degraded completeness");
    }
    for (const Match& m : result.matches) {
      if (m.confidence < 0.0 || m.confidence > 1.0) {
        return fail("selected match confidence out of [0,1]: " +
                    m.ToString());
      }
    }
    // Selection picks only scored views.
    std::vector<std::string> candidate_keys;
    for (const View& v : result.pool.candidate_views) {
      candidate_keys.push_back(v.base_table() + "\x1d" +
                               v.condition().ToString());
    }
    for (const View& v : result.selected_views) {
      const std::string key =
          v.base_table() + "\x1d" + v.condition().ToString();
      if (std::find(candidate_keys.begin(), candidate_keys.end(), key) ==
          candidate_keys.end()) {
        return fail("selected view was never scored: " + v.ToString());
      }
    }
    // Row-count conservation against the source tables.
    for (const View& v : result.pool.candidate_views) {
      const Table* base = pair.source.FindTable(v.base_table());
      if (base == nullptr) {
        return fail("candidate view over unknown base table " +
                    v.base_table());
      }
      auto it = result.pool.view_row_counts.find(
          v.base_table() + "\x1d" + v.condition().ToString());
      if (it != result.pool.view_row_counts.end() &&
          it->second > base->num_rows()) {
        return fail("view row count exceeds base table rows for " +
                    v.ToString());
      }
    }
    // One match per target attribute under multi-table selection.
    if (o.selection == SelectionPolicy::kMultiTable) {
      std::vector<std::string> targets;
      for (const Match& m : result.matches) {
        const std::string t = m.target.ToString();
        if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
          return fail("multi-table selection emitted target twice: " + t);
        }
        targets.push_back(t);
      }
    }
  }
  return Status::Ok();
}

Status FuzzRowColumnarEquivalence(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    HostileTableOptions table_options;
    table_options.min_rows = 1;
    const Table table = RandomHostileTable("fuzz", rng, table_options);
    const size_t cols = table.schema().num_attributes();

    // (1) Re-insert every row through the boxed AddRow path; the rebuilt
    // columnar store must fingerprint bit-identically.
    Table rebuilt(table.schema());
    rebuilt.Reserve(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) rebuilt.AddRow(table.row(r));
    CSM_RETURN_IF_ERROR(
        Replay(options, i, CompareTables(table, rebuilt, "AddRow rebuild")));

    // (2) Columnar cell hashes against boxed Value::Hash (the fingerprint
    // cache keys depend on this equivalence).
    for (size_t c = 0; c < cols; ++c) {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (table.column(c).CellHash(r) !=
            static_cast<uint64_t>(table.ValueAt(r, c).Hash())) {
          return Replay(options, i,
                        Status::Internal(
                            "CellHash != Value::Hash at row " +
                            std::to_string(r) + " col " + std::to_string(c)));
        }
      }
    }

    // (3) Dictionary-code condition scan against per-row Evaluate.
    const Condition condition = RandomCondition(table, rng);
    PosList expected;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (condition.Evaluate(table.schema(), table.row(r))) {
        expected.push_back(static_cast<RowId>(r));
      }
    }
    if (condition.MatchingPositions(table) != expected) {
      return Replay(options, i,
                    Status::Internal("MatchingPositions != per-row Evaluate "
                                     "for " +
                                     condition.ToString()));
    }

    // (4) Zero-copy view reads and column gather against a row-at-a-time
    // copy of the matching rows.
    Table rowpath(table.schema());
    for (RowId r : expected) rowpath.AddRow(table.row(r));
    const TableView bound(table, expected);
    CSM_RETURN_IF_ERROR(Replay(
        options, i, CompareTables(rowpath, bound.ToTable(), "view gather")));
    for (size_t vr = 0; vr < bound.num_rows(); ++vr) {
      for (size_t c = 0; c < cols; ++c) {
        if (!(bound.ValueAt(vr, c) == rowpath.at(vr, c))) {
          return Replay(options, i,
                        Status::Internal(
                            "TableView::ValueAt != row copy at view row " +
                            std::to_string(vr) + " col " + std::to_string(c)));
        }
      }
    }

    // (5) ValueBag / ValueCounts through the view against boxed
    // recomputation from the copied rows.
    for (size_t c = 0; c < cols; ++c) {
      const std::string& attr = table.schema().attribute(c).name;
      const std::vector<Value> bag = bound.ValueBag(attr);
      std::map<Value, size_t> counts;
      if (bag.size() != rowpath.num_rows()) {
        return Replay(options, i,
                      Status::Internal("ValueBag size mismatch on " + attr));
      }
      for (size_t vr = 0; vr < bag.size(); ++vr) {
        if (!(bag[vr] == rowpath.at(vr, c))) {
          return Replay(options, i,
                        Status::Internal("ValueBag mismatch on " + attr +
                                         " at view row " +
                                         std::to_string(vr)));
        }
        if (!bag[vr].is_null()) ++counts[bag[vr]];
      }
      if (bound.ValueCounts(attr) != counts) {
        return Replay(options, i,
                      Status::Internal("ValueCounts mismatch on " + attr));
      }
    }
  }
  return Status::Ok();
}

namespace {

bool BitEqual(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

/// The pre-kernel map-of-strings multinomial NB, kept verbatim as the
/// differential reference: per-label gram-string counts, per-call log sums.
class ReferenceNaiveBayes {
 public:
  explicit ReferenceNaiveBayes(size_t q, double smoothing = 1.0)
      : q_(q), smoothing_(smoothing) {}

  void Train(const std::string& text, const std::string& label) {
    LabelStats& stats = labels_[label];
    ++stats.example_count;
    ++total_examples_;
    for (const std::string& gram : QGrams(text, q_)) {
      stats.token_counts[gram] += 1.0;
      stats.token_total += 1.0;
      vocabulary_.insert(gram);
    }
  }

  double LogScore(const std::string& text, const std::string& label) const {
    auto it = labels_.find(label);
    if (it == labels_.end() || total_examples_ == 0) {
      return -std::numeric_limits<double>::infinity();
    }
    return Score(it->second, text);
  }

  std::string Classify(const std::string& text) const {
    if (labels_.empty()) return "";
    const std::string* best = nullptr;
    double best_score = -std::numeric_limits<double>::infinity();
    size_t best_frequency = 0;
    for (const auto& [label, stats] : labels_) {
      const double score = Score(stats, text);
      if (score > best_score ||
          (score == best_score && stats.example_count > best_frequency)) {
        best = &label;
        best_score = score;
        best_frequency = stats.example_count;
      }
    }
    return best == nullptr ? "" : *best;
  }

 private:
  struct LabelStats {
    size_t example_count = 0;
    double token_total = 0.0;
    std::map<std::string, double> token_counts;
  };

  double Score(const LabelStats& stats, const std::string& text) const {
    const double num_labels = static_cast<double>(labels_.size());
    const double vocab = static_cast<double>(vocabulary_.size());
    double score = std::log(
        (static_cast<double>(stats.example_count) + smoothing_) /
        (static_cast<double>(total_examples_) + smoothing_ * num_labels));
    const double denom = stats.token_total + smoothing_ * (vocab + 1.0);
    for (const std::string& gram : QGrams(text, q_)) {
      auto it = stats.token_counts.find(gram);
      const double count = it == stats.token_counts.end() ? 0.0 : it->second;
      score += std::log((count + smoothing_) / denom);
    }
    return score;
  }

  size_t q_;
  double smoothing_;
  size_t total_examples_ = 0;
  std::map<std::string, LabelStats> labels_;
  std::set<std::string> vocabulary_;
};

}  // namespace

Status FuzzTokenKernelEquivalence(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    HostileTableOptions table_options;
    table_options.min_rows = 1;
    const Table table = RandomHostileTable("fuzz", rng, table_options);
    const size_t cols = table.schema().num_attributes();
    // Packed gram length for the profile checks; the classifier check
    // sometimes uses q = 5 to exercise the interner fallback.
    const size_t q = 1 + rng.NextBounded(kMaxPackedGramQ);
    const size_t nb_q = rng.NextBounded(4) == 0 ? kMaxPackedGramQ + 1 : q;

    std::vector<std::vector<std::string>> texts(cols);
    for (size_t c = 0; c < cols; ++c) {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const Value v = table.ValueAt(r, c);
        if (!v.is_null()) texts[c].push_back(v.ToString());
      }
    }

    // (1) Packed ids match the string grams one-to-one and round-trip.
    std::string scratch;
    std::vector<GramId> ids;
    for (const auto& col_texts : texts) {
      for (const std::string& text : col_texts) {
        const std::vector<std::string> grams = QGrams(text, q);
        ids.clear();
        AppendPackedQGrams(text, q, &scratch, &ids);
        if (ids.size() != grams.size()) {
          return Replay(options, i,
                        Status::Internal("packed gram count diverged on \"" +
                                         text + "\" q=" + std::to_string(q)));
        }
        for (size_t g = 0; g < grams.size(); ++g) {
          if (ids[g] != PackGram(grams[g]) ||
              UnpackGram(ids[g], q) != grams[g]) {
            return Replay(options, i,
                          Status::Internal("gram pack/unpack diverged on \"" +
                                           grams[g] + "\""));
          }
        }
      }
    }

    // (2) Flat profiles against map profiles: aggregates and every pairwise
    // similarity measure, bit for bit.
    std::vector<TokenProfile> ref_grams(cols), ref_words(cols);
    std::vector<GramProfile> kernel_grams(cols);
    std::vector<WordProfile> kernel_words(cols);
    GramProfileBuilder gram_builder;
    WordProfileBuilder word_builder;
    for (size_t c = 0; c < cols; ++c) {
      for (const std::string& text : texts[c]) {
        ref_grams[c].AddAll(QGrams(text, q));
        ref_words[c].AddAll(WordTokens(text));
        gram_builder.AddText(text, q);
        word_builder.AddText(text);
      }
      kernel_grams[c] = gram_builder.Build();
      kernel_words[c] = word_builder.Build();
      if (kernel_grams[c].num_distinct() != ref_grams[c].num_distinct() ||
          !BitEqual(kernel_grams[c].total(), ref_grams[c].total()) ||
          !BitEqual(kernel_grams[c].Norm(), ref_grams[c].Norm()) ||
          kernel_words[c].num_distinct() != ref_words[c].num_distinct() ||
          !BitEqual(kernel_words[c].total(), ref_words[c].total()) ||
          !BitEqual(kernel_words[c].Norm(), ref_words[c].Norm())) {
        return Replay(options, i,
                      Status::Internal("profile aggregate diverged on col " +
                                       std::to_string(c)));
      }
    }
    TfIdfCorpus ref_corpus, kernel_corpus;
    for (size_t c = 0; c < cols; ++c) {
      ref_corpus.AddDocument(ref_words[c]);
      kernel_corpus.AddDocument(kernel_words[c]);
    }
    for (size_t a = 0; a < cols; ++a) {
      for (size_t b = a; b < cols; ++b) {
        const bool ok =
            BitEqual(CosineSimilarity(kernel_grams[a], kernel_grams[b]),
                     CosineSimilarity(ref_grams[a], ref_grams[b])) &&
            BitEqual(JaccardSimilarity(kernel_grams[a], kernel_grams[b]),
                     JaccardSimilarity(ref_grams[a], ref_grams[b])) &&
            BitEqual(DiceSimilarity(kernel_grams[a], kernel_grams[b]),
                     DiceSimilarity(ref_grams[a], ref_grams[b])) &&
            BitEqual(OverlapSimilarity(kernel_grams[a], kernel_grams[b]),
                     OverlapSimilarity(ref_grams[a], ref_grams[b])) &&
            BitEqual(CosineSimilarity(kernel_words[a], kernel_words[b]),
                     CosineSimilarity(ref_words[a], ref_words[b])) &&
            BitEqual(DiceSimilarity(kernel_words[a], kernel_words[b]),
                     DiceSimilarity(ref_words[a], ref_words[b])) &&
            BitEqual(kernel_corpus.WeightedCosine(kernel_words[a],
                                                  kernel_words[b]),
                     ref_corpus.WeightedCosine(ref_words[a], ref_words[b]));
        if (!ok) {
          return Replay(options, i,
                        Status::Internal("similarity diverged on cols " +
                                         std::to_string(a) + "/" +
                                         std::to_string(b)));
        }
      }
    }

    // (3) Naive Bayes: boxed and coded kernel paths against the reference,
    // labels = column names.  The coded classifier trains through the
    // (dictionary, code) memo; classification must still be bit-identical.
    ReferenceNaiveBayes reference(nb_q);
    NaiveBayesClassifier boxed(nb_q);
    NaiveBayesClassifier coded(nb_q);
    for (size_t c = 0; c < cols; ++c) {
      const std::string& label = table.schema().attribute(c).name;
      const Column& column = table.column(c);
      if (column.type() == ValueType::kString) {
        const StringDictionary& dict = column.dictionary();
        for (uint32_t code : column.codes()) {
          if (code == kNullCode) continue;
          coded.TrainCoded(dict, code, label);
        }
      } else {
        for (size_t r = 0; r < table.num_rows(); ++r) {
          const Value v = table.ValueAt(r, c);
          if (!v.is_null()) coded.Train(v, label);
        }
      }
      for (const std::string& text : texts[c]) {
        reference.Train(text, label);
        boxed.Train(Value::String(text), label);
      }
    }
    for (size_t c = 0; c < cols; ++c) {
      const Column& column = table.column(c);
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const Value v = table.ValueAt(r, c);
        if (v.is_null()) continue;
        const std::string text = v.ToString();
        const std::string expected = reference.Classify(text);
        const std::string from_boxed = boxed.Classify(Value::String(text));
        // ClassifyCoded runs twice so the second call exercises the memo.
        std::string from_coded;
        if (column.type() == ValueType::kString) {
          const StringDictionary& dict = column.dictionary();
          const uint32_t code = column.codes()[r];
          from_coded = coded.ClassifyCoded(dict, code);
          if (coded.ClassifyCoded(dict, code) != from_coded) {
            return Replay(options, i,
                          Status::Internal("classify memo diverged on \"" +
                                           text + "\""));
          }
        } else {
          from_coded = coded.Classify(v);
        }
        if (from_boxed != expected || from_coded != expected) {
          return Replay(
              options, i,
              Status::Internal("NB classification diverged on \"" + text +
                               "\": reference=" + expected +
                               " boxed=" + from_boxed +
                               " coded=" + from_coded));
        }
        for (size_t lc = 0; lc < cols; ++lc) {
          const std::string& label = table.schema().attribute(lc).name;
          if (!BitEqual(boxed.LogScore(Value::String(text), label),
                        reference.LogScore(text, label))) {
            return Replay(options, i,
                          Status::Internal("NB log score diverged on \"" +
                                           text + "\" label " + label));
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status FuzzDifferential(const FuzzOptions& options) {
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng rng(IterationSeed(options.seed, i));
    const DatabasePair pair = RandomDatabasePair(rng);

    ContextMatchOptions o;
    const ViewInferenceKind kinds[] = {ViewInferenceKind::kNaive,
                                       ViewInferenceKind::kSrcClass,
                                       ViewInferenceKind::kTgtClass};
    o.inference = kinds[rng.NextBounded(3)];
    o.selection = rng.NextBounded(2) == 0 ? SelectionPolicy::kQualTable
                                          : SelectionPolicy::kMultiTable;
    o.early_disjuncts = rng.NextBounded(2) == 0;
    o.omega = 0.02 + rng.NextDouble() * 0.2;
    o.seed = rng.Next();
    o.threads = 1;

    CSM_RETURN_IF_ERROR(Replay(
        options, i,
        CheckAllOracles(pair.source, pair.target, o, options.thread_counts)));
  }
  return Status::Ok();
}

}  // namespace csm::check
