// Golden regression corpus: fixed dataset/options combinations whose
// serialized ContextMatchResult (check/fingerprint.h) is checked into
// tests/golden/.  The runner (tests/golden_runner.cc) recomputes every
// case and diffs it against the checked-in expectation; any divergence —
// an algorithm change, a broken refactor, a nondeterminism leak — fails
// the build.  Intentional output changes are recorded with
//   golden_runner <golden_dir> --update
// and reviewed as part of the diff that caused them.

#ifndef CSM_CHECK_GOLDEN_H_
#define CSM_CHECK_GOLDEN_H_

#include <ostream>
#include <string>
#include <vector>

namespace csm::check {

/// Names of every case in the corpus, in execution order.
std::vector<std::string> GoldenCaseNames();

/// Recomputes one case's fingerprint; CHECK-fails on an unknown name.
std::string RunGoldenCase(const std::string& name);

/// Runs the whole corpus against `<golden_dir>/<case>.golden`.  With
/// `update`, rewrites the files instead of diffing.  Logs per-case
/// verdicts to `out`; returns the number of failing cases (0 for update).
int RunGoldenCorpus(const std::string& golden_dir, bool update,
                    std::ostream& out);

}  // namespace csm::check

#endif  // CSM_CHECK_GOLDEN_H_
