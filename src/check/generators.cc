#include "check/generators.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace csm::check {
namespace {

const std::vector<std::string>& HostileWords() {
  static const std::vector<std::string> kWords = {
      "alpha", "beta",  "gamma", "delta", "omega", "kappa",
      "sigma", "theta", "vega",  "zeta",  "nu",    "xi"};
  return kWords;
}

const std::vector<std::string>& Utf8Runs() {
  static const std::vector<std::string> kRuns = {
      "h\xc3\xa9llo",                       // héllo
      "na\xc3\xafve",                       // naïve
      "\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e",  // 日本語
      "\xce\xa9mega",                       // Ωmega
      "\xf0\x9f\x99\x82ok",                 // 🙂ok
  };
  return kRuns;
}

std::string PickWord(Rng& rng) {
  const auto& words = HostileWords();
  return words[rng.NextBounded(words.size())];
}

}  // namespace

uint64_t IterationSeed(uint64_t seed, uint64_t iteration) {
  // splitmix64 step over a fold of (seed, iteration); the +1 keeps
  // iteration 0 from collapsing onto the bare seed.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (iteration + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string RandomHostileCell(Rng& rng) {
  switch (rng.NextBounded(10)) {
    case 0:
      return PickWord(rng);
    case 1:  // embedded comma
      return PickWord(rng) + "," + PickWord(rng);
    case 2:  // embedded quotes, including doubled ones
      return "\"" + PickWord(rng) + "\"\"" + PickWord(rng);
    case 3:  // embedded LF
      return PickWord(rng) + "\n" + PickWord(rng);
    case 4:  // embedded CRLF
      return PickWord(rng) + "\r\n" + PickWord(rng);
    case 5:  // embedded bare CR (classic Mac line ending inside a field)
      return PickWord(rng) + "\r" + PickWord(rng);
    case 6: {  // multi-byte UTF-8
      const auto& runs = Utf8Runs();
      return runs[rng.NextBounded(runs.size())];
    }
    case 7:  // leading/trailing blanks survive string parsing
      return " " + PickWord(rng) + "  ";
    case 8:  // every special character at once
      return PickWord(rng) + ",\"\r\n," + PickWord(rng);
    default:  // two words (plain, with a space)
      return PickWord(rng) + " " + PickWord(rng);
  }
}

Table RandomHostileTable(const std::string& name, Rng& rng,
                         const HostileTableOptions& options) {
  CSM_CHECK_GE(options.max_attributes, options.min_attributes);
  CSM_CHECK_GE(options.max_rows, options.min_rows);
  const size_t num_attributes = static_cast<size_t>(
      rng.NextInt(options.min_attributes, options.max_attributes));
  const size_t num_rows =
      static_cast<size_t>(rng.NextInt(options.min_rows, options.max_rows));

  TableSchema schema(name);
  std::vector<ValueType> types;
  for (size_t c = 0; c < num_attributes; ++c) {
    ValueType type = ValueType::kString;
    switch (rng.NextBounded(4)) {
      case 0:
        type = ValueType::kInt;
        break;
      case 1:
        type = ValueType::kReal;
        break;
      default:
        type = ValueType::kString;  // bias toward the hostile cells
        break;
    }
    types.push_back(type);
    schema.AddAttribute("a" + std::to_string(c), type);
  }

  Table out(schema);
  for (size_t r = 0; r < num_rows; ++r) {
    Row row;
    row.reserve(num_attributes);
    for (size_t c = 0; c < num_attributes; ++c) {
      if (rng.NextDouble() < options.null_probability) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt:
          row.push_back(Value::Int(rng.NextInt(-100000, 100000)));
          break;
        case ValueType::kReal:
          // Exact binary fractions (k/8) within +/-1000: at most 6
          // significant digits, so the "%g" rendering round trips
          // losslessly through text.
          row.push_back(Value::Real(rng.NextInt(-8000, 8000) / 8.0));
          break;
        default:
          row.push_back(Value::String(RandomHostileCell(rng)));
          break;
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Condition RandomCondition(const Table& table, Rng& rng) {
  Condition condition;
  const size_t num_attributes = table.schema().num_attributes();
  if (num_attributes == 0) return condition;
  const size_t max_clauses = std::min<size_t>(2, num_attributes);
  const size_t num_clauses =
      static_cast<size_t>(rng.NextBounded(max_clauses + 1));
  if (num_clauses == 0) return condition;  // "true"

  std::vector<size_t> columns(num_attributes);
  for (size_t c = 0; c < num_attributes; ++c) columns[c] = c;
  rng.Shuffle(columns);
  columns.resize(num_clauses);

  for (size_t c : columns) {
    const auto& attr = table.schema().attribute(c);
    // Distinct non-null values present in the column.
    std::vector<Value> present;
    for (const Row& row : table.rows()) {
      if (row[c].is_null()) continue;
      if (std::find(present.begin(), present.end(), row[c]) == present.end()) {
        present.push_back(row[c]);
      }
    }
    std::vector<Value> values;
    const size_t num_values = static_cast<size_t>(rng.NextInt(1, 3));
    for (size_t i = 0; i < num_values; ++i) {
      const bool use_present = !present.empty() && rng.NextDouble() < 0.7;
      if (use_present) {
        values.push_back(present[rng.NextBounded(present.size())]);
        continue;
      }
      // A value certainly absent from the column (type-consistent).
      switch (attr.type) {
        case ValueType::kInt:
          values.push_back(Value::Int(1000000 + rng.NextInt(0, 1000)));
          break;
        case ValueType::kReal:
          values.push_back(
              Value::Real(1000000.5 + static_cast<double>(rng.NextInt(0, 1000))));
          break;
        default:
          values.push_back(Value::String(
              "zz_absent_" + std::to_string(rng.NextBounded(1000))));
          break;
      }
    }
    condition.AddClause(attr.name, std::move(values));
  }
  return condition;
}

namespace {

/// A value domain shared by source and target columns.  String domains are
/// sliced by the row's category label so classifiers have real signal to
/// find (the same trick the retail generator plays with book/CD titles).
struct Domain {
  std::string attribute;
  ValueType type;
};

const std::vector<Domain>& ValueDomains() {
  static const std::vector<Domain> kDomains = {
      {"name", ValueType::kString},  {"title", ValueType::kString},
      {"city", ValueType::kString},  {"artist", ValueType::kString},
      {"price", ValueType::kReal},   {"year", ValueType::kInt},
      {"qty", ValueType::kInt},      {"rating", ValueType::kReal},
  };
  return kDomains;
}

const std::vector<std::string>& DomainWords() {
  static const std::vector<std::string> kWords = {
      "amber", "birch",  "cedar",  "dune",   "ember", "fjord",
      "grove", "harbor", "inlet",  "juniper", "knoll", "lagoon",
      "mesa",  "nook",   "orchard", "prairie"};
  return kWords;
}

Value DomainCell(const Domain& domain, size_t label, size_t cardinality,
                 Rng& rng) {
  switch (domain.type) {
    case ValueType::kInt:
      // Category-shifted band with noise.
      if (rng.NextDouble() < 0.6) {
        return Value::Int(static_cast<int64_t>(label) * 50 +
                          rng.NextInt(0, 40));
      }
      return Value::Int(rng.NextInt(0, 200));
    case ValueType::kReal:
      if (rng.NextDouble() < 0.6) {
        return Value::Real(static_cast<double>(label) * 25.0 +
                           static_cast<double>(rng.NextInt(0, 80)) / 4.0);
      }
      return Value::Real(static_cast<double>(rng.NextInt(0, 800)) / 4.0);
    default: {
      const auto& words = DomainWords();
      const size_t slice = words.size() / std::max<size_t>(cardinality, 1);
      if (slice > 0 && rng.NextDouble() < 0.7) {
        // Word from this category's slice of the pool.
        const size_t base = (label % cardinality) * slice;
        return Value::String(words[base + rng.NextBounded(slice)]);
      }
      return Value::String(words[rng.NextBounded(words.size())]);
    }
  }
}

Table RandomPairTable(const std::string& name,
                      const std::string& categorical_attribute,
                      size_t cardinality, const std::vector<Domain>& domains,
                      size_t num_rows, Rng& rng) {
  TableSchema schema(name);
  schema.AddAttribute(categorical_attribute, ValueType::kString);
  for (const Domain& domain : domains) {
    schema.AddAttribute(domain.attribute, domain.type);
  }
  Table out(schema);
  for (size_t r = 0; r < num_rows; ++r) {
    const size_t label = rng.NextBounded(cardinality);
    Row row;
    row.reserve(domains.size() + 1);
    row.push_back(Value::String("L" + std::to_string(label)));
    for (const Domain& domain : domains) {
      row.push_back(DomainCell(domain, label, cardinality, rng));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace

DatabasePair RandomDatabasePair(Rng& rng, const DatabasePairOptions& options) {
  // The pair's shared universe: one categorical attribute name, a label
  // cardinality, and 3-5 active value domains both sides sample from.
  static const std::vector<std::string> kCategoricalNames = {
      "type", "genre", "grade", "status", "category"};
  const std::string categorical =
      kCategoricalNames[rng.NextBounded(kCategoricalNames.size())];
  const size_t cardinality = static_cast<size_t>(rng.NextInt(2, 4));

  std::vector<Domain> universe = ValueDomains();
  rng.Shuffle(universe);
  universe.resize(static_cast<size_t>(rng.NextInt(3, 5)));

  auto sample_domains = [&](size_t count) {
    std::vector<Domain> out = universe;
    rng.Shuffle(out);
    out.resize(std::min(count, out.size()));
    return out;
  };
  auto num_rows = [&] {
    return static_cast<size_t>(
        rng.NextInt(options.min_rows, options.max_rows));
  };

  DatabasePair pair;
  pair.source = Database("fuzz_src");
  pair.target = Database("fuzz_tgt");
  const size_t source_tables = static_cast<size_t>(
      rng.NextInt(options.min_source_tables, options.max_source_tables));
  const size_t target_tables = static_cast<size_t>(
      rng.NextInt(options.min_target_tables, options.max_target_tables));
  for (size_t t = 0; t < source_tables; ++t) {
    pair.source.AddTable(RandomPairTable(
        "s" + std::to_string(t), categorical, cardinality,
        sample_domains(static_cast<size_t>(rng.NextInt(2, 4))), num_rows(),
        rng));
  }
  for (size_t t = 0; t < target_tables; ++t) {
    pair.target.AddTable(RandomPairTable(
        "t" + std::to_string(t), categorical, cardinality,
        sample_domains(static_cast<size_t>(rng.NextInt(2, 4))), num_rows(),
        rng));
  }
  return pair;
}

}  // namespace csm::check
