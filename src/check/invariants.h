// Internal-consistency invariants, compiled in under -DCSM_CHECKS=ON.
//
// CSM_INVARIANT* mirror the always-on CSM_CHECK* macros of common/logging.h
// but cost nothing in a default build: the condition is parsed, constant-
// folded against `false` and dead-stripped.  A build configured with
//   cmake -B build-checks -S . -DCSM_CHECKS=ON
// turns each one into a fatal CHECK.  They guard pipeline contracts that
// are too expensive (or too paranoid) to verify on every production call —
// ContextMatch phase pre/post-conditions, row-count conservation through
// view materialization, selection's one-match-per-target contract — and
// back the fuzzers of src/check/fuzz.h, which CI runs under CSM_CHECKS=ON +
// ASan so a violated invariant aborts the offending iteration loudly.
//
// Invariant *setup* that is itself expensive (building an index to check
// against, re-evaluating a condition per row) should be gated on the
// constant csm::check::kInvariantsEnabled:
//
//   if constexpr (csm::check::kInvariantsEnabled) {
//     std::set<AttributeRef> seen;
//     for (const Match& m : result.matches)
//       CSM_INVARIANT(seen.insert(m.target).second) << m.ToString();
//   }
//
// This header is deliberately header-only with no dependency beyond
// common/logging.h, so core libraries can plant invariants without linking
// csm_check (which itself links core).

#ifndef CSM_CHECK_INVARIANTS_H_
#define CSM_CHECK_INVARIANTS_H_

#include "common/logging.h"

#if defined(CSM_CHECKS)
#define CSM_INVARIANTS_ENABLED 1
#else
#define CSM_INVARIANTS_ENABLED 0
#endif

namespace csm::check {

/// True in builds configured with -DCSM_CHECKS=ON.
inline constexpr bool kInvariantsEnabled = CSM_INVARIANTS_ENABLED == 1;

}  // namespace csm::check

#define CSM_INVARIANT(condition)                                         \
  if (CSM_INVARIANTS_ENABLED && !(condition))                            \
  ::csm::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)  \
      .stream()

#define CSM_INVARIANT_EQ(a, b) \
  CSM_INVARIANT((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_INVARIANT_NE(a, b) \
  CSM_INVARIANT((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_INVARIANT_LT(a, b) \
  CSM_INVARIANT((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_INVARIANT_LE(a, b) \
  CSM_INVARIANT((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_INVARIANT_GT(a, b) \
  CSM_INVARIANT((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CSM_INVARIANT_GE(a, b) \
  CSM_INVARIANT((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // CSM_CHECK_INVARIANTS_H_
