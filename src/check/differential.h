// Differential correctness oracles for the ContextMatch pipeline.
//
// Each oracle runs the pipeline under two configurations that the design
// guarantees are observationally equivalent (DESIGN.md "Threading model &
// determinism", "Failure model, deadlines & degradation") and returns a
// non-OK Status describing the first divergence:
//
//   * CheckThreadInvariance      serial vs. thread pool (threads 1/2/4)
//   * CheckColdVsWarmCache       first engine call vs. session-cache hits
//   * CheckEngineVsFreeFunction  MatchEngine::Match vs. csm::ContextMatch
//   * CheckCancelledPrefix       a run cancelled at a fixed logical fault
//                                point vs. the same prefix of the full run
//
// Equivalence means fingerprint equality (check/fingerprint.h): selected
// matches, selected views and the entire scored pool, bit for bit.  The
// oracles are deterministic — same inputs, same verdict — so a failure
// reported by the fuzz harness replays exactly from its seed.

#ifndef CSM_CHECK_DIFFERENTIAL_H_
#define CSM_CHECK_DIFFERENTIAL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/context_match.h"
#include "relational/table.h"

namespace csm::check {

/// Thread counts every oracle sweep covers by default.
inline const std::vector<size_t> kDefaultThreadCounts = {1, 2, 4};

/// Runs the pipeline at options.threads = 1 and at each count in
/// `thread_counts`; fails unless every fingerprint equals the serial one.
Status CheckThreadInvariance(const Database& source, const Database& target,
                             const ContextMatchOptions& options,
                             const std::vector<size_t>& thread_counts =
                                 kDefaultThreadCounts);

/// Runs one engine three times on the same pair; fails unless the warm
/// (cache-hit) runs reproduce the cold run bit for bit, and unless the
/// session cache actually reported hits.
Status CheckColdVsWarmCache(const Database& source, const Database& target,
                            const ContextMatchOptions& options);

/// Compares MatchEngine::Match against the free function ContextMatch.
Status CheckEngineVsFreeFunction(const Database& source,
                                 const Database& target,
                                 const ContextMatchOptions& options);

/// Cancels a run with a fault injected at scoring-candidate index
/// `fault_index` (clamped to the full run's candidate count) and checks the
/// degradation contract at every thread count: the degraded pool must be a
/// prefix of the full run's pool (identical base matches, candidate views
/// and view matches up to the cut) and bit-identical across thread counts.
/// Returns OK without checking when the full run scores < 2 candidate
/// views (nothing to cut).
Status CheckCancelledPrefix(const Database& source, const Database& target,
                            const ContextMatchOptions& options,
                            size_t fault_index,
                            const std::vector<size_t>& thread_counts =
                                kDefaultThreadCounts);

/// Runs every oracle above on one input (fault index = half the full run's
/// candidate count); first failure wins.
Status CheckAllOracles(const Database& source, const Database& target,
                       const ContextMatchOptions& options,
                       const std::vector<size_t>& thread_counts =
                           kDefaultThreadCounts);

}  // namespace csm::check

#endif  // CSM_CHECK_DIFFERENTIAL_H_
