#include "service/match_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace csm {

MatchClient::MatchClient(MatchService& service, MatchClientOptions options)
    : service_(service),
      options_(std::move(options)),
      budget_(options_.retry_budget_capacity, options_.retry_budget_refill),
      breaker_(options_.breaker),
      rng_(options_.seed) {}

void MatchClient::SleepMs(double ms) {
  if (ms <= 0.0) return;
  if (options_.sleep_fn) {
    options_.sleep_fn(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

MatchResponse MatchClient::Attempt(const MatchRequest& request) {
  SubmitHandle first = service_.Submit(request);
  if (options_.hedge_delay_ms <= 0) {
    MatchResponse response = first.future.get();
    response.deduplicated = first.deduplicated;
    return response;
  }
  // Hedged: give the original hedge_delay_ms, then race it against a
  // duplicate submission.  Server-side dedup makes the duplicate attach to
  // the original's run when that run is still in flight, so the hedge only
  // pays off when the original was answered terminally (shed, expired) or
  // already finished.
  if (first.future.wait_for(std::chrono::milliseconds(
          options_.hedge_delay_ms)) == std::future_status::ready) {
    MatchResponse response = first.future.get();
    response.deduplicated = first.deduplicated;
    return response;
  }
  SubmitHandle hedge = service_.Submit(request);
  hedges_.fetch_add(1);
  for (;;) {
    if (first.future.wait_for(std::chrono::milliseconds(1)) ==
        std::future_status::ready) {
      MatchResponse response = first.future.get();
      response.deduplicated = first.deduplicated;
      return response;
    }
    if (hedge.future.wait_for(std::chrono::milliseconds(1)) ==
        std::future_status::ready) {
      hedge_wins_.fetch_add(1);
      MatchResponse response = hedge.future.get();
      response.deduplicated = hedge.deduplicated;
      return response;
    }
  }
}

MatchResponse MatchClient::Call(const MatchRequest& request) {
  const int max_attempts = std::max(options_.retry.max_attempts, 1);
  double backoff_ms = 0.0;
  MatchResponse response;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (!breaker_.Allow()) {
      breaker_rejections_.fetch_add(1);
      response = MatchResponse();
      response.status =
          Status::Unavailable("client circuit open; not submitting");
      response.completeness = MatchCompleteness::kBaselineOnly;
      return response;
    }
    response = Attempt(request);
    if (response.status.ok()) {
      breaker_.RecordSuccess();
      if (attempt == 0) budget_.RecordSuccess();
      return response;
    }
    breaker_.RecordFailure(response.status.code());
    if (!IsRetryableStatus(response.status.code())) return response;
    if (attempt + 1 >= max_attempts) return response;
    if (!budget_.TrySpend()) {
      budget_exhausted_.fetch_add(1);
      return response;
    }
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      backoff_ms = options_.retry.NextBackoffMs(backoff_ms, rng_);
    }
    retries_.fetch_add(1);
    SleepMs(backoff_ms);
  }
  return response;
}

}  // namespace csm
