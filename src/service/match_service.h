// MatchService: matching-as-a-service over one shared MatchEngine.
//
// The engine is deliberately single-caller (one Match at a time; see
// core/match_engine.h), which is the right shape for a library but not for
// a daemon fielding concurrent clients.  MatchService puts the missing
// layer in front: a bounded admission queue feeding ONE dispatcher thread
// that owns the engine.  Parallelism stays where it already works — inside
// the engine's thread pool — while the service enforces the policies a
// shared deployment needs:
//
//   * Admission control: the queue is bounded (ServiceOptions::max_queue);
//     a Submit that finds it full is rejected immediately with
//     kResourceExhausted instead of queueing unboundedly.
//   * Per-tenant quotas: each tenant (MatchRequest::tenant) gets a cap on
//     in-flight requests and a token-bucket rate limit; breaching either
//     rejects with kResourceExhausted before any work happens.
//   * In-flight deduplication: requests with equal (source fingerprint,
//     target fingerprint, mode, stages, deadline) attach to the already
//     queued/running twin and receive the identical MatchResponse —
//     bit-equal results for every waiter, one engine run.
//   * Deadlines cover queue time: MatchRequest::deadline_ms starts a
//     CancellationToken at admission.  A request whose budget expires while
//     queued is answered kDeadlineExceeded/kBaselineOnly without running;
//     one that expires mid-run degrades per the PR 3 per-phase contracts —
//     degradation IS the overload story, not a special case.
//
// Results are delivered through shared_futures, so Submit never blocks on
// matching work and any number of threads can wait on one response.  All
// service and engine metrics accumulate in metrics() ("service.*" counters,
// queue/run latency histograms with p50/p95/p99) — bench_service_load
// builds its report from exactly this registry.
//
// Thread safety: Submit / Call / Stop / queue_depth are safe from any
// thread.  engine() is exposed for setup and post-Stop inspection only.

#ifndef CSM_SERVICE_MATCH_SERVICE_H_
#define CSM_SERVICE_MATCH_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/match_engine.h"
#include "core/match_request.h"
#include "core/session_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace csm {

/// Per-tenant admission limits.  Zero means "unlimited" for every field.
struct TenantQuota {
  /// Max requests admitted but not yet answered (queued + running).
  size_t max_in_flight = 0;
  /// Token-bucket refill rate; each admitted request costs one token.
  /// Deduplicated attaches still pay (rate limits count requests, dedup
  /// saves work, not quota).
  double requests_per_second = 0.0;
  /// Bucket capacity; 0 defaults to max(1, requests_per_second).
  double burst = 0.0;
};

struct ServiceOptions {
  /// Engine configuration (threads, tau, deadline_ms, ...).
  ContextMatchOptions engine;
  /// Admission queue bound; a full queue rejects new work.
  size_t max_queue = 64;
  /// Quota for tenants absent from `tenant_quotas` (default: unlimited).
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Optional cold session tier, forwarded to the engine.  Must outlive
  /// the service.
  SessionColdStore* cold_store = nullptr;
  /// Optional tracer, forwarded to the engine.  Must outlive the service.
  obs::Tracer* tracer = nullptr;
  /// Test hook: when set, the dispatcher calls this after popping each
  /// ticket, outside all locks, before the expiry check and engine run.  A
  /// blocking gate lets tests hold the dispatcher still while they fill the
  /// queue to an exact depth.  Never set in production.
  std::function<void()> test_dispatch_gate;
};

/// What Submit hands back: the (possibly shared) response future, plus
/// whether this submission attached to an identical in-flight request
/// instead of enqueueing a run of its own.
struct SubmitHandle {
  std::shared_future<MatchResponse> future;
  bool deduplicated = false;
};

class MatchService {
 public:
  explicit MatchService(ServiceOptions options);
  /// Stops the service (see Stop) before destruction.
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Admission: applies, in order, stopped-check, tenant rate limit,
  /// deduplication, tenant in-flight cap, queue bound.  Rejections return
  /// an already-resolved future (kUnavailable when stopped,
  /// kResourceExhausted otherwise) — Submit itself never blocks on
  /// matching work and never throws.
  SubmitHandle Submit(MatchRequest request);

  /// Submit + wait.  The returned response carries queue/run timings from
  /// the run that served it and `deduplicated` from this submission.
  MatchResponse Call(MatchRequest request);

  /// Stops admission, lets the in-flight run finish, answers every still
  /// queued request with kUnavailable, and joins the dispatcher.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Requests admitted and currently waiting for the dispatcher.
  size_t queue_depth() const;

  /// The service-wide registry: "service.*" counters and latency
  /// histograms plus everything the engine reports.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Setup / post-Stop inspection only: the engine runs on the dispatcher
  /// thread and is not synchronized against concurrent use.
  MatchEngine& engine() { return engine_; }

 private:
  /// One admitted request: request + delivery promise + the token that
  /// carries its deadline from admission through the run.
  struct Ticket {
    MatchRequest request;
    uint64_t dedup_key = 0;
    std::promise<MatchResponse> promise;
    std::shared_future<MatchResponse> future;
    CancellationToken cancel;
    std::chrono::steady_clock::time_point admitted;
  };

  struct TenantState {
    size_t in_flight = 0;
    double tokens = 0.0;
    bool bucket_started = false;
    std::chrono::steady_clock::time_point last_refill;
  };

  const TenantQuota& QuotaFor(const std::string& tenant) const;
  static SubmitHandle RejectedHandle(Status status);
  void DispatchLoop();
  /// Releases the ticket's dedup-map entry and tenant slot, then fulfills
  /// its promise.  Called by the dispatcher only.
  void Deliver(const std::shared_ptr<Ticket>& ticket, MatchResponse response);

  ServiceOptions options_;
  MatchEngine engine_;
  obs::MetricsRegistry metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Ticket>> queue_;
  /// Dedup index over queued + running tickets.
  std::map<uint64_t, std::shared_ptr<Ticket>> in_flight_;
  std::map<std::string, TenantState> tenants_;
  bool stopped_ = false;

  std::thread dispatcher_;
};

}  // namespace csm

#endif  // CSM_SERVICE_MATCH_SERVICE_H_
