// MatchService: matching-as-a-service over one shared MatchEngine.
//
// The engine is deliberately single-caller (one Match at a time; see
// core/match_engine.h), which is the right shape for a library but not for
// a daemon fielding concurrent clients.  MatchService puts the missing
// layer in front: a bounded admission queue feeding ONE dispatcher thread
// that owns the engine.  Parallelism stays where it already works — inside
// the engine's thread pool — while the service enforces the policies a
// shared deployment needs:
//
//   * Admission control: the queue is bounded (ServiceOptions::max_queue);
//     a Submit that finds it full is rejected immediately with
//     kResourceExhausted instead of queueing unboundedly.
//   * Per-tenant quotas: each tenant (MatchRequest::tenant) gets a cap on
//     in-flight requests and a token-bucket rate limit; breaching either
//     rejects with kResourceExhausted before any work happens.
//   * In-flight deduplication: requests with equal (source fingerprint,
//     target fingerprint, mode, stages, deadline) attach to the already
//     queued/running twin and receive the identical MatchResponse —
//     bit-equal results for every waiter, one engine run.
//   * Deadlines cover queue time: MatchRequest::deadline_ms starts a
//     CancellationToken at admission.  A request whose budget expires while
//     queued is answered kDeadlineExceeded/kBaselineOnly without running;
//     one that expires mid-run degrades per the PR 3 per-phase contracts —
//     degradation IS the overload story, not a special case.
//
// On top of admission control the service self-heals (see DESIGN.md
// "Resilience & self-healing"; every knob below defaults OFF so the plain
// daemon behaves exactly as before):
//
//   * Watchdog (watchdog_interval_ms): a thread that checks dispatcher
//     heartbeats every interval.  A dispatch stalled pre-run longer than
//     watchdog_stall_ms is cancelled via the ticket's CancellationToken and
//     answered kUnavailable; a run that exceeds its request deadline by
//     watchdog_grace is force-cancelled (kDeadline) even if the engine
//     never polls.  No request can hang forever.
//   * Adaptive load shedding (queue_target_ms): CoDel-style — a popped
//     request that aged past the target while the queue is still congested
//     (>= shed_min_depth behind it) is shed with kResourceExhausted before
//     it wastes engine time.  Shed requests refund their rate token.
//   * Brownout (brownout_enter_fraction): sustained congestion (the queue
//     at/above the watermark for brownout_consecutive dispatches) flips the
//     service into brownout, forcing baseline-only runs (completeness
//     kBaselineOnly, status OK) until the queue drains to
//     brownout_exit_fraction — cheap answers instead of slow rejections.
//   * Backend circuit breaker (breaker.failure_threshold): consecutive
//     engine-run failures (kInternal / kDeadlineExceeded / kUnavailable)
//     open the circuit; while open, Submit rejects with kUnavailable
//     without queueing; after breaker.open_ms one half-open probe request
//     is admitted and its outcome closes or re-opens the circuit.
//   * Health(): a point-in-time readiness snapshot (queue depth, breaker
//     state, brownout flag, watchdog/shed counters, cold-tier quarantine
//     count) — the same numbers the daemon's --health mode prints.
//
// Results are delivered through shared_futures, so Submit never blocks on
// matching work and any number of threads can wait on one response.  All
// service and engine metrics accumulate in metrics() ("service.*" counters,
// queue/run latency histograms with p50/p95/p99) — bench_service_load
// builds its report from exactly this registry.
//
// Thread safety: Submit / Call / Stop / queue_depth are safe from any
// thread.  engine() is exposed for setup and post-Stop inspection only.

#ifndef CSM_SERVICE_MATCH_SERVICE_H_
#define CSM_SERVICE_MATCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/retry.h"
#include "core/match_engine.h"
#include "core/match_request.h"
#include "core/session_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace csm {

/// Per-tenant admission limits.  Zero means "unlimited" for every field.
struct TenantQuota {
  /// Max requests admitted but not yet answered (queued + running).
  size_t max_in_flight = 0;
  /// Token-bucket refill rate; each admitted request costs one token.
  /// Deduplicated attaches still pay (rate limits count requests, dedup
  /// saves work, not quota).
  double requests_per_second = 0.0;
  /// Bucket capacity; 0 defaults to max(1, requests_per_second).
  double burst = 0.0;
};

struct ServiceOptions {
  /// Engine configuration (threads, tau, deadline_ms, ...).
  ContextMatchOptions engine;
  /// Admission queue bound; a full queue rejects new work.
  size_t max_queue = 64;
  /// Quota for tenants absent from `tenant_quotas` (default: unlimited).
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Optional cold session tier, forwarded to the engine.  Must outlive
  /// the service.
  SessionColdStore* cold_store = nullptr;
  /// Optional tracer, forwarded to the engine.  Must outlive the service.
  obs::Tracer* tracer = nullptr;

  // --- Self-healing (all OFF by default; see the header comment) ---------

  /// Watchdog wake-up period; 0 disables the watchdog thread.
  int64_t watchdog_interval_ms = 0;
  /// Pre-run dispatch stall threshold; 0 defaults to watchdog_interval_ms
  /// (so a stall is detected within two intervals).
  int64_t watchdog_stall_ms = 0;
  /// A running request is force-cancelled once its wall time exceeds
  /// watchdog_grace * its deadline (requests without a deadline are never
  /// run-cancelled).
  double watchdog_grace = 2.0;
  /// CoDel-style shedding: a popped request that waited longer than this is
  /// shed with kResourceExhausted when the queue behind it is still at
  /// least shed_min_depth deep.  0 disables shedding.
  int64_t queue_target_ms = 0;
  size_t shed_min_depth = 1;
  /// Brownout entry watermark as a fraction of max_queue (queue depth
  /// observed after each pop); 0 disables brownout.
  double brownout_enter_fraction = 0.0;
  /// Brownout exits once the post-pop depth falls to this fraction.
  double brownout_exit_fraction = 0.0;
  /// Consecutive congested dispatches required to enter brownout.
  int brownout_consecutive = 3;
  /// Backend circuit breaker over engine-run outcomes.  Disabled by
  /// default (failure_threshold = 0); set breaker.failure_threshold > 0 to
  /// enable.  breaker.now_ms lets tests drive the open -> half-open
  /// transition with a manual clock.
  CircuitBreakerOptions breaker = DisabledBreakerOptions();
  /// Test hook: when set, the dispatcher calls this after popping each
  /// ticket, outside all locks, before the expiry check and engine run.  A
  /// blocking gate lets tests hold the dispatcher still while they fill the
  /// queue to an exact depth.  Never set in production.
  std::function<void()> test_dispatch_gate;
};

/// What Submit hands back: the (possibly shared) response future, plus
/// whether this submission attached to an identical in-flight request
/// instead of enqueueing a run of its own.
struct SubmitHandle {
  std::shared_future<MatchResponse> future;
  bool deduplicated = false;
};

/// Point-in-time readiness snapshot (MatchService::Health): what an
/// operator or load balancer needs to decide "send traffic here?".
struct HealthSnapshot {
  /// Submit would not reject outright (not stopped, breaker not open).
  bool accepting = false;
  /// accepting AND serving full-quality answers (no brownout).
  bool ready = false;
  size_t queue_depth = 0;
  size_t max_queue = 0;
  bool brownout = false;
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  uint64_t watchdog_stall_cancels = 0;
  uint64_t watchdog_deadline_cancels = 0;
  uint64_t shed_aged = 0;
  uint64_t expired_in_queue = 0;
  bool cold_tier_attached = false;
  /// Corrupt/truncated cold-tier blobs set aside (SessionColdStore::
  /// Quarantined); non-zero means the spool saw torn writes or bit rot.
  uint64_t cold_tier_quarantined = 0;

  /// One-line human summary ("ready queue=3/64 breaker=closed ...").
  std::string ToString() const;
  /// JSON object with the same fields (the daemon's --health output).
  std::string ToJson() const;
};

class MatchService {
 public:
  explicit MatchService(ServiceOptions options);
  /// Stops the service (see Stop) before destruction.
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Admission: applies, in order, stopped-check, tenant rate limit,
  /// deduplication, tenant in-flight cap, queue bound.  Rejections return
  /// an already-resolved future (kUnavailable when stopped,
  /// kResourceExhausted otherwise) — Submit itself never blocks on
  /// matching work and never throws.
  SubmitHandle Submit(MatchRequest request);

  /// Submit + wait.  The returned response carries queue/run timings from
  /// the run that served it and `deduplicated` from this submission.
  MatchResponse Call(MatchRequest request);

  /// Stops admission, lets the in-flight run finish, answers every still
  /// queued request with kUnavailable, and joins the dispatcher.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Requests admitted and currently waiting for the dispatcher.
  size_t queue_depth() const;

  /// Point-in-time readiness snapshot; safe from any thread.
  HealthSnapshot Health() const;

  /// The service-wide registry: "service.*" counters and latency
  /// histograms plus everything the engine reports.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Setup / post-Stop inspection only: the engine runs on the dispatcher
  /// thread and is not synchronized against concurrent use.
  MatchEngine& engine() { return engine_; }

 private:
  /// One admitted request: request + delivery promise + the token that
  /// carries its deadline from admission through the run.
  struct Ticket {
    MatchRequest request;
    uint64_t dedup_key = 0;
    std::promise<MatchResponse> promise;
    std::shared_future<MatchResponse> future;
    CancellationToken cancel;
    std::chrono::steady_clock::time_point admitted;
    /// Original request deadline (the token's is consumed at admission);
    /// the watchdog's grace check needs the raw number.
    int64_t deadline_ms = 0;
    /// True when admission charged a rate token: answers that never reach
    /// the engine (expired in queue, shed, stall-cancelled, stop-drained)
    /// refund it.
    bool charged_rate_token = false;
    /// Set by the watchdog when it cancels a pre-run stall, so the
    /// dispatcher answers kUnavailable instead of kDeadlineExceeded.
    std::atomic<bool> watchdog_cancelled{false};
  };

  struct TenantState {
    size_t in_flight = 0;
    double tokens = 0.0;
    bool bucket_started = false;
    std::chrono::steady_clock::time_point last_refill;
  };

  const TenantQuota& QuotaFor(const std::string& tenant) const;
  static SubmitHandle RejectedHandle(Status status);
  void DispatchLoop();
  void WatchdogLoop();
  /// Returns the ticket's rate token to its tenant's bucket (clamped to
  /// burst).  Call only for tickets answered without an engine run.
  void RefundRateToken(const std::shared_ptr<Ticket>& ticket);
  /// Releases the ticket's dedup-map entry and tenant slot, then fulfills
  /// its promise.  Called by the dispatcher only.
  void Deliver(const std::shared_ptr<Ticket>& ticket, MatchResponse response);

  ServiceOptions options_;
  MatchEngine engine_;
  obs::MetricsRegistry metrics_;
  CircuitBreaker breaker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Ticket>> queue_;
  /// Dedup index over queued + running tickets.
  std::map<uint64_t, std::shared_ptr<Ticket>> in_flight_;
  std::map<std::string, TenantState> tenants_;
  bool stopped_ = false;
  /// Brownout state, guarded by mu_: consecutive congested dispatches and
  /// whether baseline-only mode is currently forced.
  int congested_streak_ = 0;
  bool brownout_ = false;

  /// Dispatcher heartbeat, guarded by watch_mu_: the ticket currently held
  /// by the dispatcher (between pop and Deliver), when it was picked up,
  /// and whether the engine run has started.  The watchdog reads these to
  /// tell a pre-run stall from a deadline-overrunning run.
  mutable std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::shared_ptr<Ticket> active_ticket_;
  std::chrono::steady_clock::time_point active_since_;
  bool active_running_ = false;
  bool watch_stop_ = false;

  std::thread dispatcher_;
  std::thread watchdog_;
};

}  // namespace csm

#endif  // CSM_SERVICE_MATCH_SERVICE_H_
