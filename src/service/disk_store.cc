#include "service/disk_store.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

namespace csm {

DiskSessionStore::DiskSessionStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string DiskSessionStore::PathForKey(uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.csmss",
                static_cast<unsigned long long>(key));
  return directory_ + "/" + name;
}

bool DiskSessionStore::Load(uint64_t key, std::string* blob) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++loads_;
  }
  std::FILE* f = std::fopen(PathForKey(key).c_str(), "rb");
  if (f == nullptr) return false;
  blob->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++load_hits_;
  return true;
}

bool DiskSessionStore::Store(uint64_t key, const std::string& blob) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);  // best effort
  const std::string path = PathForKey(key);
  // Unique-enough temp name: pid keeps concurrent processes apart; within a
  // process only one engine writes a given key at a time.
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                static_cast<long>(::getpid()));
  const std::string tmp = path + suffix;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stores_;
  return true;
}

}  // namespace csm
