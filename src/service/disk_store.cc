#include "service/disk_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/fault_injector.h"

namespace csm {
namespace {

/// Blob frame: "csmblob 2 <payload_bytes> <crc32-hex>\n".  Version 2 is the
/// first checksummed format; version-1 blobs (bare payload) fail the frame
/// parse and are quarantined — one rebuild, never a silent stale read.
constexpr char kFramePrefix[] = "csmblob 2 ";

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// "<size> <crc-hex>\n" header tail after the prefix.
std::string FrameHeader(const std::string& payload) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%zu %08x\n", kFramePrefix, payload.size(),
                Crc32(payload));
  return buf;
}

/// Splits `raw` (a whole file) into header and payload and validates size
/// and checksum.  On success points `payload_out` at the payload bytes.
bool ValidateFrame(const std::string& raw, std::string* payload_out) {
  const size_t prefix_len = sizeof(kFramePrefix) - 1;
  if (raw.compare(0, prefix_len, kFramePrefix) != 0) return false;
  const size_t eol = raw.find('\n', prefix_len);
  if (eol == std::string::npos) return false;
  size_t size = 0;
  unsigned crc = 0;
  if (std::sscanf(raw.c_str() + prefix_len, "%zu %x", &size, &crc) != 2) {
    return false;
  }
  if (raw.size() - (eol + 1) != size) return false;  // truncated / padded
  std::string payload = raw.substr(eol + 1);
  if (Crc32(payload) != static_cast<uint32_t>(crc)) return false;
  *payload_out = std::move(payload);
  return true;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// fsync on a directory so a just-published rename survives power loss.
void SyncDirectory(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32(const std::string& data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = 0xffffffffu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

DiskSessionStore::DiskSessionStore(std::string directory)
    : directory_(std::move(directory)) {
  RecoverScan();
}

std::string DiskSessionStore::PathForKey(uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.csmss",
                static_cast<unsigned long long>(key));
  return directory_ + "/" + name;
}

void DiskSessionStore::Quarantine(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantine", ec);
  if (ec) std::remove(path.c_str());  // cannot rename: drop it instead
  std::lock_guard<std::mutex> lock(mu_);
  ++quarantined_;
}

size_t DiskSessionStore::RecoverScan() {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory_, ec)) return 0;
  size_t quarantined = 0;
  uint64_t valid = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string path = entry.path().string();
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      // A writer died between open and rename; the final name was never
      // published, so the temp file is pure garbage.
      std::remove(path.c_str());
      continue;
    }
    if (entry.path().extension() != ".csmss") continue;
    std::string raw, payload;
    if (!ReadWholeFile(path, &raw) || !ValidateFrame(raw, &payload)) {
      Quarantine(path);
      ++quarantined;
      continue;
    }
    ++valid;
  }
  std::lock_guard<std::mutex> lock(mu_);
  recovered_valid_ = valid;
  return quarantined;
}

bool DiskSessionStore::Load(uint64_t key, std::string* blob) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++loads_;
  }
  const std::string path = PathForKey(key);
  std::string raw;
  if (!ReadWholeFile(path, &raw)) return false;
  if (!ValidateFrame(raw, blob)) {
    // Torn, truncated or bit-rotted: set it aside for post-mortems and
    // report a miss — the engine rebuilds and re-publishes a good blob.
    Quarantine(path);
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++load_hits_;
  return true;
}

bool DiskSessionStore::Store(uint64_t key, const std::string& blob) {
  // Fault site "store.write" (index = store key): a kFail arm drops this
  // write (simulated disk failure — non-fatal, the engine keeps its
  // in-memory sessions), kSleep simulates a slow disk.
  if (FaultInjector::Hit("store.write", key)) return false;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);  // best effort
  const std::string path = PathForKey(key);
  // Unique-enough temp name: pid keeps concurrent processes apart; within a
  // process only one engine writes a given key at a time.
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                static_cast<long>(::getpid()));
  const std::string tmp = path + suffix;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string header = FrameHeader(blob);
  bool wrote =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  // Durability before visibility: flush user-space buffers and fsync the
  // file BEFORE the rename publishes it.  Without this, a crash after the
  // rename could publish a name whose bytes never reached the disk — the
  // torn-blob case the CRC frame exists to catch, but better never made.
  if (wrote) wrote = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  // And fsync the directory so the rename itself is durable.
  SyncDirectory(directory_);
  std::lock_guard<std::mutex> lock(mu_);
  ++stores_;
  return true;
}

uint64_t DiskSessionStore::loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loads_;
}
uint64_t DiskSessionStore::load_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return load_hits_;
}
uint64_t DiskSessionStore::stores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_;
}
uint64_t DiskSessionStore::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}
uint64_t DiskSessionStore::recovered_valid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_valid_;
}

}  // namespace csm
