// MatchClient: the resilient caller side of MatchService.
//
// MatchService answers every request with a definitive StatusCode, but it
// deliberately does NOT retry on the caller's behalf: a shed or rejected
// request is the service protecting itself, and whether trying again is
// worth the caller's latency budget is a caller decision.  MatchClient is
// that decision, packaged:
//
//   * Retries with decorrelated-jitter backoff (common/retry.h) on
//     retryable statuses only (kUnavailable / kResourceExhausted — see
//     IsRetryableStatus; a kDeadlineExceeded answer already spent the
//     caller's budget and is final).
//   * A RetryBudget so a fleet of clients cannot amplify an outage into a
//     retry storm: when the budget is dry, failures return immediately.
//   * An optional client-side CircuitBreaker: consecutive trip-class
//     failures stop the client from even submitting for a cool-off window
//     — useful when many clients share one service and admission traffic
//     itself has a cost.
//   * Optional hedging: after hedge_delay_ms without an answer, submit a
//     duplicate of the request and take whichever answer lands first.
//     Safe by construction here: the service's in-flight deduplication
//     makes the hedge attach to the original's ticket (one engine run,
//     bit-identical answers), so a hedge costs one admission, not one run.
//
// Determinism: backoff delays are drawn from a seeded Rng, so a client's
// retry schedule replays bit-identically; tests inject sleep_fn to observe
// the schedule instead of sleeping through it.
//
// Thread safety: one MatchClient may be shared by threads (budget and
// breaker are internally synchronized; the Rng is guarded by a mutex).

#ifndef CSM_SERVICE_MATCH_CLIENT_H_
#define CSM_SERVICE_MATCH_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/random.h"
#include "common/retry.h"
#include "service/match_service.h"

namespace csm {

struct MatchClientOptions {
  /// Backoff shape and attempt cap (attempts include the first call).
  RetryPolicy retry;
  /// Retry-storm control; capacity <= 0 disables the budget.
  double retry_budget_capacity = 10.0;
  double retry_budget_refill = 0.1;
  /// Client-side breaker over end-to-end outcomes.  Disabled by default
  /// (failure_threshold = 0): the service has its own backend breaker.
  CircuitBreakerOptions breaker = DisabledBreakerOptions();
  /// Hedging: 0 disables; > 0 submits a duplicate request after this many
  /// milliseconds without an answer and races the two futures.
  int64_t hedge_delay_ms = 0;
  /// Seed for the deterministic backoff Rng.
  uint64_t seed = 0x633173;  // "c1s"
  /// Injectable sleep for tests (null = std::this_thread::sleep_for).
  /// Receives the backoff in milliseconds.
  std::function<void(double)> sleep_fn;
};

class MatchClient {
 public:
  /// The service must outlive the client.
  explicit MatchClient(MatchService& service, MatchClientOptions options = {});

  /// Submit + wait, with retry / budget / breaker / hedging applied.  The
  /// returned response is the last attempt's answer (successful or not);
  /// response.deduplicated reflects that attempt's submission.
  MatchResponse Call(const MatchRequest& request);

  /// Retries actually performed (attempts beyond each Call's first).
  uint64_t retries() const { return retries_.load(); }
  /// Hedge submissions actually sent.
  uint64_t hedges() const { return hedges_.load(); }
  /// Hedged calls answered by the hedge before the original.
  uint64_t hedge_wins() const { return hedge_wins_.load(); }
  /// Retries suppressed by an exhausted budget.
  uint64_t budget_exhausted() const { return budget_exhausted_.load(); }
  /// Calls refused locally by the client-side breaker.
  uint64_t breaker_rejections() const { return breaker_rejections_.load(); }

  const CircuitBreaker& breaker() const { return breaker_; }
  const RetryBudget& budget() const { return budget_; }

 private:
  /// One submit + wait, hedged when configured.
  MatchResponse Attempt(const MatchRequest& request);
  void SleepMs(double ms);

  MatchService& service_;
  MatchClientOptions options_;
  RetryBudget budget_;
  CircuitBreaker breaker_;
  std::mutex rng_mu_;
  Rng rng_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> budget_exhausted_{0};
  std::atomic<uint64_t> breaker_rejections_{0};
};

}  // namespace csm

#endif  // CSM_SERVICE_MATCH_CLIENT_H_
