#include "service/match_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace csm {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The status a queue-expired ticket is answered with, from the token's
/// first-writer-wins reason.
Status ExpiredStatus(const CancellationToken& cancel) {
  if (cancel.reason() == CancelReason::kDeadline) {
    return Status::DeadlineExceeded("deadline expired while queued");
  }
  return Status::Cancelled("cancelled while queued");
}

}  // namespace

MatchService::MatchService(ServiceOptions options)
    : options_(std::move(options)), engine_(options_.engine) {
  engine_.set_metrics(&metrics_);
  if (options_.tracer != nullptr) engine_.set_tracer(options_.tracer);
  if (options_.cold_store != nullptr) {
    engine_.set_cold_store(options_.cold_store);
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

MatchService::~MatchService() { Stop(); }

const TenantQuota& MatchService::QuotaFor(const std::string& tenant) const {
  auto it = options_.tenant_quotas.find(tenant);
  return it == options_.tenant_quotas.end() ? options_.default_quota
                                            : it->second;
}

SubmitHandle MatchService::RejectedHandle(Status status) {
  std::promise<MatchResponse> promise;
  SubmitHandle handle;
  handle.future = promise.get_future().share();
  MatchResponse response;
  response.status = std::move(status);
  response.completeness = MatchCompleteness::kBaselineOnly;
  promise.set_value(std::move(response));
  return handle;
}

SubmitHandle MatchService::Submit(MatchRequest request) {
  // Fingerprinting scans both databases; do it before taking the service
  // lock so admission stays cheap under contention.  Null databases skip
  // straight to the engine's kInvalidArgument answer via a normal ticket.
  uint64_t dedup_key = 0;
  if (request.source != nullptr && request.target != nullptr) {
    dedup_key = MixFingerprint(0x6465647570ULL, /*"dedup"*/
                               FingerprintDatabase(*request.source));
    dedup_key = MixFingerprint(dedup_key, FingerprintDatabase(*request.target));
    dedup_key = MixFingerprint(dedup_key, static_cast<uint64_t>(request.mode));
    dedup_key = MixFingerprint(dedup_key, request.max_stages);
    dedup_key =
        MixFingerprint(dedup_key, static_cast<uint64_t>(request.deadline_ms));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    metrics_.AddCounter("service.rejected_stopped");
    return RejectedHandle(Status::Unavailable("service is stopped"));
  }

  const TenantQuota& quota = QuotaFor(request.tenant);
  TenantState& tenant = tenants_[request.tenant];

  if (quota.requests_per_second > 0.0) {
    const double burst =
        quota.burst > 0.0 ? quota.burst : std::max(1.0, quota.requests_per_second);
    const auto now = Clock::now();
    if (!tenant.bucket_started) {
      tenant.bucket_started = true;
      tenant.tokens = burst;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - tenant.last_refill).count();
      tenant.tokens =
          std::min(burst, tenant.tokens + elapsed * quota.requests_per_second);
    }
    tenant.last_refill = now;
    if (tenant.tokens < 1.0) {
      metrics_.AddCounter("service.rejected_rate_limit");
      return RejectedHandle(Status::ResourceExhausted(
          "tenant '" + request.tenant + "' exceeded its request rate"));
    }
    tenant.tokens -= 1.0;
  }

  if (dedup_key != 0) {
    auto in_flight = in_flight_.find(dedup_key);
    if (in_flight != in_flight_.end()) {
      metrics_.AddCounter("service.deduplicated");
      SubmitHandle handle;
      handle.future = in_flight->second->future;
      handle.deduplicated = true;
      return handle;
    }
  }

  if (quota.max_in_flight > 0 && tenant.in_flight >= quota.max_in_flight) {
    metrics_.AddCounter("service.rejected_in_flight");
    return RejectedHandle(Status::ResourceExhausted(
        "tenant '" + request.tenant + "' has too many requests in flight"));
  }

  if (queue_.size() >= options_.max_queue) {
    metrics_.AddCounter("service.rejected_queue_full");
    return RejectedHandle(
        Status::ResourceExhausted("admission queue is full"));
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->request = std::move(request);
  ticket->dedup_key = dedup_key;
  ticket->future = ticket->promise.get_future().share();
  ticket->admitted = Clock::now();
  if (ticket->request.deadline_ms > 0) {
    // The budget starts NOW and covers queue time; the dispatcher passes
    // this token to the engine instead of the (zeroed) deadline_ms field.
    ticket->cancel.set_deadline(Deadline::AfterMillis(ticket->request.deadline_ms));
    ticket->request.deadline_ms = 0;
  }
  ++tenant.in_flight;
  if (dedup_key != 0) in_flight_[dedup_key] = ticket;
  metrics_.AddCounter("service.admitted");
  SubmitHandle handle;
  handle.future = ticket->future;
  queue_.push_back(std::move(ticket));
  metrics_.SetGauge("service.queue_depth", static_cast<double>(queue_.size()));
  cv_.notify_one();
  return handle;
}

MatchResponse MatchService::Call(MatchRequest request) {
  SubmitHandle handle = Submit(std::move(request));
  MatchResponse response = handle.future.get();
  response.deduplicated = handle.deduplicated;
  return response;
}

void MatchService::Deliver(const std::shared_ptr<Ticket>& ticket,
                           MatchResponse response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ticket->dedup_key != 0) {
      auto it = in_flight_.find(ticket->dedup_key);
      if (it != in_flight_.end() && it->second == ticket) in_flight_.erase(it);
    }
    auto tenant = tenants_.find(ticket->request.tenant);
    if (tenant != tenants_.end() && tenant->second.in_flight > 0) {
      --tenant->second.in_flight;
    }
  }
  ticket->promise.set_value(std::move(response));
}

void MatchService::DispatchLoop() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopped_ and drained
      ticket = std::move(queue_.front());
      queue_.pop_front();
      metrics_.SetGauge("service.queue_depth",
                        static_cast<double>(queue_.size()));
      if (stopped_) {
        // Stop() answers everything still queued without running it.
        lock.unlock();
        MatchResponse response;
        response.status = Status::Unavailable("service is stopping");
        response.completeness = MatchCompleteness::kBaselineOnly;
        metrics_.AddCounter("service.rejected_stopped");
        Deliver(ticket, std::move(response));
        continue;
      }
    }
    if (options_.test_dispatch_gate) options_.test_dispatch_gate();

    MatchResponse response;
    const double queue_seconds = SecondsSince(ticket->admitted);
    if (ticket->cancel.cancelled()) {
      // The budget ran out while queued: answer without touching the
      // engine.  kBaselineOnly — not even the baseline ran.
      response.status = ExpiredStatus(ticket->cancel);
      response.completeness = MatchCompleteness::kBaselineOnly;
      metrics_.AddCounter("service.expired_in_queue");
    } else {
      const auto start = Clock::now();
      response = engine_.Execute(ticket->request, &ticket->cancel);
      response.run_seconds = SecondsSince(start);
      metrics_.Observe("service.run_seconds", response.run_seconds);
      metrics_.AddCounter("service.completed");
    }
    response.queue_seconds = queue_seconds;
    metrics_.Observe("service.queue_seconds", queue_seconds);
    metrics_.Observe("service.total_seconds",
                     queue_seconds + response.run_seconds);
    Deliver(ticket, std::move(response));
  }
}

void MatchService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ && !dispatcher_.joinable()) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

size_t MatchService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace csm
