#include "service/match_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/fault_injector.h"

namespace csm {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The status a queue-expired ticket is answered with, from the token's
/// first-writer-wins reason.
Status ExpiredStatus(const CancellationToken& cancel) {
  if (cancel.reason() == CancelReason::kDeadline) {
    return Status::DeadlineExceeded("deadline expired while queued");
  }
  return Status::Cancelled("cancelled while queued");
}

/// Effective token-bucket capacity for a quota (shared by charge + refund).
double BurstFor(const TenantQuota& quota) {
  return quota.burst > 0.0 ? quota.burst
                           : std::max(1.0, quota.requests_per_second);
}

}  // namespace

std::string HealthSnapshot::ToString() const {
  std::ostringstream out;
  out << (ready ? "ready" : accepting ? "degraded" : "unavailable")
      << " queue=" << queue_depth << "/" << max_queue
      << " breaker=" << CircuitBreaker::StateToString(breaker_state)
      << " brownout=" << (brownout ? "yes" : "no")
      << " watchdog_cancels=" << (watchdog_stall_cancels + watchdog_deadline_cancels)
      << " shed=" << shed_aged << " expired=" << expired_in_queue;
  if (cold_tier_attached) out << " cold_quarantined=" << cold_tier_quarantined;
  return out.str();
}

std::string HealthSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"accepting\": " << (accepting ? "true" : "false") << ",\n"
      << "  \"ready\": " << (ready ? "true" : "false") << ",\n"
      << "  \"queue_depth\": " << queue_depth << ",\n"
      << "  \"max_queue\": " << max_queue << ",\n"
      << "  \"brownout\": " << (brownout ? "true" : "false") << ",\n"
      << "  \"breaker_state\": \"" << CircuitBreaker::StateToString(breaker_state)
      << "\",\n"
      << "  \"watchdog_stall_cancels\": " << watchdog_stall_cancels << ",\n"
      << "  \"watchdog_deadline_cancels\": " << watchdog_deadline_cancels
      << ",\n"
      << "  \"shed_aged\": " << shed_aged << ",\n"
      << "  \"expired_in_queue\": " << expired_in_queue << ",\n"
      << "  \"cold_tier_attached\": " << (cold_tier_attached ? "true" : "false")
      << ",\n"
      << "  \"cold_tier_quarantined\": " << cold_tier_quarantined << "\n"
      << "}";
  return out.str();
}

MatchService::MatchService(ServiceOptions options)
    : options_(std::move(options)),
      engine_(options_.engine),
      breaker_(options_.breaker) {
  engine_.set_metrics(&metrics_);
  if (options_.tracer != nullptr) engine_.set_tracer(options_.tracer);
  if (options_.cold_store != nullptr) {
    engine_.set_cold_store(options_.cold_store);
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  if (options_.watchdog_interval_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

MatchService::~MatchService() { Stop(); }

const TenantQuota& MatchService::QuotaFor(const std::string& tenant) const {
  auto it = options_.tenant_quotas.find(tenant);
  return it == options_.tenant_quotas.end() ? options_.default_quota
                                            : it->second;
}

SubmitHandle MatchService::RejectedHandle(Status status) {
  std::promise<MatchResponse> promise;
  SubmitHandle handle;
  handle.future = promise.get_future().share();
  MatchResponse response;
  response.status = std::move(status);
  response.completeness = MatchCompleteness::kBaselineOnly;
  promise.set_value(std::move(response));
  return handle;
}

SubmitHandle MatchService::Submit(MatchRequest request) {
  // Fingerprinting scans both databases; do it before taking the service
  // lock so admission stays cheap under contention.  Null databases skip
  // straight to the engine's kInvalidArgument answer via a normal ticket.
  uint64_t dedup_key = 0;
  if (request.source != nullptr && request.target != nullptr) {
    dedup_key = MixFingerprint(0x6465647570ULL, /*"dedup"*/
                               FingerprintDatabase(*request.source));
    dedup_key = MixFingerprint(dedup_key, FingerprintDatabase(*request.target));
    dedup_key = MixFingerprint(dedup_key, static_cast<uint64_t>(request.mode));
    dedup_key = MixFingerprint(dedup_key, request.max_stages);
    dedup_key =
        MixFingerprint(dedup_key, static_cast<uint64_t>(request.deadline_ms));
    dedup_key =
        MixFingerprint(dedup_key, request.baseline_only ? 1ULL : 0ULL);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    metrics_.AddCounter("service.rejected_stopped");
    return RejectedHandle(Status::Unavailable("service is stopped"));
  }

  const TenantQuota& quota = QuotaFor(request.tenant);
  TenantState& tenant = tenants_[request.tenant];

  bool charged_rate_token = false;
  if (quota.requests_per_second > 0.0) {
    const double burst = BurstFor(quota);
    const auto now = Clock::now();
    if (!tenant.bucket_started) {
      tenant.bucket_started = true;
      tenant.tokens = burst;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - tenant.last_refill).count();
      tenant.tokens =
          std::min(burst, tenant.tokens + elapsed * quota.requests_per_second);
    }
    tenant.last_refill = now;
    if (tenant.tokens < 1.0) {
      metrics_.AddCounter("service.rejected_rate_limit");
      return RejectedHandle(Status::ResourceExhausted(
          "tenant '" + request.tenant + "' exceeded its request rate"));
    }
    tenant.tokens -= 1.0;
    charged_rate_token = true;
  }

  if (dedup_key != 0) {
    auto in_flight = in_flight_.find(dedup_key);
    if (in_flight != in_flight_.end()) {
      metrics_.AddCounter("service.deduplicated");
      SubmitHandle handle;
      handle.future = in_flight->second->future;
      handle.deduplicated = true;
      return handle;
    }
  }

  if (quota.max_in_flight > 0 && tenant.in_flight >= quota.max_in_flight) {
    metrics_.AddCounter("service.rejected_in_flight");
    return RejectedHandle(Status::ResourceExhausted(
        "tenant '" + request.tenant + "' has too many requests in flight"));
  }

  if (queue_.size() >= options_.max_queue) {
    metrics_.AddCounter("service.rejected_queue_full");
    return RejectedHandle(
        Status::ResourceExhausted("admission queue is full"));
  }

  // Breaker check LAST so a refusal here is the only rejection that can
  // follow a successful Allow(): every admitted probe maps to exactly one
  // ticket whose terminal handling records an outcome or releases the slot.
  if (!breaker_.Allow()) {
    if (charged_rate_token) {
      tenant.tokens = std::min(BurstFor(quota), tenant.tokens + 1.0);
    }
    metrics_.AddCounter("service.rejected_breaker_open");
    return RejectedHandle(Status::Unavailable(
        "backend circuit open; retry after cool-off"));
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->request = std::move(request);
  ticket->dedup_key = dedup_key;
  ticket->future = ticket->promise.get_future().share();
  ticket->admitted = Clock::now();
  ticket->deadline_ms = ticket->request.deadline_ms;
  ticket->charged_rate_token = charged_rate_token;
  if (ticket->request.deadline_ms > 0) {
    // The budget starts NOW and covers queue time; the dispatcher passes
    // this token to the engine instead of the (zeroed) deadline_ms field.
    ticket->cancel.set_deadline(Deadline::AfterMillis(ticket->request.deadline_ms));
    ticket->request.deadline_ms = 0;
  }
  ++tenant.in_flight;
  if (dedup_key != 0) in_flight_[dedup_key] = ticket;
  metrics_.AddCounter("service.admitted");
  SubmitHandle handle;
  handle.future = ticket->future;
  queue_.push_back(std::move(ticket));
  metrics_.SetGauge("service.queue_depth", static_cast<double>(queue_.size()));
  cv_.notify_one();
  return handle;
}

MatchResponse MatchService::Call(MatchRequest request) {
  SubmitHandle handle = Submit(std::move(request));
  MatchResponse response = handle.future.get();
  response.deduplicated = handle.deduplicated;
  return response;
}

void MatchService::RefundRateToken(const std::shared_ptr<Ticket>& ticket) {
  if (!ticket->charged_rate_token) return;
  std::lock_guard<std::mutex> lock(mu_);
  const TenantQuota& quota = QuotaFor(ticket->request.tenant);
  if (quota.requests_per_second <= 0.0) return;
  TenantState& tenant = tenants_[ticket->request.tenant];
  tenant.tokens = std::min(BurstFor(quota), tenant.tokens + 1.0);
  metrics_.AddCounter("service.rate_tokens_refunded");
}

void MatchService::Deliver(const std::shared_ptr<Ticket>& ticket,
                           MatchResponse response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ticket->dedup_key != 0) {
      auto it = in_flight_.find(ticket->dedup_key);
      if (it != in_flight_.end() && it->second == ticket) in_flight_.erase(it);
    }
    auto tenant = tenants_.find(ticket->request.tenant);
    if (tenant != tenants_.end() && tenant->second.in_flight > 0) {
      --tenant->second.in_flight;
    }
  }
  ticket->promise.set_value(std::move(response));
}

void MatchService::DispatchLoop() {
  uint64_t dispatch_seq = 0;
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    bool brownout_now = false;
    size_t behind = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopped_ and drained
      ticket = std::move(queue_.front());
      queue_.pop_front();
      behind = queue_.size();
      metrics_.SetGauge("service.queue_depth", static_cast<double>(behind));
      if (stopped_) {
        // Stop() answers everything still queued without running it; the
        // rate token bought no work, so it goes back.
        lock.unlock();
        RefundRateToken(ticket);
        breaker_.ReleaseProbe();
        MatchResponse response;
        response.status = Status::Unavailable("service is stopping");
        response.completeness = MatchCompleteness::kBaselineOnly;
        metrics_.AddCounter("service.rejected_stopped");
        Deliver(ticket, std::move(response));
        continue;
      }
      // Brownout tracking on the post-pop depth: sustained congestion
      // (brownout_consecutive dispatches at/above the watermark) flips the
      // service into baseline-only mode until the queue drains.
      if (options_.brownout_enter_fraction > 0.0 && options_.max_queue > 0) {
        const auto enter_depth = static_cast<size_t>(std::ceil(
            options_.brownout_enter_fraction *
            static_cast<double>(options_.max_queue)));
        const auto exit_depth = static_cast<size_t>(
            options_.brownout_exit_fraction *
            static_cast<double>(options_.max_queue));
        if (!brownout_) {
          if (enter_depth > 0 && behind >= enter_depth) {
            if (++congested_streak_ >=
                std::max(options_.brownout_consecutive, 1)) {
              brownout_ = true;
              metrics_.AddCounter("service.brownout_entered");
            }
          } else {
            congested_streak_ = 0;
          }
        } else if (behind <= exit_depth) {
          brownout_ = false;
          congested_streak_ = 0;
          metrics_.AddCounter("service.brownout_exited");
        }
        brownout_now = brownout_;
      }
    }

    // Heartbeat BEFORE the test gate: a dispatcher stuck in the gate (how
    // tests simulate a stall) looks to the watchdog exactly like one stuck
    // anywhere else pre-run.
    {
      std::lock_guard<std::mutex> watch(watch_mu_);
      active_ticket_ = ticket;
      active_since_ = Clock::now();
      active_running_ = false;
    }
    if (options_.test_dispatch_gate) options_.test_dispatch_gate();

    // Claim the ticket under watch_mu_: once active_running_ is true the
    // watchdog will never steal it, and if the watchdog already answered it
    // (stall cancel) we must not touch it again.
    bool stolen = false;
    {
      std::lock_guard<std::mutex> watch(watch_mu_);
      active_running_ = true;
      stolen = ticket->watchdog_cancelled.load(std::memory_order_acquire);
    }
    if (stolen) {
      std::lock_guard<std::mutex> watch(watch_mu_);
      active_ticket_.reset();
      active_running_ = false;
      continue;
    }

    const uint64_t seq = dispatch_seq++;
    MatchResponse response;
    const double queue_seconds = SecondsSince(ticket->admitted);
    if (FaultInjector::Hit("service.dispatch", seq)) {
      // Injected dispatch fault: a definitive retryable answer, and a
      // trip-class outcome for the breaker — this is how chaos schedules
      // exercise open/half-open/close without a broken engine.
      response.status = Status::Unavailable("injected dispatch fault");
      response.completeness = MatchCompleteness::kBaselineOnly;
      metrics_.AddCounter("service.dispatch_faults");
      breaker_.RecordFailure(StatusCode::kUnavailable);
    } else if (ticket->cancel.cancelled()) {
      // The budget ran out while queued: answer without touching the
      // engine.  kBaselineOnly — not even the baseline ran.
      response.status = ExpiredStatus(ticket->cancel);
      response.completeness = MatchCompleteness::kBaselineOnly;
      metrics_.AddCounter("service.expired_in_queue");
      RefundRateToken(ticket);
      breaker_.ReleaseProbe();
    } else if (options_.queue_target_ms > 0 &&
               queue_seconds * 1000.0 >
                   static_cast<double>(options_.queue_target_ms) &&
               behind >= options_.shed_min_depth) {
      // CoDel-style shed: this request aged past the target AND the queue
      // behind it is still congested — running it would make every waiter
      // later.  Shed with a definitive retryable status.
      response.status = Status::ResourceExhausted(
          "shed: queue delay exceeded target under congestion");
      response.completeness = MatchCompleteness::kBaselineOnly;
      metrics_.AddCounter("service.shed_aged");
      RefundRateToken(ticket);
      breaker_.ReleaseProbe();
    } else {
      if (brownout_now && !ticket->request.baseline_only) {
        ticket->request.baseline_only = true;
        metrics_.AddCounter("service.brownout_runs");
      }
      const auto start = Clock::now();
      response = engine_.Execute(ticket->request, &ticket->cancel);
      response.run_seconds = SecondsSince(start);
      metrics_.Observe("service.run_seconds", response.run_seconds);
      metrics_.AddCounter("service.completed");
      if (response.status.ok()) {
        breaker_.RecordSuccess();
      } else {
        breaker_.RecordFailure(response.status.code());
      }
    }
    response.queue_seconds = queue_seconds;
    metrics_.Observe("service.queue_seconds", queue_seconds);
    metrics_.Observe("service.total_seconds",
                     queue_seconds + response.run_seconds);
    Deliver(ticket, std::move(response));
    {
      std::lock_guard<std::mutex> watch(watch_mu_);
      active_ticket_.reset();
      active_running_ = false;
    }
  }
}

void MatchService::WatchdogLoop() {
  const int64_t interval = options_.watchdog_interval_ms;
  const int64_t stall_ms =
      options_.watchdog_stall_ms > 0 ? options_.watchdog_stall_ms : interval;
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!watch_stop_) {
    watch_cv_.wait_for(lock, std::chrono::milliseconds(interval));
    if (watch_stop_) break;
    metrics_.AddCounter("service.watchdog_ticks");
    if (active_ticket_ == nullptr) continue;
    std::shared_ptr<Ticket> ticket = active_ticket_;
    if (!active_running_) {
      // Dispatcher picked the ticket up but never started the run: a stall
      // (stuck gate, livelocked pop path).  Detection bound: the stall
      // began at most one interval before the tick that crosses stall_ms,
      // so a stuck dispatch is caught within stall_ms + interval — with
      // the default stall_ms == interval, within 2x the heartbeat.
      if (MillisSince(active_since_) > static_cast<double>(stall_ms) &&
          !ticket->watchdog_cancelled.load(std::memory_order_acquire)) {
        ticket->watchdog_cancelled.store(true, std::memory_order_release);
        ticket->cancel.Cancel(CancelReason::kCaller);
        metrics_.AddCounter("service.watchdog_stall_cancels");
        // Answer the waiters from here: the dispatcher may never return.
        // The claim protocol (active_running_ + watchdog_cancelled, both
        // under watch_mu_) guarantees the dispatcher won't also deliver.
        lock.unlock();
        RefundRateToken(ticket);
        breaker_.ReleaseProbe();
        MatchResponse response;
        response.status =
            Status::Unavailable("watchdog cancelled a stalled dispatch");
        response.completeness = MatchCompleteness::kBaselineOnly;
        Deliver(ticket, std::move(response));
        lock.lock();
      }
    } else if (ticket->deadline_ms > 0 && options_.watchdog_grace > 0.0) {
      // Mid-run overrun: the engine should degrade by polling its token,
      // but if a phase wedges past grace * deadline, force the token so
      // every poll site drains.  Delivery stays with the dispatcher — the
      // run is still attached to the engine.
      const double limit_ms =
          options_.watchdog_grace * static_cast<double>(ticket->deadline_ms);
      if (MillisSince(ticket->admitted) > limit_ms &&
          !ticket->watchdog_cancelled.load(std::memory_order_acquire)) {
        // The flag only marks "watchdog acted once" here: the run is
        // already claimed (active_running_), so the dispatcher still owns
        // delivery.  Cancel is first-writer-wins; if the token's own
        // deadline fired first this just backstops unpolled runs.
        ticket->watchdog_cancelled.store(true, std::memory_order_release);
        ticket->cancel.Cancel(CancelReason::kDeadline);
        metrics_.AddCounter("service.watchdog_deadline_cancels");
      }
    }
  }
}

HealthSnapshot MatchService::Health() const {
  HealthSnapshot health;
  health.breaker_state = breaker_.state();
  {
    std::lock_guard<std::mutex> lock(mu_);
    health.queue_depth = queue_.size();
    health.max_queue = options_.max_queue;
    health.brownout = brownout_;
    health.accepting =
        !stopped_ && health.breaker_state != CircuitBreaker::State::kOpen;
  }
  health.ready = health.accepting && !health.brownout;
  health.watchdog_stall_cancels =
      metrics_.Counter("service.watchdog_stall_cancels");
  health.watchdog_deadline_cancels =
      metrics_.Counter("service.watchdog_deadline_cancels");
  health.shed_aged = metrics_.Counter("service.shed_aged");
  health.expired_in_queue = metrics_.Counter("service.expired_in_queue");
  health.cold_tier_attached = options_.cold_store != nullptr;
  if (options_.cold_store != nullptr) {
    health.cold_tier_quarantined = options_.cold_store->Quarantined();
  }
  return health;
}

void MatchService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ && !dispatcher_.joinable() && !watchdog_.joinable()) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> watch(watch_mu_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

size_t MatchService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace csm
