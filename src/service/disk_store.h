// DiskSessionStore: the filesystem-backed cold session tier, crash-safe.
//
// One file per key under a spool directory, named by the 16-hex-digit key
// with a ".csmss" extension.  Every blob is framed by a versioned header
// line carrying the payload size and a CRC32 of the payload:
//
//   csmblob 2 <payload_bytes> <crc32-hex>\n<payload>
//
// Store() writes header + payload to a temp file, fsyncs the file, renames
// it into place and fsyncs the directory — the publish is atomic AND
// durable, so neither a concurrent reader nor a crash at any point can
// observe a torn blob under the final name.  Load() re-validates the frame
// (size and checksum) and *quarantines* — renames to "<name>.quarantine" —
// anything torn, truncated or bit-rotted instead of returning it; the
// engine then rebuilds, and the bad blob stays on disk for post-mortems.
//
// Construction runs a recovery scan over the spool: leftover temp files
// from crashed writers are deleted and every *.csmss frame is validated,
// quarantining corrupt survivors up front so a restarted service never
// trips over them mid-request (see resilience_test kill-and-restart).
//
// The store remains index-free and lock-free on the I/O path: rename is
// the atomicity story, fsync the durability story, and the CRC frame the
// integrity story.  Callers that care about disk growth can prune *.csmss
// and *.quarantine files externally.

#ifndef CSM_SERVICE_DISK_STORE_H_
#define CSM_SERVICE_DISK_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "core/session_store.h"

namespace csm {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`.  Exposed for tests
/// that craft corrupt / truncated blob fixtures.
uint32_t Crc32(const std::string& data);

class DiskSessionStore : public SessionColdStore {
 public:
  /// `directory` is created (recursively) on first Store if missing.  If it
  /// already exists, a recovery scan validates every blob and quarantines
  /// corrupt ones (see RecoverScan).
  explicit DiskSessionStore(std::string directory);

  bool Load(uint64_t key, std::string* blob) override;
  bool Store(uint64_t key, const std::string& blob) override;

  /// Validates every *.csmss frame under the directory, renames failures to
  /// "<name>.quarantine", and deletes leftover "*.tmp.*" files from crashed
  /// writers.  Idempotent; runs at construction.  Returns the number of
  /// blobs quarantined by this scan.
  size_t RecoverScan();

  /// Path a key maps to (for tests and external pruning).
  std::string PathForKey(uint64_t key) const;

  uint64_t loads() const;
  uint64_t load_hits() const;
  uint64_t stores() const;
  /// Blobs quarantined (by Load validation or RecoverScan) since creation.
  uint64_t quarantined() const;
  uint64_t Quarantined() const override { return quarantined(); }
  /// Valid blobs counted by the last RecoverScan.
  uint64_t recovered_valid() const;

 private:
  /// Renames `path` to "<path>.quarantine" (best effort) and counts it.
  void Quarantine(const std::string& path);

  std::string directory_;
  /// Counter updates only; file I/O runs unlocked (rename is the atomicity
  /// story, not this mutex).
  mutable std::mutex mu_;
  uint64_t loads_ = 0;
  uint64_t load_hits_ = 0;
  uint64_t stores_ = 0;
  uint64_t quarantined_ = 0;
  uint64_t recovered_valid_ = 0;
};

}  // namespace csm

#endif  // CSM_SERVICE_DISK_STORE_H_
