// DiskSessionStore: the filesystem-backed cold session tier.
//
// One file per key under a spool directory, named by the 16-hex-digit key
// with a ".csmss" extension.  Store() writes to a temp file and renames it
// into place, so readers (including other processes sharing the directory)
// only ever observe complete blobs — concurrent writers race benignly to
// last-writer-wins, which is fine because equal keys hold equal content.
//
// The store is deliberately dumb: no index, no eviction, no locking.  The
// engine treats every blob as untrusted and re-validates on parse, so a
// truncated or stale file costs one rebuild, nothing else.  Callers that
// care about disk growth can prune *.csmss files externally.

#ifndef CSM_SERVICE_DISK_STORE_H_
#define CSM_SERVICE_DISK_STORE_H_

#include <mutex>
#include <string>

#include "core/session_store.h"

namespace csm {

class DiskSessionStore : public SessionColdStore {
 public:
  /// `directory` is created (recursively) on first Store if missing.
  explicit DiskSessionStore(std::string directory);

  bool Load(uint64_t key, std::string* blob) override;
  bool Store(uint64_t key, const std::string& blob) override;

  /// Path a key maps to (for tests and external pruning).
  std::string PathForKey(uint64_t key) const;

  uint64_t loads() const { return loads_; }
  uint64_t load_hits() const { return load_hits_; }
  uint64_t stores() const { return stores_; }

 private:
  std::string directory_;
  /// Counter updates only; file I/O runs unlocked (rename is the atomicity
  /// story, not this mutex).
  mutable std::mutex mu_;
  uint64_t loads_ = 0;
  uint64_t load_hits_ = 0;
  uint64_t stores_ = 0;
};

}  // namespace csm

#endif  // CSM_SERVICE_DISK_STORE_H_
