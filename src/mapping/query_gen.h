// Mapping-query generation (Section 4.1): turn accepted matches plus
// logical tables into executable mapping queries from source relations
// (base tables and views) to target tables, with Skolem terms for target
// attributes the source does not cover.

#ifndef CSM_MAPPING_QUERY_GEN_H_
#define CSM_MAPPING_QUERY_GEN_H_

#include <optional>
#include <string>
#include <vector>

#include "mapping/association.h"
#include "mapping/constraints.h"
#include "match/match_types.h"
#include "relational/schema.h"
#include "relational/view.h"

namespace csm {

/// How one target attribute is produced.
struct TargetAttrMapping {
  std::string target_attribute;
  /// Source (relation, attribute) when mapped; nullopt for Skolem/NULL.
  std::optional<std::pair<std::string, std::string>> source;
  /// Confidence of the match this mapping came from.
  double confidence = 0.0;
  /// Unmapped attributes get a Skolem term (string attributes) or NULL.
  bool skolem = false;
};

/// A mapping query: populate `target_table` from one logical table.
struct MappingQuery {
  std::string target_table;
  LogicalTable logical;
  std::vector<TargetAttrMapping> attr_mappings;

  /// SQL rendering: SELECT <exprs> FROM r1 FULL OUTER JOIN r2 ON ... with
  /// views inlined as parenthesized subqueries.
  std::string ToSql(const std::vector<View>& views) const;
};

/// Generates the mapping queries for every target table covered by
/// `matches`.  `views` supplies the definitions of the view relations the
/// matches mention (a match whose condition is non-true originates from the
/// view with the same base table and condition).  `constraints` must
/// already include propagated view constraints.  Returns one query per
/// (target table, logical table) pair; Clio's map(ping) is the union of the
/// queries sharing a target table.
std::vector<MappingQuery> GenerateMappings(const Schema& target_schema,
                                           const MatchList& matches,
                                           const std::vector<View>& views,
                                           const ConstraintSet& constraints);

/// The relation name a match originates from: the matching view's name when
/// the match has a condition, the base table otherwise.  Returns "" when a
/// conditioned match has no corresponding view in `views`.
std::string MatchRelation(const Match& match, const std::vector<View>& views);

}  // namespace csm

#endif  // CSM_MAPPING_QUERY_GEN_H_
