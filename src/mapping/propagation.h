// Constraint propagation from base tables to views (Section 4.2, method
// (b)): sound — but deliberately incomplete, since Theorem 4.1 shows the
// general propagation problem for keys and (contextual) foreign keys of SP
// views is undecidable — inference rules deriving view constraints from
// base-table constraints.
//
// Implemented rules (V is a view on R1 via "select Y from R1 where c"):
//   key-projection:       R1[X] -> R1, X ⊆ att(V)        ⇒  V[X] -> V
//   contextual propagation: R1[X, a] -> R1, c is (a = v) ⇒  V[X] -> V
//   contextual constraint:  R1[X, a] -> R1, c is (a = v) ⇒
//                             V[X, a = v] ⊆ R1[X, a]
//   FK-propagation:        R1[Y] ⊆ R0[X], Y ⊆ att(V)     ⇒  V[Y] ⊆ R0[X]
//   view-referencing:      R1[X] -> R1, X ⊆ att(V), a ∈ X,
//                          c is (a IN {v1..vn}) covering a's domain
//                                                        ⇒  R1[X] ⊆ V[X]

#ifndef CSM_MAPPING_PROPAGATION_H_
#define CSM_MAPPING_PROPAGATION_H_

#include <vector>

#include "mapping/constraints.h"
#include "relational/table.h"
#include "relational/view.h"

namespace csm {

struct PropagationInput {
  /// Views to derive constraints for.
  std::vector<View> views;
  /// Declared or mined constraints on base tables (and possibly views).
  ConstraintSet base_constraints;
  /// Sample of the source database, used to approximate attribute domains
  /// for the view-referencing rule; may be null to disable that rule.
  const Database* source_sample = nullptr;
};

/// Applies all rules to fixpoint-free single pass (the rules derive only
/// from base constraints, so one pass suffices) and returns the derived
/// view constraints.
ConstraintSet PropagateConstraints(const PropagationInput& input);

}  // namespace csm

#endif  // CSM_MAPPING_PROPAGATION_H_
