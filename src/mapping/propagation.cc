#include "mapping/propagation.h"

#include <algorithm>
#include <set>

namespace csm {
namespace {

/// att(V): the view's projection, or all base attributes when select-*.
std::vector<std::string> ViewAttributes(const View& view,
                                        const Database* source_sample) {
  if (view.has_projection()) return view.projection();
  if (source_sample != nullptr) {
    const Table* base = source_sample->FindTable(view.base_table());
    if (base != nullptr) {
      std::vector<std::string> out;
      for (const auto& attr : base->schema().attributes()) {
        out.push_back(attr.name);
      }
      return out;
    }
  }
  return {};
}

bool Contains(const std::vector<std::string>& attrs, const std::string& name) {
  return std::find(attrs.begin(), attrs.end(), name) != attrs.end();
}

bool ContainsAll(const std::vector<std::string>& attrs,
                 const std::vector<std::string>& subset) {
  for (const std::string& name : subset) {
    if (!Contains(attrs, name)) return false;
  }
  return true;
}

}  // namespace

ConstraintSet PropagateConstraints(const PropagationInput& input) {
  ConstraintSet derived;

  for (const View& view : input.views) {
    const std::vector<std::string> view_attrs =
        ViewAttributes(view, input.source_sample);
    if (view_attrs.empty()) continue;
    const Condition& condition = view.condition();
    const bool simple_equality = condition.NumAttributes() == 1 &&
                                 condition.clauses()[0].values.size() == 1;
    const std::string cond_attr =
        condition.NumAttributes() == 1 ? condition.clauses()[0].attribute : "";

    for (const Key& key : input.base_constraints.keys) {
      if (key.relation != view.base_table()) continue;

      // key-projection: the whole base key projects into the view.
      if (ContainsAll(view_attrs, key.attributes)) {
        derived.Add(Key{view.name(), key.attributes});
      }

      if (simple_equality && Contains(key.attributes, cond_attr)) {
        // X = key attributes minus the selection attribute a.
        std::vector<std::string> x;
        for (const std::string& attr : key.attributes) {
          if (attr != cond_attr) x.push_back(attr);
        }
        if (!x.empty() && ContainsAll(view_attrs, x)) {
          const Value& v = condition.clauses()[0].values[0];
          // contextual propagation: V[X] -> V.
          derived.Add(Key{view.name(), x});
          // contextual constraint: V[X, a = v] ⊆ R1[X, a].
          derived.Add(ContextualForeignKey{view.name(), x, cond_attr, v,
                                           view.base_table(), x, cond_attr});
        }
      }

      // view-referencing: condition covers the whole domain of a ∈ X.
      if (condition.NumAttributes() == 1 &&
          Contains(key.attributes, cond_attr) &&
          ContainsAll(view_attrs, key.attributes) &&
          input.source_sample != nullptr) {
        const Table* base = input.source_sample->FindTable(view.base_table());
        if (base != nullptr && base->schema().HasAttribute(cond_attr)) {
          std::set<Value> domain;
          for (const auto& [value, count] : base->ValueCounts(cond_attr)) {
            domain.insert(value);
          }
          const auto& clause_values = condition.clauses()[0].values;
          std::set<Value> covered(clause_values.begin(), clause_values.end());
          if (!domain.empty() && domain == covered) {
            derived.Add(ForeignKey{view.base_table(), key.attributes,
                                   view.name(), key.attributes});
          }
        }
      }
    }

    // FK-propagation: base-table FKs whose referencing attributes survive
    // the projection.
    for (const ForeignKey& fk : input.base_constraints.foreign_keys) {
      if (fk.referencing != view.base_table()) continue;
      if (ContainsAll(view_attrs, fk.fk_attributes)) {
        derived.Add(ForeignKey{view.name(), fk.fk_attributes, fk.referenced,
                               fk.key_attributes});
      }
    }
  }
  return derived;
}

}  // namespace csm
