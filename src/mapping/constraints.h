// Keys, foreign keys and contextual foreign keys (Section 4.2).
//
// Keys and foreign keys are the classical notions extended so that either
// side may be a view.  A contextual foreign key
//     V1[Y, a = v]  ⊆  R[X, B]
// states that the Y attributes of view V1, augmented with the constant v as
// the value of attribute a (V1's selection constant, not necessarily in
// att(V1)), reference the key [X, B] of R.

#ifndef CSM_MAPPING_CONSTRAINTS_H_
#define CSM_MAPPING_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace csm {

/// R[X] -> R: the X attributes uniquely identify tuples of `relation`
/// (a base table or a view).
struct Key {
  std::string relation;
  std::vector<std::string> attributes;

  std::string ToString() const;
  friend bool operator==(const Key& a, const Key& b) {
    return a.relation == b.relation && a.attributes == b.attributes;
  }
};

/// R2[Y] ⊆ R1[X]: the Y attributes of `referencing` reference key X of
/// `referenced`.  Either side may be a view.
struct ForeignKey {
  std::string referencing;
  std::vector<std::string> fk_attributes;  // Y
  std::string referenced;
  std::vector<std::string> key_attributes;  // X

  std::string ToString() const;
  friend bool operator==(const ForeignKey& a, const ForeignKey& b) {
    return a.referencing == b.referencing &&
           a.fk_attributes == b.fk_attributes &&
           a.referenced == b.referenced &&
           a.key_attributes == b.key_attributes;
  }
};

/// V1[Y, a = v] ⊆ R[X, B] (Section 4.2).
struct ContextualForeignKey {
  std::string view;                         // V1
  std::vector<std::string> fk_attributes;   // Y
  std::string context_attribute;            // a
  Value context_value;                      // v
  std::string referenced;                   // R
  std::vector<std::string> key_attributes;  // X
  std::string referenced_context_attribute;  // B

  std::string ToString() const;
  friend bool operator==(const ContextualForeignKey& a,
                         const ContextualForeignKey& b) {
    return a.view == b.view && a.fk_attributes == b.fk_attributes &&
           a.context_attribute == b.context_attribute &&
           a.context_value == b.context_value &&
           a.referenced == b.referenced &&
           a.key_attributes == b.key_attributes &&
           a.referenced_context_attribute == b.referenced_context_attribute;
  }
};

/// A bag of constraints over one schema (base tables and views together).
struct ConstraintSet {
  std::vector<Key> keys;
  std::vector<ForeignKey> foreign_keys;
  std::vector<ContextualForeignKey> contextual_foreign_keys;

  void Add(Key key);
  void Add(ForeignKey fk);
  void Add(ContextualForeignKey cfk);

  /// Merges `other` into this set (deduplicating).
  void Merge(const ConstraintSet& other);

  /// All keys declared on `relation`.
  std::vector<const Key*> KeysOf(std::string_view relation) const;

  /// True if `attributes` is (a superset of) some key of `relation`.
  bool HasKey(std::string_view relation,
              const std::vector<std::string>& attributes) const;

  size_t size() const {
    return keys.size() + foreign_keys.size() +
           contextual_foreign_keys.size();
  }

  std::string ToString() const;
};

}  // namespace csm

#endif  // CSM_MAPPING_CONSTRAINTS_H_
