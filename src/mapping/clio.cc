#include "mapping/clio.h"

namespace csm {

SchemaMappingResult BuildSchemaMapping(const Database& source,
                                       const Schema& target_schema,
                                       const MatchList& matches,
                                       const std::vector<View>& selected_views,
                                       const ConstraintSet& declared,
                                       const MiningOptions& mining) {
  SchemaMappingResult result;
  result.views = selected_views;
  result.matches = matches;

  // Declared constraints + mined base constraints.
  result.constraints = declared;
  result.constraints.Merge(MineConstraints(source, mining));

  // Method (a): mine keys directly on view instances (zero-copy PosList
  // views over the base table; nothing is materialized).
  for (const View& view : selected_views) {
    const Table* base = source.FindTable(view.base_table());
    if (base == nullptr) continue;
    for (Key& key : MineKeys(view.Bind(*base), mining)) {
      key.relation = view.name();
      result.constraints.Add(std::move(key));
    }
  }

  // Method (b): sound propagation rules.
  PropagationInput propagation;
  propagation.views = selected_views;
  propagation.base_constraints = result.constraints;
  propagation.source_sample = &source;
  result.constraints.Merge(PropagateConstraints(propagation));

  result.queries = GenerateMappings(target_schema, matches, selected_views,
                                    result.constraints);
  return result;
}

ClioQualTableResult ClioQualTable(const Database& source,
                                  const Database& target,
                                  const ContextMatchOptions& options) {
  ClioQualTableResult result;
  ContextMatchOptions qual_options = options;
  qual_options.selection = SelectionPolicy::kQualTable;
  result.match_result = ContextMatch(source, target, qual_options);
  result.mapping = BuildSchemaMapping(source, target.GetSchema(),
                                      result.match_result.matches,
                                      result.match_result.selected_views);
  return result;
}

}  // namespace csm
