// Constraint mining from sample data (Section 4.2 method (a): "employ
// constraint mining tools on sample data to discover keys and (contextual)
// foreign keys on views, as Clio does ... on base tables").
//
// Mined constraints hold on the sample; like all mined constraints they are
// hypotheses, not guarantees — the propagation rules of
// mapping/propagation.h are the sound companion mechanism.

#ifndef CSM_MAPPING_CONSTRAINT_MINING_H_
#define CSM_MAPPING_CONSTRAINT_MINING_H_

#include "mapping/constraints.h"
#include "relational/table.h"
#include "relational/table_view.h"

namespace csm {

struct MiningOptions {
  /// Maximum attributes in a mined key (1 = single-attribute keys only).
  size_t max_key_size = 2;
  /// Do not mine composite keys when a single-attribute key subsumes them.
  bool minimal_keys_only = true;
  /// FK mining: the referencing column's distinct non-null values must all
  /// appear in the referenced key column.
  bool mine_foreign_keys = true;
  /// FK mining requires at least this many distinct referencing values
  /// (sparse columns produce spurious inclusions).
  size_t min_fk_distinct_values = 2;
};

/// Mines keys of `instance`: attribute sets of size <= max_key_size whose
/// non-null projections are duplicate-free.  Columns that contain NULLs are
/// not key candidates.  Takes a zero-copy view so mapping discovery can mine
/// keys of a view's PosList without materializing it; a Table converts
/// implicitly.
std::vector<Key> MineKeys(const TableView& instance,
                          const MiningOptions& options = {});

/// Mines single-attribute foreign keys across `tables`: R2[y] ⊆ R1[x] where
/// x is a mined (or supplied) key of R1 and the value-inclusion holds on
/// the sample.  Self-references of an attribute to itself are skipped.
std::vector<ForeignKey> MineForeignKeys(const std::vector<const Table*>& tables,
                                        const ConstraintSet& known_keys,
                                        const MiningOptions& options = {});

/// Convenience: mine keys of every table then FKs between them.
ConstraintSet MineConstraints(const Database& db,
                              const MiningOptions& options = {});

}  // namespace csm

#endif  // CSM_MAPPING_CONSTRAINT_MINING_H_
