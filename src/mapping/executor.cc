#include "mapping/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace csm {
namespace {

/// A flat join result whose columns are qualified (relation, attribute)
/// pairs.
struct JoinedRows {
  std::vector<std::pair<std::string, std::string>> columns;
  std::vector<Row> rows;
  std::set<std::string> relations;

  std::optional<size_t> FindColumn(const std::string& relation,
                                   const std::string& attribute) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].first == relation && columns[i].second == attribute) {
        return i;
      }
    }
    return std::nullopt;
  }
};

/// Wraps a materialized relation instance as a JoinedRows.
JoinedRows Wrap(const Table& instance, const std::string& relation) {
  JoinedRows out;
  for (const auto& attr : instance.schema().attributes()) {
    out.columns.emplace_back(relation, attr.name);
  }
  out.rows = instance.rows();
  out.relations.insert(relation);
  return out;
}

/// A hashable rendering of the join-key values of one row; nullopt when any
/// key value is NULL (NULLs never join).
std::optional<std::string> KeyOf(const Row& row,
                                 const std::vector<size_t>& cols) {
  std::string key;
  for (size_t c : cols) {
    if (row[c].is_null()) return std::nullopt;
    key += std::to_string(static_cast<int>(row[c].type()));
    key += ':';
    key += row[c].ToString();
    key += '\x1f';
  }
  return key;
}

/// Full outer join of `left` with `right` on the given column equalities.
JoinedRows FullOuterJoin(const JoinedRows& left, const JoinedRows& right,
                         const std::vector<size_t>& left_cols,
                         const std::vector<size_t>& right_cols) {
  JoinedRows out;
  out.columns = left.columns;
  out.columns.insert(out.columns.end(), right.columns.begin(),
                     right.columns.end());
  out.relations = left.relations;
  out.relations.insert(right.relations.begin(), right.relations.end());

  std::map<std::string, std::vector<size_t>> right_index;
  for (size_t r = 0; r < right.rows.size(); ++r) {
    if (auto key = KeyOf(right.rows[r], right_cols)) {
      right_index[*key].push_back(r);
    }
  }

  std::vector<bool> right_matched(right.rows.size(), false);
  for (const Row& lrow : left.rows) {
    auto key = KeyOf(lrow, left_cols);
    const std::vector<size_t>* partners = nullptr;
    if (key.has_value()) {
      auto it = right_index.find(*key);
      if (it != right_index.end()) partners = &it->second;
    }
    if (partners == nullptr) {
      Row combined = lrow;
      combined.resize(lrow.size() + right.columns.size());  // NULL padding
      out.rows.push_back(std::move(combined));
      continue;
    }
    for (size_t r : *partners) {
      right_matched[r] = true;
      Row combined = lrow;
      combined.insert(combined.end(), right.rows[r].begin(),
                      right.rows[r].end());
      out.rows.push_back(std::move(combined));
    }
  }
  for (size_t r = 0; r < right.rows.size(); ++r) {
    if (right_matched[r]) continue;
    Row combined(left.columns.size());  // NULL padding on the left
    combined.insert(combined.end(), right.rows[r].begin(),
                    right.rows[r].end());
    out.rows.push_back(std::move(combined));
  }
  return out;
}

/// Coerces `value` to `type`; NULL when the coercion is lossy/meaningless.
Value Coerce(const Value& value, ValueType type) {
  if (value.is_null() || value.type() == type) return value;
  switch (type) {
    case ValueType::kString:
      return Value::String(value.ToString());
    case ValueType::kReal:
      if (value.IsNumeric()) return Value::Real(value.AsNumeric());
      return Value::Null();
    case ValueType::kInt:
      if (value.type() == ValueType::kReal) {
        double d = value.AsReal();
        if (d == static_cast<double>(static_cast<int64_t>(d))) {
          return Value::Int(static_cast<int64_t>(d));
        }
      }
      return Value::Null();
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

}  // namespace

StatusOr<Table> ExecuteMapping(const MappingQuery& query,
                               const Database& source,
                               const std::vector<View>& views,
                               const TableSchema& target_schema) {
  if (query.logical.relations.empty()) {
    return Status::InvalidArgument("mapping query has no source relations");
  }

  // Materialize every relation of the logical table.
  std::map<std::string, Table> instances;
  for (const std::string& relation : query.logical.relations) {
    if (const Table* base = source.FindTable(relation)) {
      instances.emplace(relation, *base);
      continue;
    }
    bool found = false;
    for (const View& view : views) {
      if (view.name() != relation) continue;
      const Table* base = source.FindTable(view.base_table());
      if (base == nullptr) {
        return Status::NotFound("view base table '" + view.base_table() +
                                "' not in source");
      }
      instances.emplace(relation, view.Materialize(*base));
      found = true;
      break;
    }
    if (!found) {
      return Status::NotFound("relation '" + relation +
                              "' is neither a source table nor a view");
    }
  }

  // Join along the spanning edges; repeatedly pick an edge with exactly one
  // side already joined.
  JoinedRows joined =
      Wrap(instances.at(query.logical.relations[0]),
           query.logical.relations[0]);
  std::vector<const JoinEdge*> pending;
  for (const JoinEdge& edge : query.logical.joins) pending.push_back(&edge);

  while (!pending.empty()) {
    bool progress = false;
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      const JoinEdge& edge = **it;
      const bool left_in = joined.relations.count(edge.left) > 0;
      const bool right_in = joined.relations.count(edge.right) > 0;
      if (left_in == right_in) continue;  // both or neither: defer/skip

      const std::string& incoming = left_in ? edge.right : edge.left;
      Table instance = instances.at(incoming);
      // (join 3) filter on the referenced side.
      if (edge.filter_attribute.has_value() && incoming == edge.right &&
          instance.schema().HasAttribute(*edge.filter_attribute)) {
        const Condition filter =
            Condition::Equals(*edge.filter_attribute, edge.filter_value);
        instance = instance.SelectRows(filter.MatchingPositions(instance));
      }
      JoinedRows incoming_rows = Wrap(instance, incoming);

      const auto& joined_attrs =
          left_in ? edge.left_attributes : edge.right_attributes;
      const auto& incoming_attrs =
          left_in ? edge.right_attributes : edge.left_attributes;
      const std::string& joined_rel = left_in ? edge.left : edge.right;

      std::vector<size_t> jcols, icols;
      for (size_t i = 0; i < joined_attrs.size(); ++i) {
        auto jc = joined.FindColumn(joined_rel, joined_attrs[i]);
        auto ic = incoming_rows.FindColumn(incoming, incoming_attrs[i]);
        if (!jc.has_value() || !ic.has_value()) {
          return Status::Internal("join attribute missing: " +
                                  edge.ToString());
        }
        jcols.push_back(*jc);
        icols.push_back(*ic);
      }
      joined = FullOuterJoin(joined, incoming_rows, jcols, icols);
      pending.erase(it);
      progress = true;
      break;
    }
    if (!progress) break;  // disconnected leftovers (shouldn't happen)
  }

  // Project into the target schema.
  Table result(target_schema);
  std::set<std::string> seen_rows;
  for (const Row& row : joined.rows) {
    Row target_row;
    target_row.reserve(target_schema.num_attributes());
    // First pass: mapped values (also collected for Skolem arguments).
    std::string skolem_args;
    std::vector<Value> mapped(query.attr_mappings.size());
    for (size_t i = 0; i < query.attr_mappings.size(); ++i) {
      const TargetAttrMapping& m = query.attr_mappings[i];
      if (!m.source.has_value()) continue;
      auto col = joined.FindColumn(m.source->first, m.source->second);
      if (!col.has_value()) continue;
      mapped[i] = row[*col];
      if (!mapped[i].is_null()) {
        if (!skolem_args.empty()) skolem_args += ",";
        skolem_args += mapped[i].ToString();
      }
    }
    for (size_t i = 0; i < query.attr_mappings.size(); ++i) {
      const TargetAttrMapping& m = query.attr_mappings[i];
      size_t attr_index = target_schema.AttributeIndex(m.target_attribute);
      ValueType type = target_schema.attribute(attr_index).type;
      if (m.source.has_value()) {
        target_row.push_back(Coerce(mapped[i], type));
      } else if (m.skolem) {
        target_row.push_back(Value::String(
            "sk_" + query.target_table + "_" + m.target_attribute + "(" +
            skolem_args + ")"));
      } else {
        target_row.push_back(Value::Null());
      }
    }
    // Collapse exact duplicates.
    std::string fingerprint;
    for (const Value& v : target_row) {
      fingerprint += std::to_string(static_cast<int>(v.type())) + ":" +
                     v.ToString() + '\x1f';
    }
    if (seen_rows.insert(std::move(fingerprint)).second) {
      result.AddRow(std::move(target_row));
    }
  }
  return result;
}

StatusOr<Database> ExecuteMappings(const std::vector<MappingQuery>& queries,
                                   const Database& source,
                                   const std::vector<View>& views,
                                   const Schema& target_schema) {
  Database out(target_schema.name());
  for (const TableSchema& table_schema : target_schema.tables()) {
    Table merged(table_schema);
    for (const MappingQuery& query : queries) {
      if (query.target_table != table_schema.name()) continue;
      CSM_ASSIGN_OR_RETURN(Table part,
                           ExecuteMapping(query, source, views, table_schema));
      for (const Row& row : part.rows()) merged.AddRow(row);
    }
    out.AddTable(std::move(merged));
  }
  return out;
}

}  // namespace csm
