// End-to-end schema mapping: ContextMatch output -> constraints -> logical
// tables -> executable mapping queries.  ClioQualTable (Section 5.7) is
// QualTable selection followed by this pipeline with the Section 4.3 join
// rules enabled.

#ifndef CSM_MAPPING_CLIO_H_
#define CSM_MAPPING_CLIO_H_

#include <vector>

#include "core/context_match.h"
#include "mapping/constraint_mining.h"
#include "mapping/executor.h"
#include "mapping/propagation.h"
#include "mapping/query_gen.h"

namespace csm {

/// Everything the mapping phase produced.
struct SchemaMappingResult {
  /// The views the matches originate from.
  std::vector<View> views;
  /// Declared + mined base constraints plus propagated/mined view
  /// constraints.
  ConstraintSet constraints;
  /// One query per (target table, logical table).
  std::vector<MappingQuery> queries;
  /// The matches the queries were generated from.
  MatchList matches;
};

/// Builds mapping queries from contextual matches.
///
/// `declared` carries any schema-declared constraints (may be empty); keys
/// and FKs are additionally mined from `source` samples, view constraints
/// are mined on materialized views and derived with the propagation rules,
/// and the join rules of Section 4.3 assemble the logical tables.
SchemaMappingResult BuildSchemaMapping(const Database& source,
                                       const Schema& target_schema,
                                       const MatchList& matches,
                                       const std::vector<View>& selected_views,
                                       const ConstraintSet& declared = {},
                                       const MiningOptions& mining = {});

/// ClioQualTable: ContextMatch with QualTable selection, then the full
/// mapping pipeline.
struct ClioQualTableResult {
  ContextMatchResult match_result;
  SchemaMappingResult mapping;
};

ClioQualTableResult ClioQualTable(const Database& source,
                                  const Database& target,
                                  const ContextMatchOptions& options);

}  // namespace csm

#endif  // CSM_MAPPING_CLIO_H_
