// Execution of mapping queries on source instances, so a generated mapping
// can be *run*: materialize the logical table's relations (views included),
// full-outer-join them along the derived join edges, then project into the
// target schema, generating Skolem terms for uncovered string attributes.

#ifndef CSM_MAPPING_EXECUTOR_H_
#define CSM_MAPPING_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "mapping/query_gen.h"
#include "relational/table.h"
#include "relational/view.h"

namespace csm {

/// Executes one mapping query.  `views` must define every view relation the
/// query mentions; `target_schema` is the schema of the target table being
/// populated.  Exact duplicate output rows are collapsed.
StatusOr<Table> ExecuteMapping(const MappingQuery& query,
                               const Database& source,
                               const std::vector<View>& views,
                               const TableSchema& target_schema);

/// Executes a batch of mapping queries, unioning the results per target
/// table.  Tables of `target_schema` with no queries come back empty.
StatusOr<Database> ExecuteMappings(const std::vector<MappingQuery>& queries,
                                   const Database& source,
                                   const std::vector<View>& views,
                                   const Schema& target_schema);

}  // namespace csm

#endif  // CSM_MAPPING_EXECUTOR_H_
