#include "mapping/association.h"

// GCC 12 emits a spurious -Wmaybe-uninitialized for the fully
// default-constructed JoinEdge (std::optional member) under -O2.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace csm {
namespace {

const View* FindView(const std::vector<View>& views, const std::string& name) {
  for (const View& view : views) {
    if (view.name() == name) return &view;
  }
  return nullptr;
}

/// Simple 1-clause condition accessors; nullopt if the condition is not a
/// single clause.
const ConditionClause* SingleClause(const View& view) {
  if (view.condition().NumAttributes() != 1) return nullptr;
  return &view.condition().clauses()[0];
}

bool DisjointValues(const ConditionClause& a, const ConditionClause& b) {
  for (const Value& value : a.values) {
    if (b.Matches(value)) return false;
  }
  return true;
}

/// Keys of `relation` in `constraints` whose attribute sets also key
/// `other` (shared X for join 1/2).
std::vector<std::vector<std::string>> SharedKeys(
    const ConstraintSet& constraints, const std::string& relation,
    const std::string& other) {
  std::vector<std::vector<std::string>> out;
  for (const Key* key : constraints.KeysOf(relation)) {
    if (constraints.HasKey(other, key->attributes)) {
      out.push_back(key->attributes);
    }
  }
  return out;
}

/// True when `view` has a contextual FK on exactly `x` (condition (b) of
/// join 1 / join 2).
bool HasContextualFkOn(const ConstraintSet& constraints,
                       const std::string& view,
                       const std::vector<std::string>& x) {
  for (const ContextualForeignKey& cfk : constraints.contextual_foreign_keys) {
    if (cfk.view == view && cfk.fk_attributes == x) return true;
  }
  return false;
}

struct UnionFind {
  std::vector<size_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent[ra] = rb;
    return true;
  }
};

}  // namespace

const char* JoinRuleKindToString(JoinRuleKind kind) {
  switch (kind) {
    case JoinRuleKind::kForeignKey:
      return "fk";
    case JoinRuleKind::kJoin1:
      return "join1";
    case JoinRuleKind::kJoin2:
      return "join2";
    case JoinRuleKind::kJoin3:
      return "join3";
  }
  return "unknown";
}

std::string JoinEdge::ToString() const {
  std::string out = left + " ⋈ " + right + " on (";
  for (size_t i = 0; i < left_attributes.size(); ++i) {
    if (i > 0) out += ", ";
    out += left + "." + left_attributes[i] + " = " + right + "." +
           right_attributes[i];
  }
  out += ") [" + std::string(JoinRuleKindToString(rule));
  if (filter_attribute.has_value()) {
    out += ", " + right + "." + *filter_attribute + " = " +
           filter_value.ToString();
  }
  out += "]";
  return out;
}

std::vector<JoinEdge> DeriveJoinEdges(const std::vector<std::string>& relations,
                                      const std::vector<View>& views,
                                      const ConstraintSet& constraints) {
  std::vector<JoinEdge> edges;
  std::set<std::string> in_scope(relations.begin(), relations.end());

  // Clio rule: (propagated) foreign keys between in-scope relations.
  for (const ForeignKey& fk : constraints.foreign_keys) {
    if (in_scope.count(fk.referencing) == 0 ||
        in_scope.count(fk.referenced) == 0) {
      continue;
    }
    if (fk.referencing == fk.referenced) continue;
    JoinEdge edge;
    edge.left = fk.referencing;
    edge.right = fk.referenced;
    edge.left_attributes = fk.fk_attributes;
    edge.right_attributes = fk.key_attributes;
    edge.rule = JoinRuleKind::kForeignKey;
    edges.push_back(std::move(edge));
  }

  // (join 3): contextual FK from an in-scope view to an in-scope relation.
  for (const ContextualForeignKey& cfk : constraints.contextual_foreign_keys) {
    if (in_scope.count(cfk.view) == 0 ||
        in_scope.count(cfk.referenced) == 0) {
      continue;
    }
    if (cfk.view == cfk.referenced) continue;
    JoinEdge edge;
    edge.left = cfk.view;
    edge.right = cfk.referenced;
    edge.left_attributes = cfk.fk_attributes;
    edge.right_attributes = cfk.key_attributes;
    edge.rule = JoinRuleKind::kJoin3;
    edge.filter_attribute.emplace(cfk.referenced_context_attribute);
    edge.filter_value = cfk.context_value;
    edges.push_back(std::move(edge));
  }

  // (join 1) and (join 2): pairs of in-scope views over the same base.
  for (size_t i = 0; i < relations.size(); ++i) {
    const View* v1 = FindView(views, relations[i]);
    if (v1 == nullptr) continue;
    const ConditionClause* c1 = SingleClause(*v1);
    if (c1 == nullptr) continue;
    for (size_t j = i + 1; j < relations.size(); ++j) {
      const View* v2 = FindView(views, relations[j]);
      if (v2 == nullptr) continue;
      if (v1->base_table() != v2->base_table()) continue;
      const ConditionClause* c2 = SingleClause(*v2);
      if (c2 == nullptr) continue;

      const bool same_projection = v1->projection() == v2->projection();
      JoinRuleKind rule;
      if (same_projection && c1->attribute == c2->attribute &&
          DisjointValues(*c1, *c2)) {
        // (join 1): same attributes, same condition attribute, different
        // (disjoint) values.
        rule = JoinRuleKind::kJoin1;
      } else if (!same_projection && c1->attribute == c2->attribute &&
                 c1->values == c2->values) {
        // (join 2): different attributes, *same* condition.
        rule = JoinRuleKind::kJoin2;
      } else {
        continue;
      }

      for (const auto& x : SharedKeys(constraints, v1->name(), v2->name())) {
        // Both views must carry a (contextual) FK on X back to a common
        // relation (condition (b) of the rules).
        if (!HasContextualFkOn(constraints, v1->name(), x) ||
            !HasContextualFkOn(constraints, v2->name(), x)) {
          continue;
        }
        JoinEdge edge;
        edge.left = v1->name();
        edge.right = v2->name();
        edge.left_attributes = x;
        edge.right_attributes = x;
        edge.rule = rule;
        edges.push_back(std::move(edge));
        break;  // one join per pair suffices
      }
    }
  }
  return edges;
}

std::string LogicalTable::ToString() const {
  std::string out = "logical-table {";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) out += ", ";
    out += relations[i];
  }
  out += "}";
  for (const JoinEdge& edge : joins) {
    out += "\n  " + edge.ToString();
  }
  return out;
}

std::vector<LogicalTable> AssembleLogicalTables(
    const std::vector<std::string>& relations,
    const std::vector<JoinEdge>& edges) {
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < relations.size(); ++i) index[relations[i]] = i;

  UnionFind uf(relations.size());
  std::vector<JoinEdge> spanning;
  for (const JoinEdge& edge : edges) {
    auto li = index.find(edge.left);
    auto ri = index.find(edge.right);
    if (li == index.end() || ri == index.end()) continue;
    if (uf.Union(li->second, ri->second)) {
      spanning.push_back(edge);
    }
  }

  // Group relations by component root, preserving input order.
  std::map<size_t, LogicalTable> components;
  std::vector<size_t> order;
  for (size_t i = 0; i < relations.size(); ++i) {
    size_t root = uf.Find(i);
    if (components.find(root) == components.end()) order.push_back(root);
    components[root].relations.push_back(relations[i]);
  }
  for (const JoinEdge& edge : spanning) {
    size_t root = uf.Find(index[edge.left]);
    components[root].joins.push_back(edge);
  }

  std::vector<LogicalTable> out;
  out.reserve(order.size());
  for (size_t root : order) out.push_back(std::move(components[root]));
  return out;
}

}  // namespace csm
