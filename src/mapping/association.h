// Semantic association of attributes across views and base tables
// (Section 4.3): derive join edges with Clio's foreign-key rule plus the
// paper's new rules (join 1), (join 2), (join 3), then group relations into
// logical tables.

#ifndef CSM_MAPPING_ASSOCIATION_H_
#define CSM_MAPPING_ASSOCIATION_H_

#include <optional>
#include <string>
#include <vector>

#include "mapping/constraints.h"
#include "relational/view.h"

namespace csm {

enum class JoinRuleKind {
  kForeignKey,  // Clio: outer-join on a (possibly propagated) foreign key
  kJoin1,       // views over the same attrs of one base, different values
  kJoin2,       // views over different attrs of one base, same condition
  kJoin3,       // contextual foreign key from a view to a relation
};

const char* JoinRuleKindToString(JoinRuleKind kind);

/// A derived (outer-)join between two relations on attribute equality,
/// optionally with a constant filter on the right side (join 3's B = v).
struct JoinEdge {
  std::string left;
  std::string right;
  std::vector<std::string> left_attributes;
  std::vector<std::string> right_attributes;
  JoinRuleKind rule = JoinRuleKind::kForeignKey;
  /// join 3 only: require right.`filter_attribute` = `filter_value`.
  std::optional<std::string> filter_attribute;
  Value filter_value;

  std::string ToString() const;
};

/// Derives all join edges among `relations` (view names and/or base-table
/// names).  `views` supplies the definitions of any views among them;
/// `constraints` must already contain the propagated view constraints.
std::vector<JoinEdge> DeriveJoinEdges(const std::vector<std::string>& relations,
                                      const std::vector<View>& views,
                                      const ConstraintSet& constraints);

/// A logical table: a connected set of relations plus the spanning join
/// edges that group their attributes (Section 4.1 (a)).
struct LogicalTable {
  std::vector<std::string> relations;
  std::vector<JoinEdge> joins;

  std::string ToString() const;
};

/// Partitions `relations` into logical tables using `edges` (union-find);
/// each component keeps a spanning subset of the edges in input order.
std::vector<LogicalTable> AssembleLogicalTables(
    const std::vector<std::string>& relations,
    const std::vector<JoinEdge>& edges);

}  // namespace csm

#endif  // CSM_MAPPING_ASSOCIATION_H_
