#include "mapping/validation.h"

#include <limits>
#include <map>
#include <optional>
#include <set>

#include "relational/table_view.h"

namespace csm {
namespace {

/// Resolves `relation` to an instance view: the identity view of a base
/// table of `instance`, or a zero-copy PosList view over one (the view's
/// matching positions are computed once and cached in `storage`; no rows
/// are copied).
TableView ResolveRelation(const Database& instance,
                          const std::vector<View>& views,
                          const std::string& relation,
                          std::map<std::string, TableView>& storage) {
  if (const Table* base = instance.FindTable(relation)) {
    return TableView(*base);
  }
  auto it = storage.find(relation);
  if (it != storage.end()) return it->second;
  for (const View& view : views) {
    if (view.name() != relation) continue;
    const Table* base = instance.FindTable(view.base_table());
    if (base == nullptr) return TableView();
    auto [inserted, ok] = storage.emplace(relation, view.Bind(*base));
    return inserted->second;
  }
  return TableView();
}

/// Type-tagged rendering of a projection for hashing; nullopt when any
/// value is NULL (NULL never equals NULL for key purposes, and NULL FK
/// values reference nothing).
std::optional<std::string> ProjectionKey(const TableView& table, size_t row,
                                         const std::vector<size_t>& cols) {
  std::string out;
  for (size_t c : cols) {
    const Value v = table.ValueAt(row, c);
    if (v.is_null()) return std::nullopt;
    out += std::to_string(static_cast<int>(v.type()));
    out += ':';
    out += v.ToString();
    out += '\x1f';
  }
  return out;
}

std::optional<std::vector<size_t>> ResolveColumns(
    const TableView& table, const std::vector<std::string>& attributes) {
  std::vector<size_t> cols;
  for (const std::string& name : attributes) {
    auto index = table.schema().FindAttribute(name);
    if (!index.has_value()) return std::nullopt;
    cols.push_back(*index);
  }
  return cols;
}

std::string DescribeRow(const TableView& table, size_t row,
                        const std::vector<size_t>& cols) {
  std::string out = "(";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ", ";
    out += table.ValueAt(row, cols[i]).ToString();
  }
  out += ")";
  return out;
}

}  // namespace

std::vector<ConstraintViolation> CheckConstraints(
    const Database& instance, const ConstraintSet& constraints,
    const std::vector<View>& views, size_t max_violations_per_constraint) {
  std::vector<ConstraintViolation> violations;
  std::map<std::string, TableView> resolved;
  const size_t cap = max_violations_per_constraint == 0
                         ? std::numeric_limits<size_t>::max()
                         : max_violations_per_constraint;

  // ---- Keys ------------------------------------------------------------
  for (const Key& key : constraints.keys) {
    const TableView table =
        ResolveRelation(instance, views, key.relation, resolved);
    if (!table.valid()) continue;
    auto cols = ResolveColumns(table, key.attributes);
    if (!cols.has_value()) continue;
    std::map<std::string, size_t> seen;
    size_t reported = 0;
    for (size_t r = 0; r < table.num_rows() && reported < cap; ++r) {
      auto k = ProjectionKey(table, r, *cols);
      if (!k.has_value()) continue;
      auto [it, inserted] = seen.emplace(*k, r);
      if (!inserted) {
        violations.push_back(ConstraintViolation{
            key.ToString(),
            "rows " + std::to_string(it->second) + " and " +
                std::to_string(r) + " share " +
                DescribeRow(table, r, *cols)});
        ++reported;
      }
    }
  }

  // ---- Foreign keys ------------------------------------------------------
  for (const ForeignKey& fk : constraints.foreign_keys) {
    const TableView referencing =
        ResolveRelation(instance, views, fk.referencing, resolved);
    const TableView referenced =
        ResolveRelation(instance, views, fk.referenced, resolved);
    if (!referencing.valid() || !referenced.valid()) continue;
    auto ref_cols = ResolveColumns(referencing, fk.fk_attributes);
    auto key_cols = ResolveColumns(referenced, fk.key_attributes);
    if (!ref_cols.has_value() || !key_cols.has_value()) continue;
    std::set<std::string> key_values;
    for (size_t r = 0; r < referenced.num_rows(); ++r) {
      if (auto k = ProjectionKey(referenced, r, *key_cols)) {
        key_values.insert(*k);
      }
    }
    size_t reported = 0;
    for (size_t r = 0; r < referencing.num_rows() && reported < cap; ++r) {
      auto k = ProjectionKey(referencing, r, *ref_cols);
      if (!k.has_value()) continue;  // NULL FK references nothing
      if (key_values.count(*k) == 0) {
        violations.push_back(ConstraintViolation{
            fk.ToString(), "row " + std::to_string(r) + " value " +
                               DescribeRow(referencing, r, *ref_cols) +
                               " has no referent"});
        ++reported;
      }
    }
  }

  // ---- Contextual foreign keys -------------------------------------------
  for (const ContextualForeignKey& cfk : constraints.contextual_foreign_keys) {
    const TableView view_instance =
        ResolveRelation(instance, views, cfk.view, resolved);
    const TableView referenced =
        ResolveRelation(instance, views, cfk.referenced, resolved);
    if (!view_instance.valid() || !referenced.valid()) continue;
    auto y_cols = ResolveColumns(view_instance, cfk.fk_attributes);
    // Referenced key is [X, B].
    std::vector<std::string> xb = cfk.key_attributes;
    xb.push_back(cfk.referenced_context_attribute);
    auto xb_cols = ResolveColumns(referenced, xb);
    if (!y_cols.has_value() || !xb_cols.has_value()) continue;
    std::set<std::string> key_values;
    for (size_t r = 0; r < referenced.num_rows(); ++r) {
      if (auto k = ProjectionKey(referenced, r, *xb_cols)) {
        key_values.insert(*k);
      }
    }
    // The referencing projection is [Y] augmented with the constant v.
    std::string v_suffix = std::to_string(static_cast<int>(
                               cfk.context_value.type())) +
                           ':' + cfk.context_value.ToString() + '\x1f';
    size_t reported = 0;
    for (size_t r = 0; r < view_instance.num_rows() && reported < cap; ++r) {
      auto k = ProjectionKey(view_instance, r, *y_cols);
      if (!k.has_value()) continue;
      if (key_values.count(*k + v_suffix) == 0) {
        violations.push_back(ConstraintViolation{
            cfk.ToString(), "row " + std::to_string(r) + " value " +
                                DescribeRow(view_instance, r, *y_cols) +
                                " has no referent with " +
                                cfk.referenced_context_attribute + " = " +
                                cfk.context_value.ToString()});
        ++reported;
      }
    }
  }
  return violations;
}

}  // namespace csm
