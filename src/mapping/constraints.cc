#include "mapping/constraints.h"

#include <algorithm>

namespace csm {
namespace {

std::string JoinAttrs(const std::vector<std::string>& attrs) {
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs[i];
  }
  return out;
}

}  // namespace

std::string Key::ToString() const {
  return relation + "[" + JoinAttrs(attributes) + "] -> " + relation;
}

std::string ForeignKey::ToString() const {
  return referencing + "[" + JoinAttrs(fk_attributes) + "] ⊆ " + referenced +
         "[" + JoinAttrs(key_attributes) + "]";
}

std::string ContextualForeignKey::ToString() const {
  return view + "[" + JoinAttrs(fk_attributes) + ", " + context_attribute +
         " = " + context_value.ToString() + "] ⊆ " + referenced + "[" +
         JoinAttrs(key_attributes) + ", " + referenced_context_attribute + "]";
}

void ConstraintSet::Add(Key key) {
  if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
    keys.push_back(std::move(key));
  }
}

void ConstraintSet::Add(ForeignKey fk) {
  if (std::find(foreign_keys.begin(), foreign_keys.end(), fk) ==
      foreign_keys.end()) {
    foreign_keys.push_back(std::move(fk));
  }
}

void ConstraintSet::Add(ContextualForeignKey cfk) {
  if (std::find(contextual_foreign_keys.begin(),
                contextual_foreign_keys.end(),
                cfk) == contextual_foreign_keys.end()) {
    contextual_foreign_keys.push_back(std::move(cfk));
  }
}

void ConstraintSet::Merge(const ConstraintSet& other) {
  for (const auto& key : other.keys) Add(key);
  for (const auto& fk : other.foreign_keys) Add(fk);
  for (const auto& cfk : other.contextual_foreign_keys) Add(cfk);
}

std::vector<const Key*> ConstraintSet::KeysOf(std::string_view relation) const {
  std::vector<const Key*> out;
  for (const Key& key : keys) {
    if (key.relation == relation) out.push_back(&key);
  }
  return out;
}

bool ConstraintSet::HasKey(std::string_view relation,
                           const std::vector<std::string>& attributes) const {
  for (const Key& key : keys) {
    if (key.relation != relation) continue;
    bool covered = true;
    for (const std::string& key_attr : key.attributes) {
      if (std::find(attributes.begin(), attributes.end(), key_attr) ==
          attributes.end()) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
  }
  return false;
}

std::string ConstraintSet::ToString() const {
  std::string out;
  for (const auto& key : keys) out += key.ToString() + "\n";
  for (const auto& fk : foreign_keys) out += fk.ToString() + "\n";
  for (const auto& cfk : contextual_foreign_keys) out += cfk.ToString() + "\n";
  return out;
}

}  // namespace csm
