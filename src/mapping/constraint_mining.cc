#include "mapping/constraint_mining.h"

#include <set>

namespace csm {
namespace {

/// True when the projection of `instance` onto `cols` is duplicate-free and
/// NULL-free.
bool IsUniqueProjection(const TableView& instance,
                        const std::vector<size_t>& cols) {
  std::set<std::vector<std::string>> seen;
  for (size_t r = 0; r < instance.num_rows(); ++r) {
    std::vector<std::string> key;
    key.reserve(cols.size());
    for (size_t c : cols) {
      const Value v = instance.ValueAt(r, c);
      if (v.is_null()) return false;
      // Type-tagged rendering keeps Int(1) distinct from String("1").
      key.push_back(std::to_string(static_cast<int>(v.type())) + ":" +
                    v.ToString());
    }
    if (!seen.insert(std::move(key)).second) return false;
  }
  return true;
}

}  // namespace

std::vector<Key> MineKeys(const TableView& instance,
                          const MiningOptions& options) {
  std::vector<Key> out;
  if (instance.num_rows() == 0) return out;
  const size_t n = instance.schema().num_attributes();

  std::vector<bool> single_key(n, false);
  // Single-attribute keys.
  for (size_t c = 0; c < n; ++c) {
    if (IsUniqueProjection(instance, {c})) {
      single_key[c] = true;
      out.push_back(
          Key{instance.name(), {instance.schema().attribute(c).name}});
    }
  }
  if (options.max_key_size < 2) return out;

  // Pairs; skip pairs containing a single-attribute key when minimal-only.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (options.minimal_keys_only && (single_key[a] || single_key[b])) {
        continue;
      }
      if (IsUniqueProjection(instance, {a, b})) {
        out.push_back(Key{instance.name(),
                          {instance.schema().attribute(a).name,
                           instance.schema().attribute(b).name}});
      }
    }
  }
  return out;
}

std::vector<ForeignKey> MineForeignKeys(
    const std::vector<const Table*>& tables, const ConstraintSet& known_keys,
    const MiningOptions& options) {
  std::vector<ForeignKey> out;
  if (!options.mine_foreign_keys) return out;

  for (const Table* referenced : tables) {
    // Single-attribute keys of the referenced table.
    for (const Key& key : known_keys.keys) {
      if (key.relation != referenced->name() || key.attributes.size() != 1) {
        continue;
      }
      const std::string& key_attr = key.attributes[0];
      std::set<Value> key_values;
      for (const auto& [value, count] :
           referenced->ValueCounts(key_attr)) {
        key_values.insert(value);
      }
      if (key_values.empty()) continue;

      for (const Table* referencing : tables) {
        for (const auto& attr : referencing->schema().attributes()) {
          if (referencing == referenced && attr.name == key_attr) continue;
          const auto counts = referencing->ValueCounts(attr.name);
          if (counts.size() < options.min_fk_distinct_values) continue;
          bool included = true;
          for (const auto& [value, count] : counts) {
            if (key_values.count(value) == 0) {
              included = false;
              break;
            }
          }
          if (included) {
            out.push_back(ForeignKey{referencing->name(),
                                     {attr.name},
                                     referenced->name(),
                                     {key_attr}});
          }
        }
      }
    }
  }
  return out;
}

ConstraintSet MineConstraints(const Database& db,
                              const MiningOptions& options) {
  ConstraintSet constraints;
  std::vector<const Table*> tables;
  for (const Table& table : db.tables()) {
    tables.push_back(&table);
    for (Key& key : MineKeys(table, options)) constraints.Add(std::move(key));
  }
  for (ForeignKey& fk : MineForeignKeys(tables, constraints, options)) {
    constraints.Add(std::move(fk));
  }
  return constraints;
}

}  // namespace csm
