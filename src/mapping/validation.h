// Target-constraint validation (Section 7: "a systematic method to assure
// that contextual schema mapping does not violate the target constraints").
//
// Given an instance (typically the output of ExecuteMappings) and a
// constraint set over its schema, reports every violated key, foreign key
// and contextual foreign key, so a mapping can be checked before being
// trusted.

#ifndef CSM_MAPPING_VALIDATION_H_
#define CSM_MAPPING_VALIDATION_H_

#include <string>
#include <vector>

#include "mapping/constraints.h"
#include "relational/table.h"
#include "relational/view.h"

namespace csm {

/// One violated constraint occurrence.
struct ConstraintViolation {
  /// Rendering of the violated constraint.
  std::string constraint;
  /// Human-readable description of the offending tuples.
  std::string detail;

  std::string ToString() const { return constraint + ": " + detail; }
};

/// Checks every constraint in `constraints` against `instance`.  Constraints
/// over relations absent from the instance are skipped (they cannot be
/// checked), as are constraints mentioning attributes a relation lacks.
/// `views` supplies definitions for constraints naming views; view
/// relations are materialized from their base tables in `instance`.
/// At most `max_violations_per_constraint` occurrences are reported per
/// constraint (0 = unlimited).
std::vector<ConstraintViolation> CheckConstraints(
    const Database& instance, const ConstraintSet& constraints,
    const std::vector<View>& views = {},
    size_t max_violations_per_constraint = 3);

}  // namespace csm

#endif  // CSM_MAPPING_VALIDATION_H_
