#include "mapping/query_gen.h"

#include <algorithm>
#include <map>
#include <set>

namespace csm {

std::string MatchRelation(const Match& match, const std::vector<View>& views) {
  if (match.condition.is_true()) return match.source.table;
  // Several views may share the base table and condition but differ in
  // projection (Example 4.5's V_i vs U_i); prefer one that exposes the
  // matched source attribute.
  const View* fallback = nullptr;
  for (const View& view : views) {
    if (view.base_table() != match.source.table ||
        view.condition() != match.condition) {
      continue;
    }
    if (!view.has_projection()) return view.name();
    const auto& projection = view.projection();
    if (std::find(projection.begin(), projection.end(),
                  match.source.attribute) != projection.end()) {
      return view.name();
    }
    if (fallback == nullptr) fallback = &view;
  }
  return fallback == nullptr ? "" : fallback->name();
}

std::string MappingQuery::ToSql(const std::vector<View>& views) const {
  auto relation_sql = [&](const std::string& name) -> std::string {
    for (const View& view : views) {
      if (view.name() != name) continue;
      std::string cols = "*";
      if (view.has_projection()) {
        cols.clear();
        for (size_t i = 0; i < view.projection().size(); ++i) {
          if (i > 0) cols += ", ";
          cols += view.projection()[i];
        }
      }
      return "(select " + cols + " from " + view.base_table() + " where " +
             view.condition().ToString() + ") as \"" + name + "\"";
    }
    return name;
  };

  std::string sql = "insert into " + target_table + "\nselect\n";
  for (size_t i = 0; i < attr_mappings.size(); ++i) {
    const TargetAttrMapping& m = attr_mappings[i];
    sql += "  ";
    if (m.source.has_value()) {
      sql += "\"" + m.source->first + "\"." + m.source->second;
    } else if (m.skolem) {
      sql += "sk_" + target_table + "_" + m.target_attribute + "(...)";
    } else {
      sql += "null";
    }
    sql += " as " + m.target_attribute;
    if (i + 1 < attr_mappings.size()) sql += ",";
    sql += "\n";
  }
  sql += "from " + relation_sql(logical.relations.empty()
                                    ? std::string("<empty>")
                                    : logical.relations[0]);
  std::set<std::string> joined;
  if (!logical.relations.empty()) joined.insert(logical.relations[0]);
  for (const JoinEdge& edge : logical.joins) {
    const std::string& next = joined.count(edge.left) ? edge.right : edge.left;
    sql += "\n  full outer join " + relation_sql(next) + " on ";
    for (size_t i = 0; i < edge.left_attributes.size(); ++i) {
      if (i > 0) sql += " and ";
      sql += "\"" + edge.left + "\"." + edge.left_attributes[i] + " = \"" +
             edge.right + "\"." + edge.right_attributes[i];
    }
    if (edge.filter_attribute.has_value()) {
      sql += " and \"" + edge.right + "\"." + *edge.filter_attribute + " = " +
             edge.filter_value.ToString();
    }
    joined.insert(next);
  }
  sql += ";";
  return sql;
}

std::vector<MappingQuery> GenerateMappings(const Schema& target_schema,
                                           const MatchList& matches,
                                           const std::vector<View>& views,
                                           const ConstraintSet& constraints) {
  std::vector<MappingQuery> out;

  // Group matches by target table.
  std::map<std::string, MatchList> by_target;
  for (const Match& match : matches) {
    by_target[match.target.table].push_back(match);
  }

  for (const auto& [target_table, table_matches] : by_target) {
    const TableSchema* target = target_schema.FindTable(target_table);
    if (target == nullptr) continue;

    // Relations contributing to this target table, in first-seen order.
    std::vector<std::string> relations;
    std::map<std::string, std::string> relation_of_match;  // keyed by ptr idx
    for (const Match& match : table_matches) {
      std::string relation = MatchRelation(match, views);
      if (relation.empty()) continue;
      if (std::find(relations.begin(), relations.end(), relation) ==
          relations.end()) {
        relations.push_back(relation);
      }
    }
    if (relations.empty()) continue;

    std::vector<JoinEdge> edges =
        DeriveJoinEdges(relations, views, constraints);
    std::vector<LogicalTable> logical_tables =
        AssembleLogicalTables(relations, edges);

    for (LogicalTable& logical : logical_tables) {
      MappingQuery query;
      query.target_table = target_table;
      query.logical = std::move(logical);
      std::set<std::string> in_component(query.logical.relations.begin(),
                                         query.logical.relations.end());

      for (const auto& attr : target->attributes()) {
        TargetAttrMapping mapping;
        mapping.target_attribute = attr.name;
        // Highest-confidence match into this attribute from a relation in
        // the component.
        for (const Match& match : table_matches) {
          if (match.target.attribute != attr.name) continue;
          std::string relation = MatchRelation(match, views);
          if (relation.empty() || in_component.count(relation) == 0) continue;
          if (!mapping.source.has_value() ||
              match.confidence > mapping.confidence) {
            mapping.source = {relation, match.source.attribute};
            mapping.confidence = match.confidence;
          }
        }
        if (!mapping.source.has_value()) {
          // Skolem strings for string targets; NULL for numerics.
          mapping.skolem = attr.type == ValueType::kString;
        }
        query.attr_mappings.push_back(std::move(mapping));
      }
      out.push_back(std::move(query));
    }
  }
  return out;
}

}  // namespace csm
