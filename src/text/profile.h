// Token frequency profiles and set/bag similarity measures.
//
// A TokenProfile is a multiset of tokens (q-grams or words) with counts;
// the matchers compare attribute value-bags by building one profile per bag
// and computing cosine / Jaccard / Dice / overlap similarity.

#ifndef CSM_TEXT_PROFILE_H_
#define CSM_TEXT_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace csm {

/// A sparse token -> count map with the vector-space operations the
/// similarity measures need.  Deterministic iteration (ordered map).
class TokenProfile {
 public:
  TokenProfile() = default;

  /// Adds `count` occurrences of `token`.
  void Add(const std::string& token, double count = 1.0);

  /// Adds every token in `tokens` once each.
  void AddAll(const std::vector<std::string>& tokens);

  bool empty() const { return counts_.empty(); }
  size_t num_distinct() const { return counts_.size(); }
  double total() const { return total_; }

  double Count(const std::string& token) const;

  const std::map<std::string, double>& counts() const { return counts_; }

  /// Euclidean norm of the count vector.
  double Norm() const;

  /// Dot product with another profile.
  double Dot(const TokenProfile& other) const;

  /// Number of distinct tokens in common.
  size_t IntersectionSize(const TokenProfile& other) const;

 private:
  std::map<std::string, double> counts_;
  double total_ = 0.0;
};

/// Cosine similarity of the count vectors; 0 when either is empty.
double CosineSimilarity(const TokenProfile& a, const TokenProfile& b);

/// Jaccard similarity of the distinct-token sets; 0 when both empty.
double JaccardSimilarity(const TokenProfile& a, const TokenProfile& b);

/// Dice coefficient of the distinct-token sets.
double DiceSimilarity(const TokenProfile& a, const TokenProfile& b);

/// Overlap coefficient: |A∩B| / min(|A|, |B|).
double OverlapSimilarity(const TokenProfile& a, const TokenProfile& b);

}  // namespace csm

#endif  // CSM_TEXT_PROFILE_H_
