#include "text/string_distance.h"

#include <algorithm>
#include <vector>

namespace csm {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // a is the shorter string; one rolling row.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t prev = row[i];
      size_t substitute = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitute});
      prev_diag = prev;
    }
  }
  return row[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions over the matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

}  // namespace csm
