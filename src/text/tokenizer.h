// Text normalization and tokenization used by the instance-based matchers
// and the Naive Bayes classifier.

#ifndef CSM_TEXT_TOKENIZER_H_
#define CSM_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace csm {

/// Lowercases and squeezes runs of non-alphanumerics to single spaces;
/// trims the ends.  "Lance Armstrong's War!" -> "lance armstrong s war".
std::string NormalizeText(std::string_view text);

/// Buffer-reusing overload: clears `*out` and fills it with
/// NormalizeText(text), keeping the string's capacity across calls.
void NormalizeText(std::string_view text, std::string* out);

/// Splits normalized text into word tokens (maximal alphanumeric runs of
/// the lowercased input).
std::vector<std::string> WordTokens(std::string_view text);

/// Buffer-reusing overload: refills `*out` with the word tokens of `text`,
/// reusing both the vector's and the element strings' capacity.
void WordTokens(std::string_view text, std::vector<std::string>* out);

/// Q-grams of the normalized text padded with (q-1) '#' on each side, so
/// "ab" with q=3 yields {"##a", "#ab", "ab#", "b##"}.  Returns the q-grams
/// in order of occurrence (duplicates kept).
std::vector<std::string> QGrams(std::string_view text, size_t q);

/// Buffer-reusing overload: refills `*out` with QGrams(text, q), reusing
/// vector and element capacity across calls.
void QGrams(std::string_view text, size_t q, std::vector<std::string>* out);

}  // namespace csm

#endif  // CSM_TEXT_TOKENIZER_H_
