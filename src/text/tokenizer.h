// Text normalization and tokenization used by the instance-based matchers
// and the Naive Bayes classifier.

#ifndef CSM_TEXT_TOKENIZER_H_
#define CSM_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace csm {

/// Lowercases and squeezes runs of non-alphanumerics to single spaces;
/// trims the ends.  "Lance Armstrong's War!" -> "lance armstrong s war".
std::string NormalizeText(std::string_view text);

/// Splits normalized text into word tokens (maximal alphanumeric runs of
/// the lowercased input).
std::vector<std::string> WordTokens(std::string_view text);

/// Q-grams of the normalized text padded with (q-1) '#' on each side, so
/// "ab" with q=3 yields {"##a", "#ab", "ab#", "b##"}.  Returns the q-grams
/// in order of occurrence (duplicates kept).
std::vector<std::string> QGrams(std::string_view text, size_t q);

}  // namespace csm

#endif  // CSM_TEXT_TOKENIZER_H_
