// The interned token kernel: packed q-gram ids, first-seen token interning
// and flat sorted count profiles.
//
// TokenProfile (profile.h) keeps every gram as a heap std::string inside a
// std::map; fine as a reference implementation, but the hot scoring paths
// tokenize the same strings millions of times.  This kernel replaces that
// representation without changing a single score bit:
//
//   * Packed gram ids.  NormalizeText output is single-byte ([a-z0-9 ], plus
//     the '#' padding QGrams adds), so a padded q-gram with q <= 4 is at most
//     4 bytes and packs big-endian into a uint32_t GramId.  Packing is
//     injective for a fixed q, and big-endian order makes numeric id order
//     equal lexicographic gram order, so iterating a sorted flat profile
//     visits grams exactly as iterating the old std::map did.
//
//   * TokenInterner.  Word tokens (unbounded length) intern to dense ids in
//     first-seen order — the same determinism contract as StringDictionary:
//     the ids assigned to a token stream are a function of the stream alone.
//
//   * Flat profiles.  GramProfile / WordProfile store sorted (id, count) /
//     (token, count) vectors; Dot, IntersectionSize and the derived
//     similarity measures run as linear merges.  Counts are exact integers
//     (bag multiplicities), so every sum below 2^53 is order-independent and
//     the merges reproduce the map-based results bit for bit; WordProfile
//     additionally keeps its entries in token-lexicographic order so that
//     the TF-IDF weighted sums (non-integer terms) accumulate in the exact
//     order the std::map iteration used.
//
// See DESIGN.md "Token kernel & classifier memoization".

#ifndef CSM_TEXT_GRAM_H_
#define CSM_TEXT_GRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace csm {

/// A packed q-gram (q <= kMaxPackedGramQ) or an interned token id.
using GramId = uint32_t;

/// Largest q whose padded grams pack into a GramId.
inline constexpr size_t kMaxPackedGramQ = 4;

/// Sentinel for "no id" (lookup-mode tokenization of an unseen token).
/// Never collides with a packed gram: normalized text bytes are < 0x80.
inline constexpr GramId kNoGramId = 0xffffffffu;

/// Process-wide kernel activity counters, surfaced as the
/// `text.grams_interned` / `ml.nb_memo_hits` metrics.  Monotonic; readers
/// take deltas around a region of interest.
struct TokenKernelStats {
  std::atomic<uint64_t> grams_interned{0};
  std::atomic<uint64_t> nb_memo_hits{0};
};

TokenKernelStats& GlobalTokenKernelStats();

/// Packs a gram of size() <= 4 bytes big-endian; injective for fixed size.
GramId PackGram(std::string_view gram);

/// Inverse of PackGram for a gram of length `q`.
std::string UnpackGram(GramId id, size_t q);

/// Appends the packed padded q-grams of `text` (same tokens, same order as
/// QGrams(text, q)) to `*out`.  `*scratch` is reused across calls for the
/// normalized+padded text.  Requires q <= kMaxPackedGramQ.
void AppendPackedQGrams(std::string_view text, size_t q, std::string* scratch,
                        std::vector<GramId>* out);

/// An append-only token -> dense id map; ids are assigned in first-seen
/// order, so the encoding of a token stream is a deterministic function of
/// the stream (the StringDictionary contract, applied to tokens).
class TokenInterner {
 public:
  /// Returns the id of `token`, adding it if absent.
  GramId GetOrAdd(std::string_view token);

  /// The id of `token`, or kNoGramId when never interned.
  GramId Find(std::string_view token) const;

  const std::string& value(GramId id) const { return tokens_[id]; }
  size_t size() const { return tokens_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::deque<std::string> tokens_;  // stable addresses; index == id
  std::unordered_map<std::string_view, GramId, Hash, Eq> index_;
};

/// A flat q-gram multiset: (id, count) entries sorted by id.  Counts are
/// exact integer multiplicities stored in doubles.
class GramProfile {
 public:
  struct Entry {
    GramId id;
    double count;
  };

  GramProfile() = default;

  bool empty() const { return entries_.empty(); }
  size_t num_distinct() const { return entries_.size(); }
  double total() const { return total_; }
  const std::vector<Entry>& entries() const { return entries_; }

  double Count(GramId id) const;

  /// Euclidean norm of the count vector.
  double Norm() const;

  /// Dot product (linear merge over the sorted entries).
  double Dot(const GramProfile& other) const;

  /// Number of distinct gram ids in common.
  size_t IntersectionSize(const GramProfile& other) const;

 private:
  friend class GramProfileBuilder;

  std::vector<Entry> entries_;  // sorted by id
  double total_ = 0.0;
};

/// Accumulates gram counts (hash aggregation) and emits sorted profiles.
/// Reusable: Build() resets the builder.
class GramProfileBuilder {
 public:
  void Add(GramId id, double count = 1.0);

  /// Tokenizes `text` into padded q-grams and adds each occurrence with
  /// weight `count` — bit-identical totals to adding the text `count`
  /// times, because the counts are exact integers.
  void AddText(std::string_view text, size_t q, double count = 1.0);

  GramProfile Build();

 private:
  std::unordered_map<GramId, double> counts_;
  double total_ = 0.0;
  std::string scratch_;
  std::vector<GramId> ids_;
};

/// A flat word-token multiset.  Entries are sorted by token string
/// (lexicographic — the old std::map iteration order), with the token bytes
/// owned by a shared interner so profiles are cheap to copy.
class WordProfile {
 public:
  struct Entry {
    std::string_view token;
    double count;
  };

  WordProfile() = default;

  bool empty() const { return entries_.empty(); }
  size_t num_distinct() const { return entries_.size(); }
  double total() const { return total_; }
  const std::vector<Entry>& entries() const { return entries_; }

  double Count(std::string_view token) const;

  double Norm() const;
  double Dot(const WordProfile& other) const;
  size_t IntersectionSize(const WordProfile& other) const;

 private:
  friend class WordProfileBuilder;

  std::shared_ptr<const TokenInterner> interner_;  // owns the token bytes
  std::vector<Entry> entries_;                     // sorted by token
  double total_ = 0.0;
};

/// Accumulates word-token counts through a fresh TokenInterner and emits
/// lexicographically sorted profiles.  Reusable: Build() resets the builder.
class WordProfileBuilder {
 public:
  WordProfileBuilder();

  /// Adds `count` occurrences of `token` (already a single word token).
  void Add(std::string_view token, double count = 1.0);

  /// Tokenizes `text` into word tokens (WordTokens semantics) and adds each
  /// occurrence with weight `count`.
  void AddText(std::string_view text, double count = 1.0);

  WordProfile Build();

 private:
  std::shared_ptr<TokenInterner> interner_;
  std::vector<double> counts_;  // indexed by token id
  double total_ = 0.0;
  std::string token_scratch_;
};

/// Similarity measures; formulas identical to the TokenProfile versions in
/// profile.h, evaluated over the flat representations.
double CosineSimilarity(const GramProfile& a, const GramProfile& b);
double JaccardSimilarity(const GramProfile& a, const GramProfile& b);
double DiceSimilarity(const GramProfile& a, const GramProfile& b);
double OverlapSimilarity(const GramProfile& a, const GramProfile& b);

double CosineSimilarity(const WordProfile& a, const WordProfile& b);
double JaccardSimilarity(const WordProfile& a, const WordProfile& b);
double DiceSimilarity(const WordProfile& a, const WordProfile& b);
double OverlapSimilarity(const WordProfile& a, const WordProfile& b);

}  // namespace csm

#endif  // CSM_TEXT_GRAM_H_
