// TF-IDF weighting over a corpus of token profiles.
//
// The TF-IDF matcher treats each attribute's value bag as a document; IDF
// is computed over the set of documents registered with the corpus, and
// similarity is the cosine of the TF-IDF-weighted vectors.
//
// Both profile representations are accepted: the map-based TokenProfile
// (reference) and the flat WordProfile of the token kernel (gram.h).  The
// weighted cosine is evaluated as a lexicographic merge without
// materializing weighted profiles; because WordProfile entries are sorted
// by token string, the weighted sums accumulate in the exact order the
// map-based path used, so both overloads produce bit-identical scores.

#ifndef CSM_TEXT_TFIDF_H_
#define CSM_TEXT_TFIDF_H_

#include <map>
#include <string>
#include <string_view>

#include "text/gram.h"
#include "text/profile.h"

namespace csm {

/// Accumulates document frequencies and produces TF-IDF-weighted profiles.
class TfIdfCorpus {
 public:
  TfIdfCorpus() = default;

  /// Registers a document (each distinct token counts once toward DF).
  void AddDocument(const TokenProfile& document);
  void AddDocument(const WordProfile& document);

  size_t num_documents() const { return num_documents_; }

  /// Smoothed inverse document frequency:
  /// log((1 + N) / (1 + df)) + 1, so unseen tokens still get weight.
  double Idf(std::string_view token) const;

  /// Returns the profile re-weighted by TF-IDF (tf = raw count).
  TokenProfile Weight(const TokenProfile& document) const;

  /// Cosine similarity of the two documents' TF-IDF vectors.
  double WeightedCosine(const TokenProfile& a, const TokenProfile& b) const;
  double WeightedCosine(const WordProfile& a, const WordProfile& b) const;

 private:
  std::map<std::string, size_t, std::less<>> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace csm

#endif  // CSM_TEXT_TFIDF_H_
