// Pairwise string distances used by the name matcher.

#ifndef CSM_TEXT_STRING_DISTANCE_H_
#define CSM_TEXT_STRING_DISTANCE_H_

#include <string_view>

namespace csm {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized edit similarity in [0,1]: 1 - distance / max(|a|,|b|);
/// 1.0 when both strings are empty.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with the standard prefix scale (0.1, max 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

}  // namespace csm

#endif  // CSM_TEXT_STRING_DISTANCE_H_
