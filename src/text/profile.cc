#include "text/profile.h"

#include <algorithm>
#include <cmath>

namespace csm {

void TokenProfile::Add(const std::string& token, double count) {
  counts_[token] += count;
  total_ += count;
}

void TokenProfile::AddAll(const std::vector<std::string>& tokens) {
  for (const auto& token : tokens) Add(token);
}

double TokenProfile::Count(const std::string& token) const {
  auto it = counts_.find(token);
  return it == counts_.end() ? 0.0 : it->second;
}

double TokenProfile::Norm() const {
  double sum_sq = 0.0;
  for (const auto& [token, count] : counts_) sum_sq += count * count;
  return std::sqrt(sum_sq);
}

double TokenProfile::Dot(const TokenProfile& other) const {
  // Iterate the smaller map.
  const TokenProfile& small = num_distinct() <= other.num_distinct()
                                  ? *this
                                  : other;
  const TokenProfile& large = num_distinct() <= other.num_distinct()
                                  ? other
                                  : *this;
  double dot = 0.0;
  for (const auto& [token, count] : small.counts_) {
    dot += count * large.Count(token);
  }
  return dot;
}

size_t TokenProfile::IntersectionSize(const TokenProfile& other) const {
  const TokenProfile& small =
      num_distinct() <= other.num_distinct() ? *this : other;
  const TokenProfile& large =
      num_distinct() <= other.num_distinct() ? other : *this;
  size_t n = 0;
  for (const auto& [token, count] : small.counts_) {
    if (large.counts_.count(token) > 0) ++n;
  }
  return n;
}

double CosineSimilarity(const TokenProfile& a, const TokenProfile& b) {
  if (a.empty() || b.empty()) return 0.0;
  double denom = a.Norm() * b.Norm();
  if (denom == 0.0) return 0.0;
  return a.Dot(b) / denom;
}

double JaccardSimilarity(const TokenProfile& a, const TokenProfile& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t inter = a.IntersectionSize(b);
  size_t uni = a.num_distinct() + b.num_distinct() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSimilarity(const TokenProfile& a, const TokenProfile& b) {
  size_t total = a.num_distinct() + b.num_distinct();
  if (total == 0) return 0.0;
  return 2.0 * static_cast<double>(a.IntersectionSize(b)) /
         static_cast<double>(total);
}

double OverlapSimilarity(const TokenProfile& a, const TokenProfile& b) {
  size_t smaller = std::min(a.num_distinct(), b.num_distinct());
  if (smaller == 0) return 0.0;
  return static_cast<double>(a.IntersectionSize(b)) /
         static_cast<double>(smaller);
}

}  // namespace csm
