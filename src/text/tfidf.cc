#include "text/tfidf.h"

#include <cmath>

namespace csm {

void TfIdfCorpus::AddDocument(const TokenProfile& document) {
  ++num_documents_;
  for (const auto& [token, count] : document.counts()) {
    ++document_frequency_[token];
  }
}

void TfIdfCorpus::AddDocument(const WordProfile& document) {
  ++num_documents_;
  for (const WordProfile::Entry& e : document.entries()) {
    // Heterogeneous find + insert-if-absent (no temporary std::string on
    // the repeat path).
    auto it = document_frequency_.find(e.token);
    if (it == document_frequency_.end()) {
      document_frequency_.emplace(std::string(e.token), 1);
    } else {
      ++it->second;
    }
  }
}

double TfIdfCorpus::Idf(std::string_view token) const {
  auto it = document_frequency_.find(token);
  const double df = it == document_frequency_.end()
                        ? 0.0
                        : static_cast<double>(it->second);
  return std::log((1.0 + static_cast<double>(num_documents_)) / (1.0 + df)) +
         1.0;
}

TokenProfile TfIdfCorpus::Weight(const TokenProfile& document) const {
  TokenProfile weighted;
  for (const auto& [token, count] : document.counts()) {
    weighted.Add(token, count * Idf(token));
  }
  return weighted;
}

double TfIdfCorpus::WeightedCosine(const TokenProfile& a,
                                   const TokenProfile& b) const {
  // Evaluated inline (no materialized weighted profiles), term for term in
  // the order CosineSimilarity(Weight(a), Weight(b)) used: norms iterate
  // each map lexicographically, the dot iterates the smaller side and looks
  // the token up in the larger (missing tokens contribute an explicit *0.0
  // term, exactly as the weighted map's Count() did).
  if (a.empty() || b.empty()) return 0.0;
  auto weighted_norm = [this](const TokenProfile& p) {
    double sum_sq = 0.0;
    for (const auto& [token, count] : p.counts()) {
      const double w = count * Idf(token);
      sum_sq += w * w;
    }
    return std::sqrt(sum_sq);
  };
  const double denom = weighted_norm(a) * weighted_norm(b);
  if (denom == 0.0) return 0.0;
  const TokenProfile& small = a.num_distinct() <= b.num_distinct() ? a : b;
  const TokenProfile& large = a.num_distinct() <= b.num_distinct() ? b : a;
  double dot = 0.0;
  for (const auto& [token, count] : small.counts()) {
    auto it = large.counts().find(token);
    const double wl = it == large.counts().end() ? 0.0
                                                 : it->second * Idf(token);
    dot += (count * Idf(token)) * wl;
  }
  return dot / denom;
}

double TfIdfCorpus::WeightedCosine(const WordProfile& a,
                                   const WordProfile& b) const {
  // Linear merge over the lex-sorted flat entries.  Bit-identical to the
  // TokenProfile overload: norms accumulate in the same lexicographic
  // order, and the dot's skipped non-intersection terms are exact +0.0
  // no-ops because profile counts (and hence weights) are positive.
  if (a.empty() || b.empty()) return 0.0;
  auto weighted_norm = [this](const WordProfile& p) {
    double sum_sq = 0.0;
    for (const WordProfile::Entry& e : p.entries()) {
      const double w = e.count * Idf(e.token);
      sum_sq += w * w;
    }
    return std::sqrt(sum_sq);
  };
  const double denom = weighted_norm(a) * weighted_norm(b);
  if (denom == 0.0) return 0.0;
  double dot = 0.0;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  while (ia != a.entries().end() && ib != b.entries().end()) {
    if (ia->token < ib->token) {
      ++ia;
    } else if (ib->token < ia->token) {
      ++ib;
    } else {
      const double idf = Idf(ia->token);
      dot += (ia->count * idf) * (ib->count * idf);
      ++ia;
      ++ib;
    }
  }
  return dot / denom;
}

}  // namespace csm
