#include "text/tfidf.h"

#include <cmath>

namespace csm {

void TfIdfCorpus::AddDocument(const TokenProfile& document) {
  ++num_documents_;
  for (const auto& [token, count] : document.counts()) {
    ++document_frequency_[token];
  }
}

double TfIdfCorpus::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  const double df = it == document_frequency_.end()
                        ? 0.0
                        : static_cast<double>(it->second);
  return std::log((1.0 + static_cast<double>(num_documents_)) / (1.0 + df)) +
         1.0;
}

TokenProfile TfIdfCorpus::Weight(const TokenProfile& document) const {
  TokenProfile weighted;
  for (const auto& [token, count] : document.counts()) {
    weighted.Add(token, count * Idf(token));
  }
  return weighted;
}

double TfIdfCorpus::WeightedCosine(const TokenProfile& a,
                                   const TokenProfile& b) const {
  return CosineSimilarity(Weight(a), Weight(b));
}

}  // namespace csm
