#include "text/gram.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/logging.h"

namespace csm {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char ToLowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

TokenKernelStats& GlobalTokenKernelStats() {
  static TokenKernelStats* stats = new TokenKernelStats();
  return *stats;
}

GramId PackGram(std::string_view gram) {
  CSM_CHECK_LE(gram.size(), kMaxPackedGramQ);
  GramId id = 0;
  for (char c : gram) {
    id = (id << 8) | static_cast<uint8_t>(c);
  }
  return id;
}

std::string UnpackGram(GramId id, size_t q) {
  CSM_CHECK_LE(q, kMaxPackedGramQ);
  std::string gram(q, '\0');
  for (size_t i = q; i-- > 0;) {
    gram[i] = static_cast<char>(id & 0xffu);
    id >>= 8;
  }
  return gram;
}

void AppendPackedQGrams(std::string_view text, size_t q, std::string* scratch,
                        std::vector<GramId>* out) {
  if (q == 0) return;
  CSM_CHECK_LE(q, kMaxPackedGramQ);
  // Build the padded normalized text: (q-1) '#', NormalizeText(text),
  // (q-1) '#' — one pass, no intermediate string.
  scratch->assign(q - 1, '#');
  bool pending_space = false;
  bool any = false;
  for (char c : text) {
    if (IsWordChar(c)) {
      if (pending_space && any) *scratch += ' ';
      pending_space = false;
      *scratch += ToLowerChar(c);
      any = true;
    } else {
      pending_space = true;
    }
  }
  if (!any) return;  // NormalizeText empty -> no grams (QGrams contract)
  scratch->append(q - 1, '#');

  const char* data = scratch->data();
  const size_t n = scratch->size();
  out->reserve(out->size() + (n - q + 1));
  // Rolling big-endian pack: keep the low q bytes of a shifting window.
  const GramId mask =
      q == sizeof(GramId) ? ~GramId{0} : ((GramId{1} << (8 * q)) - 1);
  GramId id = 0;
  for (size_t i = 0; i < n; ++i) {
    id = ((id << 8) | static_cast<uint8_t>(data[i])) & mask;
    if (i + 1 >= q) out->push_back(id);
  }
}

GramId TokenInterner::GetOrAdd(std::string_view token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  const GramId id = static_cast<GramId>(tokens_.size());
  tokens_.emplace_back(token);
  index_.emplace(std::string_view(tokens_.back()), id);
  GlobalTokenKernelStats().grams_interned.fetch_add(1,
                                                    std::memory_order_relaxed);
  return id;
}

GramId TokenInterner::Find(std::string_view token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kNoGramId : it->second;
}

double GramProfile::Count(GramId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, GramId target) { return e.id < target; });
  return it != entries_.end() && it->id == id ? it->count : 0.0;
}

double GramProfile::Norm() const {
  double sum_sq = 0.0;
  for (const Entry& e : entries_) sum_sq += e.count * e.count;
  return std::sqrt(sum_sq);
}

double GramProfile::Dot(const GramProfile& other) const {
  double dot = 0.0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->id < b->id) {
      ++a;
    } else if (b->id < a->id) {
      ++b;
    } else {
      dot += a->count * b->count;
      ++a;
      ++b;
    }
  }
  return dot;
}

size_t GramProfile::IntersectionSize(const GramProfile& other) const {
  size_t n = 0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->id < b->id) {
      ++a;
    } else if (b->id < a->id) {
      ++b;
    } else {
      ++n;
      ++a;
      ++b;
    }
  }
  return n;
}

void GramProfileBuilder::Add(GramId id, double count) {
  counts_[id] += count;
  total_ += count;
}

void GramProfileBuilder::AddText(std::string_view text, size_t q,
                                 double count) {
  ids_.clear();
  AppendPackedQGrams(text, q, &scratch_, &ids_);
  for (GramId id : ids_) Add(id, count);
}

GramProfile GramProfileBuilder::Build() {
  GramProfile profile;
  profile.entries_.reserve(counts_.size());
  for (const auto& [id, count] : counts_) {
    profile.entries_.push_back({id, count});
  }
  std::sort(profile.entries_.begin(), profile.entries_.end(),
            [](const GramProfile::Entry& a, const GramProfile::Entry& b) {
              return a.id < b.id;
            });
  profile.total_ = total_;
  GlobalTokenKernelStats().grams_interned.fetch_add(
      profile.entries_.size(), std::memory_order_relaxed);
  counts_.clear();
  total_ = 0.0;
  return profile;
}

double WordProfile::Count(std::string_view token) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), token,
      [](const Entry& e, std::string_view target) { return e.token < target; });
  return it != entries_.end() && it->token == token ? it->count : 0.0;
}

double WordProfile::Norm() const {
  double sum_sq = 0.0;
  for (const Entry& e : entries_) sum_sq += e.count * e.count;
  return std::sqrt(sum_sq);
}

double WordProfile::Dot(const WordProfile& other) const {
  double dot = 0.0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->token < b->token) {
      ++a;
    } else if (b->token < a->token) {
      ++b;
    } else {
      dot += a->count * b->count;
      ++a;
      ++b;
    }
  }
  return dot;
}

size_t WordProfile::IntersectionSize(const WordProfile& other) const {
  size_t n = 0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->token < b->token) {
      ++a;
    } else if (b->token < a->token) {
      ++b;
    } else {
      ++n;
      ++a;
      ++b;
    }
  }
  return n;
}

WordProfileBuilder::WordProfileBuilder()
    : interner_(std::make_shared<TokenInterner>()) {}

void WordProfileBuilder::Add(std::string_view token, double count) {
  const GramId id = interner_->GetOrAdd(token);
  if (id >= counts_.size()) counts_.resize(id + 1, 0.0);
  counts_[id] += count;
  total_ += count;
}

void WordProfileBuilder::AddText(std::string_view text, double count) {
  token_scratch_.clear();
  for (char c : text) {
    if (IsWordChar(c)) {
      token_scratch_ += ToLowerChar(c);
    } else if (!token_scratch_.empty()) {
      Add(token_scratch_, count);
      token_scratch_.clear();
    }
  }
  if (!token_scratch_.empty()) {
    Add(token_scratch_, count);
    token_scratch_.clear();
  }
}

WordProfile WordProfileBuilder::Build() {
  WordProfile profile;
  profile.entries_.reserve(interner_->size());
  for (GramId id = 0; id < interner_->size(); ++id) {
    profile.entries_.push_back({std::string_view(interner_->value(id)),
                                counts_[id]});
  }
  std::sort(profile.entries_.begin(), profile.entries_.end(),
            [](const WordProfile::Entry& a, const WordProfile::Entry& b) {
              return a.token < b.token;
            });
  profile.total_ = total_;
  profile.interner_ = std::move(interner_);
  // Reset for reuse: a fresh interner, empty counts.
  interner_ = std::make_shared<TokenInterner>();
  counts_.clear();
  total_ = 0.0;
  return profile;
}

namespace {

template <typename Profile>
double CosineImpl(const Profile& a, const Profile& b) {
  if (a.empty() || b.empty()) return 0.0;
  double denom = a.Norm() * b.Norm();
  if (denom == 0.0) return 0.0;
  return a.Dot(b) / denom;
}

template <typename Profile>
double JaccardImpl(const Profile& a, const Profile& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t inter = a.IntersectionSize(b);
  size_t uni = a.num_distinct() + b.num_distinct() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

template <typename Profile>
double DiceImpl(const Profile& a, const Profile& b) {
  size_t total = a.num_distinct() + b.num_distinct();
  if (total == 0) return 0.0;
  return 2.0 * static_cast<double>(a.IntersectionSize(b)) /
         static_cast<double>(total);
}

template <typename Profile>
double OverlapImpl(const Profile& a, const Profile& b) {
  size_t smaller = std::min(a.num_distinct(), b.num_distinct());
  if (smaller == 0) return 0.0;
  return static_cast<double>(a.IntersectionSize(b)) /
         static_cast<double>(smaller);
}

}  // namespace

double CosineSimilarity(const GramProfile& a, const GramProfile& b) {
  return CosineImpl(a, b);
}
double JaccardSimilarity(const GramProfile& a, const GramProfile& b) {
  return JaccardImpl(a, b);
}
double DiceSimilarity(const GramProfile& a, const GramProfile& b) {
  return DiceImpl(a, b);
}
double OverlapSimilarity(const GramProfile& a, const GramProfile& b) {
  return OverlapImpl(a, b);
}

double CosineSimilarity(const WordProfile& a, const WordProfile& b) {
  return CosineImpl(a, b);
}
double JaccardSimilarity(const WordProfile& a, const WordProfile& b) {
  return JaccardImpl(a, b);
}
double DiceSimilarity(const WordProfile& a, const WordProfile& b) {
  return DiceImpl(a, b);
}
double OverlapSimilarity(const WordProfile& a, const WordProfile& b) {
  return OverlapImpl(a, b);
}

}  // namespace csm
