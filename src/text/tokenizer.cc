#include "text/tokenizer.h"

#include <cctype>

namespace csm {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

/// Reuses the element strings of `*out` past `used` slots; grows otherwise.
void EmitToken(std::vector<std::string>* out, size_t* used,
               std::string_view token) {
  if (*used < out->size()) {
    (*out)[*used].assign(token.data(), token.size());
  } else {
    out->emplace_back(token);
  }
  ++*used;
}

}  // namespace

std::string NormalizeText(std::string_view text) {
  std::string out;
  NormalizeText(text, &out);
  return out;
}

void NormalizeText(std::string_view text, std::string* out) {
  out->clear();
  out->reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (IsWordChar(c)) {
      if (pending_space && !out->empty()) *out += ' ';
      pending_space = false;
      *out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_space = true;
    }
  }
}

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  WordTokens(text, &tokens);
  return tokens;
}

void WordTokens(std::string_view text, std::vector<std::string>* out) {
  size_t used = 0;
  std::string current;
  for (char c : text) {
    if (IsWordChar(c)) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      EmitToken(out, &used, current);
      current.clear();
    }
  }
  if (!current.empty()) EmitToken(out, &used, current);
  out->resize(used);
}

std::vector<std::string> QGrams(std::string_view text, size_t q) {
  std::vector<std::string> grams;
  QGrams(text, q, &grams);
  return grams;
}

void QGrams(std::string_view text, size_t q, std::vector<std::string>* out) {
  size_t used = 0;
  if (q == 0) {
    out->resize(used);
    return;
  }
  std::string normalized = NormalizeText(text);
  if (normalized.empty()) {
    out->resize(used);
    return;
  }
  std::string padded(q - 1, '#');
  padded += normalized;
  padded.append(q - 1, '#');
  if (padded.size() < q) {
    out->resize(used);
    return;
  }
  out->reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    EmitToken(out, &used, std::string_view(padded).substr(i, q));
  }
  out->resize(used);
}

}  // namespace csm
