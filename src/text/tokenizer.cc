#include "text/tokenizer.h"

#include <cctype>

namespace csm {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string NormalizeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (IsWordChar(c)) {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_space = true;
    }
  }
  return out;
}

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (IsWordChar(c)) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view text, size_t q) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  std::string normalized = NormalizeText(text);
  if (normalized.empty()) return grams;
  std::string padded(q - 1, '#');
  padded += normalized;
  padded.append(q - 1, '#');
  if (padded.size() < q) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  return grams;
}

}  // namespace csm
