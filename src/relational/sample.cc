#include "relational/sample.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace csm {
namespace {

/// Shared index selection: shuffles 0..n-1, clamps the train size, and
/// returns both sides sorted ascending.  Both split flavors call this so
/// their row selection is draw-for-draw identical.
std::pair<PosList, PosList> SplitPositions(size_t n, double train_fraction,
                                           Rng& rng) {
  CSM_CHECK_GE(train_fraction, 0.0);
  CSM_CHECK_LE(train_fraction, 1.0);
  PosList indices(n);
  std::iota(indices.begin(), indices.end(), RowId{0});
  rng.Shuffle(indices);

  size_t train_size =
      static_cast<size_t>(train_fraction * static_cast<double>(n) + 0.5);
  if (n >= 2) {
    train_size = std::clamp<size_t>(train_size, 1, n - 1);
  } else {
    train_size = n;
  }

  PosList train(indices.begin(), indices.begin() + train_size);
  PosList test(indices.begin() + train_size, indices.end());
  // Preserve original row order within each side for determinism of
  // downstream order-sensitive consumers.
  std::sort(train.begin(), train.end());
  std::sort(test.begin(), test.end());
  return {std::move(train), std::move(test)};
}

}  // namespace

TrainTestSplit SplitTrainTest(const Table& instance, double train_fraction,
                              Rng& rng) {
  auto [train, test] = SplitPositions(instance.num_rows(), train_fraction, rng);
  return TrainTestSplit{instance.SelectRows(train), instance.SelectRows(test)};
}

TrainTestViewSplit SplitTrainTestView(const TableView& instance,
                                      double train_fraction, Rng& rng) {
  auto [train, test] = SplitPositions(instance.num_rows(), train_fraction, rng);
  return TrainTestViewSplit{instance.Select(std::move(train)),
                            instance.Select(std::move(test))};
}

PosList SampleRowPositions(size_t num_rows, size_t sample_size, Rng& rng) {
  // PosList entries are 32-bit; Table::AddRow enforces the same bound.
  CSM_CHECK_LE(num_rows, static_cast<size_t>(RowId{0} - 1) + 1);
  if (sample_size >= num_rows) {
    PosList all(num_rows);
    std::iota(all.begin(), all.end(), RowId{0});
    return all;
  }
  // Floyd's sampling: for j in [n-k, n), draw t uniform on [0, j]; take t
  // unless already taken, else take j.  Every k-subset is equally likely,
  // with exactly k draws and a k-entry set — no n-sized allocation, no
  // full shuffle.
  PosList out;
  out.reserve(sample_size);
  std::unordered_set<RowId> chosen;
  chosen.reserve(sample_size * 2);
  for (size_t j = num_rows - sample_size; j < num_rows; ++j) {
    const RowId t = static_cast<RowId>(rng.NextBounded(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      // j itself is fresh: every prior pick is <= the prior j < this j.
      chosen.insert(static_cast<RowId>(j));
      out.push_back(static_cast<RowId>(j));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Table ReservoirSampleRows(const Table& instance, size_t sample_size,
                          Rng& rng) {
  if (sample_size >= instance.num_rows()) return instance;
  return instance.SelectRows(
      SampleRowPositions(instance.num_rows(), sample_size, rng));
}

Table SampleRows(const Table& instance, size_t sample_size, Rng& rng) {
  return ReservoirSampleRows(instance, sample_size, rng);
}

uint64_t DeriveTableSampleSeed(uint64_t seed, std::string_view table_name) {
  // FNV-1a over the name, folded into the caller's seed; stable across
  // platforms so cold-tier restores rebuild the identical sample.
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (char c : table_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace csm
