#include "relational/sample.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace csm {

TrainTestSplit SplitTrainTest(const Table& instance, double train_fraction,
                              Rng& rng) {
  CSM_CHECK_GE(train_fraction, 0.0);
  CSM_CHECK_LE(train_fraction, 1.0);
  const size_t n = instance.num_rows();
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(indices);

  size_t train_size = static_cast<size_t>(
      train_fraction * static_cast<double>(n) + 0.5);
  if (n >= 2) {
    train_size = std::clamp<size_t>(train_size, 1, n - 1);
  } else {
    train_size = n;
  }

  std::vector<size_t> train_indices(indices.begin(),
                                    indices.begin() + train_size);
  std::vector<size_t> test_indices(indices.begin() + train_size,
                                   indices.end());
  // Preserve original row order within each side for determinism of
  // downstream order-sensitive consumers.
  std::sort(train_indices.begin(), train_indices.end());
  std::sort(test_indices.begin(), test_indices.end());
  return TrainTestSplit{instance.SelectRows(train_indices),
                        instance.SelectRows(test_indices)};
}

Table SampleRows(const Table& instance, size_t sample_size, Rng& rng) {
  const size_t n = instance.num_rows();
  if (sample_size >= n) return instance;
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(indices);
  indices.resize(sample_size);
  std::sort(indices.begin(), indices.end());
  return instance.SelectRows(indices);
}

}  // namespace csm
