#include "relational/sample.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace csm {
namespace {

/// Shared index selection: shuffles 0..n-1, clamps the train size, and
/// returns both sides sorted ascending.  Both split flavors call this so
/// their row selection is draw-for-draw identical.
std::pair<PosList, PosList> SplitPositions(size_t n, double train_fraction,
                                           Rng& rng) {
  CSM_CHECK_GE(train_fraction, 0.0);
  CSM_CHECK_LE(train_fraction, 1.0);
  PosList indices(n);
  std::iota(indices.begin(), indices.end(), RowId{0});
  rng.Shuffle(indices);

  size_t train_size =
      static_cast<size_t>(train_fraction * static_cast<double>(n) + 0.5);
  if (n >= 2) {
    train_size = std::clamp<size_t>(train_size, 1, n - 1);
  } else {
    train_size = n;
  }

  PosList train(indices.begin(), indices.begin() + train_size);
  PosList test(indices.begin() + train_size, indices.end());
  // Preserve original row order within each side for determinism of
  // downstream order-sensitive consumers.
  std::sort(train.begin(), train.end());
  std::sort(test.begin(), test.end());
  return {std::move(train), std::move(test)};
}

}  // namespace

TrainTestSplit SplitTrainTest(const Table& instance, double train_fraction,
                              Rng& rng) {
  auto [train, test] = SplitPositions(instance.num_rows(), train_fraction, rng);
  return TrainTestSplit{instance.SelectRows(train), instance.SelectRows(test)};
}

TrainTestViewSplit SplitTrainTestView(const TableView& instance,
                                      double train_fraction, Rng& rng) {
  auto [train, test] = SplitPositions(instance.num_rows(), train_fraction, rng);
  return TrainTestViewSplit{instance.Select(std::move(train)),
                            instance.Select(std::move(test))};
}

Table SampleRows(const Table& instance, size_t sample_size, Rng& rng) {
  const size_t n = instance.num_rows();
  if (sample_size >= n) return instance;
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(indices);
  indices.resize(sample_size);
  std::sort(indices.begin(), indices.end());
  return instance.SelectRows(indices);
}

}  // namespace csm
