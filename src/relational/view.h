// Select-only (and select-project) views over base tables, plus view
// families (Section 3.2.2).
//
// Candidate contextual conditions are represented as views "select * from R
// where c"; the mapping machinery of Section 4 also needs SP views
// "select Y from R where c".  Views are *descriptions* — they are never
// registered anywhere; Materialize() evaluates one against an instance on
// demand (the paper stresses that no views are created in the DBMS during
// search).

#ifndef CSM_RELATIONAL_VIEW_H_
#define CSM_RELATIONAL_VIEW_H_

#include <string>
#include <vector>

#include "relational/condition.h"
#include "relational/table.h"
#include "relational/table_view.h"

namespace csm {

/// A select-project view definition over a single base table.
class View {
 public:
  View() = default;

  /// Select-only view: select * from `base_table` where `condition`.
  View(std::string name, std::string base_table, Condition condition)
      : name_(std::move(name)),
        base_table_(std::move(base_table)),
        condition_(std::move(condition)) {}

  /// SP view: select `projection` from `base_table` where `condition`.
  View(std::string name, std::string base_table, Condition condition,
       std::vector<std::string> projection)
      : name_(std::move(name)),
        base_table_(std::move(base_table)),
        condition_(std::move(condition)),
        projection_(std::move(projection)) {}

  const std::string& name() const { return name_; }
  const std::string& base_table() const { return base_table_; }
  const Condition& condition() const { return condition_; }

  /// Empty means "select *".
  const std::vector<std::string>& projection() const { return projection_; }
  bool has_projection() const { return !projection_.empty(); }

  /// The view's schema given its base table's schema.
  TableSchema ViewSchema(const TableSchema& base_schema) const;

  /// Evaluates the view against an instance of its base table (whose name
  /// must match base_table(); CHECK-enforced).
  Table Materialize(const Table& base_instance) const;

  /// Binds the view to an instance without copying: the result is a
  /// TableView (PosList + projection map) over `base_instance`, carrying
  /// the view's schema.  `base_instance` must outlive the returned view.
  TableView Bind(const Table& base_instance) const;

  /// Row positions of `base_instance` satisfying the condition (columnar
  /// scan; ascending).
  PosList Positions(const Table& base_instance) const;

  /// Row indices of `base_instance` satisfying the condition.
  std::vector<size_t> MatchingRows(const Table& base_instance) const;

  /// "name := select * from R where c".
  std::string ToString() const;

  friend bool operator==(const View& a, const View& b) {
    return a.name_ == b.name_ && a.base_table_ == b.base_table_ &&
           a.condition_ == b.condition_ && a.projection_ == b.projection_;
  }

 private:
  std::string name_;
  std::string base_table_;
  Condition condition_;
  std::vector<std::string> projection_;
};

/// A view family F = (R, l, {V_i}): select-only views over base table R
/// whose conditions partition rows by the categorical attribute l
/// (Section 3.2.2).  With early-disjunct merging a member view's clause may
/// hold several values of l; the family's conditions remain mutually
/// exclusive.
struct ViewFamily {
  std::string base_table;
  std::string label_attribute;  // the categorical attribute l
  std::vector<View> views;

  /// Quality of the family as judged by ClusteredViewGen: the micro-averaged
  /// F1 of the classifier that produced it, and the significance of that
  /// score against the random-label null hypothesis.
  double classifier_f1 = 0.0;
  double significance = 0.0;

  /// The non-categorical attribute h that the family classified well
  /// (diagnostic only).
  std::string evidence_attribute;

  /// Verifies the family invariant: all views select from `base_table` with
  /// 1-conditions on `label_attribute` and pairwise-disjoint value sets.
  bool IsWellFormed() const;

  std::string ToString() const;
};

/// Builds the family of simple-condition views {V_i: l = v_i} for every
/// distinct non-null value v_i of `label_attribute` in `instance`.
/// View names are "<table>[l=v]".
ViewFamily MakeSimpleViewFamily(const Table& instance,
                                std::string_view label_attribute);

}  // namespace csm

#endif  // CSM_RELATIONAL_VIEW_H_
