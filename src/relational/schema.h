// Schema catalog: attribute definitions, table schemas, and schemas
// (collections of tables), per Section 2.1 of the paper.

#ifndef CSM_RELATIONAL_SCHEMA_H_
#define CSM_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace csm {

/// One attribute (column) of a table: a name and a basic type.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kString;

  friend bool operator==(const AttributeDef& a, const AttributeDef& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// The schema of a single table: a name plus an ordered attribute list.
/// Attribute names are unique within a table (CHECK-enforced on AddAttribute).
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string name) : name_(std::move(name)) {}
  TableSchema(std::string name, std::vector<AttributeDef> attributes);

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }

  /// Appends an attribute; CHECK-fails on a duplicate name.
  void AddAttribute(std::string name, ValueType type);

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> FindAttribute(std::string_view name) const;

  /// Index of `name`; CHECK-fails if absent.
  size_t AttributeIndex(std::string_view name) const;

  bool HasAttribute(std::string_view name) const {
    return FindAttribute(name).has_value();
  }

  const AttributeDef& attribute(size_t index) const;

  /// "table(name: type, ...)" rendering for diagnostics.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

/// A fully qualified attribute reference "Table.attr".
struct AttributeRef {
  std::string table;
  std::string attribute;

  std::string ToString() const { return table + "." + attribute; }

  friend bool operator==(const AttributeRef& a, const AttributeRef& b) {
    return a.table == b.table && a.attribute == b.attribute;
  }
  friend bool operator<(const AttributeRef& a, const AttributeRef& b) {
    if (a.table != b.table) return a.table < b.table;
    return a.attribute < b.attribute;
  }
};

/// A named collection of table schemas (Rs or Rt in the paper).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<TableSchema>& tables() const { return tables_; }
  size_t num_tables() const { return tables_.size(); }

  /// Adds a table schema; CHECK-fails on a duplicate table name.
  void AddTable(TableSchema table);

  const TableSchema* FindTable(std::string_view name) const;
  /// CHECK-fails if absent.
  const TableSchema& GetTable(std::string_view name) const;
  bool HasTable(std::string_view name) const {
    return FindTable(name) != nullptr;
  }

  /// Total number of attributes across all tables.
  size_t TotalAttributes() const;

 private:
  std::string name_;
  std::vector<TableSchema> tables_;
};

}  // namespace csm

#endif  // CSM_RELATIONAL_SCHEMA_H_
