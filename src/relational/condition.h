// Selection conditions for contextual matches (Section 2.2 of the paper).
//
// The paper's condition language is: "true", simple 1-conditions (a = v),
// simple disjunctive conditions (a IN {v1..vk}), and conjunctions of those
// over distinct attributes (k-conditions).  Condition models exactly that
// language as a conjunction of IN-clauses; the empty conjunction is "true".

#ifndef CSM_RELATIONAL_CONDITION_H_
#define CSM_RELATIONAL_CONDITION_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace csm {

/// One conjunct: `attribute IN values` (a simple condition when
/// values.size() == 1, a simple-disjunctive condition otherwise).
/// `values` is kept sorted and deduplicated.
struct ConditionClause {
  std::string attribute;
  std::vector<Value> values;

  /// Normalizes `values` (sort + dedup).
  void Normalize();

  /// True iff `v` is one of `values`.
  bool Matches(const Value& v) const;

  /// "a = v" or "a in {v1, v2}".
  std::string ToString() const;

  friend bool operator==(const ConditionClause& a, const ConditionClause& b) {
    return a.attribute == b.attribute && a.values == b.values;
  }
};

/// A conjunction of clauses over distinct attributes; the empty conjunction
/// is the constant "true" (a standard, non-contextual match).
class Condition {
 public:
  /// The constant "true".
  Condition() = default;

  /// Simple condition `attribute = value`.
  static Condition Equals(std::string attribute, Value value);

  /// Simple disjunctive condition `attribute IN values`.
  static Condition In(std::string attribute, std::vector<Value> values);

  /// The constant "true".
  static Condition True() { return Condition(); }

  bool is_true() const { return clauses_.empty(); }

  const std::vector<ConditionClause>& clauses() const { return clauses_; }

  /// Number of distinct attributes mentioned (the paper's "k" in
  /// k-condition); 0 for "true".
  size_t NumAttributes() const { return clauses_.size(); }

  /// True iff some clause mentions `attribute`.
  bool MentionsAttribute(std::string_view attribute) const;

  /// Attributes mentioned, in clause order.
  std::vector<std::string> MentionedAttributes() const;

  /// Adds a conjunct; CHECK-fails if `attribute` is already mentioned
  /// (the paper's k-conditions mention k *distinct* attributes).
  void AddClause(std::string attribute, std::vector<Value> values);

  /// Returns this AND other; CHECK-fails on shared attributes.
  Condition Conjoin(const Condition& other) const;

  /// Evaluates the condition against a row of `schema`.  NULL cells never
  /// match.  CHECK-fails if a mentioned attribute is absent from `schema`.
  bool Evaluate(const TableSchema& schema, const Row& row) const;

  /// Row positions of `instance` satisfying the condition, in ascending
  /// order — the columnar equivalent of evaluating every row.  Clause
  /// literals are translated once per scan (string literals to dictionary
  /// codes, numeric literals to typed sets), so the per-row work is an
  /// integer comparison.  Matches Evaluate() cell for cell: NULL never
  /// matches and a literal of a different type than the column cannot match.
  /// CHECK-fails if a mentioned attribute is absent from the schema.
  PosList MatchingPositions(const Table& instance) const;

  /// SQL-ish rendering: "true", "type = 1", "type in {1, 3} and fiction = 0".
  std::string ToString() const;

  friend bool operator==(const Condition& a, const Condition& b) {
    return a.clauses_ == b.clauses_;
  }

 private:
  std::vector<ConditionClause> clauses_;
};

}  // namespace csm

#endif  // CSM_RELATIONAL_CONDITION_H_
