#include "relational/column.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

uint32_t StringDictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  CSM_CHECK_LT(values_.size(), static_cast<size_t>(kNullCode))
      << "string dictionary full";
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.emplace_back(s);
  index_.emplace(values_.back(), code);
  return code;
}

std::optional<uint32_t> StringDictionary::Find(std::string_view s) const {
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& StringDictionary::value(uint32_t code) const {
  CSM_CHECK_LT(code, values_.size());
  return values_[code];
}

Column::Column(ValueType type) : type_(type) {
  if (type_ == ValueType::kString) {
    dict_ = std::make_shared<StringDictionary>();
  }
}

bool Column::IsNull(size_t i) const {
  CSM_CHECK_LT(i, size_);
  if (type_ == ValueType::kString) return codes_[i] == kNullCode;
  return nulls_[i] != 0;
}

Value Column::GetValue(size_t i) const {
  CSM_CHECK_LT(i, size_);
  switch (type_) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt:
      return nulls_[i] ? Value::Null() : Value::Int(ints_[i]);
    case ValueType::kReal:
      return nulls_[i] ? Value::Null() : Value::Real(reals_[i]);
    case ValueType::kString:
      return codes_[i] == kNullCode ? Value::Null()
                                    : Value::String(dict_->value(codes_[i]));
  }
  return Value::Null();
}

void Column::BoxAllTo(std::vector<Value>* out) const {
  // emplace_back constructs each Value directly in the vector storage with
  // the alternative known at compile time: one construction per cell, no
  // temporary + move and no per-cell variant dispatch.
  out->reserve(out->size() + size_);
  switch (type_) {
    case ValueType::kNull:
      for (size_t i = 0; i < size_; ++i) out->emplace_back();
      break;
    case ValueType::kInt:
      for (size_t i = 0; i < size_; ++i) {
        if (nulls_[i]) out->emplace_back();
        else out->emplace_back(ints_[i]);
      }
      break;
    case ValueType::kReal:
      for (size_t i = 0; i < size_; ++i) {
        if (nulls_[i]) out->emplace_back();
        else out->emplace_back(reals_[i]);
      }
      break;
    case ValueType::kString: {
      const std::vector<std::string>& strings = dict_->values();
      for (size_t i = 0; i < size_; ++i) {
        if (codes_[i] == kNullCode) out->emplace_back();
        else out->emplace_back(strings[codes_[i]]);
      }
      break;
    }
  }
}

void Column::BoxGatheredTo(const PosList& positions,
                           std::vector<Value>* out) const {
  out->reserve(out->size() + positions.size());
  switch (type_) {
    case ValueType::kNull:
      for (size_t i = 0; i < positions.size(); ++i) out->emplace_back();
      break;
    case ValueType::kInt:
      for (RowId p : positions) {
        CSM_CHECK_LT(p, size_);
        if (nulls_[p]) out->emplace_back();
        else out->emplace_back(ints_[p]);
      }
      break;
    case ValueType::kReal:
      for (RowId p : positions) {
        CSM_CHECK_LT(p, size_);
        if (nulls_[p]) out->emplace_back();
        else out->emplace_back(reals_[p]);
      }
      break;
    case ValueType::kString: {
      const std::vector<std::string>& strings = dict_->values();
      for (RowId p : positions) {
        CSM_CHECK_LT(p, size_);
        if (codes_[p] == kNullCode) out->emplace_back();
        else out->emplace_back(strings[codes_[p]]);
      }
      break;
    }
  }
}

uint64_t Column::CellHash(size_t i) const {
  CSM_CHECK_LT(i, size_);
  // Must stay formula-identical to Value::Hash() — the differential fuzzer
  // and the engine's sample-fingerprint cache keys both depend on it.
  constexpr uint64_t kNullHash = 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case ValueType::kNull:
      return kNullHash;
    case ValueType::kInt:
      return nulls_[i] ? kNullHash : std::hash<int64_t>{}(ints_[i]) * 3 + 1;
    case ValueType::kReal:
      return nulls_[i] ? kNullHash : std::hash<double>{}(reals_[i]) * 3 + 2;
    case ValueType::kString:
      return codes_[i] == kNullCode
                 ? kNullHash
                 : std::hash<std::string>{}(dict_->value(codes_[i])) * 3;
  }
  return 0;
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  CSM_CHECK(v.type() == type_)
      << "column type mismatch: expected " << ValueTypeToString(type_)
      << ", got " << ValueTypeToString(v.type());
  switch (type_) {
    case ValueType::kNull:
      break;  // unreachable: non-null v never has type kNull
    case ValueType::kInt:
      ints_.push_back(v.AsInt());
      nulls_.push_back(0);
      break;
    case ValueType::kReal:
      reals_.push_back(v.AsReal());
      nulls_.push_back(0);
      break;
    case ValueType::kString:
      EnsureOwnDictionary();
      codes_.push_back(dict_->GetOrAdd(v.AsString()));
      break;
  }
  ++size_;
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kNull:
      nulls_.push_back(1);
      break;
    case ValueType::kInt:
      ints_.push_back(0);
      nulls_.push_back(1);
      break;
    case ValueType::kReal:
      reals_.push_back(0.0);
      nulls_.push_back(1);
      break;
    case ValueType::kString:
      codes_.push_back(kNullCode);
      break;
  }
  ++size_;
}

Status Column::AppendParsed(std::string_view text) {
  // Mirrors Value::Parse exactly: trimmed-empty cells are NULL, numeric
  // cells must consume the whole trimmed text, string cells keep the
  // untrimmed original.
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    AppendNull();
    return Status::Ok();
  }
  switch (type_) {
    case ValueType::kNull:
      AppendNull();
      return Status::Ok();
    case ValueType::kInt: {
      int64_t out = 0;
      auto [ptr, ec] =
          std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), out);
      if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
        return Status::InvalidArgument("cannot parse int: '" +
                                       std::string(trimmed) + "'");
      }
      ints_.push_back(out);
      nulls_.push_back(0);
      ++size_;
      return Status::Ok();
    }
    case ValueType::kReal: {
      double out = 0;
      auto [ptr, ec] =
          std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), out);
      if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
        return Status::InvalidArgument("cannot parse real: '" +
                                       std::string(trimmed) + "'");
      }
      reals_.push_back(out);
      nulls_.push_back(0);
      ++size_;
      return Status::Ok();
    }
    case ValueType::kString:
      EnsureOwnDictionary();
      codes_.push_back(dict_->GetOrAdd(text));
      ++size_;
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown value type");
}

void Column::PopBack() {
  CSM_CHECK_GT(size_, 0u);
  switch (type_) {
    case ValueType::kNull:
      nulls_.pop_back();
      break;
    case ValueType::kInt:
      ints_.pop_back();
      nulls_.pop_back();
      break;
    case ValueType::kReal:
      reals_.pop_back();
      nulls_.pop_back();
      break;
    case ValueType::kString:
      codes_.pop_back();
      break;
  }
  --size_;
}

void Column::AppendFrom(const Column& other) {
  CSM_CHECK(other.type_ == type_)
      << "column type mismatch: expected " << ValueTypeToString(type_)
      << ", got " << ValueTypeToString(other.type_);
  switch (type_) {
    case ValueType::kNull:
      nulls_.insert(nulls_.end(), other.nulls_.begin(), other.nulls_.end());
      break;
    case ValueType::kInt:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      nulls_.insert(nulls_.end(), other.nulls_.begin(), other.nulls_.end());
      break;
    case ValueType::kReal:
      reals_.insert(reals_.end(), other.reals_.begin(), other.reals_.end());
      nulls_.insert(nulls_.end(), other.nulls_.begin(), other.nulls_.end());
      break;
    case ValueType::kString: {
      EnsureOwnDictionary();
      codes_.reserve(codes_.size() + other.codes_.size());
      // Lazy per-row remap: other's values enter this dictionary in the
      // order other's *rows* first reference them, which is exactly the
      // order a serial parse of the concatenated rows would have assigned.
      // kNullCode doubles as the "not yet remapped" sentinel because no
      // real code can equal it (GetOrAdd CHECKs the dictionary below it).
      std::vector<uint32_t> remap(other.dict_->size(), kNullCode);
      for (uint32_t code : other.codes_) {
        if (code == kNullCode) {
          codes_.push_back(kNullCode);
          continue;
        }
        if (remap[code] == kNullCode) {
          remap[code] = dict_->GetOrAdd(other.dict_->value(code));
        }
        codes_.push_back(remap[code]);
      }
      break;
    }
  }
  size_ += other.size_;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kNull:
      nulls_.reserve(n);
      break;
    case ValueType::kInt:
      ints_.reserve(n);
      nulls_.reserve(n);
      break;
    case ValueType::kReal:
      reals_.reserve(n);
      nulls_.reserve(n);
      break;
    case ValueType::kString:
      codes_.reserve(n);
      break;
  }
}

Column Column::Gather(const PosList& positions) const {
  Column out(type_);
  out.size_ = positions.size();
  switch (type_) {
    case ValueType::kNull:
      out.nulls_.assign(positions.size(), 1);
      break;
    case ValueType::kInt:
      out.ints_.reserve(positions.size());
      out.nulls_.reserve(positions.size());
      for (RowId p : positions) {
        CSM_CHECK_LT(p, size_);
        out.ints_.push_back(ints_[p]);
        out.nulls_.push_back(nulls_[p]);
      }
      break;
    case ValueType::kReal:
      out.reals_.reserve(positions.size());
      out.nulls_.reserve(positions.size());
      for (RowId p : positions) {
        CSM_CHECK_LT(p, size_);
        out.reals_.push_back(reals_[p]);
        out.nulls_.push_back(nulls_[p]);
      }
      break;
    case ValueType::kString:
      out.codes_.reserve(positions.size());
      for (RowId p : positions) {
        CSM_CHECK_LT(p, size_);
        out.codes_.push_back(codes_[p]);
      }
      // Share the encoding; a later Append to either column clones first.
      out.dict_ = dict_;
      break;
  }
  return out;
}

const StringDictionary& Column::dictionary() const {
  CSM_CHECK(type_ == ValueType::kString) << "not a string column";
  return *dict_;
}

std::optional<uint32_t> Column::CodeFor(std::string_view s) const {
  if (type_ != ValueType::kString) return std::nullopt;
  return dict_->Find(s);
}

std::vector<std::pair<uint32_t, size_t>> Column::CodeCounts() const {
  CSM_CHECK(type_ == ValueType::kString) << "not a string column";
  std::unordered_map<uint32_t, size_t> counts;
  for (uint32_t code : codes_) {
    if (code != kNullCode) ++counts[code];
  }
  std::vector<std::pair<uint32_t, size_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Column::EnsureOwnDictionary() {
  if (dict_.use_count() > 1) {
    dict_ = std::make_shared<StringDictionary>(*dict_);
  }
}

}  // namespace csm
