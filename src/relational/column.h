// Typed column segments for the columnar table store.
//
// Each attribute of a Table is stored as one Column: a contiguous typed
// vector (int64/double) with a null mask, or — for string attributes — a
// vector of 32-bit dictionary codes into a shared StringDictionary, so
// equality conditions compare integer codes instead of heap strings.
// Columns gather by position list (PosList) without re-encoding: a gathered
// string column shares its parent's dictionary, which is what makes
// candidate-view evaluation and view materialization cheap.

#ifndef CSM_RELATIONAL_COLUMN_H_
#define CSM_RELATIONAL_COLUMN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace csm {

/// A row position in a base table.  32 bits bound tables to ~4.2e9 rows
/// (CHECK-enforced on append) and halve the footprint of position lists.
using RowId = uint32_t;

/// Row positions of a base table, in ascending order when produced by a
/// condition scan.  The zero-copy representation of a select-only view.
using PosList = std::vector<RowId>;

/// Dictionary code marking a NULL string cell.
inline constexpr uint32_t kNullCode = 0xffffffffu;

/// An append-only string dictionary: code -> string and string -> code.
/// Codes are assigned in first-seen order, so the encoding of a table is a
/// deterministic function of its content (thread-count independent).
class StringDictionary {
 public:
  /// Returns the code of `s`, adding it if absent.
  uint32_t GetOrAdd(std::string_view s);

  /// The code of `s`, or nullopt when the dictionary does not contain it
  /// (the cheap "this literal cannot match any cell" test).
  std::optional<uint32_t> Find(std::string_view s) const;

  const std::string& value(uint32_t code) const;
  size_t size() const { return values_.size(); }

  /// Direct code -> string storage for bulk scan loops.  Codes read out of
  /// a column segment are valid by construction (validated on append), so
  /// indexing this skips the per-call bounds CHECK of value().
  const std::vector<std::string>& values() const { return values_; }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t, Hash, Eq> index_;
};

/// One attribute's segment: typed storage plus null handling.
///
///   kInt    ints_ + nulls_ (1 byte per row; a null row's payload is 0)
///   kReal   reals_ + nulls_
///   kString codes_ into dict_ (kNullCode marks NULL; no separate mask)
///   kNull   nulls_ only (every cell is NULL by construction)
///
/// Mutation (Append*/PopBack) is single-writer; concurrent reads of a
/// non-mutating Column are safe.  Gather() shares the dictionary with the
/// parent column; a later Append to either side clones the dictionary
/// first (copy-on-write), so shared encodings never diverge.
class Column {
 public:
  Column() = default;
  explicit Column(ValueType type);

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  bool IsNull(size_t i) const;

  /// Boxes cell `i` back into a Value (exact round trip of Append).
  Value GetValue(size_t i) const;

  /// Hash of cell `i`, identical to GetValue(i).Hash().
  uint64_t CellHash(size_t i) const;

  /// Appends GetValue(i) for every cell to `out`, with the type switch
  /// hoisted out of the row loop (the bulk boxing path of ValueBag).
  void BoxAllTo(std::vector<Value>* out) const;

  /// Appends GetValue(p) for each position in `positions` to `out`.
  void BoxGatheredTo(const PosList& positions, std::vector<Value>* out) const;

  /// Appends `v`; CHECK-fails unless v is NULL or matches type().
  void Append(const Value& v);
  void AppendNull();

  /// Parses `text` directly into the segment with Value::Parse semantics
  /// (trimmed-empty parses as NULL; string cells keep the untrimmed text),
  /// without constructing an intermediate Value.
  Status AppendParsed(std::string_view text);

  /// Removes the last cell (ingest rollback on a failed row).
  void PopBack();

  /// Appends every cell of `other` (same type; CHECK-enforced) — the merge
  /// step of parallel CSV ingest.  String cells are re-encoded into this
  /// column's dictionary lazily in `other`'s row order, so concatenating
  /// freshly parsed chunk columns reproduces the exact first-seen
  /// dictionary order (and therefore the exact codes) a single serial
  /// parse of the concatenated rows would have produced.  Dictionary
  /// entries of `other` that no row references are not copied.
  void AppendFrom(const Column& other);

  void Reserve(size_t n);

  /// New column with the cells at `positions`, in order.  String columns
  /// share this column's dictionary (no string copies).
  Column Gather(const PosList& positions) const;

  // Typed raw access for scan loops.  Only the vectors matching type() are
  // populated; see the class comment.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& reals() const { return reals_; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  /// Null mask for kInt/kReal/kNull columns (1 = NULL).
  const std::vector<uint8_t>& null_mask() const { return nulls_; }
  /// Dictionary of a kString column; CHECK-fails otherwise.
  const StringDictionary& dictionary() const;

  /// Code of string value `s` in this column's dictionary, or nullopt when
  /// the column is not a string column or never saw `s`.
  std::optional<uint32_t> CodeFor(std::string_view s) const;

  /// Typed distinct-count access for a kString column: the distinct codes
  /// referenced by this column's rows with their multiplicities, sorted by
  /// code (== dictionary first-seen order), NULL cells excluded.  Cost is
  /// O(rows) hash aggregation — deliberately not O(dictionary), since
  /// gathered columns share (possibly much larger) parent dictionaries.
  /// CHECK-fails on non-string columns.
  std::vector<std::pair<uint32_t, size_t>> CodeCounts() const;

 private:
  void EnsureOwnDictionary();

  ValueType type_ = ValueType::kString;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> reals_;
  std::vector<uint32_t> codes_;
  std::vector<uint8_t> nulls_;
  std::shared_ptr<StringDictionary> dict_;
};

}  // namespace csm

#endif  // CSM_RELATIONAL_COLUMN_H_
