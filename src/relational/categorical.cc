#include "relational/categorical.h"

namespace csm {

bool IsCategoricalAttribute(const TableView& instance,
                            std::string_view attribute,
                            const CategoricalOptions& options) {
  const std::map<Value, size_t> counts = instance.ValueCounts(attribute);
  if (counts.empty()) return false;

  size_t total_tuples = 0;
  for (const auto& [value, count] : counts) total_tuples += count;
  if (total_tuples == 0) return false;

  // Main rule: more than `value_fraction` of the distinct values must each
  // cover more than `tuple_fraction` of the tuples.
  const double tuple_threshold =
      options.tuple_fraction * static_cast<double>(total_tuples);
  size_t frequent_values = 0;
  size_t values_with_min_tuples = 0;
  for (const auto& [value, count] : counts) {
    if (static_cast<double>(count) > tuple_threshold) ++frequent_values;
    if (count >= options.min_tuples_per_value) ++values_with_min_tuples;
  }
  const double frequent_fraction = static_cast<double>(frequent_values) /
                                   static_cast<double>(counts.size());
  if (frequent_fraction <= options.value_fraction) return false;

  // Small-sample guard (always applied; for large samples it is implied in
  // practice): at least `min_frequent_values` values each associated with at
  // least `min_tuples_per_value` tuples.
  return values_with_min_tuples >= options.min_frequent_values;
}

std::vector<std::string> CategoricalAttributes(
    const TableView& instance, const CategoricalOptions& options) {
  std::vector<std::string> out;
  for (const auto& attr : instance.schema().attributes()) {
    if (IsCategoricalAttribute(instance, attr.name, options)) {
      out.push_back(attr.name);
    }
  }
  return out;
}

std::vector<std::string> NonCategoricalAttributes(
    const TableView& instance, const CategoricalOptions& options) {
  std::vector<std::string> out;
  for (const auto& attr : instance.schema().attributes()) {
    if (!IsCategoricalAttribute(instance, attr.name, options)) {
      out.push_back(attr.name);
    }
  }
  return out;
}

}  // namespace csm
