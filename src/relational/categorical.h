// Categorical-attribute detection, per Section 2.1 of the paper:
//
//   "we consider an attribute a to be categorical if more than 10% of the
//    values of a are associated with more than 1% of the tuples in our
//    sample.  In the case of small samples, at least two values must be
//    associated with at least two tuples."

#ifndef CSM_RELATIONAL_CATEGORICAL_H_
#define CSM_RELATIONAL_CATEGORICAL_H_

#include <string>
#include <vector>

#include "relational/table.h"
#include "relational/table_view.h"

namespace csm {

/// Tunable thresholds for the categorical rule; defaults follow the paper.
struct CategoricalOptions {
  /// Fraction of distinct values that must be "frequent" (paper: 10%).
  double value_fraction = 0.10;
  /// A value is "frequent" when it covers more than this fraction of the
  /// sample's tuples (paper: 1%).
  double tuple_fraction = 0.01;
  /// Small-sample guard: at least this many values must each be associated
  /// with at least `min_tuples_per_value` tuples (paper: 2 and 2).
  size_t min_frequent_values = 2;
  size_t min_tuples_per_value = 2;
};

/// Applies the rule to one attribute of `instance`.  Attributes with no
/// non-null values are never categorical.  Accepts a zero-copy TableView;
/// a Table converts implicitly (identity view).
bool IsCategoricalAttribute(const TableView& instance,
                            std::string_view attribute,
                            const CategoricalOptions& options = {});

/// Cat(R): names of the categorical attributes of `instance`, in schema
/// order.
std::vector<std::string> CategoricalAttributes(
    const TableView& instance, const CategoricalOptions& options = {});

/// Names of non-categorical attributes (the h candidates of
/// ClusteredViewGen), in schema order.
std::vector<std::string> NonCategoricalAttributes(
    const TableView& instance, const CategoricalOptions& options = {});

}  // namespace csm

#endif  // CSM_RELATIONAL_CATEGORICAL_H_
