// In-memory table instances and the value-bag accessor v(R, a) used
// throughout the matching algorithms.
//
// Storage is columnar: one typed Column segment per attribute, with
// dictionary-encoded strings (see relational/column.h).  The legacy
// row-oriented accessors (rows(), row(), at()) are preserved on top of the
// columnar store via a lazily built row cache, so existing call sites keep
// working unchanged while hot paths scan columns directly.

#ifndef CSM_RELATIONAL_TABLE_H_
#define CSM_RELATIONAL_TABLE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "relational/column.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace csm {

/// One tuple: values aligned to the table schema's attribute order.
using Row = std::vector<Value>;

/// A table instance: schema plus columnar segments.  Rows are CHECK-verified
/// for arity; type conformance is verified for non-null cells.
class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Appends a row; CHECK-fails on arity or type mismatch.
  void AddRow(Row row);

  /// Parses `fields` (one cell of raw text per attribute) directly into the
  /// column segments with Value::Parse semantics, skipping per-cell Value
  /// boxing.  On a parse error no row is appended (partial cells are rolled
  /// back) and the error is returned.
  Status AddRowFromText(const std::vector<std::string>& fields);

  /// Reserves capacity for `n` rows across all column segments.
  void Reserve(size_t n);

  /// Appends every row of `other` (attribute names and types must match;
  /// CHECK-enforced) — the ordered merge step of parallel CSV ingest.
  /// String cells re-encode into this table's dictionaries in row order
  /// (Column::AppendFrom), so appending freshly parsed chunk tables in
  /// chunk order is bit-identical to one serial parse of the whole file.
  void AppendRowsFrom(const Table& other);

  /// Legacy row-oriented accessors, served from a lazily built (and
  /// mutex-guarded, so concurrent const readers are safe) row cache.
  /// References stay valid until the next AddRow / AddRowFromText.
  const std::vector<Row>& rows() const;
  const Row& row(size_t index) const;

  /// The cell at (row, attribute index) — row-cache-backed reference.
  const Value& at(size_t row_index, size_t col_index) const;

  /// The cell at (row, attribute name); CHECK-fails for unknown names.
  const Value& at(size_t row_index, std::string_view attribute) const;

  /// The cell at (row, attribute index) boxed by value straight from the
  /// column segment — no row cache involved.
  Value ValueAt(size_t row_index, size_t col_index) const;

  /// Column segment of attribute `col_index`.
  const Column& column(size_t col_index) const;

  /// v(R, a): the bag of values of attribute `a` across all rows
  /// ("select a from R"), in row order.  NULLs are included.
  std::vector<Value> ValueBag(std::string_view attribute) const;
  std::vector<Value> ValueBag(size_t col_index) const;

  /// Distinct non-null values of `attribute` with their multiplicities,
  /// keyed in Value order (deterministic iteration).
  std::map<Value, size_t> ValueCounts(std::string_view attribute) const;

  /// Returns a table with the same schema containing the rows at `indices`.
  Table SelectRows(const std::vector<size_t>& indices) const;

  /// PosList overload: columnar gather, sharing string dictionaries with
  /// this table (no string copies).
  Table SelectRows(const PosList& positions) const;

  /// Returns a copy with a different table name (schema otherwise equal).
  Table Renamed(std::string new_name) const;

  /// Assembles a table from pre-built column segments (the materialization
  /// path of TableView).  CHECK-fails unless every column matches the
  /// schema's attribute types and has exactly `num_rows` cells.
  static Table FromColumns(TableSchema schema, std::vector<Column> columns,
                           size_t num_rows);

  /// Multi-line textual rendering (for examples and debugging); prints at
  /// most `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  void InvalidateRowCache();
  const std::vector<Row>& CachedRows() const;

  TableSchema schema_;
  std::vector<Column> columns_;  // one per schema attribute
  size_t num_rows_ = 0;

  // Lazily built legacy row view.  Guarded by row_cache_mu_ so concurrent
  // const readers (e.g. pool workers fingerprinting samples) are race-free;
  // never copied with the table.
  mutable std::mutex row_cache_mu_;
  mutable std::unique_ptr<std::vector<Row>> row_cache_;
};

/// A named collection of table instances conforming to a Schema.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Table>& tables() const { return tables_; }
  std::vector<Table>& mutable_tables() { return tables_; }

  /// Adds a table instance; CHECK-fails on duplicate table names.
  void AddTable(Table table);

  const Table* FindTable(std::string_view name) const;
  /// CHECK-fails if absent.
  const Table& GetTable(std::string_view name) const;
  Table* FindMutableTable(std::string_view name);
  bool HasTable(std::string_view name) const {
    return FindTable(name) != nullptr;
  }

  /// The Schema (catalog view) over all contained tables.
  Schema GetSchema() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
};

}  // namespace csm

#endif  // CSM_RELATIONAL_TABLE_H_
