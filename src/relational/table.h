// In-memory table instances (row store) and the value-bag accessor v(R, a)
// used throughout the matching algorithms.

#ifndef CSM_RELATIONAL_TABLE_H_
#define CSM_RELATIONAL_TABLE_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace csm {

/// One tuple: values aligned to the table schema's attribute order.
using Row = std::vector<Value>;

/// A table instance: schema plus rows.  Rows are CHECK-verified for arity;
/// type conformance is verified for non-null cells.
class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row; CHECK-fails on arity or type mismatch.
  void AddRow(Row row);

  const Row& row(size_t index) const;

  /// The cell at (row, attribute index).
  const Value& at(size_t row_index, size_t col_index) const;

  /// The cell at (row, attribute name); CHECK-fails for unknown names.
  const Value& at(size_t row_index, std::string_view attribute) const;

  /// v(R, a): the bag of values of attribute `a` across all rows
  /// ("select a from R"), in row order.  NULLs are included.
  std::vector<Value> ValueBag(std::string_view attribute) const;
  std::vector<Value> ValueBag(size_t col_index) const;

  /// Distinct non-null values of `attribute` with their multiplicities,
  /// keyed in Value order (deterministic iteration).
  std::map<Value, size_t> ValueCounts(std::string_view attribute) const;

  /// Returns a table with the same schema containing the rows at `indices`.
  Table SelectRows(const std::vector<size_t>& indices) const;

  /// Returns a copy with a different table name (schema otherwise equal).
  Table Renamed(std::string new_name) const;

  /// Multi-line textual rendering (for examples and debugging); prints at
  /// most `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
};

/// A named collection of table instances conforming to a Schema.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Table>& tables() const { return tables_; }
  std::vector<Table>& mutable_tables() { return tables_; }

  /// Adds a table instance; CHECK-fails on duplicate table names.
  void AddTable(Table table);

  const Table* FindTable(std::string_view name) const;
  /// CHECK-fails if absent.
  const Table& GetTable(std::string_view name) const;
  Table* FindMutableTable(std::string_view name);
  bool HasTable(std::string_view name) const {
    return FindTable(name) != nullptr;
  }

  /// The Schema (catalog view) over all contained tables.
  Schema GetSchema() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
};

}  // namespace csm

#endif  // CSM_RELATIONAL_TABLE_H_
