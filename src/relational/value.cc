#include "relational/value.h"

#include <charconv>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kReal;
    default:
      return ValueType::kString;
  }
}

int64_t Value::AsInt() const {
  CSM_CHECK(std::holds_alternative<int64_t>(rep_)) << "not an int";
  return std::get<int64_t>(rep_);
}

double Value::AsReal() const {
  CSM_CHECK(std::holds_alternative<double>(rep_)) << "not a real";
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  CSM_CHECK(std::holds_alternative<std::string>(rep_)) << "not a string";
  return std::get<std::string>(rep_);
}

double Value::AsNumeric() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  CSM_CHECK(std::holds_alternative<double>(rep_)) << "not numeric";
  return std::get<double>(rep_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueType::kReal: {
      double d = std::get<double>(rep_);
      // Render integral doubles without a trailing ".000000".
      if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
        return StrFormat("%.1f", d);
      }
      return StrFormat("%g", d);
    }
    case ValueType::kString:
      return std::get<std::string>(rep_);
  }
  return "";
}

StatusOr<Value> Value::Parse(std::string_view text, ValueType type) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      int64_t out = 0;
      auto [ptr, ec] =
          std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), out);
      if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
        return Status::InvalidArgument("cannot parse int: '" +
                                       std::string(trimmed) + "'");
      }
      return Value::Int(out);
    }
    case ValueType::kReal: {
      // std::from_chars for double is available in GCC 12.
      double out = 0;
      auto [ptr, ec] =
          std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), out);
      if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
        return Status::InvalidArgument("cannot parse real: '" +
                                       std::string(trimmed) + "'");
      }
      return Value::Real(out);
    }
    case ValueType::kString:
      return Value::String(std::string(text));
  }
  return Status::InvalidArgument("unknown value type");
}

bool operator==(const Value& a, const Value& b) { return a.rep_ == b.rep_; }

bool operator<(const Value& a, const Value& b) {
  const ValueType ta = a.type();
  const ValueType tb = b.type();
  // NULL sorts first.
  if (ta == ValueType::kNull || tb == ValueType::kNull) {
    return ta == ValueType::kNull && tb != ValueType::kNull;
  }
  const bool na = a.IsNumeric();
  const bool nb = b.IsNumeric();
  if (na && nb) {
    double da = a.AsNumeric();
    double db = b.AsNumeric();
    if (da != db) return da < db;
    // Numerically equal but maybe different types: int < real for stability.
    return ta < tb;
  }
  if (na != nb) return na;  // numerics before strings
  return a.AsString() < b.AsString();
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      return std::hash<int64_t>{}(std::get<int64_t>(rep_)) * 3 + 1;
    case ValueType::kReal:
      return std::hash<double>{}(std::get<double>(rep_)) * 3 + 2;
    case ValueType::kString:
      return std::hash<std::string>{}(std::get<std::string>(rep_)) * 3;
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  if (value.is_null()) return os << "NULL";
  return os << value.ToString();
}

}  // namespace csm
