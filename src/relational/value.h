// Typed scalar values for the in-memory relational substrate.
//
// The paper's data model (Section 2.1) deals with attributes of basic types
// (string, int, real, ...).  Value is a tagged union over those basic types
// plus NULL; it provides the total ordering and hashing the relational
// operators and the grouping/classification machinery need.

#ifndef CSM_RELATIONAL_VALUE_H_
#define CSM_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"

namespace csm {

/// Basic attribute types, per Section 2.1 of the paper.
enum class ValueType {
  kNull = 0,
  kInt = 1,
  kReal = 2,
  kString = 3,
};

/// Returns "null", "int", "real" or "string".
const char* ValueTypeToString(ValueType type);

/// A scalar cell value: NULL, 64-bit integer, double, or string.
///
/// Values order NULL < ints/reals (numerically, cross-type) < strings
/// (lexicographic), which gives a deterministic total order usable as a map
/// key.  Equality is exact (an int never equals a real, so bags keyed by
/// Value stay type-stable).
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  /// The lvalue overload copies straight into the variant — bulk boxing
  /// (Column::BoxAllTo) emplaces cells with exactly one string construction.
  explicit Value(const std::string& v) : rep_(v) {}
  explicit Value(std::string&& v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors; CHECK-fail when the type does not match.
  int64_t AsInt() const;
  double AsReal() const;
  const std::string& AsString() const;

  /// Numeric view: ints widen to double; CHECK-fails on strings/NULL.
  double AsNumeric() const;
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kReal;
  }

  /// Renders the value for display and CSV output.  NULL renders as "".
  std::string ToString() const;

  /// Parses `text` as the given type.  Empty text parses as NULL.
  static StatusOr<Value> Parse(std::string_view text, ValueType type);

  /// Total order and equality described in the class comment.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// std::hash adapter for unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace csm

#endif  // CSM_RELATIONAL_VALUE_H_
