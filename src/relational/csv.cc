#include "relational/csv.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"

namespace csm {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits one logical CSV record starting at `pos`; advances `pos` past the
/// record's trailing newline.  Handles quoted fields with embedded commas,
/// quotes, and newlines.
StatusOr<std::vector<std::string>> ParseRecord(std::string_view text,
                                               size_t& pos) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == '\r') {
      // Record terminator: "\r\n" (DOS) or a bare "\r" (classic Mac).
      // Skipping the "\r" instead would both collapse a CR-only file into a
      // single record and silently drop an unquoted embedded "\r".
      ++pos;
      if (pos < text.size() && text[pos] == '\n') ++pos;
      break;
    }
    if (c == '\n') {
      ++pos;
      break;
    }
    current += c;
    ++pos;
    saw_any = true;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (!saw_any && pos >= text.size()) {
    return std::vector<std::string>{};  // empty trailing record
  }
  fields.push_back(std::move(current));
  return fields;
}

Status ValidateCsvHeader(const TableSchema& schema,
                         const std::vector<std::string>& header) {
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument("CSV header arity mismatch for table '" +
                                   schema.name() + "'");
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.attribute(c).name) {
      return Status::InvalidArgument("CSV header mismatch: expected '" +
                                     schema.attribute(c).name + "', got '" +
                                     header[c] + "'");
    }
  }
  return Status::Ok();
}

/// Parses every record of `text` from `pos` into `out` (blank trailing
/// lines skipped).  The single record loop shared by the serial and the
/// per-chunk parallel parse, so both paths have identical semantics by
/// construction.
Status AppendCsvRecords(const TableSchema& schema, std::string_view text,
                        size_t pos, Table* out) {
  while (pos < text.size()) {
    CSM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(text, pos));
    if (fields.empty()) continue;  // blank trailing line
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument("CSV record arity mismatch in table '" +
                                     schema.name() + "'");
    }
    // Parse straight into the column segments (dictionary codes for string
    // attributes) instead of boxing a Value per cell.
    CSM_RETURN_IF_ERROR(out->AddRowFromText(fields));
  }
  return Status::Ok();
}

/// Column-type inference accumulator: demotes each column from int toward
/// real toward string as cells fail to parse.  Shared by the slurping and
/// streaming inferred readers.
void UpdateTypeInference(const std::vector<std::string>& record,
                         std::vector<ValueType>* types,
                         std::vector<bool>* saw_value) {
  for (size_t c = 0; c < record.size(); ++c) {
    std::string_view cell = Trim(record[c]);
    if (cell.empty()) continue;
    (*saw_value)[c] = true;
    if ((*types)[c] == ValueType::kInt &&
        !Value::Parse(cell, ValueType::kInt).ok()) {
      (*types)[c] = ValueType::kReal;
    }
    if ((*types)[c] == ValueType::kReal &&
        !Value::Parse(cell, ValueType::kReal).ok()) {
      (*types)[c] = ValueType::kString;
    }
  }
}

}  // namespace

std::string TableToCsv(const Table& instance) {
  std::ostringstream os;
  const TableSchema& schema = instance.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) os << ',';
    os << QuoteField(schema.attribute(c).name);
  }
  os << '\n';
  for (const Row& row : instance.rows()) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += QuoteField(row[c].ToString());
    }
    // A single-attribute NULL row would render as an empty line, which a
    // reader cannot tell apart from the file's trailing newline.  Quote it;
    // "" parses back to one empty field and hence NULL.
    if (line.empty()) line = "\"\"";
    os << line << '\n';
  }
  return os.str();
}

StatusOr<Table> TableFromCsv(const TableSchema& schema, std::string_view csv) {
  size_t pos = 0;
  CSM_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       ParseRecord(csv, pos));
  CSM_RETURN_IF_ERROR(ValidateCsvHeader(schema, header));
  // Single pass: no estimate scan — vector growth amortizes, and the old
  // newline-count pass re-read every byte of the text a second time.
  Table out(schema);
  CSM_RETURN_IF_ERROR(AppendCsvRecords(schema, csv, pos, &out));
  return out;
}

Status WriteCsvFile(const Table& instance, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << TableToCsv(instance);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Table> ReadCsvFile(const TableSchema& schema,
                            const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TableFromCsv(schema, buffer.str());
}

StatusOr<Table> TableFromCsvInferred(const std::string& table_name,
                                     std::string_view csv) {
  // First pass: collect header and all records as raw strings.
  size_t pos = 0;
  CSM_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseRecord(csv, pos));
  if (header.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  std::vector<std::vector<std::string>> records;
  while (pos < csv.size()) {
    CSM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(csv, pos));
    if (fields.empty()) continue;
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("CSV record arity mismatch in '" +
                                     table_name + "'");
    }
    records.push_back(std::move(fields));
  }

  // Second pass: infer column types — int unless some cell fails, then
  // real, then string.
  std::vector<ValueType> types(header.size(), ValueType::kInt);
  std::vector<bool> saw_value(header.size(), false);
  for (const auto& record : records) {
    UpdateTypeInference(record, &types, &saw_value);
  }
  TableSchema schema(table_name);
  for (size_t c = 0; c < header.size(); ++c) {
    schema.AddAttribute(header[c],
                        saw_value[c] ? types[c] : ValueType::kString);
  }

  Table out(schema);
  out.Reserve(records.size());
  for (const auto& record : records) {
    CSM_RETURN_IF_ERROR(out.AddRowFromText(record));
  }
  return out;
}

StatusOr<Table> ReadCsvFileInferred(const std::string& table_name,
                                    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TableFromCsvInferred(table_name, buffer.str());
}

// ---------------------------------------------------------------------------
// Streaming / parallel ingest
// ---------------------------------------------------------------------------

std::vector<CsvChunkSpan> ScanCsvChunks(std::string_view csv, size_t pos,
                                        size_t target_chunk_bytes) {
  std::vector<CsvChunkSpan> spans;
  if (pos >= csv.size()) return spans;
  if (target_chunk_bytes == 0) target_chunk_bytes = 1;
  size_t chunk_begin = pos;
  size_t records = 0;
  // Plain quote-parity toggle.  ParseRecord's escaped-quote handling ("")
  // consumes two quotes while staying in-quotes; the toggle flips out and
  // back in — the same parity after both, so terminator classification
  // (quoted vs structural) agrees with the record parser everywhere.
  bool in_quotes = false;
  size_t i = pos;
  while (i < csv.size()) {
    const char c = csv[i];
    if (c == '"') {
      in_quotes = !in_quotes;
      ++i;
      continue;
    }
    if (!in_quotes && (c == '\n' || c == '\r')) {
      ++i;
      // "\r\n" is ONE terminator: never split between the CR and the LF, or
      // the next chunk would start with a bare LF and parse a phantom empty
      // record.
      if (c == '\r' && i < csv.size() && csv[i] == '\n') ++i;
      ++records;
      if (i - chunk_begin >= target_chunk_bytes) {
        spans.push_back({chunk_begin, i, records});
        chunk_begin = i;
        records = 0;
      }
      continue;
    }
    ++i;
  }
  if (chunk_begin < csv.size()) {
    // Unterminated final record (or an unterminated quote — the chunk parse
    // reports that error).
    spans.push_back({chunk_begin, csv.size(), records + 1});
  }
  return spans;
}

size_t AutotuneCsvChunkBytes(size_t total_bytes, size_t threads) {
  if (threads == 0) threads = 1;
  constexpr size_t kMinChunk = 64u << 10;  // below this, spawn overhead wins
  constexpr size_t kMaxChunk = 16u << 20;  // above this, stragglers dominate
  const size_t target = total_bytes / (threads * 4);
  return std::clamp(target, kMinChunk, kMaxChunk);
}

StatusOr<Table> TableFromCsvParallel(const TableSchema& schema,
                                     std::string_view csv,
                                     const CsvIngestOptions& options,
                                     CsvIngestStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  size_t pos = 0;
  CSM_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       ParseRecord(csv, pos));
  CSM_RETURN_IF_ERROR(ValidateCsvHeader(schema, header));

  exec::ThreadPool* pool = options.pool;
  const size_t threads =
      pool != nullptr ? pool->size() : exec::EffectiveThreads(options.threads);
  const size_t chunk_bytes =
      options.chunk_bytes != 0
          ? options.chunk_bytes
          : AutotuneCsvChunkBytes(csv.size() - pos, threads);
  const std::vector<CsvChunkSpan> spans = ScanCsvChunks(csv, pos, chunk_bytes);

  std::unique_ptr<exec::ThreadPool> owned_pool;
  if (pool == nullptr && threads > 1 && spans.size() > 1) {
    owned_pool = std::make_unique<exec::ThreadPool>(threads);
    pool = owned_pool.get();
  }

  // Each chunk parses into its own table (own dictionaries, no shared
  // mutable state); the merge below re-encodes in chunk order, which
  // reproduces the serial parse bit-for-bit.
  struct ChunkResult {
    Table table;
    Status status;
  };
  std::vector<ChunkResult> parsed =
      exec::ParallelMap(pool, spans.size(), [&](size_t i) {
        const CsvChunkSpan& span = spans[i];
        ChunkResult result;
        result.table = Table(schema);
        result.table.Reserve(span.records);
        result.status = AppendCsvRecords(
            schema, csv.substr(span.begin, span.end - span.begin), 0,
            &result.table);
        return result;
      });

  // First error in text order wins — identical to what the serial parser
  // would have reported first.
  for (const ChunkResult& result : parsed) {
    if (!result.status.ok()) return result.status;
  }

  Table out(schema);
  if (!parsed.empty()) {
    out = std::move(parsed.front().table);
    // Reserve the merged size up front: without this every AppendRowsFrom
    // regrows the destination segments geometrically, re-copying the prefix
    // once per chunk.
    size_t total_rows = 0;
    for (const ChunkResult& result : parsed) {
      total_rows += result.table.num_rows();
    }
    out.Reserve(total_rows);
    for (size_t i = 1; i < parsed.size(); ++i) {
      out.AppendRowsFrom(parsed[i].table);
    }
  }

  if (stats != nullptr) {
    stats->threads = threads;
    stats->chunk_bytes = chunk_bytes;
    stats->chunks = spans.size();
    stats->records = out.num_rows();
    stats->parse_seconds = SecondsSince(t0);
  }
  return out;
}

namespace {

/// The loaded bytes of a CSV file: either a read-only mapping (unmapped by
/// the shared_ptr deleter) or an owned fallback buffer.  Move-friendly by
/// construction; `view` always points at the live storage.
struct CsvFileBuffer {
  std::string fallback;
  std::shared_ptr<const void> mapping;
  std::string_view view;
};

Status LoadCsvFile(const std::string& path, bool force_read_fallback,
                   CsvFileBuffer* buffer, CsvIngestStats* stats) {
#ifndef _WIN32
  if (!force_read_fallback) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st;
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        const size_t len = static_cast<size_t>(st.st_size);
        if (len == 0) {
          ::close(fd);
          buffer->view = std::string_view();
          if (stats != nullptr) stats->used_mmap = true;
          return Status::Ok();
        }
        void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (base != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
          ::madvise(base, len, MADV_SEQUENTIAL);
#endif
          buffer->mapping = std::shared_ptr<const void>(
              base, [len](const void* p) {
                ::munmap(const_cast<void*>(p), len);
              });
          buffer->view =
              std::string_view(static_cast<const char*>(base), len);
          if (stats != nullptr) {
            stats->used_mmap = true;
            stats->file_bytes = len;
          }
          return Status::Ok();
        }
      } else {
        ::close(fd);
      }
    }
    // Any mmap-path failure falls through to the buffered read below; a
    // missing file fails there with a proper IoError.
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  // Single forward pass in fixed-size reads; every byte is counted exactly
  // once in bytes_read (the read-once regression test keys on this).
  char block[64 << 10];
  while (in.read(block, sizeof(block)) || in.gcount() > 0) {
    buffer->fallback.append(block, static_cast<size_t>(in.gcount()));
    if (stats != nullptr) {
      stats->bytes_read += static_cast<size_t>(in.gcount());
    }
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  buffer->view = buffer->fallback;
  if (stats != nullptr) stats->file_bytes = buffer->fallback.size();
  return Status::Ok();
}

}  // namespace

StatusOr<Table> ReadCsvFileStreaming(const TableSchema& schema,
                                     const std::string& path,
                                     const CsvIngestOptions& options,
                                     CsvIngestStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  CsvFileBuffer buffer;
  CSM_RETURN_IF_ERROR(
      LoadCsvFile(path, options.force_read_fallback, &buffer, stats));
  if (stats != nullptr) stats->load_seconds = SecondsSince(t0);
  return TableFromCsvParallel(schema, buffer.view, options, stats);
}

StatusOr<Table> ReadCsvFileInferredStreaming(const std::string& table_name,
                                             const std::string& path,
                                             size_t infer_records,
                                             const CsvIngestOptions& options,
                                             CsvIngestStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  CsvFileBuffer buffer;
  CSM_RETURN_IF_ERROR(
      LoadCsvFile(path, options.force_read_fallback, &buffer, stats));
  if (stats != nullptr) stats->load_seconds = SecondsSince(t0);

  const std::string_view csv = buffer.view;
  size_t pos = 0;
  CSM_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       ParseRecord(csv, pos));
  if (header.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  std::vector<ValueType> types(header.size(), ValueType::kInt);
  std::vector<bool> saw_value(header.size(), false);
  size_t seen = 0;
  while (pos < csv.size() && (infer_records == 0 || seen < infer_records)) {
    CSM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(csv, pos));
    if (fields.empty()) continue;
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("CSV record arity mismatch in '" +
                                     table_name + "'");
    }
    UpdateTypeInference(fields, &types, &saw_value);
    ++seen;
  }
  TableSchema schema(table_name);
  for (size_t c = 0; c < header.size(); ++c) {
    schema.AddAttribute(header[c],
                        saw_value[c] ? types[c] : ValueType::kString);
  }
  return TableFromCsvParallel(schema, csv, options, stats);
}

}  // namespace csm
