#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace csm {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits one logical CSV record starting at `pos`; advances `pos` past the
/// record's trailing newline.  Handles quoted fields with embedded commas,
/// quotes, and newlines.
StatusOr<std::vector<std::string>> ParseRecord(std::string_view text,
                                               size_t& pos) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == '\r') {
      // Record terminator: "\r\n" (DOS) or a bare "\r" (classic Mac).
      // Skipping the "\r" instead would both collapse a CR-only file into a
      // single record and silently drop an unquoted embedded "\r".
      ++pos;
      if (pos < text.size() && text[pos] == '\n') ++pos;
      break;
    }
    if (c == '\n') {
      ++pos;
      break;
    }
    current += c;
    ++pos;
    saw_any = true;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (!saw_any && pos >= text.size()) {
    return std::vector<std::string>{};  // empty trailing record
  }
  fields.push_back(std::move(current));
  return fields;
}

/// Upper-bound estimate of the number of records from `pos` to the end:
/// one per newline plus a possible unterminated last record.  Quoted
/// embedded newlines make this an overcount, which is fine for a
/// reservation hint.
size_t EstimateRecords(std::string_view text, size_t pos) {
  if (pos >= text.size()) return 0;
  return static_cast<size_t>(
             std::count(text.begin() + static_cast<ptrdiff_t>(pos), text.end(),
                        '\n')) +
         1;
}

}  // namespace

std::string TableToCsv(const Table& instance) {
  std::ostringstream os;
  const TableSchema& schema = instance.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) os << ',';
    os << QuoteField(schema.attribute(c).name);
  }
  os << '\n';
  for (const Row& row : instance.rows()) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += QuoteField(row[c].ToString());
    }
    // A single-attribute NULL row would render as an empty line, which a
    // reader cannot tell apart from the file's trailing newline.  Quote it;
    // "" parses back to one empty field and hence NULL.
    if (line.empty()) line = "\"\"";
    os << line << '\n';
  }
  return os.str();
}

StatusOr<Table> TableFromCsv(const TableSchema& schema, std::string_view csv) {
  size_t pos = 0;
  CSM_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       ParseRecord(csv, pos));
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "CSV header arity mismatch for table '" + schema.name() + "'");
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.attribute(c).name) {
      return Status::InvalidArgument("CSV header mismatch: expected '" +
                                     schema.attribute(c).name + "', got '" +
                                     header[c] + "'");
    }
  }
  Table out(schema);
  out.Reserve(EstimateRecords(csv, pos));
  while (pos < csv.size()) {
    CSM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(csv, pos));
    if (fields.empty()) continue;  // blank trailing line
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument("CSV record arity mismatch in table '" +
                                     schema.name() + "'");
    }
    // Parse straight into the column segments (dictionary codes for string
    // attributes) instead of boxing a Value per cell.
    CSM_RETURN_IF_ERROR(out.AddRowFromText(fields));
  }
  return out;
}

Status WriteCsvFile(const Table& instance, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << TableToCsv(instance);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Table> ReadCsvFile(const TableSchema& schema,
                            const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TableFromCsv(schema, buffer.str());
}

StatusOr<Table> TableFromCsvInferred(const std::string& table_name,
                                     std::string_view csv) {
  // First pass: collect header and all records as raw strings.
  size_t pos = 0;
  CSM_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseRecord(csv, pos));
  if (header.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  std::vector<std::vector<std::string>> records;
  while (pos < csv.size()) {
    CSM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(csv, pos));
    if (fields.empty()) continue;
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("CSV record arity mismatch in '" +
                                     table_name + "'");
    }
    records.push_back(std::move(fields));
  }

  // Second pass: infer column types — int unless some cell fails, then
  // real, then string.
  std::vector<ValueType> types(header.size(), ValueType::kInt);
  std::vector<bool> saw_value(header.size(), false);
  for (const auto& record : records) {
    for (size_t c = 0; c < record.size(); ++c) {
      std::string_view cell = Trim(record[c]);
      if (cell.empty()) continue;
      saw_value[c] = true;
      if (types[c] == ValueType::kInt &&
          !Value::Parse(cell, ValueType::kInt).ok()) {
        types[c] = ValueType::kReal;
      }
      if (types[c] == ValueType::kReal &&
          !Value::Parse(cell, ValueType::kReal).ok()) {
        types[c] = ValueType::kString;
      }
    }
  }
  TableSchema schema(table_name);
  for (size_t c = 0; c < header.size(); ++c) {
    schema.AddAttribute(header[c],
                        saw_value[c] ? types[c] : ValueType::kString);
  }

  Table out(schema);
  out.Reserve(records.size());
  for (const auto& record : records) {
    CSM_RETURN_IF_ERROR(out.AddRowFromText(record));
  }
  return out;
}

StatusOr<Table> ReadCsvFileInferred(const std::string& table_name,
                                    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TableFromCsvInferred(table_name, buffer.str());
}

}  // namespace csm
