#include "relational/table_view.h"

#include <numeric>

#include "common/logging.h"

namespace csm {

TableView::TableView(const Table& base) : base_(&base), identity_(true) {}

TableView::TableView(const Table& base, PosList positions)
    : base_(&base), positions_(std::move(positions)) {}

TableView::TableView(const Table& base, PosList positions, TableSchema schema,
                     std::vector<size_t> column_map)
    : base_(&base),
      positions_(std::move(positions)),
      schema_override_(std::move(schema)),
      column_map_(std::move(column_map)) {
  CSM_CHECK_EQ(schema_override_->num_attributes(), column_map_.size());
}

const Table& TableView::base() const {
  CSM_CHECK(base_ != nullptr) << "invalid TableView";
  return *base_;
}

const TableSchema& TableView::schema() const {
  if (schema_override_) return *schema_override_;
  return base().schema();
}

size_t TableView::BaseRows() const { return base().num_rows(); }

RowId TableView::position(size_t i) const {
  CSM_CHECK_LT(i, num_rows());
  return identity_ ? static_cast<RowId>(i) : positions_[i];
}

PosList TableView::Positions() const {
  if (!identity_) return positions_;
  PosList out(num_rows());
  std::iota(out.begin(), out.end(), RowId{0});
  return out;
}

size_t TableView::base_column_index(size_t view_col) const {
  CSM_CHECK_LT(view_col, num_columns());
  return column_map_.empty() ? view_col : column_map_[view_col];
}

const Column& TableView::column(size_t view_col) const {
  return base().column(base_column_index(view_col));
}

Value TableView::ValueAt(size_t row_index, size_t col_index) const {
  return column(col_index).GetValue(position(row_index));
}

std::vector<Value> TableView::ValueBag(std::string_view attribute) const {
  return ValueBag(schema().AttributeIndex(attribute));
}

std::vector<Value> TableView::ValueBag(size_t col_index) const {
  const Column& col = column(col_index);
  std::vector<Value> bag;
  if (identity_) {
    col.BoxAllTo(&bag);
  } else {
    col.BoxGatheredTo(positions_, &bag);
  }
  return bag;
}

std::map<Value, size_t> TableView::ValueCounts(std::string_view attribute) const {
  const size_t col_index = schema().AttributeIndex(attribute);
  const Column& col = column(col_index);
  const size_t n = num_rows();
  std::map<Value, size_t> counts;
  switch (col.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt: {
      const auto& ints = col.ints();
      const auto& nulls = col.null_mask();
      for (size_t r = 0; r < n; ++r) {
        const RowId p = position(r);
        if (!nulls[p]) ++counts[Value::Int(ints[p])];
      }
      break;
    }
    case ValueType::kReal: {
      const auto& reals = col.reals();
      const auto& nulls = col.null_mask();
      for (size_t r = 0; r < n; ++r) {
        const RowId p = position(r);
        if (!nulls[p]) ++counts[Value::Real(reals[p])];
      }
      break;
    }
    case ValueType::kString: {
      std::vector<size_t> per_code(col.dictionary().size(), 0);
      const auto& codes = col.codes();
      for (size_t r = 0; r < n; ++r) {
        const uint32_t code = codes[position(r)];
        if (code != kNullCode) ++per_code[code];
      }
      for (uint32_t code = 0; code < per_code.size(); ++code) {
        if (per_code[code] > 0) {
          counts.emplace(Value::String(col.dictionary().value(code)),
                         per_code[code]);
        }
      }
      break;
    }
  }
  return counts;
}

TableView TableView::Select(PosList local_positions) const {
  PosList composed;
  composed.reserve(local_positions.size());
  for (RowId local : local_positions) composed.push_back(position(local));
  if (!schema_override_) return TableView(base(), std::move(composed));
  std::vector<size_t> column_map = column_map_;
  if (column_map.empty()) {
    column_map.resize(num_columns());
    std::iota(column_map.begin(), column_map.end(), 0u);
  }
  return TableView(base(), std::move(composed), *schema_override_,
                   std::move(column_map));
}

TableView TableView::Renamed(std::string new_name) const {
  TableSchema renamed(std::move(new_name));
  for (size_t c = 0; c < num_columns(); ++c) {
    const AttributeDef& attr = schema().attribute(c);
    renamed.AddAttribute(attr.name, attr.type);
  }
  std::vector<size_t> column_map = column_map_;
  if (column_map.empty()) {
    column_map.resize(num_columns());
    std::iota(column_map.begin(), column_map.end(), 0u);
  }
  return TableView(base(), Positions(), std::move(renamed),
                   std::move(column_map));
}

Table TableView::ToTable() const {
  std::vector<Column> columns;
  columns.reserve(num_columns());
  if (identity_ && column_map_.empty()) {
    for (size_t c = 0; c < num_columns(); ++c) columns.push_back(column(c));
  } else {
    const PosList positions = Positions();
    for (size_t c = 0; c < num_columns(); ++c) {
      columns.push_back(column(c).Gather(positions));
    }
  }
  return Table::FromColumns(schema(), std::move(columns), num_rows());
}

}  // namespace csm
