#include "relational/view.h"

#include <set>

#include "check/invariants.h"
#include "common/logging.h"

namespace csm {

TableSchema View::ViewSchema(const TableSchema& base_schema) const {
  TableSchema out(name_);
  if (projection_.empty()) {
    for (const auto& attr : base_schema.attributes()) {
      out.AddAttribute(attr.name, attr.type);
    }
  } else {
    for (const auto& attr_name : projection_) {
      size_t index = base_schema.AttributeIndex(attr_name);
      out.AddAttribute(attr_name, base_schema.attribute(index).type);
    }
  }
  return out;
}

PosList View::Positions(const Table& base_instance) const {
  CSM_CHECK_EQ(base_instance.name(), base_table_);
  return condition_.MatchingPositions(base_instance);
}

std::vector<size_t> View::MatchingRows(const Table& base_instance) const {
  const PosList positions = Positions(base_instance);
  return std::vector<size_t>(positions.begin(), positions.end());
}

TableView View::Bind(const Table& base_instance) const {
  PosList positions = Positions(base_instance);
  TableSchema view_schema = ViewSchema(base_instance.schema());
  std::vector<size_t> column_map;
  column_map.reserve(view_schema.num_attributes());
  if (projection_.empty()) {
    for (size_t c = 0; c < view_schema.num_attributes(); ++c) {
      column_map.push_back(c);
    }
  } else {
    for (const auto& attr_name : projection_) {
      column_map.push_back(base_instance.schema().AttributeIndex(attr_name));
    }
  }
  return TableView(base_instance, std::move(positions), std::move(view_schema),
                   std::move(column_map));
}

Table View::Materialize(const Table& base_instance) const {
  TableView bound = Bind(base_instance);
  Table out = bound.ToTable();
  // Row-count conservation: a select(-project) view emits exactly the rows
  // its condition accepts.  Under checks the count is re-derived via the
  // legacy row-at-a-time Condition::Evaluate, so the columnar scan path
  // cannot silently diverge from the row-store semantics.
  CSM_INVARIANT_EQ(out.num_rows(), bound.num_rows()) << ToString();
  CSM_INVARIANT_LE(out.num_rows(), base_instance.num_rows()) << ToString();
  if constexpr (check::kInvariantsEnabled) {
    size_t satisfied = 0;
    for (size_t r = 0; r < base_instance.num_rows(); ++r) {
      if (condition_.Evaluate(base_instance.schema(), base_instance.row(r))) {
        ++satisfied;
      }
    }
    CSM_INVARIANT_EQ(satisfied, out.num_rows()) << ToString();
  }
  return out;
}

std::string View::ToString() const {
  std::string cols = "*";
  if (!projection_.empty()) {
    cols.clear();
    for (size_t i = 0; i < projection_.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += projection_[i];
    }
  }
  return name_ + " := select " + cols + " from " + base_table_ + " where " +
         condition_.ToString();
}

bool ViewFamily::IsWellFormed() const {
  std::set<Value> seen;
  for (const View& v : views) {
    if (v.base_table() != base_table) return false;
    if (v.condition().NumAttributes() != 1) return false;
    const ConditionClause& clause = v.condition().clauses()[0];
    if (clause.attribute != label_attribute) return false;
    for (const Value& value : clause.values) {
      if (!seen.insert(value).second) return false;  // overlap across views
    }
  }
  return true;
}

std::string ViewFamily::ToString() const {
  std::string out = "family(" + base_table + ", " + label_attribute + "): ";
  for (size_t i = 0; i < views.size(); ++i) {
    if (i > 0) out += "; ";
    out += views[i].condition().ToString();
  }
  return out;
}

ViewFamily MakeSimpleViewFamily(const Table& instance,
                                std::string_view label_attribute) {
  ViewFamily family;
  family.base_table = instance.name();
  family.label_attribute = std::string(label_attribute);
  for (const auto& [value, count] : instance.ValueCounts(label_attribute)) {
    std::string view_name = instance.name() + "[" +
                            std::string(label_attribute) + "=" +
                            value.ToString() + "]";
    family.views.emplace_back(
        view_name, instance.name(),
        Condition::Equals(std::string(label_attribute), value));
  }
  return family;
}

}  // namespace csm
