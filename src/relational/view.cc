#include "relational/view.h"

#include <set>

#include "check/invariants.h"
#include "common/logging.h"

namespace csm {

TableSchema View::ViewSchema(const TableSchema& base_schema) const {
  TableSchema out(name_);
  if (projection_.empty()) {
    for (const auto& attr : base_schema.attributes()) {
      out.AddAttribute(attr.name, attr.type);
    }
  } else {
    for (const auto& attr_name : projection_) {
      size_t index = base_schema.AttributeIndex(attr_name);
      out.AddAttribute(attr_name, base_schema.attribute(index).type);
    }
  }
  return out;
}

std::vector<size_t> View::MatchingRows(const Table& base_instance) const {
  CSM_CHECK_EQ(base_instance.name(), base_table_);
  std::vector<size_t> out;
  for (size_t r = 0; r < base_instance.num_rows(); ++r) {
    if (condition_.Evaluate(base_instance.schema(), base_instance.row(r))) {
      out.push_back(r);
    }
  }
  return out;
}

Table View::Materialize(const Table& base_instance) const {
  CSM_CHECK_EQ(base_instance.name(), base_table_);
  TableSchema view_schema = ViewSchema(base_instance.schema());
  Table out(view_schema);
  std::vector<size_t> projected_cols;
  if (!projection_.empty()) {
    for (const auto& attr_name : projection_) {
      projected_cols.push_back(base_instance.schema().AttributeIndex(attr_name));
    }
  }
  const std::vector<size_t> matching = MatchingRows(base_instance);
  for (size_t r : matching) {
    const Row& src = base_instance.row(r);
    if (projection_.empty()) {
      out.AddRow(src);
    } else {
      Row projected;
      projected.reserve(projected_cols.size());
      for (size_t c : projected_cols) projected.push_back(src[c]);
      out.AddRow(std::move(projected));
    }
  }
  // Row-count conservation: a select(-project) view emits exactly the rows
  // its condition accepts, re-derived here per row so a future refactor of
  // the materialization path cannot silently diverge from Condition::Evaluate.
  CSM_INVARIANT_EQ(out.num_rows(), matching.size()) << ToString();
  CSM_INVARIANT_LE(out.num_rows(), base_instance.num_rows()) << ToString();
  if constexpr (check::kInvariantsEnabled) {
    size_t satisfied = 0;
    for (size_t r = 0; r < base_instance.num_rows(); ++r) {
      if (condition_.Evaluate(base_instance.schema(), base_instance.row(r))) {
        ++satisfied;
      }
    }
    CSM_INVARIANT_EQ(satisfied, out.num_rows()) << ToString();
  }
  return out;
}

std::string View::ToString() const {
  std::string cols = "*";
  if (!projection_.empty()) {
    cols.clear();
    for (size_t i = 0; i < projection_.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += projection_[i];
    }
  }
  return name_ + " := select " + cols + " from " + base_table_ + " where " +
         condition_.ToString();
}

bool ViewFamily::IsWellFormed() const {
  std::set<Value> seen;
  for (const View& v : views) {
    if (v.base_table() != base_table) return false;
    if (v.condition().NumAttributes() != 1) return false;
    const ConditionClause& clause = v.condition().clauses()[0];
    if (clause.attribute != label_attribute) return false;
    for (const Value& value : clause.values) {
      if (!seen.insert(value).second) return false;  // overlap across views
    }
  }
  return true;
}

std::string ViewFamily::ToString() const {
  std::string out = "family(" + base_table + ", " + label_attribute + "): ";
  for (size_t i = 0; i < views.size(); ++i) {
    if (i > 0) out += "; ";
    out += views[i].condition().ToString();
  }
  return out;
}

ViewFamily MakeSimpleViewFamily(const Table& instance,
                                std::string_view label_attribute) {
  ViewFamily family;
  family.base_table = instance.name();
  family.label_attribute = std::string(label_attribute);
  for (const auto& [value, count] : instance.ValueCounts(label_attribute)) {
    std::string view_name = instance.name() + "[" +
                            std::string(label_attribute) + "=" +
                            value.ToString() + "]";
    family.views.emplace_back(
        view_name, instance.name(),
        Condition::Equals(std::string(label_attribute), value));
  }
  return family;
}

}  // namespace csm
