// Sampling helpers: random train/test partitioning of a table's rows (used
// by ClusteredViewGen's doTraining/doTesting) and uniform subsampling (used
// by the sample-size experiments).

#ifndef CSM_RELATIONAL_SAMPLE_H_
#define CSM_RELATIONAL_SAMPLE_H_

#include <utility>

#include "common/random.h"
#include "relational/table.h"
#include "relational/table_view.h"

namespace csm {

/// A train/test split of one table's rows.
struct TrainTestSplit {
  Table train;
  Table test;
};

/// A zero-copy train/test split: two position-list views over the same base
/// table.  Row selection is identical to SplitTrainTest for the same rng
/// state (same shuffle sequence, same clamping, same ascending order).
struct TrainTestViewSplit {
  TableView train;
  TableView test;
};

/// Randomly partitions `instance` rows into train/test with `train_fraction`
/// of rows (rounded, at least 1 of each when the table has >= 2 rows) going
/// to train.  Deterministic given `rng`.
TrainTestSplit SplitTrainTest(const Table& instance, double train_fraction,
                              Rng& rng);

/// View-based variant of SplitTrainTest: no rows are copied.  `instance`'s
/// base table must outlive the returned views.
TrainTestViewSplit SplitTrainTestView(const TableView& instance,
                                      double train_fraction, Rng& rng);

/// Uniformly samples `sample_size` rows without replacement (all rows when
/// sample_size >= num_rows).  Order of kept rows is preserved.
Table SampleRows(const Table& instance, size_t sample_size, Rng& rng);

}  // namespace csm

#endif  // CSM_RELATIONAL_SAMPLE_H_
