// Sampling helpers: random train/test partitioning of a table's rows (used
// by ClusteredViewGen's doTraining/doTesting) and uniform subsampling (used
// by session training caps and the sample-size experiments).
//
// The subsampling path is built on SampleRowPositions, a bounded-cost
// uniform index sampler (Floyd's algorithm): drawing k of n rows costs
// O(k log k) time and O(k) memory regardless of n, so samplers stay cheap
// on million-row tables.  ReservoirSampleRows and the legacy SampleRows
// both gather exactly the positions SampleRowPositions picks, so the two
// entry points are bit-identical for the same (rows, sample_size, rng
// state) — the differential tests in relational_test pin this down.

#ifndef CSM_RELATIONAL_SAMPLE_H_
#define CSM_RELATIONAL_SAMPLE_H_

#include <utility>

#include "common/random.h"
#include "relational/table.h"
#include "relational/table_view.h"

namespace csm {

/// A train/test split of one table's rows.
struct TrainTestSplit {
  Table train;
  Table test;
};

/// A zero-copy train/test split: two position-list views over the same base
/// table.  Row selection is identical to SplitTrainTest for the same rng
/// state (same shuffle sequence, same clamping, same ascending order).
struct TrainTestViewSplit {
  TableView train;
  TableView test;
};

/// Randomly partitions `instance` rows into train/test with `train_fraction`
/// of rows (rounded, at least 1 of each when the table has >= 2 rows) going
/// to train.  Deterministic given `rng`.
TrainTestSplit SplitTrainTest(const Table& instance, double train_fraction,
                              Rng& rng);

/// View-based variant of SplitTrainTest: no rows are copied.  `instance`'s
/// base table must outlive the returned views.
TrainTestViewSplit SplitTrainTestView(const TableView& instance,
                                      double train_fraction, Rng& rng);

/// Uniformly samples `sample_size` distinct row positions from
/// [0, num_rows), returned ascending.  Floyd's algorithm: exactly
/// min(sample_size, num_rows) RNG draws and O(sample_size) memory — the
/// cost never scales with num_rows, which is what lets a 500-row training
/// sample stay 500-rows cheap on a 10^7-row table.  Returns all positions
/// when sample_size >= num_rows.  Deterministic given `rng`.
PosList SampleRowPositions(size_t num_rows, size_t sample_size, Rng& rng);

/// Bounded-cost uniform row sample without replacement: a columnar gather
/// of the rows at SampleRowPositions(...).  The k-slot reservoir is filled
/// by index sampling instead of a full-table scan, so building the sample
/// costs O(k log k) plus the gather — independent of instance size.  Order
/// of kept rows is preserved; returns a copy of `instance` when
/// sample_size >= num_rows.
Table ReservoirSampleRows(const Table& instance, size_t sample_size, Rng& rng);

/// Legacy name for ReservoirSampleRows.  Historically this shuffled a full
/// n-entry index vector (O(n) work for any sample size); it now delegates
/// to the reservoir path, so both names pick the same rows for the same
/// rng state.
Table SampleRows(const Table& instance, size_t sample_size, Rng& rng);

/// Deterministic per-table seed for training-sample draws: folds
/// `table_name` into `seed` so every table of a database samples from an
/// independent but reproducible stream (used by TableMatchSession's
/// max_training_rows cap; restore paths rebuild the identical sample).
uint64_t DeriveTableSampleSeed(uint64_t seed, std::string_view table_name);

}  // namespace csm

#endif  // CSM_RELATIONAL_SAMPLE_H_
