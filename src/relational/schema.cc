#include "relational/schema.h"

#include "common/logging.h"

namespace csm {

TableSchema::TableSchema(std::string name, std::vector<AttributeDef> attributes)
    : name_(std::move(name)) {
  for (auto& attr : attributes) {
    AddAttribute(std::move(attr.name), attr.type);
  }
}

void TableSchema::AddAttribute(std::string name, ValueType type) {
  CSM_CHECK(!FindAttribute(name).has_value())
      << "duplicate attribute '" << name << "' in table '" << name_ << "'";
  attributes_.push_back(AttributeDef{std::move(name), type});
}

std::optional<size_t> TableSchema::FindAttribute(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

size_t TableSchema::AttributeIndex(std::string_view name) const {
  auto index = FindAttribute(name);
  CSM_CHECK(index.has_value())
      << "no attribute '" << name << "' in table '" << name_ << "'";
  return *index;
}

const AttributeDef& TableSchema::attribute(size_t index) const {
  CSM_CHECK_LT(index, attributes_.size());
  return attributes_[index];
}

std::string TableSchema::ToString() const {
  std::string out = name_;
  out += "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

void Schema::AddTable(TableSchema table) {
  CSM_CHECK(!HasTable(table.name()))
      << "duplicate table '" << table.name() << "' in schema '" << name_ << "'";
  tables_.push_back(std::move(table));
}

const TableSchema* Schema::FindTable(std::string_view name) const {
  for (const auto& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

const TableSchema& Schema::GetTable(std::string_view name) const {
  const TableSchema* table = FindTable(name);
  CSM_CHECK(table != nullptr) << "no table '" << name << "'";
  return *table;
}

size_t Schema::TotalAttributes() const {
  size_t total = 0;
  for (const auto& table : tables_) total += table.num_attributes();
  return total;
}

}  // namespace csm
