#include "relational/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace csm {

void Table::AddRow(Row row) {
  CSM_CHECK_EQ(row.size(), schema_.num_attributes())
      << "row arity mismatch for table '" << name() << "'";
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    CSM_CHECK(row[i].type() == schema_.attribute(i).type)
        << "type mismatch in '" << name() << "." << schema_.attribute(i).name
        << "': expected " << ValueTypeToString(schema_.attribute(i).type)
        << ", got " << ValueTypeToString(row[i].type());
  }
  rows_.push_back(std::move(row));
}

const Row& Table::row(size_t index) const {
  CSM_CHECK_LT(index, rows_.size());
  return rows_[index];
}

const Value& Table::at(size_t row_index, size_t col_index) const {
  CSM_CHECK_LT(row_index, rows_.size());
  CSM_CHECK_LT(col_index, schema_.num_attributes());
  return rows_[row_index][col_index];
}

const Value& Table::at(size_t row_index, std::string_view attribute) const {
  return at(row_index, schema_.AttributeIndex(attribute));
}

std::vector<Value> Table::ValueBag(std::string_view attribute) const {
  return ValueBag(schema_.AttributeIndex(attribute));
}

std::vector<Value> Table::ValueBag(size_t col_index) const {
  CSM_CHECK_LT(col_index, schema_.num_attributes());
  std::vector<Value> bag;
  bag.reserve(rows_.size());
  for (const Row& r : rows_) bag.push_back(r[col_index]);
  return bag;
}

std::map<Value, size_t> Table::ValueCounts(std::string_view attribute) const {
  size_t col = schema_.AttributeIndex(attribute);
  std::map<Value, size_t> counts;
  for (const Row& r : rows_) {
    if (!r[col].is_null()) ++counts[r[col]];
  }
  return counts;
}

Table Table::SelectRows(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.rows_.reserve(indices.size());
  for (size_t index : indices) {
    CSM_CHECK_LT(index, rows_.size());
    out.rows_.push_back(rows_[index]);
  }
  return out;
}

Table Table::Renamed(std::string new_name) const {
  TableSchema renamed(std::move(new_name));
  for (const auto& attr : schema_.attributes()) {
    renamed.AddAttribute(attr.name, attr.type);
  }
  Table out(std::move(renamed));
  out.rows_ = rows_;
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << ", " << rows_.size() << " rows\n";
  // Compute column widths over the printed prefix.
  size_t printed = std::min(max_rows, rows_.size());
  std::vector<size_t> widths(schema_.num_attributes());
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    widths[c] = schema_.attribute(c).name.size();
    for (size_t r = 0; r < printed; ++r) {
      widths[c] = std::max(widths[c], rows_[r][c].ToString().size());
    }
    widths[c] = std::min<size_t>(widths[c], 28);
  }
  auto print_cell = [&](const std::string& text, size_t width) {
    std::string clipped =
        text.size() > width ? text.substr(0, width - 1) + "~" : text;
    os << clipped << std::string(width - clipped.size() + 2, ' ');
  };
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    print_cell(schema_.attribute(c).name, widths[c]);
  }
  os << "\n";
  for (size_t r = 0; r < printed; ++r) {
    for (size_t c = 0; c < schema_.num_attributes(); ++c) {
      print_cell(rows_[r][c].ToString(), widths[c]);
    }
    os << "\n";
  }
  if (printed < rows_.size()) {
    os << "... (" << rows_.size() - printed << " more rows)\n";
  }
  return os.str();
}

void Database::AddTable(Table table) {
  CSM_CHECK(!HasTable(table.name()))
      << "duplicate table '" << table.name() << "'";
  tables_.push_back(std::move(table));
}

const Table* Database::FindTable(std::string_view name) const {
  for (const auto& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

Table* Database::FindMutableTable(std::string_view name) {
  for (auto& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

const Table& Database::GetTable(std::string_view name) const {
  const Table* table = FindTable(name);
  CSM_CHECK(table != nullptr) << "no table '" << name << "'";
  return *table;
}

Schema Database::GetSchema() const {
  Schema schema(name_);
  for (const auto& table : tables_) schema.AddTable(table.schema());
  return schema;
}

}  // namespace csm
