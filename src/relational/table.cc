#include "relational/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace csm {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_attributes());
  for (const auto& attr : schema_.attributes()) {
    columns_.emplace_back(attr.type);
  }
}

Table::Table(const Table& other)
    : schema_(other.schema_),
      columns_(other.columns_),
      num_rows_(other.num_rows_) {}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  columns_ = other.columns_;
  num_rows_ = other.num_rows_;
  InvalidateRowCache();
  return *this;
}

Table::Table(Table&& other) noexcept
    : schema_(std::move(other.schema_)),
      columns_(std::move(other.columns_)),
      num_rows_(other.num_rows_) {
  other.num_rows_ = 0;
}

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  columns_ = std::move(other.columns_);
  num_rows_ = other.num_rows_;
  other.num_rows_ = 0;
  InvalidateRowCache();
  return *this;
}

void Table::AddRow(Row row) {
  CSM_CHECK_EQ(row.size(), schema_.num_attributes())
      << "row arity mismatch for table '" << name() << "'";
  CSM_CHECK_LT(num_rows_, static_cast<size_t>(kNullCode))
      << "table '" << name() << "' row capacity exceeded";
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    CSM_CHECK(row[i].type() == schema_.attribute(i).type)
        << "type mismatch in '" << name() << "." << schema_.attribute(i).name
        << "': expected " << ValueTypeToString(schema_.attribute(i).type)
        << ", got " << ValueTypeToString(row[i].type());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].Append(row[i]);
  }
  ++num_rows_;
  InvalidateRowCache();
}

Status Table::AddRowFromText(const std::vector<std::string>& fields) {
  if (fields.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("record arity mismatch in table '" +
                                   name() + "'");
  }
  CSM_CHECK_LT(num_rows_, static_cast<size_t>(kNullCode))
      << "table '" << name() << "' row capacity exceeded";
  for (size_t i = 0; i < fields.size(); ++i) {
    Status s = columns_[i].AppendParsed(fields[i]);
    if (!s.ok()) {
      // Roll back the cells already appended so the table stays rectangular.
      for (size_t j = 0; j < i; ++j) columns_[j].PopBack();
      return s;
    }
  }
  ++num_rows_;
  InvalidateRowCache();
  return Status::Ok();
}

void Table::Reserve(size_t n) {
  for (auto& col : columns_) col.Reserve(n);
}

void Table::AppendRowsFrom(const Table& other) {
  CSM_CHECK_EQ(other.schema_.num_attributes(), schema_.num_attributes())
      << "schema arity mismatch appending into table '" << name() << "'";
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    CSM_CHECK(other.schema_.attribute(i).name == schema_.attribute(i).name &&
              other.schema_.attribute(i).type == schema_.attribute(i).type)
        << "schema mismatch appending into '" << name() << "' at attribute '"
        << schema_.attribute(i).name << "'";
  }
  CSM_CHECK_LE(other.num_rows_, static_cast<size_t>(kNullCode) - num_rows_)
      << "table '" << name() << "' row capacity exceeded";
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendFrom(other.columns_[i]);
  }
  num_rows_ += other.num_rows_;
  InvalidateRowCache();
}

const std::vector<Row>& Table::rows() const { return CachedRows(); }

const Row& Table::row(size_t index) const {
  const std::vector<Row>& cached = CachedRows();
  CSM_CHECK_LT(index, cached.size());
  return cached[index];
}

const Value& Table::at(size_t row_index, size_t col_index) const {
  CSM_CHECK_LT(row_index, num_rows_);
  CSM_CHECK_LT(col_index, schema_.num_attributes());
  return CachedRows()[row_index][col_index];
}

const Value& Table::at(size_t row_index, std::string_view attribute) const {
  return at(row_index, schema_.AttributeIndex(attribute));
}

Value Table::ValueAt(size_t row_index, size_t col_index) const {
  CSM_CHECK_LT(col_index, columns_.size());
  return columns_[col_index].GetValue(row_index);
}

const Column& Table::column(size_t col_index) const {
  CSM_CHECK_LT(col_index, columns_.size());
  return columns_[col_index];
}

std::vector<Value> Table::ValueBag(std::string_view attribute) const {
  return ValueBag(schema_.AttributeIndex(attribute));
}

std::vector<Value> Table::ValueBag(size_t col_index) const {
  CSM_CHECK_LT(col_index, schema_.num_attributes());
  std::vector<Value> bag;
  columns_[col_index].BoxAllTo(&bag);
  return bag;
}

std::map<Value, size_t> Table::ValueCounts(std::string_view attribute) const {
  size_t col_index = schema_.AttributeIndex(attribute);
  const Column& col = columns_[col_index];
  std::map<Value, size_t> counts;
  switch (col.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt: {
      const auto& ints = col.ints();
      const auto& nulls = col.null_mask();
      for (size_t r = 0; r < num_rows_; ++r) {
        if (!nulls[r]) ++counts[Value::Int(ints[r])];
      }
      break;
    }
    case ValueType::kReal: {
      const auto& reals = col.reals();
      const auto& nulls = col.null_mask();
      for (size_t r = 0; r < num_rows_; ++r) {
        if (!nulls[r]) ++counts[Value::Real(reals[r])];
      }
      break;
    }
    case ValueType::kString: {
      // Count per dictionary code first (O(1) per row), then box only the
      // distinct values.
      std::vector<size_t> per_code(col.dictionary().size(), 0);
      for (uint32_t code : col.codes()) {
        if (code != kNullCode) ++per_code[code];
      }
      for (uint32_t code = 0; code < per_code.size(); ++code) {
        if (per_code[code] > 0) {
          counts.emplace(Value::String(col.dictionary().value(code)),
                         per_code[code]);
        }
      }
      break;
    }
  }
  return counts;
}

Table Table::SelectRows(const std::vector<size_t>& indices) const {
  PosList positions;
  positions.reserve(indices.size());
  for (size_t index : indices) {
    CSM_CHECK_LT(index, num_rows_);
    positions.push_back(static_cast<RowId>(index));
  }
  return SelectRows(positions);
}

Table Table::SelectRows(const PosList& positions) const {
  std::vector<Column> gathered;
  gathered.reserve(columns_.size());
  for (const auto& col : columns_) gathered.push_back(col.Gather(positions));
  return FromColumns(schema_, std::move(gathered), positions.size());
}

Table Table::Renamed(std::string new_name) const {
  TableSchema renamed(std::move(new_name));
  for (const auto& attr : schema_.attributes()) {
    renamed.AddAttribute(attr.name, attr.type);
  }
  return FromColumns(std::move(renamed), columns_, num_rows_);
}

Table Table::FromColumns(TableSchema schema, std::vector<Column> columns,
                         size_t num_rows) {
  CSM_CHECK_EQ(columns.size(), schema.num_attributes());
  for (size_t i = 0; i < columns.size(); ++i) {
    CSM_CHECK(columns[i].type() == schema.attribute(i).type)
        << "column type mismatch for '" << schema.attribute(i).name << "'";
    CSM_CHECK_EQ(columns[i].size(), num_rows);
  }
  Table out;
  out.schema_ = std::move(schema);
  out.columns_ = std::move(columns);
  out.num_rows_ = num_rows;
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << ", " << num_rows_ << " rows\n";
  // Compute column widths over the printed prefix.
  size_t printed = std::min(max_rows, num_rows_);
  std::vector<size_t> widths(schema_.num_attributes());
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    widths[c] = schema_.attribute(c).name.size();
    for (size_t r = 0; r < printed; ++r) {
      widths[c] = std::max(widths[c], ValueAt(r, c).ToString().size());
    }
    widths[c] = std::min<size_t>(widths[c], 28);
  }
  auto print_cell = [&](const std::string& text, size_t width) {
    std::string clipped =
        text.size() > width ? text.substr(0, width - 1) + "~" : text;
    os << clipped << std::string(width - clipped.size() + 2, ' ');
  };
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    print_cell(schema_.attribute(c).name, widths[c]);
  }
  os << "\n";
  for (size_t r = 0; r < printed; ++r) {
    for (size_t c = 0; c < schema_.num_attributes(); ++c) {
      print_cell(ValueAt(r, c).ToString(), widths[c]);
    }
    os << "\n";
  }
  if (printed < num_rows_) {
    os << "... (" << num_rows_ - printed << " more rows)\n";
  }
  return os.str();
}

void Table::InvalidateRowCache() {
  std::lock_guard<std::mutex> lock(row_cache_mu_);
  row_cache_.reset();
}

const std::vector<Row>& Table::CachedRows() const {
  std::lock_guard<std::mutex> lock(row_cache_mu_);
  if (!row_cache_) {
    auto rows = std::make_unique<std::vector<Row>>();
    rows->reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      Row row;
      row.reserve(columns_.size());
      for (const auto& col : columns_) row.push_back(col.GetValue(r));
      rows->push_back(std::move(row));
    }
    row_cache_ = std::move(rows);
  }
  return *row_cache_;
}

void Database::AddTable(Table table) {
  CSM_CHECK(!HasTable(table.name()))
      << "duplicate table '" << table.name() << "'";
  tables_.push_back(std::move(table));
}

const Table* Database::FindTable(std::string_view name) const {
  for (const auto& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

Table* Database::FindMutableTable(std::string_view name) {
  for (auto& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

const Table& Database::GetTable(std::string_view name) const {
  const Table* table = FindTable(name);
  CSM_CHECK(table != nullptr) << "no table '" << name << "'";
  return *table;
}

Schema Database::GetSchema() const {
  Schema schema(name_);
  for (const auto& table : tables_) schema.AddTable(table.schema());
  return schema;
}

}  // namespace csm
