// CSV serialization for tables: RFC-4180-ish quoting, header row with
// attribute names.  Used by the examples and for dumping experiment inputs.

#ifndef CSM_RELATIONAL_CSV_H_
#define CSM_RELATIONAL_CSV_H_

#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace csm {

/// Serializes `instance` (with a header row) to CSV text.  A row that would
/// render as a completely empty line (a single-attribute NULL) is written as
/// `""` so it survives the round trip — an empty line is otherwise
/// indistinguishable from the file's trailing newline.
std::string TableToCsv(const Table& instance);

/// Parses CSV text into a table.  The first row must be a header matching
/// `schema`'s attribute names (order-sensitive); cells are parsed by each
/// attribute's declared type; empty cells become NULL.  Records end at
/// "\n", "\r\n" or a bare "\r" (classic Mac), so files with any mix of
/// line endings parse; CR/LF *inside* a field must be quoted (the writer
/// always quotes them).  A blank line after the last record is treated as
/// the file's trailing newline, not a record.
StatusOr<Table> TableFromCsv(const TableSchema& schema, std::string_view csv);

/// Writes `instance` as CSV to `path`.
Status WriteCsvFile(const Table& instance, const std::string& path);

/// Reads a CSV file into a table conforming to `schema`.
StatusOr<Table> ReadCsvFile(const TableSchema& schema, const std::string& path);

/// Parses CSV text inferring each column's type from its cells: a column
/// whose non-empty cells all parse as int becomes int; failing that, real;
/// otherwise string.  Columns with no non-empty cells default to string.
/// The header row supplies the attribute names.
StatusOr<Table> TableFromCsvInferred(const std::string& table_name,
                                     std::string_view csv);

/// Reads a CSV file with inferred column types.
StatusOr<Table> ReadCsvFileInferred(const std::string& table_name,
                                    const std::string& path);

}  // namespace csm

#endif  // CSM_RELATIONAL_CSV_H_
