// CSV serialization for tables: RFC-4180-ish quoting, header row with
// attribute names.  Used by the examples and for dumping experiment inputs.

#ifndef CSM_RELATIONAL_CSV_H_
#define CSM_RELATIONAL_CSV_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace csm {

namespace exec {
class ThreadPool;
}  // namespace exec

/// Serializes `instance` (with a header row) to CSV text.  A row that would
/// render as a completely empty line (a single-attribute NULL) is written as
/// `""` so it survives the round trip — an empty line is otherwise
/// indistinguishable from the file's trailing newline.
std::string TableToCsv(const Table& instance);

/// Parses CSV text into a table.  The first row must be a header matching
/// `schema`'s attribute names (order-sensitive); cells are parsed by each
/// attribute's declared type; empty cells become NULL.  Records end at
/// "\n", "\r\n" or a bare "\r" (classic Mac), so files with any mix of
/// line endings parse; CR/LF *inside* a field must be quoted (the writer
/// always quotes them).  A blank line after the last record is treated as
/// the file's trailing newline, not a record.
StatusOr<Table> TableFromCsv(const TableSchema& schema, std::string_view csv);

/// Writes `instance` as CSV to `path`.
Status WriteCsvFile(const Table& instance, const std::string& path);

/// Reads a CSV file into a table conforming to `schema`.
StatusOr<Table> ReadCsvFile(const TableSchema& schema, const std::string& path);

/// Parses CSV text inferring each column's type from its cells: a column
/// whose non-empty cells all parse as int becomes int; failing that, real;
/// otherwise string.  Columns with no non-empty cells default to string.
/// The header row supplies the attribute names.
StatusOr<Table> TableFromCsvInferred(const std::string& table_name,
                                     std::string_view csv);

/// Reads a CSV file with inferred column types.
StatusOr<Table> ReadCsvFileInferred(const std::string& table_name,
                                    const std::string& path);

// ---------------------------------------------------------------------------
// Streaming / parallel ingest (the million-row path; DESIGN.md "Streaming
// ingest & sampling").  One structural pass splits the text into chunks on
// record boundaries; chunks parse in parallel into per-chunk column
// segments; the chunk tables merge in order with dictionary re-encoding.
// The merged table is bit-identical to TableFromCsv on the same text at
// every thread count and chunk size.
// ---------------------------------------------------------------------------

/// One parse chunk: a half-open byte range of the CSV body that starts and
/// ends on record boundaries, plus an upper-bound record count for
/// reservation (terminators seen in the range; quoted embedded newlines make
/// it exact, a trailing blank line overcounts by one).
struct CsvChunkSpan {
  size_t begin = 0;
  size_t end = 0;
  size_t records = 0;
};

/// Splits `csv` from `pos` (normally just past the header record) into
/// chunks of at least `target_chunk_bytes` bytes, each ending on a record
/// boundary, in one pass that tracks quote parity — a '"' toggles in/out of
/// a quoted field, exactly like the record parser, so terminators inside
/// quoted fields never split a record.  "\r\n" is one terminator: a chunk
/// never splits between the CR and the LF (a chunk starting with a bare LF
/// would otherwise parse a phantom empty record).  The final chunk may be
/// short; an unterminated final record is included in it.
std::vector<CsvChunkSpan> ScanCsvChunks(std::string_view csv, size_t pos,
                                        size_t target_chunk_bytes);

/// Chunk size heuristic: aim for ~4 chunks per worker so stragglers level
/// out, clamped to [64 KiB, 16 MiB] so tiny files stay serial-ish and huge
/// files do not blow up the per-chunk table count.
size_t AutotuneCsvChunkBytes(size_t total_bytes, size_t threads);

/// Knobs for the streaming ingest path.
struct CsvIngestOptions {
  /// Worker threads for the chunk parse; 0 = one per hardware thread,
  /// 1 = fully serial (no pool spun up).  Ignored when `pool` is set.
  size_t threads = 0;
  /// Optional borrowed pool; when set, chunk parsing runs on it instead of
  /// a private pool.
  exec::ThreadPool* pool = nullptr;
  /// Target chunk size in bytes; 0 = AutotuneCsvChunkBytes.
  size_t chunk_bytes = 0;
  /// Skip mmap and use the instrumented buffered-read fallback (tests use
  /// this to prove the file is read exactly once).
  bool force_read_fallback = false;
};

/// Observability counters for one streaming ingest.
struct CsvIngestStats {
  size_t file_bytes = 0;    // size of the input file / text
  size_t bytes_read = 0;    // bytes copied by the read fallback (0 = mmap)
  bool used_mmap = false;
  size_t threads = 0;       // effective parse workers
  size_t chunk_bytes = 0;   // chunk size actually used
  size_t chunks = 0;
  size_t records = 0;       // data records parsed (header excluded)
  double load_seconds = 0.0;   // mmap / read time
  double parse_seconds = 0.0;  // scan + parallel parse + merge time
};

/// Parses CSV text into a table through the chunked parallel path.  Output
/// is bit-identical to TableFromCsv(schema, csv) — same rows, same
/// dictionary code assignment — for every thread count and chunk size; the
/// first parse error in *text order* is returned, as the serial parser
/// would.  `stats`, when non-null, receives the parse-side counters.
StatusOr<Table> TableFromCsvParallel(const TableSchema& schema,
                                     std::string_view csv,
                                     const CsvIngestOptions& options = {},
                                     CsvIngestStats* stats = nullptr);

/// Streaming file ingest: maps the file read-only (mmap) when possible and
/// parses it with TableFromCsvParallel, so no second copy of the text is
/// made and no estimate pass re-reads the file.  Falls back to a buffered
/// single-pass read (counted in stats->bytes_read) when mapping fails or
/// options.force_read_fallback is set.
StatusOr<Table> ReadCsvFileStreaming(const TableSchema& schema,
                                     const std::string& path,
                                     const CsvIngestOptions& options = {},
                                     CsvIngestStats* stats = nullptr);

/// Streaming variant of ReadCsvFileInferred: infers column types from the
/// first `infer_records` data records (0 = all, which degrades to a full
/// extra scan), then runs the chunked parallel parse.  When the sampled
/// prefix under-constrains a column (say, an int-looking prefix followed by
/// text) the typed parse fails; the caller decides whether to retry with
/// TableFromCsvInferred.
StatusOr<Table> ReadCsvFileInferredStreaming(
    const std::string& table_name, const std::string& path,
    size_t infer_records = 1024, const CsvIngestOptions& options = {},
    CsvIngestStats* stats = nullptr);

}  // namespace csm

#endif  // CSM_RELATIONAL_CSV_H_
