#include "relational/condition.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace csm {

namespace {

/// One clause translated against a concrete column: the subset of the
/// clause's literals that could possibly equal a cell of the column's type,
/// as raw typed values (dictionary codes for strings).  Sorted for
/// binary_search; usually a handful of entries.
struct CompiledClause {
  const Column* col = nullptr;
  std::vector<int64_t> ints;
  std::vector<double> reals;
  std::vector<uint32_t> codes;

  bool Matches(RowId p) const {
    switch (col->type()) {
      case ValueType::kNull:
        return false;  // every cell is NULL; NULL never matches
      case ValueType::kInt:
        return !col->null_mask()[p] &&
               std::binary_search(ints.begin(), ints.end(), col->ints()[p]);
      case ValueType::kReal:
        return !col->null_mask()[p] &&
               std::binary_search(reals.begin(), reals.end(), col->reals()[p]);
      case ValueType::kString: {
        const uint32_t code = col->codes()[p];
        return code != kNullCode &&
               std::binary_search(codes.begin(), codes.end(), code);
      }
    }
    return false;
  }
};

CompiledClause CompileClause(const ConditionClause& clause, const Column& col) {
  CompiledClause out;
  out.col = &col;
  for (const Value& v : clause.values) {
    switch (col.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        if (v.type() == ValueType::kInt) out.ints.push_back(v.AsInt());
        break;
      case ValueType::kReal:
        if (v.type() == ValueType::kReal) out.reals.push_back(v.AsReal());
        break;
      case ValueType::kString:
        if (v.type() == ValueType::kString) {
          // A literal the dictionary never saw cannot match any cell.
          if (auto code = col.CodeFor(v.AsString())) {
            out.codes.push_back(*code);
          }
        }
        break;
    }
  }
  std::sort(out.ints.begin(), out.ints.end());
  std::sort(out.reals.begin(), out.reals.end());
  std::sort(out.codes.begin(), out.codes.end());
  return out;
}

}  // namespace

void ConditionClause::Normalize() {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

bool ConditionClause::Matches(const Value& v) const {
  if (v.is_null()) return false;
  return std::binary_search(values.begin(), values.end(), v);
}

std::string ConditionClause::ToString() const {
  auto quote = [](const Value& v) {
    if (v.type() == ValueType::kString) return "'" + v.ToString() + "'";
    return v.ToString();
  };
  if (values.size() == 1) {
    return attribute + " = " + quote(values[0]);
  }
  std::string out = attribute + " in {";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += quote(values[i]);
  }
  out += "}";
  return out;
}

Condition Condition::Equals(std::string attribute, Value value) {
  Condition c;
  c.AddClause(std::move(attribute), {std::move(value)});
  return c;
}

Condition Condition::In(std::string attribute, std::vector<Value> values) {
  Condition c;
  c.AddClause(std::move(attribute), std::move(values));
  return c;
}

bool Condition::MentionsAttribute(std::string_view attribute) const {
  for (const auto& clause : clauses_) {
    if (clause.attribute == attribute) return true;
  }
  return false;
}

std::vector<std::string> Condition::MentionedAttributes() const {
  std::vector<std::string> out;
  out.reserve(clauses_.size());
  for (const auto& clause : clauses_) out.push_back(clause.attribute);
  return out;
}

void Condition::AddClause(std::string attribute, std::vector<Value> values) {
  CSM_CHECK(!MentionsAttribute(attribute))
      << "condition already mentions '" << attribute << "'";
  CSM_CHECK(!values.empty()) << "empty IN-list for '" << attribute << "'";
  ConditionClause clause{std::move(attribute), std::move(values)};
  clause.Normalize();
  clauses_.push_back(std::move(clause));
}

Condition Condition::Conjoin(const Condition& other) const {
  Condition out = *this;
  for (const auto& clause : other.clauses_) {
    out.AddClause(clause.attribute, clause.values);
  }
  return out;
}

bool Condition::Evaluate(const TableSchema& schema, const Row& row) const {
  for (const auto& clause : clauses_) {
    size_t col = schema.AttributeIndex(clause.attribute);
    CSM_CHECK_LT(col, row.size());
    if (!clause.Matches(row[col])) return false;
  }
  return true;
}

PosList Condition::MatchingPositions(const Table& instance) const {
  const size_t n = instance.num_rows();
  PosList out;
  if (clauses_.empty()) {
    out.resize(n);
    std::iota(out.begin(), out.end(), RowId{0});
    return out;
  }
  std::vector<CompiledClause> compiled;
  compiled.reserve(clauses_.size());
  for (const auto& clause : clauses_) {
    const size_t col = instance.schema().AttributeIndex(clause.attribute);
    compiled.push_back(CompileClause(clause, instance.column(col)));
  }
  for (RowId p = 0; p < n; ++p) {
    if (compiled[0].Matches(p)) out.push_back(p);
  }
  for (size_t k = 1; k < compiled.size() && !out.empty(); ++k) {
    const CompiledClause& cc = compiled[k];
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&cc](RowId p) { return !cc.Matches(p); }),
              out.end());
  }
  return out;
}

std::string Condition::ToString() const {
  if (clauses_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " and ";
    out += clauses_[i].ToString();
  }
  return out;
}

}  // namespace csm
