#include "relational/condition.h"

#include <algorithm>

#include "common/logging.h"

namespace csm {

void ConditionClause::Normalize() {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

bool ConditionClause::Matches(const Value& v) const {
  if (v.is_null()) return false;
  return std::binary_search(values.begin(), values.end(), v);
}

std::string ConditionClause::ToString() const {
  auto quote = [](const Value& v) {
    if (v.type() == ValueType::kString) return "'" + v.ToString() + "'";
    return v.ToString();
  };
  if (values.size() == 1) {
    return attribute + " = " + quote(values[0]);
  }
  std::string out = attribute + " in {";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += quote(values[i]);
  }
  out += "}";
  return out;
}

Condition Condition::Equals(std::string attribute, Value value) {
  Condition c;
  c.AddClause(std::move(attribute), {std::move(value)});
  return c;
}

Condition Condition::In(std::string attribute, std::vector<Value> values) {
  Condition c;
  c.AddClause(std::move(attribute), std::move(values));
  return c;
}

bool Condition::MentionsAttribute(std::string_view attribute) const {
  for (const auto& clause : clauses_) {
    if (clause.attribute == attribute) return true;
  }
  return false;
}

std::vector<std::string> Condition::MentionedAttributes() const {
  std::vector<std::string> out;
  out.reserve(clauses_.size());
  for (const auto& clause : clauses_) out.push_back(clause.attribute);
  return out;
}

void Condition::AddClause(std::string attribute, std::vector<Value> values) {
  CSM_CHECK(!MentionsAttribute(attribute))
      << "condition already mentions '" << attribute << "'";
  CSM_CHECK(!values.empty()) << "empty IN-list for '" << attribute << "'";
  ConditionClause clause{std::move(attribute), std::move(values)};
  clause.Normalize();
  clauses_.push_back(std::move(clause));
}

Condition Condition::Conjoin(const Condition& other) const {
  Condition out = *this;
  for (const auto& clause : other.clauses_) {
    out.AddClause(clause.attribute, clause.values);
  }
  return out;
}

bool Condition::Evaluate(const TableSchema& schema, const Row& row) const {
  for (const auto& clause : clauses_) {
    size_t col = schema.AttributeIndex(clause.attribute);
    CSM_CHECK_LT(col, row.size());
    if (!clause.Matches(row[col])) return false;
  }
  return true;
}

std::string Condition::ToString() const {
  if (clauses_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " and ";
    out += clauses_[i].ToString();
  }
  return out;
}

}  // namespace csm
