// Zero-copy reference views over a base Table.
//
// A TableView is (base table, PosList, optional projection): the rows of the
// base at the listed positions, optionally restricted/reordered to a subset
// of columns.  It is the runtime representation of a materialized View —
// candidate contextual conditions evaluate to a TableView and the inference,
// scoring and mapping layers read through it without copying a single cell.
// The identity view (all rows, all columns) carries no position list at all,
// so wrapping a Table is free.
//
// A TableView never owns its base: the base Table must outlive the view, and
// appending rows to the base invalidates any view positions taken before the
// append (the usual reference-segment rule; see DESIGN.md "Columnar storage
// & zero-copy views").

#ifndef CSM_RELATIONAL_TABLE_VIEW_H_
#define CSM_RELATIONAL_TABLE_VIEW_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/table.h"

namespace csm {

class TableView {
 public:
  /// An invalid view (no base); valid() is false and row accessors
  /// CHECK-fail.
  TableView() = default;

  /// Identity view: all rows and columns of `base`, same name.  Implicit on
  /// purpose so call sites holding a Table can pass it where a TableView is
  /// expected.  `base` must outlive the view.
  TableView(const Table& base);  // NOLINT(google-explicit-constructor)

  /// Select-only view: the rows of `base` at `positions`, in order.
  TableView(const Table& base, PosList positions);

  /// Select-project view: `column_map[i]` is the base column index backing
  /// view column i; `schema` names and types the view columns.
  TableView(const Table& base, PosList positions, TableSchema schema,
            std::vector<size_t> column_map);

  bool valid() const { return base_ != nullptr; }
  const Table& base() const;

  /// The view's schema: the base schema unless projected or renamed.
  const TableSchema& schema() const;
  const std::string& name() const { return schema().name(); }

  size_t num_rows() const { return identity_ ? BaseRows() : positions_.size(); }
  bool empty() const { return num_rows() == 0; }
  size_t num_columns() const { return schema().num_attributes(); }

  /// True when the view covers all base rows in order with no PosList.
  bool is_identity() const { return identity_; }

  /// Base-table row position of view row `i`.
  RowId position(size_t i) const;

  /// Positions of all view rows (identity views materialize an iota list).
  PosList Positions() const;

  /// Base column index backing view column `view_col`.
  size_t base_column_index(size_t view_col) const;

  /// Column segment backing view column `view_col` (cells must be read
  /// through position()).
  const Column& column(size_t view_col) const;

  /// The cell at (view row, view column), boxed by value.
  Value ValueAt(size_t row_index, size_t col_index) const;

  /// v(V, a) in view-row order, NULLs included — same contract as
  /// Table::ValueBag.
  std::vector<Value> ValueBag(std::string_view attribute) const;
  std::vector<Value> ValueBag(size_t col_index) const;

  /// Distinct non-null values with multiplicities, in Value order — same
  /// contract as Table::ValueCounts.
  std::map<Value, size_t> ValueCounts(std::string_view attribute) const;

  /// Composes a selection: `local_positions` index *view* rows; the result
  /// is a view over the same base.
  TableView Select(PosList local_positions) const;

  /// The same view under a different relation name.
  TableView Renamed(std::string new_name) const;

  /// Copies the viewed rows into a standalone Table named after the view.
  /// String columns share the base's dictionaries (no string copies).
  Table ToTable() const;

 private:
  size_t BaseRows() const;

  const Table* base_ = nullptr;
  bool identity_ = false;
  PosList positions_;                          // empty when identity_
  std::optional<TableSchema> schema_override_; // projection or rename
  std::vector<size_t> column_map_;             // empty = identity columns
};

}  // namespace csm

#endif  // CSM_RELATIONAL_TABLE_VIEW_H_
