// Fingerprints and the cold session tier.
//
// The engine's in-memory session cache (hot tier) dies with the process.  A
// long-lived service wants the expensive part of phase 1 — the matcher
// score grid of every source table against the target database — to
// survive restarts and evictions, so the engine can optionally attach a
// SessionColdStore: a blob store keyed by the (source, target, options)
// fingerprint.  On a hot miss the engine consults the cold store, restores
// the sessions from the blob (cheap: samples rebuild from the request's
// tables, distributions replay from the scores — bit-identical, see
// match/session.h), and promotes the entry into the hot LRU.  On a full
// build it hands the serialized entry back for storage.
//
// The disk-backed implementation lives in src/service/disk_store.h; core
// only defines the interface so the engine stays free of filesystem
// concerns.

#ifndef CSM_CORE_SESSION_STORE_H_
#define CSM_CORE_SESSION_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "match/session.h"
#include "relational/table.h"

namespace csm {

/// FNV-1a style 64-bit fold with avalanche; the mixing primitive behind
/// every fingerprint below (exposed so the service can derive request
/// deduplication keys from the same family).
uint64_t MixFingerprint(uint64_t h, uint64_t v);

/// Content fingerprint of a database: name, schemas and every cell value.
/// Two databases with the same fingerprint yield the same sessions, so
/// caches key on it rather than on object identity (callers often rebuild
/// equal Database values between calls).
uint64_t FingerprintDatabase(const Database& db);

/// Fingerprint of the MatchOptions fields that change what a session's raw
/// score grid contains (min_non_null_values gates which triples are scored;
/// the others shape confidences recomputed live, but are folded in too so a
/// cold entry never crosses an options change).
uint64_t FingerprintMatchOptions(const MatchOptions& options);

/// A blob store for serialized session-cache entries.  Implementations must
/// tolerate concurrent processes (atomic publish or last-writer-wins) and
/// treat every blob as untrusted: the engine re-validates on parse and
/// falls back to a fresh build on any mismatch.
class SessionColdStore {
 public:
  virtual ~SessionColdStore() = default;

  /// Fills `blob` and returns true when `key` is present.
  virtual bool Load(uint64_t key, std::string* blob) = 0;

  /// Persists `blob` under `key`; returns false on failure (non-fatal: the
  /// engine just rebuilt the sessions, losing the write costs a future
  /// rebuild, nothing else).
  virtual bool Store(uint64_t key, const std::string& blob) = 0;

  /// Health introspection: blobs this store has set aside as corrupt or
  /// truncated (see DiskSessionStore's quarantine).  Default 0 for stores
  /// without integrity checking.
  virtual uint64_t Quarantined() const { return 0; }
};

/// Serializes one session-cache entry: a versioned header, then per source
/// table a name line plus the session's raw score matrix.
std::string SerializeSessionScores(
    const std::vector<std::unique_ptr<TableMatchSession>>& sessions);

/// Parses a SerializeSessionScores blob against `source`'s tables (count
/// and order must line up).  Returns one RestoredScores per table, ready to
/// feed the TableMatchSession restore constructor.
StatusOr<std::vector<TableMatchSession::RestoredScores>> ParseSessionScores(
    const std::string& blob, const Database& source);

}  // namespace csm

#endif  // CSM_CORE_SESSION_STORE_H_
