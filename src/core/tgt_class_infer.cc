#include "core/tgt_class_infer.h"

#include "common/logging.h"
#include "core/clustered_view_gen.h"
#include "core/src_class_infer.h"
#include "ml/gaussian_classifier.h"
#include "ml/naive_bayes.h"

namespace csm {

std::unique_ptr<ValueClassifier> CreateTargetClassifier(
    ValueType type, const Database& target_sample) {
  std::unique_ptr<ValueClassifier> classifier;
  if (type == ValueType::kInt || type == ValueType::kReal) {
    classifier = std::make_unique<GaussianClassifier>();
  } else {
    classifier = std::make_unique<NaiveBayesClassifier>(/*q=*/3);
  }
  bool trained_any = false;
  for (const Table& table : target_sample.tables()) {
    for (size_t c = 0; c < table.schema().num_attributes(); ++c) {
      const AttributeDef& attr = table.schema().attribute(c);
      // Numeric classifiers accept both int and real columns; the string
      // classifier takes string columns only.
      const bool numeric_type =
          type == ValueType::kInt || type == ValueType::kReal;
      const bool numeric_attr =
          attr.type == ValueType::kInt || attr.type == ValueType::kReal;
      if (numeric_type != numeric_attr) continue;
      if (!numeric_type && attr.type != type) continue;
      const std::string label = table.name() + "." + attr.name;
      if (attr.type == ValueType::kString) {
        // Coded path: each distinct value is tokenized once by the
        // classifier's (dictionary, code) training memo.
        const Column& column = table.column(c);
        const StringDictionary& dict = column.dictionary();
        for (uint32_t code : column.codes()) {
          if (code == kNullCode) continue;
          classifier->TrainCoded(dict, code, label);
          trained_any = true;
        }
        continue;
      }
      for (const Value& value : table.ValueBag(c)) {
        if (value.is_null()) continue;
        classifier->Train(value, label);
        trained_any = true;
      }
    }
  }
  if (!trained_any) return nullptr;
  return classifier;
}

std::string TgtTagClassifier::Tag(const Value& input) const {
  if (tagger_ == nullptr) return "";
  return tagger_->Classify(input);
}

std::string TgtTagClassifier::TagCoded(const StringDictionary& dict,
                                       uint32_t code) const {
  if (tagger_ == nullptr) return "";
  return tagger_->ClassifyCoded(dict, code);
}

void TgtTagClassifier::Train(const Value& input, const std::string& label) {
  if (input.is_null()) return;
  const std::string tag = Tag(input);
  ++tbag_[{tag, label}];
  ++tag_totals_[tag];
  ++label_totals_[label];
  ++total_;
}

void TgtTagClassifier::TrainCoded(const StringDictionary& dict, uint32_t code,
                                  const std::string& label) {
  if (code == kNullCode) return;
  const std::string tag = TagCoded(dict, code);
  ++tbag_[{tag, label}];
  ++tag_totals_[tag];
  ++label_totals_[label];
  ++total_;
}

double TgtTagClassifier::Score(const std::string& tag,
                               const std::string& label) const {
  auto it = tbag_.find({tag, label});
  if (it == tbag_.end()) return 0.0;
  const double joint = static_cast<double>(it->second);
  const double tag_total =
      static_cast<double>(tag_totals_.at(tag));        // P(v|g) denominator
  const double label_total =
      static_cast<double>(label_totals_.at(label));    // P(g|v) denominator
  return (joint / tag_total) * (joint / label_total);
}

std::string TgtTagClassifier::BestCat(const std::string& tag) const {
  std::string best;
  double best_score = -1.0;
  size_t best_frequency = 0;
  bool tag_seen = tag_totals_.count(tag) > 0;
  for (const auto& [label, frequency] : label_totals_) {
    double score = tag_seen ? Score(tag, label) : 0.0;
    // Ties (including the unseen-tag case where all scores are 0) break
    // toward the more common label, then map order for determinism.
    if (score > best_score ||
        (score == best_score && frequency > best_frequency)) {
      best = label;
      best_score = score;
      best_frequency = frequency;
    }
  }
  return best;
}

std::string TgtTagClassifier::Classify(const Value& input) const {
  if (total_ == 0 || input.is_null()) return "";
  return BestCat(Tag(input));
}

std::string TgtTagClassifier::ClassifyCoded(const StringDictionary& dict,
                                            uint32_t code) const {
  if (total_ == 0 || code == kNullCode) return "";
  return BestCat(TagCoded(dict, code));
}

std::vector<std::string> TgtTagClassifier::Labels() const {
  std::vector<std::string> out;
  out.reserve(label_totals_.size());
  for (const auto& [label, count] : label_totals_) out.push_back(label);
  return out;
}

std::vector<CandidateView> TgtClassInfer::InferCandidateViews(
    const InferenceInput& input, Rng& rng) {
  if (input.matches == nullptr || input.matches->empty()) return {};
  if (!input.source_sample.valid() || input.source_sample.num_rows() == 0) {
    return {};
  }
  CSM_CHECK(input.target_sample != nullptr);
  std::vector<std::string> labels =
      FilteredLabelAttributes(input, categorical_);
  if (labels.empty()) return {};

  // One shared target classifier per basic type family.
  auto string_tagger = std::shared_ptr<const ValueClassifier>(
      CreateTargetClassifier(ValueType::kString, *input.target_sample));
  auto numeric_tagger = std::shared_ptr<const ValueClassifier>(
      CreateTargetClassifier(ValueType::kReal, *input.target_sample));

  ClassifierFactory factory =
      [&](ValueType evidence_type) -> std::unique_ptr<ValueClassifier> {
    if (evidence_type == ValueType::kInt ||
        evidence_type == ValueType::kReal) {
      return std::make_unique<TgtTagClassifier>(numeric_tagger);
    }
    return std::make_unique<TgtTagClassifier>(string_tagger);
  };
  std::vector<ViewFamily> families = ClusteredViewGen(
      input.source_sample, factory, clustered_, categorical_,
      input.early_disjuncts, rng, std::move(labels), {}, input.pool,
      input.obs, input.cancel);
  return CandidatesFromFamilies(families);
}

}  // namespace csm
