#include "core/view_inference.h"

#include <set>

#include "common/logging.h"
#include "core/naive_infer.h"
#include "core/src_class_infer.h"
#include "core/tgt_class_infer.h"

namespace csm {

const char* ViewInferenceKindToString(ViewInferenceKind kind) {
  switch (kind) {
    case ViewInferenceKind::kNaive:
      return "NaiveInfer";
    case ViewInferenceKind::kSrcClass:
      return "SrcClassInfer";
    case ViewInferenceKind::kTgtClass:
      return "TgtClassInfer";
  }
  return "unknown";
}

const char* SelectionPolicyToString(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kMultiTable:
      return "MultiTable";
    case SelectionPolicy::kQualTable:
      return "QualTable";
  }
  return "unknown";
}

std::unique_ptr<ViewInference> MakeViewInference(
    ViewInferenceKind kind, const ContextMatchOptions& options) {
  switch (kind) {
    case ViewInferenceKind::kNaive:
      return std::make_unique<NaiveInfer>(
          options.categorical, options.naive_disjunct_limit,
          options.clustered.max_label_cardinality);
    case ViewInferenceKind::kSrcClass:
      return std::make_unique<SrcClassInfer>(options.clustered,
                                             options.categorical);
    case ViewInferenceKind::kTgtClass:
      return std::make_unique<TgtClassInfer>(options.clustered,
                                             options.categorical);
  }
  CSM_CHECK(false) << "unknown inference kind";
  return nullptr;
}

std::vector<CandidateView> DeduplicateCandidates(
    std::vector<CandidateView> candidates) {
  std::set<std::string> seen;
  std::vector<CandidateView> out;
  out.reserve(candidates.size());
  for (auto& candidate : candidates) {
    std::string key = candidate.view.base_table() + "\x1d" +
                      candidate.view.condition().ToString();
    if (seen.insert(std::move(key)).second) {
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

}  // namespace csm
