// TgtClassInfer (Section 3.2.4): tag source values with the target column
// they most resemble, then learn the tag -> categorical-value association.
//
// createTargetClassifier(D, Rt) trains, per basic type D, a classifier over
// all target columns of that type whose labels are column names
// ("Book.Title").  During ClusteredViewGen's doTraining the TBag of (tag,
// label) pairs is collected; classification returns
// bestCAT(tag) = argmax_v score(tag, v) where
// score(g, v) = acc(g, v) * prec(g, v) = P(v|g) * P(g|v),
// ties broken toward the more common v, and unseen tags map to the most
// common label (the paper allows an arbitrary choice; we pick the most
// common for determinism).

#ifndef CSM_CORE_TGT_CLASS_INFER_H_
#define CSM_CORE_TGT_CLASS_INFER_H_

#include <map>
#include <memory>

#include "core/view_inference.h"
#include "ml/classifier.h"

namespace csm {

/// Trains the per-type target classifier C_D over the sample of the target
/// database: every non-null value of every attribute of type `type` becomes
/// a training example labeled with its column name.  Returns nullptr when
/// the target has no attribute of that type.
std::unique_ptr<ValueClassifier> CreateTargetClassifier(
    ValueType type, const Database& target_sample);

/// The TBag / bestCAT wrapper: a ValueClassifier whose labels are
/// categorical values, driven by a shared per-type target classifier.
class TgtTagClassifier : public ValueClassifier {
 public:
  /// `tagger` assigns target-column tags; shared across (h, l) pairs of the
  /// same evidence type.  May be null (everything maps to the most common
  /// label).
  explicit TgtTagClassifier(std::shared_ptr<const ValueClassifier> tagger)
      : tagger_(std::move(tagger)) {}

  void Train(const Value& input, const std::string& label) override;
  std::string Classify(const Value& input) const override;
  /// Coded fast paths: hand the dictionary code straight to the shared
  /// tagger so its per-distinct-value memo is keyed without boxing.
  void TrainCoded(const StringDictionary& dict, uint32_t code,
                  const std::string& label) override;
  std::string ClassifyCoded(const StringDictionary& dict,
                            uint32_t code) const override;
  std::vector<std::string> Labels() const override;
  size_t TrainingSize() const override { return total_; }

  /// bestCAT for a raw tag (exposed for tests).
  std::string BestCat(const std::string& tag) const;

  /// score(g, v) = P(v|g) * P(g|v); 0 when unseen.
  double Score(const std::string& tag, const std::string& label) const;

 private:
  std::string Tag(const Value& input) const;
  std::string TagCoded(const StringDictionary& dict, uint32_t code) const;

  std::shared_ptr<const ValueClassifier> tagger_;
  /// TBag counts: (tag, label) -> occurrences.
  std::map<std::pair<std::string, std::string>, size_t> tbag_;
  std::map<std::string, size_t> tag_totals_;
  std::map<std::string, size_t> label_totals_;
  size_t total_ = 0;
};

class TgtClassInfer : public ViewInference {
 public:
  TgtClassInfer(ClusteredViewGenOptions clustered,
                CategoricalOptions categorical)
      : clustered_(clustered), categorical_(categorical) {}

  std::string Name() const override { return "TgtClassInfer"; }

  std::vector<CandidateView> InferCandidateViews(const InferenceInput& input,
                                                 Rng& rng) override;

 private:
  ClusteredViewGenOptions clustered_;
  CategoricalOptions categorical_;
};

}  // namespace csm

#endif  // CSM_CORE_TGT_CLASS_INFER_H_
