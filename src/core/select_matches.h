// SelectContextualMatches (Section 3.4): reduce the large pool of scored
// candidate matches to a small, coherent set for the user.
//
// MultiTable: the single highest-confidence match per target attribute
// (view matches participate only when they improve on their base match by
// omega).  QualTable: per target table, pick the source table with the
// highest total base confidence; swap in candidate views that improve the
// table-level total by at least omega — the single best view under
// EarlyDisjuncts, all improving views under LateDisjuncts.

#ifndef CSM_CORE_SELECT_MATCHES_H_
#define CSM_CORE_SELECT_MATCHES_H_

#include <map>
#include <string>
#include <vector>

#include "core/context_options.h"
#include "match/match_types.h"
#include "relational/view.h"

namespace csm {

/// Everything SelectContextualMatches sees: the accepted standard matches
/// plus every rescored conditional version (Fig. 5's RL, accumulated over
/// all source tables).
struct ScoredPool {
  /// Standard (condition == true) matches returned by StandardMatch.
  MatchList base_matches;
  /// Conditional versions of base matches, rescored against each candidate
  /// view's restricted sample.
  MatchList view_matches;
  /// The candidate views that produced `view_matches`.
  std::vector<View> candidate_views;
  /// Rows each candidate view selects, keyed by "<table>\x1d<condition>".
  /// Used to break near-ties between equally confident views toward the
  /// one with larger coverage (two equally pure conditions — a merged
  /// disjunct vs one of its halves — score alike once size bias is
  /// corrected, but the larger one maps more of the data).
  std::map<std::string, size_t> view_row_counts;
};

/// Result: the selected matches plus the views they originate from.
struct SelectionResult {
  MatchList matches;
  std::vector<View> selected_views;
};

/// MultiTable selection.
SelectionResult SelectMultiTable(const ScoredPool& pool, double omega);

/// QualTable selection.  `tau` re-filters view-match confidences so a
/// selected view only contributes matches with real evidence.
SelectionResult SelectQualTable(const ScoredPool& pool, double omega,
                                bool early_disjuncts, double tau);

/// Dispatch on the configured policy.
SelectionResult SelectContextualMatches(const ScoredPool& pool,
                                        const ContextMatchOptions& options);

}  // namespace csm

#endif  // CSM_CORE_SELECT_MATCHES_H_
