// The unified request/response surface of the matching engine and service.
//
// PRs 1-5 grew three parallel entrypoints (Match / ConjunctiveMatch /
// TargetContextMatch), each with its own signature and result struct.  A
// long-lived service — and the pluggable-backend ensemble direction behind
// it — needs ONE stable shape to queue, deduplicate, rate-limit and answer:
//
//   MatchRequest request;
//   request.mode = MatchMode::kConjunctive;
//   request.max_stages = 2;
//   request.source = BorrowDatabase(src);      // or a shared_ptr you own
//   request.target = BorrowDatabase(tgt);
//   MatchResponse response = engine.Execute(request);
//
// The legacy entrypoints survive as thin wrappers over Execute, bit
// identical to their pre-unification behavior (determinism_test).
//
// Ownership: the request carries shared_ptr<const Database> so a queued
// request outlives the caller's stack frame (the service holds admitted
// requests until a dispatcher serves them).  Synchronous callers whose
// databases outlive the call wrap them with BorrowDatabase — a non-owning
// alias that costs nothing.

#ifndef CSM_CORE_MATCH_REQUEST_H_
#define CSM_CORE_MATCH_REQUEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/context_match.h"
#include "relational/table.h"
#include "relational/view.h"

namespace csm {

/// Which pipeline a MatchRequest runs.
enum class MatchMode {
  /// Algorithm ContextMatch (Fig. 5): conditions on the source tables.
  kContext,
  /// Section 3.5 iterative staging up to MatchRequest::max_stages
  /// conjunctive condition attributes; max_stages == 1 is plain kContext.
  kConjunctive,
  /// Reverse-role run: conditions inferred on the *target* tables, matches
  /// flipped back into source -> target orientation (core/target_context.h).
  kTargetContext,
};

const char* MatchModeToString(MatchMode mode);

/// A non-owning shared_ptr view of a caller-owned database (aliasing
/// constructor with an empty control block).  The database must outlive
/// every use of the returned pointer.
inline std::shared_ptr<const Database> BorrowDatabase(const Database& db) {
  return std::shared_ptr<const Database>(std::shared_ptr<const Database>(),
                                         &db);
}

/// One unit of matching work, self-contained enough to queue.
struct MatchRequest {
  MatchMode mode = MatchMode::kContext;
  /// Conjunctive stages (kConjunctive only; must be >= 1).
  size_t max_stages = 1;
  /// Accounting key for the service's quotas and per-tenant metrics; the
  /// engine itself ignores it.  Empty = the default tenant.
  std::string tenant;
  /// Wall-clock budget for this request in milliseconds; 0 = unbounded.
  /// In the service the budget covers queue time too: a request that
  /// expires while queued is answered without running.  Overrides nothing —
  /// it combines with ContextMatchOptions::deadline_ms, whichever fires
  /// first.
  int64_t deadline_ms = 0;
  /// Run only phase 1 (standard match) and selection over the baseline —
  /// no contextual stages.  The response is answered OK with completeness
  /// kBaselineOnly.  The service's brownout mode forces this under
  /// sustained overload; callers can also request it directly for a cheap
  /// first answer.
  bool baseline_only = false;
  std::shared_ptr<const Database> source;
  std::shared_ptr<const Database> target;
};

/// The single response shape for every mode and every failure class.
struct MatchResponse {
  /// OK for a complete run; kDeadlineExceeded / kCancelled / kInternal for
  /// a degraded one (partial answer still present, see `completeness`);
  /// kInvalidArgument for a malformed request; kResourceExhausted /
  /// kUnavailable for service-level rejections (no run happened).
  Status status;
  MatchCompleteness completeness = MatchCompleteness::kComplete;

  /// The canonical output: matches oriented source -> target (for
  /// kTargetContext their conditions select target rows and
  /// Match::condition_on_target is set), plus the selected views — over
  /// source tables, or over target tables for kTargetContext.
  MatchList matches;
  std::vector<View> selected_views;

  /// The underlying pipeline run: scored pool, phase report, thread count.
  /// For kTargetContext this is the reversed-direction run (its matches are
  /// target -> source; the flipped ones above are the answer).  Default
  /// constructed when the request was rejected before running.
  ContextMatchResult result;

  /// Service bookkeeping: true when this response was served from an
  /// identical in-flight request rather than a run of its own.
  bool deduplicated = false;
  /// Admission -> dispatch and dispatch -> completion, service-side only.
  double queue_seconds = 0.0;
  double run_seconds = 0.0;

  bool ok() const { return status.ok(); }
  /// Process exit code per the shared table (common/status.h).
  int ExitCode() const { return ExitCodeForStatus(status.code()); }
};

}  // namespace csm

#endif  // CSM_CORE_MATCH_REQUEST_H_
