// SrcClassInfer (Section 3.2.3): train the ClusteredViewGen classifier
// directly on source values — Naive Bayes over 3-grams for text evidence
// attributes, a Gaussian statistical classifier for numeric ones.

#ifndef CSM_CORE_SRC_CLASS_INFER_H_
#define CSM_CORE_SRC_CLASS_INFER_H_

#include "core/view_inference.h"

namespace csm {

class SrcClassInfer : public ViewInference {
 public:
  SrcClassInfer(ClusteredViewGenOptions clustered,
                CategoricalOptions categorical)
      : clustered_(clustered), categorical_(categorical) {}

  std::string Name() const override { return "SrcClassInfer"; }

  std::vector<CandidateView> InferCandidateViews(const InferenceInput& input,
                                                 Rng& rng) override;

 private:
  ClusteredViewGenOptions clustered_;
  CategoricalOptions categorical_;
};

/// Converts accepted families into the flat candidate list (shared with
/// TgtClassInfer).
std::vector<CandidateView> CandidatesFromFamilies(
    const std::vector<ViewFamily>& families);

/// Categorical attributes of the source sample minus the input's excluded
/// partition attributes (shared with TgtClassInfer).  Returns at least an
/// empty vector; callers should skip inference when it is empty.
std::vector<std::string> FilteredLabelAttributes(
    const InferenceInput& input, const CategoricalOptions& categorical);

}  // namespace csm

#endif  // CSM_CORE_SRC_CLASS_INFER_H_
