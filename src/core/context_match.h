// Algorithm ContextMatch (Fig. 5) — the contextual schema matching driver —
// plus the iterative conjunctive-condition extension of Section 3.5.

#ifndef CSM_CORE_CONTEXT_MATCH_H_
#define CSM_CORE_CONTEXT_MATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/context_options.h"
#include "core/select_matches.h"
#include "core/view_inference.h"
#include "match/match_types.h"
#include "obs/metrics.h"
#include "relational/table.h"
#include "relational/view.h"

namespace csm {

/// How much of the pipeline a result covers.  Anything other than
/// kComplete means the run was cancelled (deadline, caller, or injected
/// fault) and degraded per the per-phase contracts in DESIGN.md "Failure
/// model, deadlines & degradation".
enum class MatchCompleteness {
  /// Every phase ran to the end; the result is the full answer.
  kComplete,
  /// The standard-match baseline is complete and at least one chunk of
  /// contextual view scoring finished; selection ran over that partial
  /// pool, so contextual matches may be present but more existed to score.
  kPartialViews,
  /// Only standard matches (possibly from a prefix of the source tables,
  /// when cancellation landed inside phase 1); no contextual matches.
  kBaselineOnly,
};

const char* MatchCompletenessToString(MatchCompleteness completeness);

/// Output of a ContextMatch run.
struct ContextMatchResult {
  /// The selected contextual matches (the algorithm's output set M).
  MatchList matches;
  /// The views those matches originate from.
  std::vector<View> selected_views;
  /// Diagnostics: everything that was scored.
  ScoredPool pool;

  /// Worker threads the run used (ContextMatchOptions::threads after
  /// resolving 0 to the hardware concurrency).
  size_t threads_used = 1;

  /// OK for a complete run.  kDeadlineExceeded / kCancelled / kInternal
  /// when the run degraded (deadline, caller Cancel, injected fault); the
  /// message names the phase cancellation was observed in.  Degraded runs
  /// still return their best-so-far matches — check `completeness`.
  Status status;
  MatchCompleteness completeness = MatchCompleteness::kComplete;

  /// Observability snapshot of the run: per-phase wall-clock seconds
  /// ("standard_match", "inference", "scoring", "selection"), work-volume
  /// counters ("source_tables", "base_matches", "candidate_views",
  /// "view_matches", plus "pool.*" / "engine.*" diagnostics), and latency
  /// histogram summaries ("scoring.view_seconds", "inference.cell_seconds",
  /// "standard.session_seconds", "pool.task_run_seconds", ...).  Counters
  /// are independent of the thread count.
  obs::PhaseReport phases;

  /// Sum of the phase wall-clock totals (the pre-PhaseReport four-field sum).
  double TotalSeconds() const { return phases.TotalSeconds(); }
};

/// Runs contextual schema matching of every source table against the target
/// database using the strategies configured in `options`.
ContextMatchResult ContextMatch(const Database& source, const Database& target,
                                const ContextMatchOptions& options);

/// Section 3.5: repeatedly re-runs inference on the views selected in the
/// previous stage (partitioning only on attributes not already in the
/// condition) to discover conjunctive k-conditions, up to `max_stages`
/// condition attributes.  max_stages == 1 is plain ContextMatch.
ContextMatchResult ConjunctiveContextMatch(const Database& source,
                                           const Database& target,
                                           const ContextMatchOptions& options,
                                           size_t max_stages);

}  // namespace csm

#endif  // CSM_CORE_CONTEXT_MATCH_H_
