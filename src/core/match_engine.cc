#include "core/match_engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <set>
#include <string>

#include "check/invariants.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "exec/parallel.h"
#include "exec/task_rng.h"
#include "match/matchers.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/sample.h"
#include "relational/table_view.h"

namespace csm {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-source-table state for one pipeline run: views into the engine's
/// session cache.  Read-only once built, so it can be shared by concurrent
/// scoring tasks.
struct SourceState {
  const Table* sample = nullptr;
  const TableMatchSession* session = nullptr;
  const MatchList* accepted = nullptr;  // standard matches from this table
};

/// Values of `attribute` at the given row positions of `sample`, gathered
/// straight from the column segment (no row materialization).
std::vector<Value> BagAtPositions(const Table& sample, const PosList& rows,
                                  std::string_view attribute) {
  const Column& col = sample.column(sample.schema().AttributeIndex(attribute));
  std::vector<Value> bag;
  bag.reserve(rows.size());
  for (RowId r : rows) bag.push_back(col.GetValue(r));
  return bag;
}

/// Scores of one candidate view, produced on a worker and merged into the
/// ScoredPool by the caller in candidate order.
struct ScoredFragment {
  /// False when no source state matched the candidate's base table (the
  /// view is recorded as a candidate but nothing is scored).
  bool scored = false;
  size_t view_rows = 0;
  MatchList view_matches;
};

/// Scores every accepted match of `state` against `candidate`.
///
/// With placebo correction (see ContextMatchOptions), each pair is also
/// scored on a random row subset of the same cardinality as the view; the
/// confidence shift a *random* shrinkage induces (placebo - base) is
/// subtracted from the view's confidence, so only condition-specific
/// effects remain.
///
/// Pure function of (state, candidate, rng): touches no shared mutable
/// state, so candidates can be scored concurrently.
ScoredFragment ScoreCandidate(const SourceState& state, const View& candidate,
                              bool placebo_correction, Rng& rng) {
  ScoredFragment fragment;
  fragment.scored = true;
  // One restricted sample per source attribute, so each attribute's
  // restriction — and its cached token profiles — is built once per view
  // no matter how many target attributes it is scored against.
  std::map<std::string, AttributeSample> samples;
  std::map<std::string, std::vector<AttributeSample>> placebo_samples;

  // Columnar scan: literal-vs-code comparison per row instead of per-row
  // Evaluate over boxed values.  Positions come back ascending, exactly the
  // order the row-at-a-time loop produced.
  PosList view_rows = candidate.condition().MatchingPositions(*state.sample);
  // The placebo shift is averaged over a few independent draws: one random
  // subset is noisy enough that a spuriously merged view can land inside
  // selection's near-tie band on draw luck alone.  Each draw is a
  // bounded-cost Floyd's sample (relational/sample.h): O(|view|) work per
  // draw instead of the old O(|table|) iota + full shuffle per candidate.
  constexpr size_t kPlaceboDraws = 3;
  std::vector<PosList> placebo_draws;
  if (placebo_correction) {
    placebo_draws.reserve(kPlaceboDraws);
    for (size_t d = 0; d < kPlaceboDraws; ++d) {
      placebo_draws.push_back(SampleRowPositions(state.sample->num_rows(),
                                                 view_rows.size(), rng));
    }
  }

  // View row-count conservation: a condition can only restrict the sample.
  CSM_INVARIANT_LE(view_rows.size(), state.sample->num_rows())
      << candidate.ToString();
  for (const PosList& placebo_rows : placebo_draws) {
    CSM_INVARIANT_EQ(placebo_rows.size(), view_rows.size())
        << candidate.ToString();
  }
  fragment.view_rows = view_rows.size();

  for (const Match& base : *state.accepted) {
    const std::string& attr = base.source.attribute;
    auto it = samples.find(attr);
    if (it == samples.end()) {
      it = samples
               .emplace(attr, state.session->MakeRestrictedSample(
                                  attr,
                                  BagAtPositions(*state.sample, view_rows,
                                                 attr)))
               .first;
    }
    MatchScore ms =
        state.session->ScoreRestrictedSample(it->second, base.target);
    double confidence = ms.confidence;

    if (placebo_correction) {
      auto pit = placebo_samples.find(attr);
      if (pit == placebo_samples.end()) {
        std::vector<AttributeSample> attr_samples;
        attr_samples.reserve(placebo_draws.size());
        for (const PosList& placebo_rows : placebo_draws) {
          attr_samples.push_back(state.session->MakeRestrictedSample(
              attr, BagAtPositions(*state.sample, placebo_rows, attr)));
        }
        pit = placebo_samples.emplace(attr, std::move(attr_samples)).first;
      }
      double placebo_confidence = 0.0;
      for (const AttributeSample& sample : pit->second) {
        placebo_confidence +=
            state.session->ScoreRestrictedSample(sample, base.target)
                .confidence;
      }
      placebo_confidence /= static_cast<double>(pit->second.size());
      confidence = std::clamp(
          confidence - (placebo_confidence - base.confidence), 0.0, 1.0);
    }

    Match conditional = base;
    conditional.condition = candidate.condition();
    conditional.score = ms.score;
    conditional.confidence = confidence;
    fragment.view_matches.push_back(std::move(conditional));
  }
  return fragment;
}

std::string ViewKey(const View& view) {
  return view.base_table() + "\x1d" + view.condition().ToString();
}

/// Bounds the session cache; one entry can hold a full database's score
/// matrices, so the cap is small.  Eviction is least-recently-used, one
/// entry per insertion: wholesale clearing would thrash to a 0% hit rate
/// as soon as a caller alternates among kMaxCachedSessionSets + 1 database
/// pairs, even when most of them are re-touched every cycle.
constexpr size_t kMaxCachedSessionSets = 8;

/// Degradation quanta: cancellation is only observed at fixed chunk
/// boundaries (exec::CancellableChunkedMap), so a degraded run's partial
/// output is always a whole number of chunks — a deterministic prefix when
/// the cancellation point itself is deterministic (fault injection on a
/// logical index), and a well-formed one in every case (wall-clock
/// deadlines, Cancel() from another thread).
constexpr size_t kSessionChunk = 8;   // phase 1: tables per chunk
constexpr size_t kScoringChunk = 16;  // phase 2: candidate views per chunk

/// Detaches the pool's observability sinks on scope exit, so a per-call
/// registry never outlives its attachment even on an exceptional unwind.
class PoolObsGuard {
 public:
  explicit PoolObsGuard(exec::ThreadPool* pool) : pool_(pool) {}
  ~PoolObsGuard() {
    if (pool_ != nullptr) pool_->SetObservability(nullptr, nullptr);
  }
  PoolObsGuard(const PoolObsGuard&) = delete;
  PoolObsGuard& operator=(const PoolObsGuard&) = delete;

 private:
  exec::ThreadPool* pool_;
};

}  // namespace

MatchEngine::MatchEngine(ContextMatchOptions options)
    : options_(std::move(options)),
      threads_(exec::EffectiveThreads(options_.threads)) {
  // threads_ == 1 keeps the serial path (no pool; ParallelFor/Map run
  // inline).  The work decomposition and RNG streams are the same either
  // way, so results are bit-identical at any thread count.
  if (threads_ > 1) pool_ = std::make_unique<exec::ThreadPool>(threads_);
}

MatchEngine::~MatchEngine() = default;

MatchResponse MatchEngine::Execute(const MatchRequest& request,
                                   const CancellationToken* cancel) {
  MatchResponse response;
  if (request.source == nullptr || request.target == nullptr) {
    response.status =
        Status::InvalidArgument("request needs source and target databases");
    response.completeness = MatchCompleteness::kBaselineOnly;
    return response;
  }
  if (request.max_stages < 1) {
    response.status = Status::InvalidArgument("max_stages must be >= 1");
    response.completeness = MatchCompleteness::kBaselineOnly;
    return response;
  }

  // Per-request budget: a token layered between the caller's token and the
  // run's own (which still adds options().deadline_ms).  Only created when
  // needed, so deadline-free requests keep the exact legacy token chain.
  CancellationToken request_cancel;
  const CancellationToken* effective = cancel;
  if (request.deadline_ms > 0) {
    request_cancel.set_deadline(Deadline::AfterMillis(request.deadline_ms));
    request_cancel.set_parent(cancel);
    effective = &request_cancel;
  }

  switch (request.mode) {
    case MatchMode::kContext:
      response.result = RunPipeline(*request.source, *request.target,
                                    /*max_stages=*/1, request.baseline_only,
                                    effective);
      break;
    case MatchMode::kConjunctive:
      response.result =
          RunPipeline(*request.source, *request.target, request.max_stages,
                      request.baseline_only, effective);
      break;
    case MatchMode::kTargetContext: {
      // Reverse the roles: conditions are inferred on the target's tables,
      // then every match is flipped back into source -> target orientation.
      response.result = RunPipeline(*request.target, *request.source,
                                    /*max_stages=*/1, request.baseline_only,
                                    effective);
      // `csm::Match` the struct is qualified here: unqualified `Match`
      // inside a member function names the MatchEngine::Match overload.
      for (const csm::Match& reversed_match : response.result.matches) {
        csm::Match flipped;
        flipped.source = reversed_match.target;
        flipped.target = reversed_match.source;
        flipped.condition = reversed_match.condition;
        flipped.condition_on_target = !reversed_match.condition.is_true();
        flipped.score = reversed_match.score;
        flipped.confidence = reversed_match.confidence;
        response.matches.push_back(std::move(flipped));
      }
      response.selected_views = response.result.selected_views;
      response.status = response.result.status;
      response.completeness = response.result.completeness;
      return response;
    }
  }

  response.matches = response.result.matches;
  response.selected_views = response.result.selected_views;
  response.status = response.result.status;
  response.completeness = response.result.completeness;
  return response;
}

ContextMatchResult MatchEngine::Match(const Database& source,
                                      const Database& target,
                                      const CancellationToken* cancel) {
  MatchRequest request;
  request.source = BorrowDatabase(source);
  request.target = BorrowDatabase(target);
  return std::move(Execute(request, cancel).result);
}

ContextMatchResult MatchEngine::ConjunctiveMatch(
    const Database& source, const Database& target, size_t max_stages,
    const CancellationToken* cancel) {
  MatchRequest request;
  request.mode = MatchMode::kConjunctive;
  request.max_stages = max_stages;
  request.source = BorrowDatabase(source);
  request.target = BorrowDatabase(target);
  return std::move(Execute(request, cancel).result);
}

void MatchEngine::Cancel() {
  std::lock_guard<std::mutex> lock(cancel_mu_);
  if (active_cancel_ != nullptr) {
    active_cancel_->Cancel(CancelReason::kCaller);
  }
}

TargetContextMatchResult MatchEngine::TargetContextMatch(
    const Database& source, const Database& target,
    const CancellationToken* cancel) {
  MatchRequest request;
  request.mode = MatchMode::kTargetContext;
  request.source = BorrowDatabase(source);
  request.target = BorrowDatabase(target);
  MatchResponse response = Execute(request, cancel);
  TargetContextMatchResult result;
  result.matches = std::move(response.matches);
  result.selected_target_views = std::move(response.selected_views);
  result.reversed = std::move(response.result);
  return result;
}

MatchEngine::SessionLookup MatchEngine::LookupSessions(
    const Database& source, const Database& target,
    obs::MetricsRegistry* registry, uint64_t parent_span,
    const CancellationToken* cancel) {
  const auto key = std::make_pair(FingerprintDatabase(source),
                                  FingerprintDatabase(target));
  auto it = session_cache_.find(key);
  if (it != session_cache_.end()) {
    ++cache_hits_;
    it->second.last_used = ++cache_tick_;
    registry->AddCounter("engine.session_cache_hits");
    return SessionLookup{&it->second, it->second.sessions.size()};
  }
  ++cache_misses_;
  registry->AddCounter("engine.session_cache_misses");
  if (session_cache_.size() >= kMaxCachedSessionSets) {
    // Evict the least-recently-used entry (the cache holds at most 8
    // entries, so a linear scan over the recency ticks is fine).
    auto victim = session_cache_.begin();
    for (auto cand = session_cache_.begin(); cand != session_cache_.end();
         ++cand) {
      if (cand->second.last_used < victim->second.last_used) victim = cand;
    }
    session_cache_.erase(victim);
    ++cache_evictions_;
    registry->AddCounter("engine.session_cache_evictions");
  }

  // Cold tier: on a hot miss, try to restore the sessions from the attached
  // store before paying for a build.  The cold key folds in the options
  // fingerprint (the hot key need not: one engine has one options value)
  // and a format-version constant so stale blobs never cross a change.
  uint64_t cold_key = 0;
  if (cold_store_ != nullptr) {
    cold_key = MixFingerprint(0x636f6c642d763101ULL, key.first);  // "cold-v1"
    cold_key = MixFingerprint(cold_key, key.second);
    cold_key = MixFingerprint(cold_key, FingerprintMatchOptions(options_.match));
  }
  const auto& tables = source.tables();
  if (cold_store_ != nullptr) {
    std::string blob;
    if (cold_store_->Load(cold_key, &blob)) {
      auto parsed = ParseSessionScores(blob, source);
      bool usable = parsed.ok();
      if (usable) {
        // Validate dimensions before constructing: the restore constructor
        // CHECK-fails on a mismatch, and a cold blob is untrusted input.
        const size_t matchers = DefaultMatcherSuite().size();
        size_t target_attrs = 0;
        for (const Table& t : target.tables()) {
          target_attrs += t.schema().num_attributes();
        }
        for (size_t i = 0; i < tables.size() && usable; ++i) {
          const auto& raw = parsed.value()[i].raw;
          if (raw.size() != matchers) usable = false;
          for (const auto& per_source : raw) {
            if (per_source.size() != tables[i].schema().num_attributes()) {
              usable = false;
              break;
            }
            for (const auto& per_target : per_source) {
              if (per_target.size() != target_attrs) {
                usable = false;
                break;
              }
            }
            if (!usable) break;
          }
        }
      }
      if (usable) {
        // Restore serially (cheap: no scoring loop), honoring the same
        // cancellation and fault-injection surface as a build so degraded
        // runs behave identically whichever tier answers.
        SessionCacheEntry entry;
        size_t restored = 0;
        for (size_t i = 0; i < tables.size(); ++i) {
          if (cancel != nullptr && cancel->cancelled()) break;
          if (FaultInjector::Hit("standard.session", i)) break;
          auto session = std::make_unique<TableMatchSession>(
              tables[i], target, DefaultMatcherSuite(), options_.match,
              std::move(parsed.value()[i]));
          entry.accepted.push_back(session->AcceptedMatches(options_.tau));
          entry.sessions.push_back(std::move(session));
          ++restored;
        }
        if (restored == tables.size()) {
          ++cold_hits_;
          registry->AddCounter("engine.session_cold_hits");
          entry.last_used = ++cache_tick_;
          return SessionLookup{
              &session_cache_.emplace(key, std::move(entry)).first->second,
              restored};
        }
        // Cancelled / fault-injected mid-restore: same contract as a
        // partial build — usable prefix for this call, never cached.
        partial_sessions_ = std::move(entry);
        return SessionLookup{&partial_sessions_, restored};
      }
      registry->AddCounter("engine.session_cold_invalid");
    }
  }

  // Build per-table sessions concurrently in fixed chunks of kSessionChunk
  // tables; `cancel` is consulted only between chunks, so a degraded build
  // yields a whole-chunk table prefix.  Session construction and
  // AcceptedMatches draw no random numbers, and results land in table
  // order, so warm-cache runs are bit-identical to cold ones.
  obs::Tracer* tracer = tracer_;
  struct Built {
    std::unique_ptr<TableMatchSession> session;
    MatchList accepted;
  };
  exec::ChunkedMapCut cut;
  std::vector<Built> built = exec::CancellableChunkedMap(
      pool_.get(), tables.size(), kSessionChunk, cancel, &cut, [&](size_t i) {
        Built b;
        // Fault site "standard.session" (index = source table index).  A
        // kFail arm leaves this table's session null, truncating the
        // usable prefix below.
        if (FaultInjector::Hit("standard.session", i)) return b;
        std::string span_name;
        if (tracer != nullptr) span_name = "session:" + tables[i].name();
        obs::ScopedSpan span(tracer, span_name, parent_span);
        const auto start = Clock::now();
        b.session = std::make_unique<TableMatchSession>(
            tables[i], target, DefaultMatcherSuite(), options_.match);
        b.accepted = b.session->AcceptedMatches(options_.tau);
        registry->Observe("standard.session_seconds", SecondsSince(start));
        return b;
      });
  // Keep the longest prefix of consecutively built sessions; a fault-failed
  // table ends it even when later tables finished.
  size_t valid = 0;
  while (valid < built.size() && built[valid].session != nullptr) ++valid;

  SessionCacheEntry entry;
  entry.sessions.reserve(valid);
  entry.accepted.reserve(valid);
  for (size_t i = 0; i < valid; ++i) {
    entry.sessions.push_back(std::move(built[i].session));
    entry.accepted.push_back(std::move(built[i].accepted));
  }
  if (valid == tables.size()) {
    // Offer every complete fresh build to the cold tier (a cold hit never
    // re-stores: the blob it read is already the one it would write).
    if (cold_store_ != nullptr) {
      if (cold_store_->Store(cold_key, SerializeSessionScores(entry.sessions))) {
        ++cold_stores_;
        registry->AddCounter("engine.session_cold_stores");
      }
    }
    entry.last_used = ++cache_tick_;
    return SessionLookup{
        &session_cache_.emplace(key, std::move(entry)).first->second, valid};
  }
  // Partial build: usable for this call's degraded result but never cached
  // (a later call must rebuild the full set).
  partial_sessions_ = std::move(entry);
  return SessionLookup{&partial_sessions_, valid};
}

ContextMatchResult MatchEngine::RunPipeline(const Database& source,
                                            const Database& target,
                                            size_t max_stages,
                                            bool baseline_only,
                                            const CancellationToken* cancel) {
  CSM_CHECK_GE(max_stages, 1u);
  // Brownout / cheap-answer mode: phase 1 and selection only.  Zero stages
  // makes the stage loop a no-op and the baseline-selection branch below
  // the only selection pass.
  if (baseline_only) max_stages = 0;
  ContextMatchResult result;
  result.threads_used = threads_;

  // The run's own token: fed by the options deadline, the caller's token
  // (as parent) and Cancel() from another thread — whichever fires first.
  CancellationToken run_cancel;
  if (options_.deadline_ms > 0) {
    run_cancel.set_deadline(Deadline::AfterMillis(options_.deadline_ms));
  }
  run_cancel.set_parent(cancel);
  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    active_cancel_ = &run_cancel;
  }
  struct ActiveCancelGuard {
    MatchEngine* engine;
    ~ActiveCancelGuard() {
      std::lock_guard<std::mutex> lock(engine->cancel_mu_);
      engine->active_cancel_ = nullptr;
    }
  } active_cancel_guard{this};

  // Phase name the run was first observed cancelled in; empty while the
  // run is healthy.  Every phase boundary funnels through CheckCancelled.
  std::string cancelled_phase;
  auto CheckCancelled = [&](const char* phase) {
    if (cancelled_phase.empty() && run_cancel.cancelled()) {
      cancelled_phase = phase;
    }
    return !cancelled_phase.empty();
  };

  // Per-call registry: phase seconds, work counters and latency histograms
  // all aggregate here; a snapshot becomes result.phases and the contents
  // fold into the engine's long-lived sink (if any) at the end.
  obs::MetricsRegistry registry;
  obs::Tracer* tracer = tracer_;
  exec::ThreadPool* pool = pool_.get();
  PoolObsGuard pool_obs_guard(pool);
  if (pool != nullptr) pool->SetObservability(&registry, tracer);

  Rng rng(options_.seed);
  std::unique_ptr<ViewInference> inference =
      MakeViewInference(options_.inference, options_);

  {
    obs::ScopedSpan root(tracer, "ContextMatch");

    // Phase 1: standard match per source table (cached across calls).
    // Degradation contract: cancellation here leaves the run with the
    // completed prefix of tables' sessions — their accepted matches are the
    // whole baseline, no contextual stages run (kBaselineOnly).
    std::vector<SourceState> states;
    {
      obs::ScopedSpan phase(tracer, "standard_match");
      auto start = Clock::now();
      SessionLookup sessions =
          LookupSessions(source, target, &registry, phase.id(), &run_cancel);
      const auto& tables = source.tables();
      states.resize(sessions.valid_tables);
      for (size_t i = 0; i < sessions.valid_tables; ++i) {
        states[i].sample = &tables[i];
        states[i].session = sessions.entry->sessions[i].get();
        states[i].accepted = &sessions.entry->accepted[i];
      }
      for (const SourceState& state : states) {
        for (const csm::Match& m : *state.accepted) {
          result.pool.base_matches.push_back(m);
        }
        registry.AddCounter("base_matches", state.accepted->size());
      }
      // Phase-1 post-conditions: the usable prefix never exceeds the source
      // table count, and every accepted base match is a standard match with
      // a normalized confidence.
      CSM_INVARIANT_LE(states.size(), tables.size());
      if constexpr (check::kInvariantsEnabled) {
        for (const csm::Match& m : result.pool.base_matches) {
          CSM_INVARIANT(m.is_standard()) << m.ToString();
          CSM_INVARIANT_GE(m.confidence, 0.0) << m.ToString();
          CSM_INVARIANT_LE(m.confidence, 1.0) << m.ToString();
        }
      }
      registry.AddCounter("source_tables", states.size());
      registry.AddSeconds("standard_match", SecondsSince(start));
      // A short prefix without a cancelled token means a fault injection
      // failed a session outright; still a degraded phase-1 run.
      if (sessions.valid_tables < tables.size() && cancelled_phase.empty()) {
        cancelled_phase = "standard_match";
      }
      CheckCancelled("standard_match");
    }

    // Phase 2 (per stage): infer candidate views, then score the
    // conditional version of every accepted match.
    std::set<std::string> scored_keys;  // views already scored (any stage)
    // Stage 1 bases: the source tables themselves (condition "true").
    struct StageBase {
      size_t state_index;
      Condition condition;  // accumulated condition (true at stage 1)
    };
    std::vector<StageBase> stage_bases;
    for (size_t i = 0; i < states.size(); ++i) {
      stage_bases.push_back(StageBase{i, Condition::True()});
    }

    SelectionResult selection;
    for (size_t stage = 0; cancelled_phase.empty() && stage < max_stages;
         ++stage) {
      obs::ScopedSpan stage_span(tracer, "stage:" + std::to_string(stage));
      std::vector<CandidateView> stage_candidates;
      {
        obs::ScopedSpan phase(tracer, "inference");
        auto start = Clock::now();
        for (const StageBase& base : stage_bases) {
          // Drain between tables once cancelled; the whole stage's
          // candidates are discarded below, this only shortens the wait.
          if (run_cancel.cancelled()) break;
          const SourceState& state = states[base.state_index];
          if (state.accepted->empty()) continue;

          // The inference input: the whole base table at stage 1, the
          // stage condition's row positions afterwards — a zero-copy view
          // over the same sample either way (no materialized table).
          TableView infer_view(*state.sample);
          if (!base.condition.is_true()) {
            infer_view = TableView(
                *state.sample,
                base.condition.MatchingPositions(*state.sample));
          }

          InferenceInput input;
          input.source_sample = infer_view;
          input.target_sample = &target;
          input.matches = state.accepted;
          input.early_disjuncts = options_.early_disjuncts;
          input.excluded_partition_attributes =
              base.condition.MentionedAttributes();
          input.pool = pool;  // classifier grid trains concurrently
          input.obs.tracer = tracer;
          input.obs.metrics = &registry;
          input.obs.parent_span = phase.id();
          input.cancel = &run_cancel;

          for (CandidateView& candidate :
               inference->InferCandidateViews(input, rng)) {
            // Conjoin with the stage's accumulated condition.
            if (!base.condition.is_true()) {
              View conjoined(
                  candidate.view.name(), candidate.view.base_table(),
                  base.condition.Conjoin(candidate.view.condition()));
              candidate.view = conjoined;
            }
            if (scored_keys.insert(ViewKey(candidate.view)).second) {
              stage_candidates.push_back(std::move(candidate));
            }
          }
        }
        registry.AddSeconds("inference", SecondsSince(start));
      }
      // Degradation contract: a stage cancelled during inference discards
      // ALL of its candidates — partially inferred grids are schedule-
      // dependent, so none of them may leak into the pool.  Earlier,
      // fully completed stages keep their scored views.
      if (CheckCancelled("inference")) break;
      if (stage_candidates.empty()) break;

      {
        obs::ScopedSpan phase(tracer, "scoring");
        auto start = Clock::now();
        // All candidates score concurrently: candidate i gets its own RNG
        // stream split off one sequential draw, and the fragments are
        // merged in candidate order, so the pool is byte-identical to a
        // serial run.  Cancellation is observed only between fixed chunks
        // of kScoringChunk candidates (a started chunk always completes),
        // so a degraded run's pool is the completed whole-chunk prefix —
        // the same prefix at any thread count.
        const uint64_t scoring_seed = rng.Next();
        exec::ChunkedMapCut cut;
        std::vector<ScoredFragment> fragments = exec::CancellableChunkedMap(
            pool, stage_candidates.size(), kScoringChunk, &run_cancel, &cut,
            [&](size_t i) {
              const View& view = stage_candidates[i].view;
              // Fault site "scoring.candidate" (index = candidate index in
              // stage order).  A kFail arm leaves just this fragment
              // unscored; the run itself continues.
              if (FaultInjector::Hit("scoring.candidate", i)) {
                return ScoredFragment{};
              }
              std::string span_name;
              if (tracer != nullptr) span_name = "score:" + view.name();
              // Implicit parent: the worker's pool-task span (itself under
              // this scoring phase), or the phase span on the inline path.
              obs::ScopedSpan span(tracer, span_name);
              const auto view_start = Clock::now();
              ScoredFragment fragment;
              for (const SourceState& state : states) {
                if (state.sample->name() != view.base_table()) continue;
                Rng task_rng = exec::TaskRng(scoring_seed, i);
                fragment = ScoreCandidate(state, view,
                                          options_.placebo_correction,
                                          task_rng);
                break;
              }
              registry.Observe("scoring.view_seconds",
                               SecondsSince(view_start));
              return fragment;
            });
        // Merge only the completed prefix; candidates past the cut are
        // neither scored nor recorded (counters stay thread-count
        // independent because the cut lands on a chunk boundary).
        CSM_INVARIANT_LE(fragments.size(), stage_candidates.size());
        for (size_t i = 0; i < fragments.size(); ++i) {
          ScoredFragment& fragment = fragments[i];
          const View& view = stage_candidates[i].view;
          if (fragment.scored) {
            result.pool.view_row_counts[ViewKey(view)] = fragment.view_rows;
            registry.AddCounter("view_matches", fragment.view_matches.size());
            for (csm::Match& m : fragment.view_matches) {
              result.pool.view_matches.push_back(std::move(m));
            }
          }
          result.pool.candidate_views.push_back(view);
        }
        registry.AddCounter("candidate_views", fragments.size());
        registry.AddSeconds("scoring", SecondsSince(start));
        CheckCancelled("scoring");
      }

      // Phase 3: selection over everything scored so far.  Selection is
      // cheap and bounded by the pool size, so it always runs — even on a
      // degraded run it distills the partial pool into the best answer.
      {
        obs::ScopedSpan phase(tracer, "selection");
        auto start = Clock::now();
        selection = SelectContextualMatches(result.pool, options_);
        registry.AddSeconds("selection", SecondsSince(start));
      }

      if (!cancelled_phase.empty()) break;
      if (stage + 1 >= max_stages) break;

      // Next stage: the selected views become base "tables".
      std::vector<StageBase> next_bases;
      for (const View& view : selection.selected_views) {
        for (size_t i = 0; i < states.size(); ++i) {
          if (states[i].sample->name() == view.base_table()) {
            next_bases.push_back(StageBase{i, view.condition()});
          }
        }
      }
      if (next_bases.empty()) break;
      stage_bases = std::move(next_bases);
    }

    // If no stage produced candidates, still run selection for base matches.
    if (selection.matches.empty() && selection.selected_views.empty()) {
      obs::ScopedSpan phase(tracer, "selection");
      auto start = Clock::now();
      selection = SelectContextualMatches(result.pool, options_);
      registry.AddSeconds("selection", SecondsSince(start));
    }

    result.matches = std::move(selection.matches);
    result.selected_views = std::move(selection.selected_views);

    // A healthy baseline-only run is a *successful* degraded answer: the
    // caller (or the service's brownout) asked for exactly this much.
    if (baseline_only && cancelled_phase.empty()) {
      result.completeness = MatchCompleteness::kBaselineOnly;
      registry.AddCounter("engine.baseline_only_runs");
    }

    // Pipeline post-conditions: selection can only pick views that were
    // actually scored as candidates, and every recorded view row count is
    // conserved (bounded by its base table's sample size).
    if constexpr (check::kInvariantsEnabled) {
      std::set<std::string> candidate_keys;
      for (const View& v : result.pool.candidate_views) {
        candidate_keys.insert(ViewKey(v));
      }
      for (const View& v : result.selected_views) {
        CSM_INVARIANT(candidate_keys.count(ViewKey(v)) == 1) << v.ToString();
      }
      for (const SourceState& state : states) {
        for (const View& v : result.pool.candidate_views) {
          if (v.base_table() != state.sample->name()) continue;
          auto rows_it = result.pool.view_row_counts.find(ViewKey(v));
          if (rows_it == result.pool.view_row_counts.end()) continue;
          CSM_INVARIANT_LE(rows_it->second, state.sample->num_rows())
              << v.ToString();
        }
      }
    }

    if (!cancelled_phase.empty()) {
      // Completeness: contextual matches present means at least one whole
      // scoring chunk finished (kPartialViews); none means the run never
      // got past the baseline (kBaselineOnly).
      result.completeness = result.pool.view_matches.empty()
                                ? MatchCompleteness::kBaselineOnly
                                : MatchCompleteness::kPartialViews;
      switch (run_cancel.reason()) {
        case CancelReason::kDeadline:
          result.status = Status::DeadlineExceeded(
              "deadline expired during " + cancelled_phase);
          break;
        case CancelReason::kCaller:
          result.status =
              Status::Cancelled("cancelled by caller during " +
                                cancelled_phase);
          break;
        default:  // kFault, or a fault-failed unit without a cancelled token
          result.status =
              Status::Internal("injected fault during " + cancelled_phase);
          break;
      }
      registry.AddCounter("engine.cancelled");
      registry.AddCounter("cancelled." + cancelled_phase);
      if (!result.matches.empty()) {
        registry.AddCounter("engine.degraded_results");
      }
      // Zero-length marker span so traces show where the run was cut.
      obs::ScopedSpan marker(tracer, "cancelled:" + cancelled_phase,
                             root.id());
    }
  }  // root span closes here, before the snapshot

  if (pool != nullptr) pool->SetObservability(nullptr, nullptr);
  result.phases = registry.Snapshot();
  if (metrics_ != nullptr) metrics_->MergeFrom(registry);
  return result;
}

}  // namespace csm
