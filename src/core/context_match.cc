#include "core/context_match.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <map>
#include <set>

#include "common/logging.h"
#include "exec/parallel.h"
#include "exec/task_rng.h"
#include "exec/thread_pool.h"
#include "match/matchers.h"
#include "match/session.h"

namespace csm {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-source-table state kept across the staged (conjunctive) runs.
/// Read-only once built, so it can be shared by concurrent scoring tasks.
struct SourceState {
  const Table* sample = nullptr;
  std::unique_ptr<TableMatchSession> session;
  MatchList accepted;  // standard matches from this table
};

/// Values of `attribute` at the given row indices of `sample`.
std::vector<Value> BagAtRows(const Table& sample,
                             const std::vector<size_t>& rows,
                             std::string_view attribute) {
  size_t col = sample.schema().AttributeIndex(attribute);
  std::vector<Value> bag;
  bag.reserve(rows.size());
  for (size_t r : rows) bag.push_back(sample.row(r)[col]);
  return bag;
}

/// Scores of one candidate view, produced on a worker and merged into the
/// ScoredPool by the caller in candidate order.
struct ScoredFragment {
  /// False when no source state matched the candidate's base table (the
  /// view is recorded as a candidate but nothing is scored).
  bool scored = false;
  size_t view_rows = 0;
  MatchList view_matches;
};

/// Scores every accepted match of `state` against `candidate`.
///
/// With placebo correction (see ContextMatchOptions), each pair is also
/// scored on a random row subset of the same cardinality as the view; the
/// confidence shift a *random* shrinkage induces (placebo - base) is
/// subtracted from the view's confidence, so only condition-specific
/// effects remain.
///
/// Pure function of (state, candidate, rng): touches no shared mutable
/// state, so candidates can be scored concurrently.
ScoredFragment ScoreCandidate(const SourceState& state, const View& candidate,
                              bool placebo_correction, Rng& rng) {
  ScoredFragment fragment;
  fragment.scored = true;
  // One restricted sample per source attribute, so each attribute's
  // restriction — and its cached token profiles — is built once per view
  // no matter how many target attributes it is scored against.
  std::map<std::string, AttributeSample> samples;
  std::map<std::string, AttributeSample> placebo_samples;

  std::vector<size_t> view_rows;
  std::vector<size_t> placebo_rows;
  for (size_t r = 0; r < state.sample->num_rows(); ++r) {
    if (candidate.condition().Evaluate(state.sample->schema(),
                                       state.sample->row(r))) {
      view_rows.push_back(r);
    }
  }
  if (placebo_correction) {
    placebo_rows.resize(state.sample->num_rows());
    std::iota(placebo_rows.begin(), placebo_rows.end(), 0);
    rng.Shuffle(placebo_rows);
    placebo_rows.resize(view_rows.size());
    std::sort(placebo_rows.begin(), placebo_rows.end());
  }

  fragment.view_rows = view_rows.size();

  for (const Match& base : state.accepted) {
    const std::string& attr = base.source.attribute;
    auto it = samples.find(attr);
    if (it == samples.end()) {
      it = samples
               .emplace(attr, state.session->MakeRestrictedSample(
                                  attr,
                                  BagAtRows(*state.sample, view_rows, attr)))
               .first;
    }
    MatchScore ms =
        state.session->ScoreRestrictedSample(it->second, base.target);
    double confidence = ms.confidence;

    if (placebo_correction) {
      auto pit = placebo_samples.find(attr);
      if (pit == placebo_samples.end()) {
        pit = placebo_samples
                  .emplace(attr,
                           state.session->MakeRestrictedSample(
                               attr, BagAtRows(*state.sample, placebo_rows,
                                               attr)))
                  .first;
      }
      MatchScore placebo =
          state.session->ScoreRestrictedSample(pit->second, base.target);
      confidence = std::clamp(
          confidence - (placebo.confidence - base.confidence), 0.0, 1.0);
    }

    Match conditional = base;
    conditional.condition = candidate.condition();
    conditional.score = ms.score;
    conditional.confidence = confidence;
    fragment.view_matches.push_back(std::move(conditional));
  }
  return fragment;
}

std::string ViewKey(const View& view) {
  return view.base_table() + "\x1d" + view.condition().ToString();
}

}  // namespace

ContextMatchResult ContextMatch(const Database& source, const Database& target,
                                const ContextMatchOptions& options) {
  return ConjunctiveContextMatch(source, target, options, /*max_stages=*/1);
}

ContextMatchResult ConjunctiveContextMatch(const Database& source,
                                           const Database& target,
                                           const ContextMatchOptions& options,
                                           size_t max_stages) {
  CSM_CHECK_GE(max_stages, 1u);
  ContextMatchResult result;
  Rng rng(options.seed);
  std::unique_ptr<ViewInference> inference =
      MakeViewInference(options.inference, options);

  // Worker pool shared by every parallel phase.  threads == 1 keeps the
  // serial path (no pool, ParallelFor/Map run inline); the work
  // decomposition and RNG streams are the same either way, so results are
  // bit-identical at any thread count.
  const size_t threads = exec::EffectiveThreads(options.threads);
  result.threads_used = threads;
  std::unique_ptr<exec::ThreadPool> pool_storage;
  exec::ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool_storage = std::make_unique<exec::ThreadPool>(threads);
    pool = pool_storage.get();
  }

  // Phase 1: standard match per source table, all tables concurrently.
  // Session construction and AcceptedMatches draw no random numbers, and
  // the per-table results are appended in table order below.
  std::vector<SourceState> states;
  {
    auto start = Clock::now();
    const auto& tables = source.tables();
    states = exec::ParallelMap(pool, tables.size(), [&](size_t i) {
      SourceState state;
      state.sample = &tables[i];
      state.session = std::make_unique<TableMatchSession>(
          tables[i], target, DefaultMatcherSuite(), options.match);
      state.accepted = state.session->AcceptedMatches(options.tau);
      return state;
    });
    for (const SourceState& state : states) {
      for (const Match& m : state.accepted) {
        result.pool.base_matches.push_back(m);
      }
      result.counters["base_matches"] += state.accepted.size();
    }
    result.counters["source_tables"] += states.size();
    result.standard_match_seconds = SecondsSince(start);
  }

  // Phase 2 (per stage): infer candidate views, then score the conditional
  // version of every accepted match.
  std::set<std::string> scored_keys;  // views already scored (any stage)
  // Stage 1 bases: the source tables themselves (condition "true").
  struct StageBase {
    size_t state_index;
    Condition condition;  // accumulated condition (true at stage 1)
  };
  std::vector<StageBase> stage_bases;
  for (size_t i = 0; i < states.size(); ++i) {
    stage_bases.push_back(StageBase{i, Condition::True()});
  }

  SelectionResult selection;
  for (size_t stage = 0; stage < max_stages; ++stage) {
    std::vector<CandidateView> stage_candidates;
    {
      auto start = Clock::now();
      for (const StageBase& base : stage_bases) {
        const SourceState& state = states[base.state_index];
        if (state.accepted.empty()) continue;

        // The inference input table: the base table at stage 1, the
        // materialized view afterwards.
        Table materialized;
        const Table* infer_table = state.sample;
        if (!base.condition.is_true()) {
          View stage_view("stage", state.sample->name(), base.condition);
          materialized = stage_view.Materialize(*state.sample);
          materialized = materialized.Renamed(state.sample->name());
          infer_table = &materialized;
        }

        InferenceInput input;
        input.source_sample = infer_table;
        input.target_sample = &target;
        input.matches = &state.accepted;
        input.early_disjuncts = options.early_disjuncts;
        input.excluded_partition_attributes =
            base.condition.MentionedAttributes();
        input.pool = pool;  // classifier grid trains concurrently

        for (CandidateView& candidate :
             inference->InferCandidateViews(input, rng)) {
          // Conjoin with the stage's accumulated condition.
          if (!base.condition.is_true()) {
            View conjoined(
                candidate.view.name(), candidate.view.base_table(),
                base.condition.Conjoin(candidate.view.condition()));
            candidate.view = conjoined;
          }
          if (scored_keys.insert(ViewKey(candidate.view)).second) {
            stage_candidates.push_back(std::move(candidate));
          }
        }
      }
      result.inference_seconds += SecondsSince(start);
    }
    if (stage_candidates.empty()) break;
    result.counters["candidate_views"] += stage_candidates.size();

    {
      auto start = Clock::now();
      // All candidates score concurrently: candidate i gets its own RNG
      // stream split off one sequential draw, and the fragments are merged
      // in candidate order, so the pool is byte-identical to a serial run.
      const uint64_t scoring_seed = rng.Next();
      std::vector<ScoredFragment> fragments =
          exec::ParallelMap(pool, stage_candidates.size(), [&](size_t i) {
            const View& view = stage_candidates[i].view;
            for (const SourceState& state : states) {
              if (state.sample->name() != view.base_table()) continue;
              Rng task_rng = exec::TaskRng(scoring_seed, i);
              return ScoreCandidate(state, view, options.placebo_correction,
                                    task_rng);
            }
            return ScoredFragment{};  // no source table with that name
          });
      for (size_t i = 0; i < stage_candidates.size(); ++i) {
        ScoredFragment& fragment = fragments[i];
        const View& view = stage_candidates[i].view;
        if (fragment.scored) {
          result.pool.view_row_counts[ViewKey(view)] = fragment.view_rows;
          result.counters["view_matches"] += fragment.view_matches.size();
          for (Match& m : fragment.view_matches) {
            result.pool.view_matches.push_back(std::move(m));
          }
        }
        result.pool.candidate_views.push_back(view);
      }
      result.scoring_seconds += SecondsSince(start);
    }

    // Phase 3: selection over everything scored so far.
    {
      auto start = Clock::now();
      selection = SelectContextualMatches(result.pool, options);
      result.selection_seconds += SecondsSince(start);
    }

    if (stage + 1 >= max_stages) break;

    // Next stage: the selected views become base "tables".
    std::vector<StageBase> next_bases;
    for (const View& view : selection.selected_views) {
      for (size_t i = 0; i < states.size(); ++i) {
        if (states[i].sample->name() == view.base_table()) {
          next_bases.push_back(StageBase{i, view.condition()});
        }
      }
    }
    if (next_bases.empty()) break;
    stage_bases = std::move(next_bases);
  }

  // If no stage produced candidates, still run selection for base matches.
  if (selection.matches.empty() && selection.selected_views.empty()) {
    auto start = Clock::now();
    selection = SelectContextualMatches(result.pool, options);
    result.selection_seconds += SecondsSince(start);
  }

  result.matches = std::move(selection.matches);
  result.selected_views = std::move(selection.selected_views);
  return result;
}

}  // namespace csm
