#include "core/context_match.h"

#include "core/match_engine.h"

namespace csm {

const char* MatchCompletenessToString(MatchCompleteness completeness) {
  switch (completeness) {
    case MatchCompleteness::kComplete:
      return "complete";
    case MatchCompleteness::kPartialViews:
      return "partial_views";
    case MatchCompleteness::kBaselineOnly:
      return "baseline_only";
  }
  return "unknown";
}

// The pipeline lives in MatchEngine (core/match_engine.cc); the free
// functions are compatibility wrappers over a throwaway engine, so one-shot
// callers keep the old API while repeat callers construct an engine and
// reuse its pool and session cache.

ContextMatchResult ContextMatch(const Database& source, const Database& target,
                                const ContextMatchOptions& options) {
  return MatchEngine(options).Match(source, target);
}

ContextMatchResult ConjunctiveContextMatch(const Database& source,
                                           const Database& target,
                                           const ContextMatchOptions& options,
                                           size_t max_stages) {
  return MatchEngine(options).ConjunctiveMatch(source, target, max_stages);
}

}  // namespace csm
