#include "core/session_store.h"

#include <bit>
#include <cstdio>

namespace csm {
namespace {

uint64_t HashString(uint64_t h, const std::string& s) {
  h = MixFingerprint(h, s.size());
  for (char c : s) h = MixFingerprint(h, static_cast<unsigned char>(c));
  return h;
}

constexpr char kBlobMagic[] = "csm-sessions 1";

}  // namespace

uint64_t MixFingerprint(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t FingerprintDatabase(const Database& db) {
  uint64_t h = HashString(0x811c9dc5u, db.name());
  h = MixFingerprint(h, db.tables().size());
  for (const Table& table : db.tables()) {
    h = HashString(h, table.name());
    h = HashString(h, table.schema().ToString());
    h = MixFingerprint(h, table.num_rows());
    // Row-major over the column segments: the same hash sequence the old
    // row-store loop produced (Column::CellHash == Value::Hash), without
    // boxing a Value per cell.
    const size_t num_cols = table.schema().num_attributes();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t c = 0; c < num_cols; ++c) {
        h = MixFingerprint(h, table.column(c).CellHash(r));
      }
    }
  }
  return h;
}

uint64_t FingerprintMatchOptions(const MatchOptions& options) {
  uint64_t h = 0x6d617463686f7074ULL;  // "matchopt"
  h = MixFingerprint(h, std::bit_cast<uint64_t>(options.min_score_stddev));
  h = MixFingerprint(h, options.min_non_null_values);
  h = MixFingerprint(h, options.blend_raw_score ? 1 : 0);
  // The training cap changes the bags a session trains on, so cold blobs
  // recorded under a different cap or sample seed must never restore.
  h = MixFingerprint(h, options.max_training_rows);
  h = MixFingerprint(h, options.training_sample_seed);
  return h;
}

std::string SerializeSessionScores(
    const std::vector<std::unique_ptr<TableMatchSession>>& sessions) {
  std::string blob = kBlobMagic;
  blob.push_back('\n');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "tables %zu\n", sessions.size());
  blob.append(buf);
  for (const auto& session : sessions) {
    blob.append("table ");
    blob.append(session->source_table());
    blob.push_back('\n');
    session->AppendSerializedScores(&blob);
  }
  return blob;
}

StatusOr<std::vector<TableMatchSession::RestoredScores>> ParseSessionScores(
    const std::string& blob, const Database& source) {
  auto fail = [](const char* msg) {
    return Status::InvalidArgument(std::string("session blob: ") + msg);
  };
  size_t pos = 0;
  auto read_line = [&](std::string* line) {
    if (pos >= blob.size()) return false;
    size_t end = blob.find('\n', pos);
    if (end == std::string::npos) return false;
    *line = blob.substr(pos, end - pos);
    pos = end + 1;
    return true;
  };

  std::string line;
  if (!read_line(&line) || line != kBlobMagic) {
    return fail("bad magic / version");
  }
  size_t tables = 0;
  if (!read_line(&line) ||
      std::sscanf(line.c_str(), "tables %zu", &tables) != 1) {
    return fail("bad table count");
  }
  if (tables != source.tables().size()) {
    return fail("table count does not match the source database");
  }

  std::vector<TableMatchSession::RestoredScores> out;
  out.reserve(tables);
  for (size_t i = 0; i < tables; ++i) {
    if (!read_line(&line) || line.rfind("table ", 0) != 0) {
      return fail("missing table header");
    }
    if (line.substr(6) != source.tables()[i].name()) {
      return fail("table name does not match the source database");
    }
    auto scores = TableMatchSession::ParseSerializedScores(blob, &pos);
    if (!scores.ok()) return scores.status();
    out.push_back(std::move(scores).value());
  }
  return out;
}

}  // namespace csm
