// MatchEngine: the long-lived entry point to contextual schema matching.
//
// The free functions ContextMatch / ConjunctiveContextMatch /
// TargetContextMatch build everything per call: a thread pool, one
// TableMatchSession per source table, the attribute score distributions
// inside each session.  MatchEngine hoists that state into an object so a
// caller that matches repeatedly — parameter sweeps, benchmark trials, a
// service matching many sources against one warehouse schema — pays for it
// once:
//
//   csm::MatchEngine engine(options);
//   engine.set_tracer(&tracer);            // optional observability sinks
//   auto r1 = engine.Match(src, tgt);      // builds sessions
//   auto r2 = engine.Match(src, tgt);      // reuses them (cache hit)
//
// Since the service PR the engine has ONE real entrypoint — Execute over a
// MatchRequest (core/match_request.h) — and Match / ConjunctiveMatch /
// TargetContextMatch are thin wrappers that build the request and unpack
// the response.  New callers should use Execute; the wrappers stay for the
// one-shot free functions and existing call sites.
//
// What the engine owns:
//   * the worker pool (options.threads resolved once at construction),
//   * optional Tracer / MetricsRegistry sinks applied to every call,
//   * a session cache keyed by (source, target) content fingerprints:
//     standard-match sessions and their accepted matches are reused across
//     calls on the same data.  Sessions draw no random numbers, so reuse is
//     invisible to the RNG streams — results are bit-identical with a cold
//     or warm cache (determinism_test enforces this).
//
// The engine is not internally synchronized: run one Match call at a time
// per engine (the call itself parallelizes internally).  The only member
// safe to call concurrently with a running Match is Cancel().  The free
// functions remain as one-line wrappers over a throwaway engine.
//
// Deadlines & cancellation: a Match call can be bounded three ways — a
// wall-clock budget (ContextMatchOptions::deadline_ms), a caller-owned
// CancellationToken passed to Match, or Cancel() invoked from another
// thread.  All three degrade the run cooperatively instead of aborting it:
// phases poll the token at deterministic checkpoints, drain work already
// claimed, and the result carries whatever completed plus a non-OK status
// and a ContextMatchResult::completeness tag (see DESIGN.md "Failure
// model, deadlines & degradation").

#ifndef CSM_CORE_MATCH_ENGINE_H_
#define CSM_CORE_MATCH_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "core/context_match.h"
#include "core/match_request.h"
#include "core/session_store.h"
#include "core/target_context.h"
#include "exec/thread_pool.h"
#include "match/session.h"
#include "obs/hooks.h"

namespace csm {

class MatchEngine {
 public:
  explicit MatchEngine(ContextMatchOptions options);
  ~MatchEngine();

  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  /// The unified entrypoint: runs `request` (mode, stages, per-request
  /// deadline) and returns the single response shape.  The three legacy
  /// signatures below are thin wrappers over this and bit-identical to
  /// their historical behavior.  A malformed request (null databases,
  /// max_stages == 0, unknown mode) is answered with kInvalidArgument
  /// without running.  `request.deadline_ms` layers a budget measured from
  /// this call under the caller's token; options().deadline_ms still
  /// applies too — whichever fires first wins.
  MatchResponse Execute(const MatchRequest& request,
                        const CancellationToken* cancel = nullptr);

  /// Algorithm ContextMatch (Fig. 5) over every source table.
  ///
  /// `cancel` optionally bounds the run: when the token is cancelled (by
  /// the caller, a parent deadline, or a fault injection) the run degrades
  /// per the per-phase contracts and returns early with a non-OK
  /// result.status.  The token is only read; it must outlive the call.
  /// Combined with options().deadline_ms, whichever fires first wins.
  ContextMatchResult Match(const Database& source, const Database& target,
                           const CancellationToken* cancel = nullptr);

  /// Section 3.5 conjunctive staging; max_stages == 1 is plain Match.
  ContextMatchResult ConjunctiveMatch(const Database& source,
                                      const Database& target,
                                      size_t max_stages,
                                      const CancellationToken* cancel = nullptr);

  /// Reverse-role run with conditions on target tables (core/target_context.h).
  TargetContextMatchResult TargetContextMatch(
      const Database& source, const Database& target,
      const CancellationToken* cancel = nullptr);

  /// Requests cooperative cancellation of the Match call currently running
  /// on another thread (reason kCaller).  Safe to call from any thread at
  /// any time; a no-op when no call is in flight.  The running call drains
  /// and returns a degraded result with status kCancelled.
  void Cancel();

  /// Optional sinks, applied to every subsequent call.  Null detaches.
  /// The tracer receives the span hierarchy (phases, stages, grid cells,
  /// per-view scoring, pool tasks); the registry accumulates every call's
  /// PhaseReport (a per-call snapshot is always returned on the result).
  /// Sinks must outlive the engine or be detached first.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches a cold session tier (core/session_store.h): on a hot-cache
  /// miss the engine tries to restore the phase-1 sessions from the store
  /// (promoting a hit into the hot LRU) and offers every full build back to
  /// it.  Restored sessions are bit-identical to built ones, so results do
  /// not depend on which tier answered (service_test enforces this).  The
  /// store must outlive the engine or be detached first; null detaches.
  void set_cold_store(SessionColdStore* store) { cold_store_ = store; }

  const ContextMatchOptions& options() const { return options_; }
  /// Resolved worker count (options.threads with 0 = hardware concurrency).
  size_t threads() const { return threads_; }

  /// Session-cache introspection (counts also surface as the
  /// "engine.session_cache_hits"/"engine.session_cache_misses"/
  /// "engine.session_cache_evictions" counters).
  uint64_t session_cache_hits() const { return cache_hits_; }
  uint64_t session_cache_misses() const { return cache_misses_; }
  uint64_t session_cache_evictions() const { return cache_evictions_; }
  /// Cold-tier introspection ("engine.session_cold_hits" /
  /// "engine.session_cold_stores" / "engine.session_cold_invalid" counters).
  uint64_t session_cold_hits() const { return cold_hits_; }
  uint64_t session_cold_stores() const { return cold_stores_; }
  void ClearSessionCache() { session_cache_.clear(); }

 private:
  /// Cached phase-1 output for one (source, target) pair: the per-table
  /// match sessions and their tau-accepted standard matches, in source
  /// table order.
  struct SessionCacheEntry {
    std::vector<std::unique_ptr<TableMatchSession>> sessions;
    std::vector<MatchList> accepted;
    /// Recency tick for LRU eviction: bumped from cache_tick_ on every
    /// lookup that returns this entry.
    uint64_t last_used = 0;
  };

  /// What LookupSessions handed back: the entry plus how many leading
  /// tables actually have sessions.  `valid_tables` only falls short of the
  /// source table count when the build was cancelled or fault-injected
  /// mid-way; such partial entries live in `partial_sessions_`, never in
  /// the cache.
  struct SessionLookup {
    const SessionCacheEntry* entry = nullptr;
    size_t valid_tables = 0;
  };

  /// Returns the cache entry for (source, target), building the sessions
  /// (in parallel, in fixed chunks of tables) on a miss.  `cancel` is
  /// polled between chunks; a cancelled build returns the completed table
  /// prefix and is not cached.  The pointer stays valid for the remainder
  /// of the current call.
  SessionLookup LookupSessions(const Database& source, const Database& target,
                               obs::MetricsRegistry* registry,
                               uint64_t parent_span,
                               const CancellationToken* cancel);

  /// The full staged pipeline behind Match / ConjunctiveMatch.
  /// `baseline_only` stops after phase 1 + selection (status OK,
  /// completeness kBaselineOnly) — the brownout/load-shedding answer.
  ContextMatchResult RunPipeline(const Database& source,
                                 const Database& target, size_t max_stages,
                                 bool baseline_only,
                                 const CancellationToken* cancel);

  ContextMatchOptions options_;
  size_t threads_ = 1;
  std::unique_ptr<exec::ThreadPool> pool_;  // null when threads_ == 1
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  SessionColdStore* cold_store_ = nullptr;
  uint64_t cold_hits_ = 0;
  uint64_t cold_stores_ = 0;

  std::map<std::pair<uint64_t, uint64_t>, SessionCacheEntry> session_cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t cache_evictions_ = 0;
  /// Monotonic lookup counter feeding SessionCacheEntry::last_used.
  uint64_t cache_tick_ = 0;

  /// Scratch for a cancelled phase-1 build: the completed prefix of
  /// sessions for the *current* call only (overwritten by the next
  /// degraded call, cleared implicitly — never read across calls).
  SessionCacheEntry partial_sessions_;

  /// The in-flight run's cancellation token, registered for the duration
  /// of RunPipeline so Cancel() can reach it from another thread.  The
  /// mutex orders registration/clearing against Cancel(), which keeps the
  /// token (a RunPipeline stack object) alive while being cancelled.
  std::mutex cancel_mu_;
  CancellationToken* active_cancel_ = nullptr;
};

}  // namespace csm

#endif  // CSM_CORE_MATCH_ENGINE_H_
