// MatchEngine: the long-lived entry point to contextual schema matching.
//
// The free functions ContextMatch / ConjunctiveContextMatch /
// TargetContextMatch build everything per call: a thread pool, one
// TableMatchSession per source table, the attribute score distributions
// inside each session.  MatchEngine hoists that state into an object so a
// caller that matches repeatedly — parameter sweeps, benchmark trials, a
// service matching many sources against one warehouse schema — pays for it
// once:
//
//   csm::MatchEngine engine(options);
//   engine.set_tracer(&tracer);            // optional observability sinks
//   auto r1 = engine.Match(src, tgt);      // builds sessions
//   auto r2 = engine.Match(src, tgt);      // reuses them (cache hit)
//
// What the engine owns:
//   * the worker pool (options.threads resolved once at construction),
//   * optional Tracer / MetricsRegistry sinks applied to every call,
//   * a session cache keyed by (source, target) content fingerprints:
//     standard-match sessions and their accepted matches are reused across
//     calls on the same data.  Sessions draw no random numbers, so reuse is
//     invisible to the RNG streams — results are bit-identical with a cold
//     or warm cache (determinism_test enforces this).
//
// The engine is not internally synchronized: run one Match call at a time
// per engine (the call itself parallelizes internally).  The free functions
// remain as one-line wrappers over a throwaway engine.

#ifndef CSM_CORE_MATCH_ENGINE_H_
#define CSM_CORE_MATCH_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/context_match.h"
#include "core/target_context.h"
#include "exec/thread_pool.h"
#include "match/session.h"
#include "obs/hooks.h"

namespace csm {

class MatchEngine {
 public:
  explicit MatchEngine(ContextMatchOptions options);
  ~MatchEngine();

  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  /// Algorithm ContextMatch (Fig. 5) over every source table.
  ContextMatchResult Match(const Database& source, const Database& target);

  /// Section 3.5 conjunctive staging; max_stages == 1 is plain Match.
  ContextMatchResult ConjunctiveMatch(const Database& source,
                                      const Database& target,
                                      size_t max_stages);

  /// Reverse-role run with conditions on target tables (core/target_context.h).
  TargetContextMatchResult TargetContextMatch(const Database& source,
                                              const Database& target);

  /// Optional sinks, applied to every subsequent call.  Null detaches.
  /// The tracer receives the span hierarchy (phases, stages, grid cells,
  /// per-view scoring, pool tasks); the registry accumulates every call's
  /// PhaseReport (a per-call snapshot is always returned on the result).
  /// Sinks must outlive the engine or be detached first.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  const ContextMatchOptions& options() const { return options_; }
  /// Resolved worker count (options.threads with 0 = hardware concurrency).
  size_t threads() const { return threads_; }

  /// Session-cache introspection (counts also surface as the
  /// "engine.session_cache_hits"/"engine.session_cache_misses" counters).
  uint64_t session_cache_hits() const { return cache_hits_; }
  uint64_t session_cache_misses() const { return cache_misses_; }
  void ClearSessionCache() { session_cache_.clear(); }

 private:
  /// Cached phase-1 output for one (source, target) pair: the per-table
  /// match sessions and their tau-accepted standard matches, in source
  /// table order.
  struct SessionCacheEntry {
    std::vector<std::unique_ptr<TableMatchSession>> sessions;
    std::vector<MatchList> accepted;
  };

  /// Returns the cache entry for (source, target), building the sessions
  /// (in parallel, one task per table) on a miss.  The reference stays
  /// valid for the remainder of the current call.
  SessionCacheEntry& LookupSessions(const Database& source,
                                    const Database& target,
                                    obs::MetricsRegistry* registry,
                                    uint64_t parent_span);

  /// The full staged pipeline behind Match / ConjunctiveMatch.
  ContextMatchResult RunPipeline(const Database& source,
                                 const Database& target, size_t max_stages);

  ContextMatchOptions options_;
  size_t threads_ = 1;
  std::unique_ptr<exec::ThreadPool> pool_;  // null when threads_ == 1
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  std::map<std::pair<uint64_t, uint64_t>, SessionCacheEntry> session_cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace csm

#endif  // CSM_CORE_MATCH_ENGINE_H_
