#include "core/target_context.h"

namespace csm {

TargetContextMatchResult TargetContextMatch(
    const Database& source, const Database& target,
    const ContextMatchOptions& options) {
  TargetContextMatchResult result;
  // Reverse the roles: conditions are inferred on `target`'s tables.
  result.reversed = ContextMatch(target, source, options);

  for (const Match& reversed_match : result.reversed.matches) {
    Match flipped;
    flipped.source = reversed_match.target;
    flipped.target = reversed_match.source;
    flipped.condition = reversed_match.condition;
    flipped.condition_on_target = !reversed_match.condition.is_true();
    flipped.score = reversed_match.score;
    flipped.confidence = reversed_match.confidence;
    result.matches.push_back(std::move(flipped));
  }
  result.selected_target_views = result.reversed.selected_views;
  return result;
}

}  // namespace csm
