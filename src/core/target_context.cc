#include "core/target_context.h"

#include "core/match_engine.h"

namespace csm {

TargetContextMatchResult TargetContextMatch(
    const Database& source, const Database& target,
    const ContextMatchOptions& options) {
  return MatchEngine(options).TargetContextMatch(source, target);
}

}  // namespace csm
