// Target-side contextual matching.
//
// Section 3 notes that "it is generally straightforward to reverse the role
// of source and target tables to discover matches involving conditions on
// the target table", and Section 7 lists handling views on the target
// schema as future work.  This module implements the reversal: the target
// database is matched as if it were the source, conditions are inferred on
// *its* tables, and the resulting matches are flipped back into
// source -> target orientation with Match::condition_on_target set.
//
// The canonical use is the mirror of Example 1.1: a combined source
// inventory on one side and a combined *target* inventory on the other —
// when the source stores books and music in separate tables, each source
// table should map into the slice of the target combined table selected by
// its discriminator value.

#ifndef CSM_CORE_TARGET_CONTEXT_H_
#define CSM_CORE_TARGET_CONTEXT_H_

#include "core/context_match.h"

namespace csm {

struct TargetContextMatchResult {
  /// Matches oriented source -> target whose conditions (when present)
  /// select rows of the *target* table (condition_on_target is set).
  MatchList matches;
  /// The selected views over target tables.
  std::vector<View> selected_target_views;
  /// The underlying reversed-direction run, for diagnostics.
  ContextMatchResult reversed;
};

/// Runs ContextMatch with the roles of `source` and `target` reversed and
/// flips the output back.  All options keep their usual meaning; inference
/// runs on the target tables (TgtClassInfer's "target" classifiers are
/// trained on `source`).
TargetContextMatchResult TargetContextMatch(const Database& source,
                                            const Database& target,
                                            const ContextMatchOptions& options);

}  // namespace csm

#endif  // CSM_CORE_TARGET_CONTEXT_H_
