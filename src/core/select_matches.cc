#include "core/select_matches.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "check/invariants.h"
#include "common/logging.h"

namespace csm {
namespace {

/// Key identifying one candidate view: (source table, condition text).
std::string ViewKey(const std::string& table, const Condition& condition) {
  return table + "\x1d" + condition.ToString();
}

std::string ViewKey(const Match& match) {
  return ViewKey(match.source.table, match.condition);
}

/// Confidence of the base (standard) match per (source, target) attribute
/// pair.  Built once per selection call: probing it per view match keeps
/// selection O((base + views) log base) instead of the former per-view-match
/// linear scan over base_matches (O(views x base_matches)).  Insertion keeps
/// the *first* base match of a pair, matching the old scan's semantics.
class BaseConfidenceIndex {
 public:
  explicit BaseConfidenceIndex(const MatchList& base_matches) {
    for (const Match& base : base_matches) {
      index_.try_emplace(std::make_pair(base.source, base.target),
                         base.confidence);
    }
  }

  /// 0 when the pair has no base match.
  double Lookup(const Match& view_match) const {
    auto it = index_.find(std::make_pair(view_match.source, view_match.target));
    return it == index_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::pair<AttributeRef, AttributeRef>, double> index_;
};

void SortMatches(MatchList& matches) {
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.target < b.target) return true;
    if (b.target < a.target) return false;
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.source < b.source) return true;
    if (b.source < a.source) return false;
    return a.condition.ToString() < b.condition.ToString();
  });
}

}  // namespace

SelectionResult SelectMultiTable(const ScoredPool& pool, double omega) {
  // Candidate set: all base matches, plus view matches that improve their
  // base counterpart by at least omega.
  MatchList eligible = pool.base_matches;
  const BaseConfidenceIndex base_confidence(pool.base_matches);
  for (const Match& vm : pool.view_matches) {
    if (vm.confidence >= base_confidence.Lookup(vm) + omega) {
      eligible.push_back(vm);
    }
  }
  // Best per target attribute.
  std::map<AttributeRef, const Match*> best;
  for (const Match& match : eligible) {
    auto [it, inserted] = best.try_emplace(match.target, &match);
    if (!inserted && match.confidence > it->second->confidence) {
      it->second = &match;
    }
  }
  SelectionResult result;
  std::set<std::string> selected_keys;
  for (const auto& [target, match] : best) {
    result.matches.push_back(*match);
    if (!match->condition.is_true()) {
      selected_keys.insert(ViewKey(*match));
    }
  }
  for (const View& view : pool.candidate_views) {
    if (selected_keys.count(ViewKey(view.base_table(), view.condition()))) {
      result.selected_views.push_back(view);
    }
  }
  SortMatches(result.matches);
  // Selection contract: at most one selected match per target attribute.
  if constexpr (check::kInvariantsEnabled) {
    std::set<AttributeRef> seen_targets;
    for (const Match& m : result.matches) {
      CSM_INVARIANT(seen_targets.insert(m.target).second)
          << "duplicate target " << m.target.ToString();
    }
  }
  return result;
}

SelectionResult SelectQualTable(const ScoredPool& pool, double omega,
                                bool early_disjuncts, double tau) {
  SelectionResult result;

  // Group base matches by (target table, source table) and sum confidences.
  std::set<std::string> target_tables;
  for (const Match& m : pool.base_matches) target_tables.insert(m.target.table);

  std::set<std::string> selected_keys;
  for (const std::string& target_table : target_tables) {
    // Table-level confidence totals are best-assignment sums: each SOURCE
    // attribute contributes the confidence of its best match into this
    // target table.  A plain sum over all matches would (a) double-count a
    // source attribute matching several target attributes — so a correct
    // restriction that collapses the spurious extras looks like a loss —
    // and (b) under attribute normalization reward the base table for
    // matching every per-value column moderately, which no single-value
    // view can beat even though the view matches its own column far better.
    // (a) Source table with the highest total base confidence.
    std::map<std::string, std::map<std::string, double>> source_best;
    for (const Match& m : pool.base_matches) {
      if (m.target.table != target_table) continue;
      double& best = source_best[m.source.table][m.source.attribute];
      best = std::max(best, m.confidence);
    }
    std::string best_source;
    double base_total = -1.0;
    for (const auto& [source, per_attr] : source_best) {
      double total = 0.0;
      for (const auto& [attr, conf] : per_attr) total += conf;
      if (total > base_total) {
        best_source = source;
        base_total = total;
      }
    }
    if (best_source.empty()) continue;

    // (b) Total confidence of each candidate view of that source table
    // against this target table.
    std::map<std::string, std::map<std::string, double>> view_best;
    for (const Match& vm : pool.view_matches) {
      if (vm.source.table != best_source || vm.target.table != target_table) {
        continue;
      }
      double& best = view_best[ViewKey(vm)][vm.source.attribute];
      best = std::max(best, vm.confidence);
    }
    std::map<std::string, double> view_totals;  // view key -> total
    for (const auto& [key, per_attr] : view_best) {
      double total = 0.0;
      for (const auto& [attr, conf] : per_attr) total += conf;
      view_totals[key] = total;
    }

    // (c) Views improving the base total by at least omega.
    std::vector<std::pair<std::string, double>> improving;
    for (const auto& [key, total] : view_totals) {
      if (total >= base_total + omega) improving.emplace_back(key, total);
    }
    std::sort(improving.begin(), improving.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (early_disjuncts && improving.size() > 1) {
      // Disjunction already lives in the condition; keep the single best,
      // breaking near-ties (within 5%) toward the view with the largest
      // coverage — a merged disjunct and one of its halves score alike once
      // size bias is corrected, but the merged view maps more of the data.
      // Only views conditioned on the *same attributes* as the top view
      // compete in the tie-break: a broadly merged view on an unrelated
      // attribute must not win on coverage alone.
      std::map<std::string, std::string> condition_attrs;
      for (const View& view : pool.candidate_views) {
        std::string attrs;
        for (const std::string& a : view.condition().MentionedAttributes()) {
          attrs += a;
          attrs += '\x1f';
        }
        condition_attrs[ViewKey(view.base_table(), view.condition())] =
            std::move(attrs);
      }
      const double tie_floor = improving[0].second * 0.95;
      const std::string top_attrs = condition_attrs[improving[0].first];
      size_t pick = 0;
      size_t best_rows = 0;
      for (size_t i = 0; i < improving.size(); ++i) {
        if (improving[i].second < tie_floor) break;
        if (condition_attrs[improving[i].first] != top_attrs) continue;
        auto rows_it = pool.view_row_counts.find(improving[i].first);
        size_t rows =
            rows_it == pool.view_row_counts.end() ? 0 : rows_it->second;
        if (rows > best_rows) {
          best_rows = rows;
          pick = i;
        }
      }
      improving[0] = improving[pick];
      improving.resize(1);
    }

    if (improving.empty()) {
      // No view improves: keep the base matches of the chosen source table.
      for (const Match& m : pool.base_matches) {
        if (m.target.table == target_table && m.source.table == best_source) {
          result.matches.push_back(m);
        }
      }
      continue;
    }

    std::set<std::string> chosen;
    for (const auto& [key, total] : improving) {
      chosen.insert(key);
      selected_keys.insert(key);
    }
    // (d) Emit the selected views' matches: consistent with the
    // assignment-based totals, each source attribute contributes its best
    // target attribute per view, re-filtered by tau.
    std::map<std::pair<std::string, std::string>, const Match*> best_emit;
    for (const Match& vm : pool.view_matches) {
      if (vm.source.table != best_source || vm.target.table != target_table) {
        continue;
      }
      if (chosen.count(ViewKey(vm)) == 0) continue;
      if (vm.confidence < tau) continue;
      auto key = std::make_pair(ViewKey(vm), vm.source.attribute);
      auto [it, inserted] = best_emit.try_emplace(key, &vm);
      if (!inserted && vm.confidence > it->second->confidence) {
        it->second = &vm;
      }
    }
    for (const auto& [key, vm] : best_emit) {
      result.matches.push_back(*vm);
    }
  }

  for (const View& view : pool.candidate_views) {
    if (selected_keys.count(ViewKey(view.base_table(), view.condition()))) {
      result.selected_views.push_back(view);
    }
  }
  SortMatches(result.matches);
  // Selection contract: each target table's matches come from the single
  // best source table chosen for it, and per target table each selected
  // view emits at most one match per source attribute (the best_emit
  // dedup key), re-filtered by tau.
  if constexpr (check::kInvariantsEnabled) {
    std::map<std::string, std::string> source_of;
    std::set<std::string> emitted;
    for (const Match& m : result.matches) {
      auto [it, inserted] =
          source_of.try_emplace(m.target.table, m.source.table);
      CSM_INVARIANT(inserted || it->second == m.source.table)
          << "target table " << m.target.table << " mixes source tables "
          << it->second << " and " << m.source.table;
      if (m.condition.is_true()) continue;  // base fallback path
      CSM_INVARIANT(m.confidence >= tau) << m.ToString();
      CSM_INVARIANT(emitted
                        .insert(m.target.table + "\x1e" + ViewKey(m) +
                                "\x1e" + m.source.attribute)
                        .second)
          << "duplicate (target table, view, source attribute) emission "
          << m.ToString();
    }
  }
  return result;
}

SelectionResult SelectContextualMatches(const ScoredPool& pool,
                                        const ContextMatchOptions& options) {
  switch (options.selection) {
    case SelectionPolicy::kMultiTable:
      return SelectMultiTable(pool, options.omega);
    case SelectionPolicy::kQualTable:
      return SelectQualTable(pool, options.omega, options.early_disjuncts,
                             options.tau);
  }
  CSM_CHECK(false) << "unknown selection policy";
  return {};
}

}  // namespace csm
