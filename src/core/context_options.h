// Option bundles for the contextual matching pipeline (Sections 3.1-3.4).

#ifndef CSM_CORE_CONTEXT_OPTIONS_H_
#define CSM_CORE_CONTEXT_OPTIONS_H_

#include <cstdint>

#include "match/session.h"
#include "relational/categorical.h"

namespace csm {

/// Which InferCandidateViews implementation to run (Section 3.2).
enum class ViewInferenceKind {
  kNaive,     // NaiveInfer: every value of every categorical attribute
  kSrcClass,  // SrcClassInfer: source-side classifier evidence
  kTgtClass,  // TgtClassInfer: target-tagging classifier evidence
};

const char* ViewInferenceKindToString(ViewInferenceKind kind);

/// Which SelectContextualMatches implementation to run (Section 3.4).
enum class SelectionPolicy {
  kMultiTable,  // best match per target attribute
  kQualTable,   // best consistent source table (or its views) per target table
};

const char* SelectionPolicyToString(SelectionPolicy policy);

/// Options for ClusteredViewGen (Fig. 6) and its disjunctive extension.
struct ClusteredViewGenOptions {
  /// Fraction of the sample used for doTraining (rest goes to doTesting).
  double train_fraction = 0.5;
  /// Acceptance threshold T on the significance of the classifier score
  /// against the random-label null (paper: 95%).
  double significance_threshold = 0.95;
  /// Ignore label attributes with more than this many distinct values.
  size_t max_label_cardinality = 50;
  /// Minimum test examples for the significance test to be meaningful.
  size_t min_test_size = 4;
};

/// Options for the full ContextMatch driver (Fig. 5).
struct ContextMatchOptions {
  /// StandardMatch confidence threshold (tau).
  double tau = 0.5;
  /// Improvement threshold (omega) used by SelectContextualMatches.  The
  /// paper's default is 0.5 on its own confidence scale; on this library's
  /// scale the calibrated optimal plateau is roughly [0.05, 0.25] (see
  /// bench_fig08_10_omega), so 0.15 is the default.
  double omega = 0.15;
  /// EarlyDisjuncts vs LateDisjuncts (Section 3.3).
  bool early_disjuncts = true;
  ViewInferenceKind inference = ViewInferenceKind::kSrcClass;
  SelectionPolicy selection = SelectionPolicy::kQualTable;
  /// Seed for the train/test partitioning (experiments average over seeds).
  uint64_t seed = 1;
  /// Largest categorical cardinality NaiveInfer will expand into
  /// disjunctive subset conditions under EarlyDisjuncts (2^n blow-up guard).
  size_t naive_disjunct_limit = 12;
  /// Size-matched placebo correction (see DESIGN.md): when rescoring a
  /// candidate view, each pair is also scored on a *random* row subset of
  /// the same cardinality, and the confidence shift induced by mere
  /// shrinkage (placebo - base) is subtracted from the view's confidence.
  /// Without it, instance scores' systematic sensitivity to bag size makes
  /// every restriction look slightly worse on semantically unrelated pairs,
  /// and the summed bias drowns real improvements on wide schemas.
  bool placebo_correction = true;
  /// Worker threads for the parallel phases (session building, candidate
  /// scoring, classifier-grid training).  1 = serial legacy path (no pool is
  /// created); 0 = one thread per hardware core; N = exactly N workers.
  /// Results are bit-identical for every value: work decomposition and RNG
  /// streams are fixed up front, only the scheduling changes (see
  /// DESIGN.md "Threading model & determinism").
  size_t threads = 1;
  /// Wall-clock budget for one Match call in milliseconds; 0 = unbounded.
  /// When the budget runs out the run degrades instead of finishing: it
  /// returns the standard-match baseline plus whatever contextual matches
  /// were fully scored, with ContextMatchResult::completeness downgraded
  /// and ContextMatchResult::status set to kDeadlineExceeded (see
  /// DESIGN.md "Failure model, deadlines & degradation").
  int64_t deadline_ms = 0;

  ClusteredViewGenOptions clustered;
  CategoricalOptions categorical;
  MatchOptions match;
};

}  // namespace csm

#endif  // CSM_CORE_CONTEXT_OPTIONS_H_
